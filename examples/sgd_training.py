#!/usr/bin/env python3
"""Verified sampling inside SGD (the Section 5.3 TensorFlow demo).

Trains the same MLP twice on a synthetic MNIST-like dataset -- once
drawing minibatch indices from the verified ``ZarUniform`` sampler and
once from the stdlib PRNG -- and shows that the verified sampler has a
negligible effect on training, which is the paper's observed result.
(TensorFlow/MNIST are unavailable offline; DESIGN.md documents the
substitution.)
"""

from repro.ml import synthetic_mnist, train


def main() -> None:
    x_train, y_train, x_test, y_test = synthetic_mnist(seed=11)
    print("Training a numpy MLP with two batch-index samplers...\n")
    results = {}
    for sampler in ("zar", "stdlib"):
        result = train(
            x_train, y_train, x_test, y_test,
            sampler=sampler, steps=300, seed=11,
        )
        results[sampler] = result
        print("%-8s final loss %.4f   test accuracy %.3f"
              % (sampler, result.losses[-1], result.test_accuracy))
    gap = abs(results["zar"].test_accuracy - results["stdlib"].test_accuracy)
    print("\nAccuracy gap: %.3f (negligible, as the paper observes)" % gap)


if __name__ == "__main__":
    main()
