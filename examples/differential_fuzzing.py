#!/usr/bin/env python3
"""Differential fuzzing of the pipeline (ProbFuzz-style; Section 6).

The paper proposes Zar as a reference implementation for differential
testing of probabilistic programming systems.  This example runs the
reproduction's own harness: random cpGCL programs are pushed through
exact inference, the compiled sampler, and the direct interpreter, and
any disagreement is reported.

Run with an integer argument to change the number of rounds.
"""

import sys

from repro.verify.fuzz import fuzz


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    print("Fuzzing %d random programs (exact + 2 samplers each)...\n" % rounds)
    report = fuzz(rounds=rounds, base_seed=2023, depth=3, samples=1200)
    print("programs checked:   %d" % report.programs)
    print("without posterior:  %d (condition on a false event)"
          % report.skipped)
    print("discrepancies:      %d" % len(report.discrepancies))
    for item in report.discrepancies:
        print("\n  seed %d failed at stage %r: %s"
              % (item.seed, item.stage, item.detail))
        from repro.lang.pretty import pretty

        print(pretty(item.program, indent=1))
    if report.ok:
        print("\nAll execution paths agree -- cwp inference, the compiled")
        print("bit-model sampler, and the operational interpreter.")


if __name__ == "__main__":
    main()
