#!/usr/bin/env python3
"""Uniform sampling four ways (Section 5.3, Appendix B, Table 4).

Rolls a 200-sided die with:

1. the verified Zar pipeline (``ZarUniform``),
2. the Fast Loaded Dice Roller,
3. the OPTAS-style optimal approximate sampler, and
4. the *modulo-biased* sampler the introduction warns about --
   demonstrating both the entropy comparison of Table 4 and the bias
   that motivates verified sampling in the first place.
"""

import time
from fractions import Fraction

from repro import CountingBits, SystemBits, ZarUniform
from repro.baselines import FLDRSampler, ModuloBiasedSampler, OptasSampler
from repro.stats import empirical_pmf, tv_distance, uniform_pmf

SIDES = 200
SAMPLES = 20000


def report(name, draw, init_seconds):
    source = CountingBits(SystemBits(12345))
    start = time.perf_counter()
    values = [draw(source) for _ in range(SAMPLES)]
    elapsed = time.perf_counter() - start
    observed = empirical_pmf(values)
    tv = tv_distance(observed, uniform_pmf(SIDES))
    print(
        "%-18s mean=%8.3f  TV=%.4f  bits/sample=%6.2f  "
        "T_init=%6.2fms  T_s=%7.1fms"
        % (
            name,
            sum(values) / len(values),
            tv,
            source.count / SAMPLES,
            init_seconds * 1000,
            elapsed * 1000,
        )
    )


def main() -> None:
    print("200-sided die, %d samples each (Table 4's shape):\n" % SAMPLES)

    start = time.perf_counter()
    zar = ZarUniform(SIDES, validate=True)
    zar_init = time.perf_counter() - start
    report("Zar (verified)", lambda src: zar.sample(src), zar_init)

    start = time.perf_counter()
    fldr = FLDRSampler([1] * SIDES)
    fldr_init = time.perf_counter() - start
    report("FLDR", fldr.sample, fldr_init)

    start = time.perf_counter()
    optas = OptasSampler([Fraction(1, SIDES)] * SIDES, precision=32)
    optas_init = time.perf_counter() - start
    report("OPTAS (approx)", optas.sample, optas_init)
    print("    OPTAS approximation error (TV): %.2e"
          % optas.approximation_error_tv())

    biased = ModuloBiasedSampler(SIDES, width=8)
    report("modulo-biased", biased.sample, 0.0)
    print("    modulo-bias exact TV from uniform: %.4f  <- the bug"
          % float(biased.bias_tv()))


if __name__ == "__main__":
    main()
