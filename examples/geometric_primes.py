#!/usr/bin/env python3
"""The geometric-primes program (Figure 1a / Section 5.2).

A non-i.i.d. unbounded loop with conditioning: count coin flips until
tails, then observe that the count is prime.  Reproduces the posterior
of Figure 1b and the accuracy/entropy measurements of Table 2.
"""

from fractions import Fraction

from repro import State, collect, cpgcl_to_itree, geometric_primes, pretty
from repro.stats import empirical_pmf, geometric_primes_pmf, tv_distance


def main() -> None:
    p = Fraction(2, 3)
    program = geometric_primes(p)
    print(pretty(program))
    print()

    true_pmf = geometric_primes_pmf(p)
    support = sorted(true_pmf)[:6]
    print("True posterior over h (Figure 1b, p = 2/3):")
    for h in support:
        bar = "#" * int(round(true_pmf[h] * 60))
        print("  h=%2d  %.4f  %s" % (h, true_pmf[h], bar))
    print()

    sampler = cpgcl_to_itree(program, State())
    samples = collect(sampler, 20000, seed=1, extract=lambda s: s["h"])
    observed = empirical_pmf(samples.values)
    print("20000 samples: mean h = %.3f (true %.3f)"
          % (samples.mean(), sum(h * q for h, q in true_pmf.items())))
    print("TV distance to true posterior: %.4f"
          % tv_distance(observed, true_pmf))
    print("Bits per sample: mean %.2f, std %.2f (rejection restarts included)"
          % (samples.mean_bits(), samples.std_bits()))


if __name__ == "__main__":
    main()
