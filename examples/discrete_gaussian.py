#!/usr/bin/env python3
"""The discrete Gaussian sampler (Appendix C, Tables 6-8).

Builds the three-layer Canonne et al. (2020) construction as cpGCL
programs -- Bernoulli(exp(-gamma)) via the von Neumann trick, discrete
Laplace by rejection from geometric mixtures, and discrete Gaussian by
rejection from Laplace -- then samples each layer and compares against
its exact pmf.
"""

from fractions import Fraction

from repro import State, bernoulli_exponential, collect, cpgcl_to_itree, gaussian, laplace
from repro.stats import (
    bernoulli_exp_pmf,
    discrete_gaussian_pmf,
    discrete_laplace_pmf,
    empirical_pmf,
    tv_distance,
)

SAMPLES = 8000


def main() -> None:
    print("Layer 1: out ~ Bernoulli(exp(-1/2))  (Figure 11, Table 6)")
    program = bernoulli_exponential("out", Fraction(1, 2))
    samples = collect(cpgcl_to_itree(program, State()), SAMPLES, seed=5,
                      extract=lambda s: s["out"])
    true = bernoulli_exp_pmf(Fraction(1, 2))
    print("  P(true): sampled %.4f, exact %.4f; bits/sample %.2f\n"
          % (samples.mean(), true[True], samples.mean_bits()))

    print("Layer 2: out ~ Lap_Z(2/1)  (Figure 12, Table 7)")
    program = laplace("out", 1, 2)
    samples = collect(cpgcl_to_itree(program, State()), SAMPLES, seed=6,
                      extract=lambda s: s["out"])
    true = discrete_laplace_pmf(1, 2)
    tv = tv_distance(empirical_pmf(samples.values), true)
    print("  mean %.3f, std %.3f, TV %.4f, bits/sample %.2f\n"
          % (samples.mean(), samples.std(), tv, samples.mean_bits()))

    print("Layer 3: z ~ N_Z(10, 2^2)  (Figure 13, Table 8)")
    program = gaussian("z", 10, 2)
    samples = collect(cpgcl_to_itree(program, State()), SAMPLES, seed=7,
                      extract=lambda s: s["z"])
    true = discrete_gaussian_pmf(10, 2)
    tv = tv_distance(empirical_pmf(samples.values), true)
    print("  mean %.3f, std %.3f, TV %.4f, bits/sample %.2f"
          % (samples.mean(), samples.std(), tv, samples.mean_bits()))
    histogram(samples.counts(), 10)


def histogram(counts, center, radius=6) -> None:
    total = sum(counts.values())
    print("\n  posterior histogram:")
    for z in range(center - radius, center + radius + 1):
        share = counts.get(z, 0) / total
        print("  z=%3d  %.3f  %s" % (z, share, "#" * int(round(share * 120))))


if __name__ == "__main__":
    main()
