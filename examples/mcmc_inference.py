#!/usr/bin/env python3
"""Trace MCMC vs the verified rejection pipeline (repro.mcmc).

The paper's Section 1.3 plans MCMC compilation to curb the entropy cost
of rejection sampling under low-probability conditioning: Table 2 shows
``primes(1/5)`` paying ~142 fair bits per sample because most attempts
fail the primality observation.  This example runs both samplers on that
exact program and compares:

- posterior accuracy against the exact cwp posterior,
- fair bits consumed per sample,
- and, for the MCMC side, the diagnostics an honest comparison needs
  (acceptance rate, effective sample size, R-hat across chains) --
  rejection samples are i.i.d. and certified by Theorem 4.2; MCMC
  samples are correlated and certificate-free.
"""

from collections import Counter
from fractions import Fraction

from repro import State, collect, cpgcl_to_itree, cwp, geometric_primes
from repro.mcmc import MHSampler, effective_sample_size, gelman_rubin

P = Fraction(1, 5)
N = 4000


def exact_posterior(program, support):
    sigma = State()
    return {
        h: float(cwp(program, lambda s, h=h: 1 if s["h"] == h else 0, sigma))
        for h in support
    }


def main() -> None:
    program = geometric_primes(P)
    support = (2, 3, 5, 7)
    exact = exact_posterior(program, support)
    print("Exact posterior over h (cwp):",
          {h: round(v, 4) for h, v in exact.items()})
    print()

    # --- verified rejection pipeline -------------------------------------
    samples = collect(
        cpgcl_to_itree(program, State()), N, seed=1,
        extract=lambda s: s["h"],
    )
    counts = samples.counts()
    print("Rejection sampler (verified pipeline):")
    print("  empirical:",
          {h: round(counts.get(h, 0) / N, 4) for h in support})
    print("  bits/sample: %.1f  (paper Table 2: 142.51 at p=1/5)"
          % samples.mean_bits())
    print()

    # --- trace MCMC -------------------------------------------------------
    chain = MHSampler(program, seed=2).run(N, burn_in=500)
    mc_counts = Counter(chain.extract("h"))
    print("Single-site trace MH (extension):")
    print("  empirical:",
          {h: round(mc_counts.get(h, 0) / N, 4) for h in support})
    print("  bits/sample: %.1f   acceptance: %.2f"
          % (chain.bits_per_sample(), chain.acceptance_rate()))
    ess = effective_sample_size([float(h) for h in chain.extract("h")])
    print("  effective sample size: %.0f of %d (correlated draws)"
          % (ess, N))

    chains = [
        [float(h) for h in MHSampler(program, seed=seed).run(
            1000, burn_in=200).extract("h")]
        for seed in (11, 12, 13, 14)
    ]
    print("  R-hat over 4 chains: %.4f (≈1 means mixed)"
          % gelman_rubin(chains))
    print()
    print("Shape: MCMC cuts bits/sample by an order of magnitude under")
    print("rare conditioning, at the price of correlation (ESS < n) and")
    print("no equidistribution certificate -- exactly the trade the")
    print("paper's future-work section anticipates.")


if __name__ == "__main__":
    main()
