#!/usr/bin/env python3
"""Quickstart: write a cpGCL program, compile it, sample it, check it.

Covers the whole public API surface in one small scenario:

1. parse a program from concrete syntax;
2. compute its exact posterior with the cwp semantics (Definition 2.4);
3. compile it to an interaction-tree sampler (Definition 3.13);
4. draw samples in the random bit model and compare against the exact
   posterior (the content of the equidistribution theorem, Theorem 4.2).
"""

from repro import State, collect, cpgcl_to_itree, cwp, parse_program, pretty

SOURCE = """
# A biased random walk with conditioning: step right with probability
# 2/3 until four steps have been taken, then observe that we ended at
# an even position.
pos := 0;
steps := 0;
while steps < 4 {
    { pos := pos + 1; } [2/3] { pos := pos - 1; };
    steps := steps + 1;
}
observe even(pos);
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("Program (pretty-printed back from the AST):\n")
    print(pretty(program))
    print()

    # Exact inference: posterior P(pos = k | pos even) for each k.
    sigma = State()
    exact = {}
    for k in (-4, -2, 0, 2, 4):
        value = cwp(program, lambda s, k=k: 1 if s["pos"] == k else 0, sigma)
        exact[k] = float(value)
    print("Exact posterior over pos (cwp):", {k: round(v, 4) for k, v in exact.items()})

    # Compile to a sampler in the random bit model and validate.
    sampler = cpgcl_to_itree(program, sigma)
    samples = collect(sampler, 20000, seed=7, extract=lambda s: s["pos"])
    print("Sampled mean of pos: %.4f" % samples.mean())
    print("Mean fair bits per sample: %.2f" % samples.mean_bits())
    counts = samples.counts()
    empirical = {k: counts.get(k, 0) / len(samples) for k in exact}
    print("Empirical posterior:           ",
          {k: round(v, 4) for k, v in empirical.items()})
    worst = max(abs(exact[k] - empirical[k]) for k in exact)
    print("Max absolute deviation: %.4f (should shrink as 1/sqrt(n))" % worst)


if __name__ == "__main__":
    main()
