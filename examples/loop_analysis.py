#!/usr/bin/env python3
"""Inspecting a loop's Markov chain and running time.

Demonstrates the exact-analysis side of the library: extract the
finite-state Markov chain of the dueling-coins loop, query its exact
termination probability / expected iterations / exit distribution, and
compute the program's expected running time (the ert transformer) and
the compiled sampler's exact expected bit consumption.
"""

from fractions import Fraction

from repro import State, compile_cpgcl, debias, dueling_coins, elim_choices
from repro.cftree.analysis import expected_bits
from repro.cftree.viz import render_cftree
from repro.semantics.chain import extract_chain
from repro.semantics.ert import ert


def main() -> None:
    p = Fraction(2, 3)
    program = dueling_coins(p)
    loop = program.second.second  # a := false; b := false; <loop>

    print("Dueling coins (p = %s): the loop's Markov chain\n" % p)
    chain = extract_chain(loop, State(a=False, b=False))
    print("reachable loop states: %d" % len(chain.states))
    for state in chain.states:
        continues = sum(chain.transitions[state].values(), Fraction(0))
        print("  %s  P(stay) = %s" % (state, continues))
    print("termination probability: %s" % chain.termination_probability())
    print("expected iterations:     %s" % chain.expected_iterations())
    print("exit distribution:")
    for state, probability in sorted(
        chain.exit_distribution().items(), key=str
    ):
        print("  %s : %s" % (state, probability))

    print("\nCost analyses:")
    print("  expected running time (ert, source steps): %s"
          % ert(program, sigma=State()))
    tree = debias(elim_choices(compile_cpgcl(program, State())))
    print("  expected random bits (compiled sampler):   %s"
          % expected_bits(tree))

    print("\nDebiased Bernoulli(2/3) building block:")
    from repro.cftree.uniform import bernoulli_tree

    print(render_cftree(bernoulli_tree(p), unfold_fix=True))


if __name__ == "__main__":
    main()
