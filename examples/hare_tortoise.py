#!/usr/bin/env python3
"""Bayesian inference over a race (Figure 9, Section 5.4).

A tortoise starts with a uniform head start and plods forward one unit
per time step; a hare starts at zero and, with probability 2/5 per step,
leaps a discrete-Gaussian(4, 2^2) distance.  Conditioning the terminal
state on properties of the race duration and querying the tortoise's
head start performs posterior ("inverse") inference: observing a long
race makes large head starts more likely.
"""

from repro import State, Var, collect, cpgcl_to_itree, hare_tortoise
from repro.lang.expr import Lit

QUERIES = [
    ("true", Lit(True)),
    ("time <= 10", Var("time") <= 10),
    ("time >= 10", Var("time") >= 10),
    ("time >= 20", Var("time") >= 20),
]

# The conditioned queries reject most runs (time >= 20 keeps ~1 in 7),
# so per-sample cost is high; 1000 samples keep the example interactive.
# The paper's Figure 9b uses 100k (see benchmarks/bench_fig9b_*.py).
SAMPLES = 1000


def main() -> None:
    print("Posterior over the tortoise's head start t0 (Figure 9b):\n")
    print("%-12s %8s %8s %10s %10s" % ("P", "mu_t0", "sigma_t0", "mu_bit", "sigma_bit"))
    for label, predicate in QUERIES:
        program = hare_tortoise(predicate)
        sampler = cpgcl_to_itree(program, State())
        samples = collect(sampler, SAMPLES, seed=3, extract=lambda s: s["t0"])
        print(
            "%-12s %8.2f %8.2f %10.2f %10.2f"
            % (label, samples.mean(), samples.std(),
               samples.mean_bits(), samples.std_bits())
        )
    print("\nConditioning on longer races shifts the posterior toward")
    print("larger head starts and burns more entropy on rejections.")


if __name__ == "__main__":
    main()
