#!/usr/bin/env python3
"""Exact inference with certified interval bounds (repro.inference).

The paper's pipeline answers posterior queries by *sampling*; Section 6
notes that exact inference is unsupported.  This example shows the
extension that closes that gap: best-first path enumeration of the
compiled CF tree with exact rational mass bookkeeping, producing
posterior bounds that are *guaranteed* to contain the true posterior --
no sampling noise, no convergence diagnostics.

Three scenarios, in increasing order of difficulty for enumeration:

1. the n-sided die (bounded rejection loop);
2. geometric primes (unbounded non-i.i.d. loop + conditioning), where
   the bounds contract geometrically and are compared against both the
   closed-form pmf and a sampling run;
3. a program that diverges with probability 1/2, where the slack
   provably cannot contract below the divergence mass -- bounds report
   exactly what is knowable.
"""

from fractions import Fraction

from repro import (
    Assign,
    Choice,
    Seq,
    Skip,
    State,
    Var,
    While,
    collect,
    cpgcl_to_itree,
    geometric_primes,
    infer_posterior,
    n_sided_die,
    refine_until,
)
from repro.stats.distributions import geometric_primes_pmf


def die_bounds() -> None:
    print("=== 1. six-sided die: bounds contract around 1/6 ===")
    for budget in (50, 500, 5000):
        posterior = infer_posterior(n_sided_die(6), max_expansions=budget)
        bounds = posterior.marginal("x").get(1)
        if bounds is None:
            print("budget %5d: outcome 1 not discovered yet" % budget)
            continue
        print(
            "budget %5d: P(x=1) in [%.6f, %.6f]  (width %.2e)"
            % (budget, bounds.lo, bounds.hi, bounds.width)
        )
    print()


def primes_bounds() -> None:
    print("=== 2. geometric primes (p=2/3): bounds vs closed form vs sampling ===")
    program = geometric_primes(Fraction(2, 3))
    posterior = refine_until(program, Fraction(1, 10**6))
    closed = geometric_primes_pmf(Fraction(2, 3))
    samples = collect(
        cpgcl_to_itree(program, State()), 5000, seed=11,
        extract=lambda s: s["h"],
    )
    counts = samples.counts()
    marginal = posterior.marginal("h")
    print("  h   bounds [lo, hi]             closed-form   empirical(5k)")
    for h in (2, 3, 5, 7, 11, 13):
        bounds = marginal[h]
        print(
            "  %-3d [%.8f, %.8f]   %.8f    %.4f"
            % (h, bounds.lo, bounds.hi, closed[h], counts.get(h, 0) / len(samples))
        )
    print("  slack (unresolved mass): %.2e" % posterior.slack)
    print("  every closed-form value lies inside its bounds: %s" % all(
        marginal[h].contains_float(closed[h], slack=1e-9)
        for h in (2, 3, 5, 7, 11, 13)
    ))
    print()


def divergence_bounds() -> None:
    print("=== 3. divergence: slack is honest about what is unknowable ===")
    # With probability 1/2 enter an infinite loop; otherwise x := 1.
    program = Choice(
        Fraction(1, 2),
        Seq(Assign("spin", True), While(Var("spin"), Skip())),
        Assign("x", 1),
    )
    for budget in (10, 100, 1000):
        posterior = infer_posterior(program, max_expansions=budget)
        print(
            "budget %4d: slack %.4f (floor 0.5 = divergence mass)"
            % (budget, posterior.slack)
        )
    print()


def main() -> None:
    die_bounds()
    primes_bounds()
    divergence_bounds()


if __name__ == "__main__":
    main()
