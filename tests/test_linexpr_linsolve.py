"""Unit tests for symbolic linear expressions and the exact loop solver."""

from fractions import Fraction

import pytest

from repro.semantics.algebra import EXT_REAL, LinExprAlgebra
from repro.semantics.extreal import INFINITY, ExtReal
from repro.semantics.linexpr import LinExpr, Unknown
from repro.semantics.linsolve import SingularSystem, solve_monotone


class TestLinExpr:
    def test_add_merges_coefficients(self):
        x, y = Unknown("x"), Unknown("y")
        a = LinExpr(ExtReal(1), {x: Fraction(1, 2)})
        b = LinExpr(ExtReal(2), {x: Fraction(1, 4), y: Fraction(1)})
        total = a.add(b)
        assert total.const == ExtReal(3)
        assert total.coeffs[x] == Fraction(3, 4)
        assert total.coeffs[y] == Fraction(1)

    def test_scale(self):
        x = Unknown()
        expr = LinExpr(ExtReal(2), {x: Fraction(1, 2)}).scale(Fraction(1, 2))
        assert expr.const == ExtReal(1)
        assert expr.coeffs[x] == Fraction(1, 4)

    def test_scale_by_zero_clears(self):
        x = Unknown()
        expr = LinExpr(ExtReal(2), {x: Fraction(1)}).scale(Fraction(0))
        assert expr.is_constant
        assert expr.const == ExtReal(0)

    def test_zero_coefficients_dropped(self):
        x = Unknown()
        assert LinExpr(ExtReal(0), {x: Fraction(0)}).is_constant

    def test_nested_base_algebra(self):
        # LinExpr over LinExpr: the nested-loop case.
        inner = LinExprAlgebra(EXT_REAL)
        outer = LinExprAlgebra(inner)
        x = Unknown()
        expr = outer.lift(inner.from_scalar(Fraction(1, 2)))
        doubled = outer.add(expr, expr)
        assert doubled.const.const == ExtReal(1)
        assert outer.scale(Fraction(1, 2), doubled).const.const == ExtReal(
            Fraction(1, 2)
        )
        assert x not in doubled.coeffs


class TestSolveMonotone:
    def _solve_single(self, c, d, default_one=False):
        solution = solve_monotone([[Fraction(c)]], default_one)
        return solution.coeffs[0][0] * d + solution.ones[0]

    def test_geometric_restart(self):
        # X = 1/4 X + d  =>  X = (4/3) d.
        value = self._solve_single(Fraction(1, 4), Fraction(3, 4))
        assert value == Fraction(1)

    def test_divergent_least_fixpoint(self):
        # X = X + 0: least solution is 0.
        solution = solve_monotone([[Fraction(1)]], default_one=False)
        assert solution.coeffs[0][0] == 0
        assert solution.ones[0] == 0

    def test_divergent_greatest_fixpoint(self):
        # X = X: greatest solution bounded by 1 is 1.
        solution = solve_monotone([[Fraction(1)]], default_one=True)
        assert solution.ones[0] == Fraction(1)

    def test_two_state_chain(self):
        # X0 = 1/2 X1 + d0; X1 = 1/2 X0 + d1.
        c = [[Fraction(0), Fraction(1, 2)], [Fraction(1, 2), Fraction(0)]]
        solution = solve_monotone(c, default_one=False)
        # X0 = (4/3) d0 + (2/3) d1.
        assert solution.coeffs[0] == [Fraction(4, 3), Fraction(2, 3)]

    def test_partially_divergent_system(self):
        # X0 = 1/2 X1 + d0; X1 = X1 (divergent class).
        c = [[Fraction(0), Fraction(1, 2)], [Fraction(0), Fraction(1)]]
        least = solve_monotone(c, default_one=False)
        assert least.coeffs[0][0] == Fraction(1)
        assert least.ones[0] == 0  # X1 contributes nothing
        greatest = solve_monotone(c, default_one=True)
        assert greatest.ones[0] == Fraction(1, 2)  # X1 = 1 flows in

    def test_solution_map_nonnegative(self):
        c = [
            [Fraction(1, 3), Fraction(1, 3)],
            [Fraction(1, 4), Fraction(1, 2)],
        ]
        solution = solve_monotone(c, default_one=False)
        for row in solution.coeffs:
            assert all(q >= 0 for q in row)

    def test_infinite_exit_values_flow_through(self):
        # Exact solving must combine ExtReal exit values, including inf.
        solution = solve_monotone([[Fraction(1, 2)]], default_one=False)
        value = INFINITY.scale(solution.coeffs[0][0])
        assert value.is_infinite
