"""Failure-injection tests: every layer fails loudly, not wrongly."""

from fractions import Fraction

import pytest

from repro.bits.source import BitsExhausted, ConstantBits, ReplayBits
from repro.cftree.compile import compile_cpgcl
from repro.itree.unfold import cpgcl_to_itree
from repro.lang.errors import ProbabilityRangeError, UniformRangeError
from repro.lang.expr import Lit, Opaque, Var
from repro.lang.state import State
from repro.lang.sugar import flip, geometric_primes
from repro.lang.syntax import Assign, Choice, Observe, Seq, Uniform, While
from repro.sampler.run import FuelExhausted, run_itree
from repro.semantics.cwp import ConditioningError, cwp
from repro.semantics.fixpoint import ConvergenceError, LoopOptions
from repro.semantics.wp import wp

S0 = State()


class TestBitExhaustion:
    def test_sampler_surfaces_exhaustion(self):
        tree = cpgcl_to_itree(geometric_primes(Fraction(1, 2)), S0)
        with pytest.raises(BitsExhausted):
            # One bit cannot finish an attempt that needs at least two.
            run_itree(tree, ReplayBits([True]))

    def test_partial_replay_reports_consumption(self):
        source = ReplayBits([True, False, True])
        tree = cpgcl_to_itree(flip("b", Fraction(1, 2)), S0)
        run_itree(tree, source)
        assert source.consumed == 1
        assert source.remaining == 2


class TestFuel:
    def test_adversarial_stream_diverges_gracefully(self):
        # The all-heads stream keeps the primes loop alive forever:
        # divergence has probability 0 but is expressible, and the fuel
        # bound must catch it rather than hang.
        tree = cpgcl_to_itree(geometric_primes(Fraction(1, 2)), S0)
        with pytest.raises(FuelExhausted):
            run_itree(tree, ConstantBits(True), fuel=10000)


class TestDynamicSideConditions:
    def test_runtime_probability_violation(self):
        command = Choice(Var("p"), Assign("x", Lit(1)), Assign("x", Lit(0)))
        bad_state = State(p=Fraction(7, 2))
        with pytest.raises(ProbabilityRangeError):
            compile_cpgcl(command, bad_state)
        with pytest.raises(ProbabilityRangeError):
            wp(command, lambda s: 1, bad_state)

    def test_runtime_uniform_violation(self):
        command = Uniform(Var("n"), "m")
        with pytest.raises(UniformRangeError):
            compile_cpgcl(command, State(n=-3))

    def test_state_dependent_violation_mid_loop(self):
        # The probability expression leaves [0, 1] only at k = 2: the
        # error must surface during loop evaluation, not construction.
        command = Seq(
            Assign("k", Lit(0)),
            While(
                Var("k") < 3,
                Choice(
                    Var("k") * Var("k") / 2,  # 0, 1/2, 2 <- violation
                    Assign("k", Var("k") + 1),
                    Assign("k", Var("k") + 1),
                ),
            ),
        )
        with pytest.raises(ProbabilityRangeError):
            wp(command, lambda s: 1, S0)


class TestConditioning:
    def test_contradictory_observation(self):
        command = Seq(Assign("x", Lit(1)), Observe(Var("x") < 0))
        with pytest.raises(ConditioningError):
            cwp(command, lambda s: 1, S0)

    def test_contradictory_sampler_spins(self):
        command = Observe(Lit(False))
        tree = cpgcl_to_itree(command, S0)
        with pytest.raises(FuelExhausted):
            run_itree(tree, ConstantBits(True), fuel=1000)


class TestConvergenceBudget:
    def test_non_as_terminating_loop_iterate(self):
        # while true do skip has no finite iteration certificate; with
        # the exact strategy it solves instantly, but iterate must give
        # up explicitly rather than loop forever.
        command = While(Lit(True), Assign("x", Var("x") + 1))
        with pytest.raises(ConvergenceError):
            wp(
                command, lambda s: 1, S0,
                options=LoopOptions(strategy="iterate", max_rounds=100),
            )


class TestOpaqueEscapeHatch:
    def test_opaque_type_error_surfaces(self):
        bad = Opaque(lambda s: "zap", label="bad")
        command = Assign("x", bad)
        from repro.lang.errors import EvalError

        with pytest.raises(EvalError):
            compile_cpgcl(command, S0)
