"""Tests for the high-assurance uniform package (Section 5.3)."""

import pytest

from repro.bits.source import ReplayBits, SystemBits
from repro.stats.distributions import uniform_pmf
from repro.uniform.api import ZarUniform, uniform_int, uniform_ints

from statistical import assert_pmf


class TestZarUniform:
    def test_range_validation(self):
        with pytest.raises(ValueError):
            ZarUniform(0)

    def test_construction_validates_lemma(self):
        # validate=True checks every outcome's twp mass exactly.
        die = ZarUniform(6, validate=True)
        assert die.n == 6

    def test_samples_in_range(self):
        die = ZarUniform(10, seed=0)
        values = die.samples(500)
        assert all(0 <= v < 10 for v in values)

    def test_seeded_determinism(self):
        assert ZarUniform(6, seed=5).samples(50) == ZarUniform(6, seed=5).samples(50)

    def test_explicit_source(self):
        die = ZarUniform(4, validate=True)
        # uniform_tree(4) is two fair bits; True selects the left branch
        # (the paper's "heads"), so True,False lands on outcome 1.
        assert die.sample(ReplayBits([True, False])) == 1
        assert die.sample(ReplayBits([False, True])) == 2

    def test_bits_consumed_metered(self):
        die = ZarUniform(8, seed=1)
        die.samples(10)
        assert die.bits_consumed == 30  # exactly 3 bits each, no rejection

    def test_stream(self):
        die = ZarUniform(6, seed=2)
        stream = die.stream()
        values = [next(stream) for _ in range(20)]
        assert len(values) == 20

    def test_distribution_uniform_cp(self):
        # Calibrated check: every outcome's exact 1/6 mass must lie in
        # its Clopper-Pearson interval (no ad-hoc 0.02 tolerance).
        die = ZarUniform(6, seed=3)
        values = die.samples(12000)
        assert_pmf(values, uniform_pmf(6))

    def test_batch_distribution_uniform_cp(self):
        # The vectorized batch path samples the same distribution.
        die = ZarUniform(6)
        values = die.batch(12000, seed=4)
        assert_pmf(values, uniform_pmf(6))
        assert die.bits_consumed == 0  # batch does not meter the source


class TestConvenience:
    def test_uniform_int(self):
        assert 0 <= uniform_int(12, seed=0) < 12

    def test_uniform_ints(self):
        values = uniform_ints(5, 100, seed=0)
        assert len(values) == 100
        assert set(values) <= set(range(5))
