"""End-to-end statistical validation on the paper's programs.

These are the test-suite versions of the Section 5 experiments, at
reduced sample counts with fixed seeds and 5-sigma thresholds; the
benchmark suite runs the same programs at full scale.

Sampling runs on the batch engine (which the differential suite pins
bit-for-bit to the trampoline) so the whole file fits the fast tier.
"""

from fractions import Fraction

import pytest

from repro.engine import BatchSampler
from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import (
    bernoulli_exponential,
    dueling_coins,
    gaussian,
    geometric_primes,
    laplace,
    n_sided_die,
)
from repro.sampler.record import collect
from repro.stats.distributions import (
    bernoulli_exp_pmf,
    discrete_gaussian_pmf,
    discrete_laplace_pmf,
    geometric_primes_pmf,
    uniform_pmf,
)
from repro.stats.divergence import tv_distance
from repro.stats.empirical import empirical_pmf

S0 = State()
N = 6000


def sample_variable(program, variable, n=N, seed=0):
    sampler = BatchSampler.from_command(program, S0)
    return collect(sampler, n, seed=seed, extract=lambda s: s[variable])


class TestDuelingCoins:
    @pytest.mark.parametrize("p", [Fraction(2, 3), Fraction(4, 5)])
    def test_posterior_fair(self, p):
        samples = sample_variable(dueling_coins(p), "a", seed=101)
        assert abs(samples.mean() - 0.5) < 5 * 0.5 / (N ** 0.5)

    def test_entropy_orders_with_bias_skew(self):
        mild = sample_variable(dueling_coins(Fraction(2, 3)), "a", n=1500,
                               seed=102)
        extreme = sample_variable(dueling_coins(Fraction(1, 20)), "a", n=600,
                                  seed=103)
        assert extreme.mean_bits() > 5 * mild.mean_bits()


class TestGeometricPrimes:
    def test_posterior_tv_small(self):
        p = Fraction(2, 3)
        samples = sample_variable(geometric_primes(p), "h", seed=104)
        tv = tv_distance(empirical_pmf(samples.values),
                         geometric_primes_pmf(p))
        assert tv < 0.03

    def test_support_is_prime(self):
        from repro.lang.builtins import is_prime

        samples = sample_variable(
            geometric_primes(Fraction(1, 2)), "h", n=2000, seed=105
        )
        assert all(is_prime(h) for h in samples.values)


class TestDie:
    def test_distribution(self):
        samples = sample_variable(n_sided_die(6), "x", seed=106)
        tv = tv_distance(empirical_pmf(samples.values), uniform_pmf(6, 1))
        assert tv < 0.03

    def test_near_entropy_optimal(self):
        samples = sample_variable(n_sided_die(6), "x", n=3000, seed=107)
        assert abs(samples.mean_bits() - 11 / 3) < 0.15


class TestAppendixC:
    def test_bernoulli_exponential(self):
        gamma = Fraction(3, 2)
        samples = sample_variable(
            bernoulli_exponential("out", gamma), "out", seed=108
        )
        true = bernoulli_exp_pmf(gamma)[True]
        assert abs(samples.mean() - true) < 5 * 0.5 / (N ** 0.5)

    def test_laplace(self):
        samples = sample_variable(laplace("out", 2, 1), "out", n=4000,
                                  seed=109)
        tv = tv_distance(empirical_pmf(samples.values),
                         discrete_laplace_pmf(2, 1))
        assert tv < 0.04

    def test_gaussian(self):
        samples = sample_variable(gaussian("z", 0, 1), "z", n=3000, seed=110)
        tv = tv_distance(empirical_pmf(samples.values),
                         discrete_gaussian_pmf(0, 1))
        assert tv < 0.05
        assert abs(samples.mean()) < 0.12


class TestConditionedRace:
    @pytest.mark.slow
    def test_hare_tortoise_shifts_posterior(self):
        # ~2 minutes: each race trajectory visits mostly-fresh loop
        # states, so per-state compilation dominates on either driver.
        from repro.lang.sugar import hare_tortoise

        unconditioned = sample_variable(
            hare_tortoise(Lit(True)), "t0", n=400, seed=111
        )
        long_race = sample_variable(
            hare_tortoise(Var("time") >= 10), "t0", n=400, seed=112
        )
        # Longer races imply larger head starts (Figure 9b's 4.49 -> 6.18).
        assert long_race.mean() > unconditioned.mean() + 0.7
        assert long_race.mean_bits() > unconditioned.mean_bits()
