"""Unit tests for interaction trees and combinators (Section 3.4)."""

import pytest

from repro.bits.source import ReplayBits
from repro.itree.combinators import bind, fmap, iter_itree
from repro.itree.itree import ITree, Left, Ret, Right, Tau, Vis
from repro.sampler.run import run_itree


def run(tree, bits=()):
    return run_itree(tree, ReplayBits(bits))


class TestNodes:
    def test_ret(self):
        assert run(Ret(42)) == 42

    def test_tau_is_lazy(self):
        forced = []

        def thunk():
            forced.append(True)
            return Ret(1)

        tree = Tau(thunk)
        assert not forced
        assert run(tree) == 1
        assert forced == [True]

    def test_vis_consumes_bit(self):
        tree = Vis(lambda bit: Ret("heads" if bit else "tails"))
        assert run(tree, [True]) == "heads"
        assert run(tree, [False]) == "tails"

    def test_sum_injections(self):
        assert Left(()) == Left(())
        assert Right(3) == Right(3)
        assert Left(()) != Right(())


class TestBind:
    def test_ret_feeds_continuation(self):
        tree = bind(Ret(2), lambda v: Ret(v * 10))
        assert run(tree) == 20

    def test_bind_through_vis(self):
        tree = bind(
            Vis(lambda bit: Ret(1 if bit else 0)),
            lambda v: Ret(v + 100),
        )
        assert run(tree, [True]) == 101

    def test_bind_through_tau_stays_lazy(self):
        tree = bind(Tau(lambda: Ret(1)), lambda v: Ret(v + 1))
        assert isinstance(tree, Tau)
        assert run(tree) == 2

    def test_monad_associativity_observable(self):
        k1 = lambda v: Vis(lambda b: Ret(v + (1 if b else 0)))
        k2 = lambda v: Ret(v * 2)
        base = Vis(lambda b: Ret(10 if b else 20))
        left = bind(bind(base, k1), k2)
        right = bind(base, lambda v: bind(k1(v), k2))
        for bits in ([True, True], [True, False], [False, True]):
            assert run(left, list(bits)) == run(right, list(bits))

    def test_fmap(self):
        tree = fmap(Vis(lambda b: Ret(1 if b else 0)), lambda v: -v)
        assert run(tree, [True]) == -1


class TestIter:
    def test_countdown(self):
        # Loop from 3 down to 0 without consuming bits.
        def body(i):
            if i == 0:
                return Ret(Right("done"))
            return Ret(Left(i - 1))

        assert run(iter_itree(body, 3)) == "done"

    def test_iteration_consumes_bits(self):
        # Keep flipping until the first True; return the flip count.
        def body(count):
            return Vis(
                lambda bit: Ret(Right(count)) if bit else Ret(Left(count + 1))
            )

        tree = iter_itree(body, 0)
        assert run(tree, [False, False, True]) == 2

    def test_tau_guard_prevents_eager_loop(self):
        # An everlasting loop must still *construct* in finite time.
        tree = iter_itree(lambda i: Ret(Left(i)), 0)
        assert isinstance(tree, Tau)

    def test_bad_protocol_rejected(self):
        tree = iter_itree(lambda i: Ret("neither"), 0)
        with pytest.raises(TypeError):
            run(tree)
