"""Tests for ITree generation (Definitions 3.11-3.13)."""

from fractions import Fraction

import pytest

from repro.bits.source import ReplayBits, SystemBits
from repro.cftree.tree import Choice, Fail, Fix, LOOPBACK, Leaf
from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.itree.itree import Left, Ret, Right
from repro.itree.unfold import (
    BiasedChoiceError,
    cpgcl_to_itree,
    open_pipeline,
    tie_itree,
    to_itree_open,
)
from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import flip, geometric_primes
from repro.lang.syntax import Observe, Seq
from repro.sampler.run import run_itree, run_with_bits

S0 = State()


class TestToItreeOpen:
    def test_leaf_is_inr(self):
        assert run_with_bits(to_itree_open(Leaf(7)), [])[0] == Right(7)

    def test_fail_is_inl(self):
        # Figure 5a: observation failure is a *terminal* of the open tree.
        assert run_with_bits(to_itree_open(Fail()), [])[0] == Left(())

    def test_fair_choice_consumes_one_bit(self):
        tree = to_itree_open(Choice(Fraction(1, 2), Leaf("L"), Leaf("R")))
        value, used = run_with_bits(tree, [True])
        assert value == Right("L") and used == 1
        value, used = run_with_bits(tree, [False])
        assert value == Right("R") and used == 1

    def test_biased_choice_rejected(self):
        # Definition 3.11 is stated for unbiased trees only.
        with pytest.raises(BiasedChoiceError):
            run_with_bits(
                to_itree_open(Choice(Fraction(2, 3), Leaf(1), Leaf(0))), [True]
            )

    def test_fix_loops_until_exit(self):
        tree = to_itree_open(uniform_tree(3))
        # uniform_tree(3) pairs leaves as ((0,1), (2, LOOPBACK)) and a
        # True bit selects the left branch (the paper's "heads"), so the
        # all-False path reaches the loopback and restarts the flips.
        value, used = run_with_bits(tree, [False, False, False, True])
        assert value == Right(2)
        assert used == 4


class TestTieItree:
    def test_restarts_on_failure(self):
        # Flip fair; observe it came up heads: tails paths restart.
        command = Seq(flip("b", Fraction(1, 2)), Observe(Var("b")))
        tied = cpgcl_to_itree(command, S0)
        value, used = run_with_bits(tied, [False, False, True])
        assert value["b"] is True
        assert used == 3  # two rejected attempts consumed a bit each

    def test_success_passes_through(self):
        command = Seq(flip("b", Fraction(1, 2)), Observe(Var("b")))
        tied = cpgcl_to_itree(command, S0)
        value, used = run_with_bits(tied, [True])
        assert value["b"] is True and used == 1

    def test_tie_of_pure_success(self):
        tied = tie_itree(Ret(Right("ok")))
        assert run_with_bits(tied, [])[0] == "ok"


class TestPipeline:
    def test_samples_are_terminal_states(self):
        tree = cpgcl_to_itree(geometric_primes(Fraction(1, 2)), S0)
        value = run_itree(tree, SystemBits(0))
        assert isinstance(value, State)
        from repro.lang.builtins import is_prime

        assert is_prime(value["h"])

    def test_eliminate_flag_preserves_distribution(self):
        command = geometric_primes(Fraction(1, 2))
        with_elim = cpgcl_to_itree(command, S0, eliminate=True)
        without = cpgcl_to_itree(command, S0, eliminate=False)
        a = [run_itree(with_elim, SystemBits(7))["h"] for _ in range(500)]
        b = [run_itree(without, SystemBits(7))["h"] for _ in range(500)]
        # Same seed need not give identical streams (tree shapes differ),
        # but means should agree loosely.
        assert abs(sum(a) / 500 - sum(b) / 500) < 0.6

    def test_open_pipeline_exposes_failure(self):
        command = Seq(flip("b", Fraction(1, 2)), Observe(Var("b")))
        opened = open_pipeline(command, S0)
        assert run_with_bits(opened, [False])[0] == Left(())

    def test_deterministic_replay(self):
        tree = cpgcl_to_itree(geometric_primes(Fraction(1, 2)), S0)
        bits = [bool((i * 7 + 3) % 5 % 2) for i in range(200)]
        first = run_with_bits(tree, bits)
        second = run_with_bits(tree, bits)
        assert first == second


class TestSamplerAsFunctionOnCantorSpace:
    def test_result_depends_only_on_consumed_prefix(self):
        tree = tie_itree(to_itree_open(bernoulli_tree(Fraction(2, 3))))
        value, used = run_with_bits(tree, [False, True, True, False])
        extended = [False, True, True, False] + [True] * 8
        value2, used2 = run_with_bits(tree, extended)
        assert value == value2 and used == used2
