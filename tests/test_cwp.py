"""Unit tests for conditional weakest pre-expectations (Definition 2.4)."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import flip, geometric_primes
from repro.lang.syntax import Assign, Choice, Observe, Seq, Skip
from repro.semantics.cwp import ConditioningError, cwp, invariant_sum_check
from repro.semantics.expectation import indicator
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import LoopOptions
from tests.strategies import loop_free_command, states

S0 = State()


class TestConditioning:
    def test_unconditioned_program(self):
        command = flip("b", Fraction(2, 3))
        value = cwp(command, indicator(lambda s: s["b"] is True), S0)
        assert value == ExtReal(Fraction(2, 3))

    def test_bayes_rule(self):
        # Flip two fair coins, observe at least one heads; P(both) = 1/3.
        command = Seq(
            flip("a", Fraction(1, 2)),
            Seq(
                flip("b", Fraction(1, 2)),
                Observe(Var("a") | Var("b")),
            ),
        )
        both = cwp(
            command,
            indicator(lambda s: s["a"] is True and s["b"] is True),
            S0,
        )
        assert both == ExtReal(Fraction(1, 3))

    def test_contradictory_observation(self):
        command = Observe(Lit(False))
        with pytest.raises(ConditioningError):
            cwp(command, lambda s: 1, S0)

    def test_conditioning_renormalizes(self):
        # Posterior probabilities sum to 1 after conditioning.
        command = Seq(
            Choice(
                Fraction(1, 4),
                Assign("x", Lit(1)),
                Choice(Fraction(1, 3), Assign("x", Lit(2)), Assign("x", Lit(3))),
            ),
            Observe(Var("x") < 3),
        )
        p1 = cwp(command, indicator(lambda s: s["x"] == 1), S0)
        p2 = cwp(command, indicator(lambda s: s["x"] == 2), S0)
        assert p1 + p2 == ExtReal(1)
        assert p1 == ExtReal(Fraction(1, 2))  # 1/4 vs (3/4)(1/3) = 1/4

    @pytest.mark.slow
    def test_geometric_primes_posterior_sums_to_one(self):
        # ~6s: 40-term exact posterior sum at 1e-10 loop tolerance.
        command = geometric_primes(Fraction(1, 2))
        options = LoopOptions(tol=Fraction(1, 10**10))
        total = cwp(
            command, indicator(lambda s: s["h"] < 40), S0, options=options
        )
        assert total.distance(ExtReal(1)) <= ExtReal(Fraction(1, 10**5))


class TestInvariantSum:
    """Section 2.2: wp_b c f + wlp_{not b} c (1 - f) = 1."""

    def test_on_observe(self):
        total = invariant_sum_check(
            Observe(Var("x") < 1), lambda s: Fraction(1, 2), State(x=5)
        )
        assert total == ExtReal(1)

    def test_on_choice(self):
        command = Choice(Fraction(1, 3), Skip(), Observe(Lit(False)))
        total = invariant_sum_check(command, lambda s: Fraction(1, 4), S0)
        assert total == ExtReal(1)

    def test_flag_variant(self):
        command = Choice(Fraction(1, 3), Skip(), Observe(Lit(False)))
        total = invariant_sum_check(
            command, lambda s: Fraction(1, 4), S0, flag=True
        )
        assert total == ExtReal(1)

    @given(loop_free_command(2), states)
    def test_random_loop_free(self, command, sigma):
        total = invariant_sum_check(command, lambda s: Fraction(1, 2), sigma)
        assert total == ExtReal(1)
