"""Unit tests for derived commands and paper programs (repro.lang.sugar)."""

from fractions import Fraction

import pytest

from repro.lang.expr import Lit
from repro.lang.state import State
from repro.lang.sugar import (
    bernoulli_exponential,
    bernoulli_exponential_0_1,
    dueling_coins,
    flip,
    gaussian,
    geometric_primes,
    hare_tortoise,
    laplace,
    n_sided_die,
)
from repro.lang.syntax import Assign, Choice
from repro.lang.typecheck import check_program


class TestFlip:
    def test_shape(self):
        command = flip("x", Fraction(2, 3))
        assert isinstance(command, Choice)
        assert command.prob == Lit(Fraction(2, 3))
        assert command.left == Assign("x", True)
        assert command.right == Assign("x", False)


class TestPaperProgramsWellFormed:
    """Every paper program passes the static checker without errors."""

    @pytest.mark.parametrize(
        "program",
        [
            geometric_primes(Fraction(2, 3)),
            dueling_coins(Fraction(4, 5)),
            n_sided_die(6),
            bernoulli_exponential_0_1("out", Fraction(1, 2)),
            bernoulli_exponential("out", Fraction(3, 2)),
            laplace("out", 1, 2),
            gaussian("z", 0, 1),
            hare_tortoise(Lit(True)),
        ],
    )
    def test_checker_ok(self, program):
        report = check_program(program, strict=True)
        assert report.ok

    def test_die_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            n_sided_die(0)

    def test_laplace_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            laplace("out", 0, 2)

    def test_gaussian_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            gaussian("z", 0, 0)


class TestNamespacing:
    def test_helper_variables_prefixed(self):
        program = bernoulli_exponential_0_1("out", Fraction(1, 2), ns="q_")
        assigned = program.assigned_vars()
        assert "q_k" in assigned and "q_a" in assigned
        assert "k" not in assigned and "a" not in assigned

    def test_out_variable_not_prefixed(self):
        program = bernoulli_exponential_0_1("out", Fraction(1, 2), ns="q_")
        assert "out" in program.assigned_vars()


class TestClobberSets:
    def test_laplace_clobbers_documented_variables(self):
        program = laplace("out", 1, 2)
        assigned = program.assigned_vars()
        # The paper's Figure 12 lists the helper variables explicitly.
        for name in ("u", "d", "v", "il", "x", "y", "c", "lp", "k", "a"):
            assert name in assigned, name

    def test_hare_tortoise_main_variables(self):
        program = hare_tortoise(Lit(True))
        assigned = program.assigned_vars()
        for name in ("t0", "tortoise", "hare", "time", "jump"):
            assert name in assigned, name


class TestInitialStateIndependence:
    @pytest.mark.slow
    def test_geometric_primes_resets_nothing_it_reads(self):
        # ~6s: two exact wp solves of the geometric loop.
        # h reads as 0 initially by the unbound-variable convention; the
        # program must not depend on other preexisting bindings.
        from repro.semantics.wp import wp

        program = geometric_primes(Fraction(1, 2))
        value_a = wp(program, lambda s: 1 if s["h"] == 2 else 0, State())
        value_b = wp(
            program, lambda s: 1 if s["h"] == 2 else 0, State(unrelated=9)
        )
        assert value_a == value_b
