"""Tests for debias (Theorems 3.8/3.9) and elim_choices."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.cftree.analysis import is_unbiased
from repro.cftree.compile import compile_cpgcl
from repro.cftree.debias import debias
from repro.cftree.elim import elim_choices
from repro.cftree.semantics import twlp, twp
from repro.cftree.tree import Choice, Fail, Fix, Leaf
from repro.lang.state import State
from repro.lang.sugar import bernoulli_exponential_0_1, dueling_coins, geometric_primes
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import LoopOptions
from repro.verify.theorems import (
    check_debias_sound,
    check_debias_unbiased,
)
from tests.strategies import cf_trees

S0 = State()


class TestDebiasSoundness:
    """Theorem 3.8: tcwp (debias t) f = tcwp t f, exactly."""

    @pytest.mark.slow
    @given(cf_trees(3))
    def test_random_trees(self, tree):
        # twp-level equality is stronger than tcwp-level and avoids the
        # all-Fail division case.
        for f in (lambda v: v, lambda v: 1, lambda v: v * v):
            assert twp(debias(tree), f) == twp(tree, f)
        assert twlp(debias(tree), lambda v: 1) == twlp(tree, lambda v: 1)

    @pytest.mark.slow
    @given(cf_trees(3))
    def test_failure_mass_preserved(self, tree):
        lhs = twp(debias(tree), lambda v: 0, flag=True)
        rhs = twp(tree, lambda v: 0, flag=True)
        assert lhs == rhs

    def test_compiled_program(self):
        tree = compile_cpgcl(dueling_coins(Fraction(2, 3)), S0)
        check_debias_sound(tree, lambda s: 1 if s["a"] is True else 0)

    @pytest.mark.slow
    def test_state_dependent_choices(self):
        # Minutes of exact tcwp: the debiased tree carries a different
        # fair-coin scheme at every loop depth.
        # bernoulli_exponential_0_1 has probability gamma/(k+1): the
        # compiled tree contains a different bias at every loop depth.
        tree = compile_cpgcl(
            bernoulli_exponential_0_1("out", Fraction(1, 2)), S0
        )
        check_debias_sound(tree, lambda s: 1 if s["out"] is True else 0)


class TestDebiasUnbiased:
    """Theorem 3.9: every choice in debias t has bias 1/2."""

    @pytest.mark.slow
    @given(cf_trees(3))
    def test_random_trees(self, tree):
        check_debias_unbiased(tree)

    def test_compiled_primes(self):
        tree = compile_cpgcl(geometric_primes(Fraction(2, 3)), S0)
        assert not is_unbiased(tree)  # biased before debias
        assert is_unbiased(debias(tree), max_states=60)

    def test_already_fair_unchanged_semantics(self):
        tree = Choice(Fraction(1, 2), Leaf(1), Leaf(0))
        assert debias(tree) == tree


class TestElimChoices:
    def test_removes_certain_choices(self):
        tree = Choice(Fraction(1), Leaf(1), Fail())
        assert elim_choices(tree) == Leaf(1)
        tree = Choice(Fraction(0), Leaf(1), Fail())
        assert elim_choices(tree) == Fail()

    def test_coalesces_equal_branches(self):
        tree = Choice(Fraction(1, 3), Leaf(1), Leaf(1))
        assert elim_choices(tree) == Leaf(1)

    def test_recursive(self):
        tree = Choice(
            Fraction(1, 2),
            Choice(Fraction(1), Leaf(1), Leaf(2)),
            Choice(Fraction(0), Leaf(2), Leaf(1)),
        )
        assert elim_choices(tree) == Leaf(1)

    @pytest.mark.slow
    @given(cf_trees(3))
    def test_preserves_twp(self, tree):
        reduced = elim_choices(tree)
        for f in (lambda v: v, lambda v: 1):
            assert twp(reduced, f) == twp(tree, f)
        assert twp(reduced, lambda v: 0, flag=True) == twp(
            tree, lambda v: 0, flag=True
        )

    def test_lazy_through_fix(self):
        tree = compile_cpgcl(dueling_coins(Fraction(2, 3)), S0)
        reduced = elim_choices(tree)
        assert isinstance(reduced, Fix)
        f = lambda s: 1 if s["a"] is True else 0
        assert twp(reduced, f) == twp(tree, f) == ExtReal(Fraction(1, 2))


class TestPipelineComposition:
    def test_full_pipeline_preserves_semantics(self):
        command = dueling_coins(Fraction(4, 5))
        tree = compile_cpgcl(command, S0)
        processed = debias(elim_choices(tree))
        f = lambda s: 1 if s["a"] is True else 0
        assert twp(processed, f) == ExtReal(Fraction(1, 2))
        assert is_unbiased(processed, max_states=100)

    @pytest.mark.slow
    def test_primes_pipeline_iterative(self):
        # ~30s: exact twp fixpoints of the debiased primes pipeline.
        command = geometric_primes(Fraction(2, 3))
        options = LoopOptions(tol=Fraction(1, 10**10))
        tree = compile_cpgcl(command, S0)
        processed = debias(elim_choices(tree))
        f = lambda s: 1 if s["h"] == 2 else 0
        lhs = twp(processed, f, options=options)
        rhs = twp(tree, f, options=options)
        assert lhs.distance(rhs) <= ExtReal(Fraction(1, 10**6))
