"""Unit tests for the command AST (repro.lang.syntax)."""

from fractions import Fraction

import pytest

from repro.lang.expr import Lit, Var
from repro.lang.syntax import (
    Assign,
    Choice,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
    seq,
)


class TestConstruction:
    def test_assign_requires_name(self):
        with pytest.raises(TypeError):
            Assign("", Lit(1))

    def test_seq_requires_commands(self):
        with pytest.raises(TypeError):
            Seq(Skip(), "not a command")

    def test_rshift_sugar(self):
        program = Assign("x", Lit(1)) >> Skip()
        assert program == Seq(Assign("x", Lit(1)), Skip())

    def test_uniform_requires_name(self):
        with pytest.raises(TypeError):
            Uniform(Lit(6), "")


class TestSeqHelper:
    def test_empty_is_skip(self):
        assert seq([]) == Skip()

    def test_singleton(self):
        c = Assign("x", Lit(1))
        assert seq([c]) == c

    def test_right_fold(self):
        a, b, c = Skip(), Assign("x", Lit(1)), Observe(Lit(True))
        assert seq([a, b, c]) == Seq(a, Seq(b, c))


class TestEquality:
    def test_structural_equality(self):
        left = Choice(Fraction(1, 2), Skip(), Assign("x", Lit(1)))
        right = Choice(Fraction(1, 2), Skip(), Assign("x", Lit(1)))
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality(self):
        assert Choice(Fraction(1, 2), Skip(), Skip()) != Choice(
            Fraction(1, 3), Skip(), Skip()
        )


class TestVariableAnalysis:
    def test_free_vars(self):
        program = Seq(
            Assign("x", Var("y") + 1),
            While(Var("b"), Assign("z", Var("x"))),
        )
        assert program.free_vars() == {"y", "b", "x"}

    def test_assigned_vars(self):
        program = Seq(
            Assign("x", Lit(1)),
            Ite(Lit(True), Assign("y", Lit(2)), Uniform(Lit(3), "u")),
        )
        assert program.assigned_vars() == {"x", "y", "u"}

    def test_observe_assigns_nothing(self):
        assert Observe(Var("b")).assigned_vars() == frozenset()


class TestImmutability:
    def test_cannot_mutate(self):
        command = Assign("x", Lit(1))
        with pytest.raises(AttributeError):
            command.name = "y"
