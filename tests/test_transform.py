"""Tests for source-level optimization passes (repro.lang.transform)."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import flip
from repro.lang.syntax import (
    Assign,
    Choice,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.lang.transform import (
    dead_assignment_elimination,
    optimize,
    simplify_control,
    unroll_loops,
)
from repro.semantics.expectation import indicator
from repro.semantics.wp import wlp, wp
from tests.strategies import loop_free_command, states

S0 = State()


class TestSimplifyControl:
    def test_if_true(self):
        program = Ite(Lit(True), Assign("x", Lit(1)), Assign("x", Lit(2)))
        assert simplify_control(program) == Assign("x", Lit(1))

    def test_while_false(self):
        assert simplify_control(While(Lit(False), Skip())) == Skip()

    def test_observe_true_dropped(self):
        assert simplify_control(Observe(Lit(True))) == Skip()

    def test_observe_false_kept(self):
        # observe false is *not* skip -- it conditions on the impossible.
        program = Observe(Lit(False))
        assert simplify_control(program) == program

    def test_certain_choice(self):
        program = Choice(Lit(1), Assign("x", Lit(1)), Assign("x", Lit(2)))
        assert simplify_control(program) == Assign("x", Lit(1))

    def test_duplicate_branches(self):
        program = Choice(Fraction(1, 3), Skip(), Skip())
        assert simplify_control(program) == Skip()

    def test_skip_units(self):
        program = Seq(Skip(), Seq(Assign("x", Lit(1)), Skip()))
        assert simplify_control(program) == Assign("x", Lit(1))

    @given(loop_free_command(3), states)
    def test_preserves_wp(self, command, sigma):
        f = indicator(lambda s: s["x"] > 0)
        simplified = simplify_control(command)
        assert wp(simplified, f, sigma) == wp(command, f, sigma)
        assert wlp(simplified, f, sigma) == wlp(command, f, sigma)


class TestUnrollLoops:
    def test_counted_loop_unrolls(self):
        program = Seq(
            Assign("i", Lit(0)),
            While(Var("i") < 3, Assign("i", Var("i") + 1)),
        )
        unrolled = unroll_loops(program)
        assert "While" not in repr(unrolled)
        assert wp(unrolled, lambda s: s["i"], S0) == wp(
            program, lambda s: s["i"], S0
        )

    def test_random_guard_not_unrolled(self):
        program = Seq(
            Assign("b", Lit(True)),
            While(Var("b"), flip("b", Fraction(1, 2))),
        )
        assert "While" in repr(unroll_loops(program))

    def test_budget_respected(self):
        program = Seq(
            Assign("i", Lit(0)),
            While(Var("i") < 100, Assign("i", Var("i") + 1)),
        )
        assert "While" in repr(unroll_loops(program, max_unroll=10))
        assert "While" not in repr(unroll_loops(program, max_unroll=200))

    def test_guard_untouched_by_random_body_still_unrolls(self):
        # The body flips a coin but the guard counter is deterministic.
        program = Seq(
            Assign("i", Lit(0)),
            While(
                Var("i") < 2,
                Seq(flip("c", Fraction(1, 2)), Assign("i", Var("i") + 1)),
            ),
        )
        unrolled = unroll_loops(program)
        assert "While" not in repr(unrolled)
        f = indicator(lambda s: s["c"] is True)
        assert wp(unrolled, f, S0) == wp(program, f, S0)

    def test_unrolled_program_gets_exact_loop_free_inference(self):
        program = Seq(
            Assign("i", Lit(0)),
            While(
                Var("i") < 4,
                Seq(
                    Choice(
                        Fraction(1, 2),
                        Assign("n", Var("n") + 1),
                        Skip(),
                    ),
                    Assign("i", Var("i") + 1),
                ),
            ),
        )
        unrolled = unroll_loops(program)
        assert "While" not in repr(unrolled)
        # E[n] = 2 exactly, computed loop-free.
        assert wp(unrolled, lambda s: s["n"], S0) == 2


class TestDeadAssignments:
    def test_removes_unread_write(self):
        program = Seq(Assign("tmp", Lit(42)), Assign("x", Lit(1)))
        cleaned = dead_assignment_elimination(program, outputs={"x"})
        assert cleaned == Assign("x", Lit(1))

    def test_keeps_read_write(self):
        program = Seq(Assign("tmp", Lit(42)), Assign("x", Var("tmp")))
        cleaned = dead_assignment_elimination(program, outputs={"x"})
        assert cleaned == program

    def test_keeps_uniform_draws(self):
        # Dead uniform draws still consume entropy: preserved.
        program = Seq(Uniform(Lit(6), "waste"), Assign("x", Lit(1)))
        cleaned = dead_assignment_elimination(program, outputs={"x"})
        assert cleaned == program

    def test_loop_carried_liveness(self):
        # `acc` looks dead inside one pass but feeds itself across
        # iterations into the output.
        program = Seq(
            Assign("i", Lit(0)),
            Seq(
                While(
                    Var("i") < 3,
                    Seq(
                        Assign("acc", Var("acc") + Var("i")),
                        Assign("i", Var("i") + 1),
                    ),
                ),
                Assign("x", Var("acc")),
            ),
        )
        cleaned = dead_assignment_elimination(program, outputs={"x"})
        f = lambda s: s["x"]
        assert wp(cleaned, f, S0) == wp(program, f, S0) == 3

    @given(loop_free_command(3), states)
    def test_preserves_wp_over_outputs(self, command, sigma):
        f = indicator(lambda s: s["x"] > 0)
        cleaned = dead_assignment_elimination(command, outputs={"x"})
        assert wp(cleaned, f, sigma) == wp(command, f, sigma)


class TestOptimizePipeline:
    @given(loop_free_command(3), states)
    def test_full_pipeline_preserves_semantics(self, command, sigma):
        f = indicator(lambda s: s["x"] > 0)
        optimized = optimize(command, outputs={"x"})
        assert wp(optimized, f, sigma) == wp(command, f, sigma)

    def test_bounded_program_becomes_loop_free_and_smaller(self):
        program = Seq(
            Assign("i", Lit(0)),
            Seq(
                While(
                    Var("i") < 3,
                    Seq(
                        Choice(Fraction(1, 2), Assign("n", Var("n") + 1), Skip()),
                        Assign("i", Var("i") + 1),
                    ),
                ),
                Observe(Lit(True)),
            ),
        )
        optimized = optimize(program, outputs={"n"})
        assert "While" not in repr(optimized)
        assert "Observe" not in repr(optimized)
        assert wp(optimized, lambda s: s["n"], S0) == Fraction(3, 2)
