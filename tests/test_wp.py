"""Unit tests for the wp/wlp transformers (Definitions 2.2/2.3)."""

from fractions import Fraction

import pytest

from repro.lang.errors import ProbabilityRangeError, UniformRangeError
from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, flip, geometric_primes
from repro.lang.syntax import (
    Assign,
    Choice,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.semantics.expectation import indicator
from repro.semantics.extreal import INFINITY, ExtReal
from repro.semantics.fixpoint import LoopOptions
from repro.semantics.wp import wlp, wp

S0 = State()


def prob(command, pred, sigma=S0, **kw):
    return wp(command, indicator(pred), sigma, **kw)


class TestStructuralRules:
    def test_skip(self):
        assert wp(Skip(), lambda s: s["x"], State(x=3)) == ExtReal(3)

    def test_assign_substitution(self):
        command = Assign("x", Var("x") + 1)
        assert wp(command, lambda s: s["x"], State(x=3)) == ExtReal(4)

    def test_seq_composes(self):
        command = Seq(Assign("x", Lit(1)), Assign("y", Var("x") + 1))
        assert wp(command, lambda s: s["y"], S0) == ExtReal(2)

    def test_ite(self):
        command = Ite(Var("x") < 0, Assign("y", Lit(1)), Assign("y", Lit(2)))
        assert wp(command, lambda s: s["y"], State(x=-5)) == ExtReal(1)
        assert wp(command, lambda s: s["y"], State(x=5)) == ExtReal(2)

    def test_choice_mixes(self):
        command = Choice(Fraction(1, 3), Assign("x", Lit(1)), Assign("x", Lit(0)))
        assert wp(command, lambda s: s["x"], S0) == ExtReal(Fraction(1, 3))

    def test_state_dependent_probability(self):
        command = Choice(Var("p"), Assign("x", Lit(1)), Assign("x", Lit(0)))
        sigma = State(p=Fraction(3, 4))
        assert wp(command, lambda s: s["x"], sigma) == ExtReal(Fraction(3, 4))

    def test_uniform_averages(self):
        command = Uniform(Lit(4), "m")
        assert wp(command, lambda s: s["m"], S0) == ExtReal(Fraction(3, 2))

    def test_observe_true_passes(self):
        assert prob(Observe(Lit(True)), lambda s: True) == ExtReal(1)

    def test_observe_false_zero_mass(self):
        assert prob(Observe(Lit(False)), lambda s: True) == ExtReal(0)

    def test_observe_flag_counts_failure(self):
        value = wp(Observe(Lit(False)), lambda s: 0, S0, flag=True)
        assert value == ExtReal(1)

    def test_infinite_post_expectation(self):
        command = Choice(Fraction(1, 2), Skip(), Skip())
        value = wp(command, lambda s: INFINITY, S0)
        assert value.is_infinite


class TestSideConditions:
    def test_probability_out_of_range(self):
        command = Choice(Var("p"), Skip(), Skip())
        with pytest.raises(ProbabilityRangeError):
            wp(command, lambda s: 1, State(p=2))

    def test_uniform_range_positive(self):
        with pytest.raises(UniformRangeError):
            wp(Uniform(Lit(0), "m"), lambda s: 1, S0)


class TestLoops:
    def test_false_guard_is_skip(self):
        command = While(Lit(False), Assign("x", Lit(9)))
        assert wp(command, lambda s: s["x"], State(x=1)) == ExtReal(1)

    def test_bounded_loop_exact(self):
        # while x < 5 { x := x + 1 }: terminates in 5 steps.
        command = While(Var("x") < 5, Assign("x", Var("x") + 1))
        assert wp(command, lambda s: s["x"], S0) == ExtReal(5)

    def test_geometric_loop_termination_probability(self):
        # while b { b <~ flip(2/3) }: terminates almost surely.
        command = Seq(
            Assign("b", Lit(True)),
            While(Var("b"), flip("b", Fraction(2, 3))),
        )
        assert prob(command, lambda s: True) == ExtReal(1)

    def test_geometric_expected_trials(self):
        # E[number of heads before first tails] with P(heads) = 1/2 is 1.
        command = Seq(
            Assign("b", Lit(True)),
            While(
                Var("b"),
                Seq(
                    flip("b", Fraction(1, 2)),
                    Ite(Var("b"), Assign("n", Var("n") + 1), Skip()),
                ),
            ),
        )
        options = LoopOptions(strategy="iterate", tol=Fraction(1, 10**10))
        value = wp(command, lambda s: s["n"], S0, options=options)
        assert value.distance(ExtReal(1)) <= ExtReal(Fraction(1, 10**6))

    def test_divergent_loop_wp_zero_wlp_one(self):
        command = While(Lit(True), Skip())
        assert wp(command, lambda s: 1, S0) == ExtReal(0)
        assert wlp(command, lambda s: 1, S0) == ExtReal(1)

    def test_exact_matches_iterate_on_finite_loop(self):
        command = dueling_coins(Fraction(2, 3))
        f = indicator(lambda s: s["a"] is True)
        exact = wp(command, f, S0, options=LoopOptions(strategy="exact"))
        iterated = wp(
            command, f, S0,
            options=LoopOptions(strategy="iterate", tol=Fraction(1, 10**12)),
        )
        assert exact == ExtReal(Fraction(1, 2))
        assert iterated.distance(exact) <= ExtReal(Fraction(1, 10**9))


class TestWlp:
    def test_wlp_requires_bounded(self):
        with pytest.raises(ValueError):
            wlp(Skip(), lambda s: 2, S0)

    @pytest.mark.slow
    def test_wlp_equals_wp_on_terminating(self):
        # ~6s: wlp and wp fixpoints at 1e-10 tolerance.
        command = geometric_primes(Fraction(1, 2))
        f = indicator(lambda s: s["h"] == 2)
        options = LoopOptions(tol=Fraction(1, 10**10))
        lhs = wlp(command, f, S0, options=options)
        rhs = wp(command, f, S0, options=options)
        assert lhs.distance(rhs) <= ExtReal(Fraction(1, 10**6))
