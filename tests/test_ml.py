"""Tests for the SGD demo substrate (Section 5.3 substitute)."""

import pytest

np = pytest.importorskip("numpy", reason="repro.ml requires numpy")

from repro.ml.data import synthetic_mnist
from repro.ml.mlp import MLP
from repro.ml.sgd import train


class TestData:
    def test_shapes(self):
        x_train, y_train, x_test, y_test = synthetic_mnist(
            n_train=100, n_test=40, side=8
        )
        assert x_train.shape == (100, 64)
        assert x_test.shape == (40, 64)
        assert y_train.shape == (100,)
        assert set(np.unique(y_train)) <= set(range(10))

    def test_pixels_in_unit_interval(self):
        x_train, *_ = synthetic_mnist(n_train=50)
        assert x_train.min() >= 0.0 and x_train.max() <= 1.0

    def test_seeded_determinism(self):
        a = synthetic_mnist(n_train=20, seed=3)[0]
        b = synthetic_mnist(n_train=20, seed=3)[0]
        assert np.array_equal(a, b)


class TestMLP:
    def test_gradient_check(self):
        # Finite-difference check on a tiny network.
        rng = np.random.default_rng(0)
        net = MLP(4, 5, 3, seed=0)
        x = rng.normal(size=(6, 4))
        y = rng.integers(0, 3, size=6)
        loss, grads = net.loss_and_gradients(x, y)
        eps = 1e-6
        index = (1, 2)
        net.w1[index] += eps
        loss_plus, _ = net.loss_and_gradients(x, y)
        net.w1[index] -= 2 * eps
        loss_minus, _ = net.loss_and_gradients(x, y)
        net.w1[index] += eps
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert abs(numeric - grads[0][index]) < 1e-5

    def test_training_reduces_loss(self):
        x_train, y_train, x_test, y_test = synthetic_mnist(
            n_train=400, n_test=100, seed=1
        )
        result = train(
            x_train, y_train, x_test, y_test,
            sampler="stdlib", steps=120, seed=1,
        )
        early = sum(result.losses[:10]) / 10
        late = sum(result.losses[-10:]) / 10
        assert late < early

    def test_accuracy_reasonable(self):
        x_train, y_train, x_test, y_test = synthetic_mnist(seed=2)
        result = train(
            x_train, y_train, x_test, y_test,
            sampler="stdlib", steps=250, seed=2,
        )
        assert result.test_accuracy > 0.7


class TestSamplerSwap:
    """The Section 5.3 claim: the verified sampler doesn't hurt SGD."""

    def test_zar_sampler_trains_comparably(self):
        x_train, y_train, x_test, y_test = synthetic_mnist(
            n_train=600, n_test=200, seed=4
        )
        zar = train(x_train, y_train, x_test, y_test,
                    sampler="zar", steps=150, seed=4)
        std = train(x_train, y_train, x_test, y_test,
                    sampler="stdlib", steps=150, seed=4)
        assert abs(zar.test_accuracy - std.test_accuracy) < 0.12

    def test_unknown_sampler_rejected(self):
        x_train, y_train, x_test, y_test = synthetic_mnist(n_train=20, n_test=10)
        with pytest.raises(ValueError):
            train(x_train, y_train, x_test, y_test, sampler="quantum")
