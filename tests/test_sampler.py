"""Tests for the driver, sample recording, and the table harness."""

from fractions import Fraction

import pytest

from repro.bits.source import ConstantBits, ReplayBits, SystemBits
from repro.cftree.uniform import uniform_tree
from repro.itree.itree import Ret, Tau, Vis
from repro.itree.unfold import cpgcl_to_itree, tie_itree, to_itree_open
from repro.lang.state import State
from repro.lang.sugar import flip, n_sided_die
from repro.sampler.harness import Row, format_table, run_row
from repro.sampler.record import SampleSet, collect
from repro.sampler.run import FuelExhausted, run_itree
from repro.stats.distributions import uniform_pmf

from statistical import assert_event_frequency, assert_pmf

S0 = State()


class TestDriver:
    def test_fuel_exhaustion(self):
        def spin():
            return Tau(spin)

        with pytest.raises(FuelExhausted):
            run_itree(Tau(spin), ConstantBits(True), fuel=100)

    def test_fuel_sufficient(self):
        tree = Vis(lambda b: Ret(b))
        assert run_itree(tree, ConstantBits(True), fuel=10) is True

    def test_divergent_sampler_with_adversarial_bits(self):
        # uniform_tree(3) loops forever on the all-False stream (every
        # attempt walks right-right into the loopback): this is the
        # probability-0 divergence the paper permits (Section 4.2).
        tree = tie_itree(to_itree_open(uniform_tree(3)))
        with pytest.raises(FuelExhausted):
            run_itree(tree, ConstantBits(False), fuel=1000)


class TestCollect:
    def test_sample_count(self):
        tree = cpgcl_to_itree(flip("b", Fraction(1, 2)), S0)
        samples = collect(tree, 100, seed=0)
        assert len(samples) == 100
        assert len(samples.bits) == 100

    def test_extract(self):
        tree = cpgcl_to_itree(flip("b", Fraction(1, 2)), S0)
        samples = collect(tree, 50, seed=0, extract=lambda s: s["b"])
        assert all(isinstance(v, bool) for v in samples.values)

    def test_seed_determinism(self):
        tree = cpgcl_to_itree(n_sided_die(6), S0)
        a = collect(tree, 200, seed=9, extract=lambda s: s["x"])
        b = collect(tree, 200, seed=9, extract=lambda s: s["x"])
        assert a.values == b.values and a.bits == b.bits

    def test_bits_metered_per_sample(self):
        # A single fair flip consumes exactly one bit per sample.
        tree = cpgcl_to_itree(flip("b", Fraction(1, 2)), S0)
        samples = collect(tree, 20, seed=1)
        assert samples.bits == [1] * 20

    def test_requires_positive_count(self):
        tree = cpgcl_to_itree(flip("b", Fraction(1, 2)), S0)
        with pytest.raises(ValueError):
            collect(tree, 0)


class TestSampleSet:
    def test_statistics(self):
        samples = SampleSet([1, 2, 3, 4], [5, 5, 7, 7])
        assert samples.mean() == 2.5
        assert abs(samples.std() - 1.118033988749895) < 1e-12
        assert samples.mean_bits() == 6.0

    def test_boolean_values_numeric(self):
        samples = SampleSet([True, False, True, True], [1, 1, 1, 1])
        assert samples.mean() == 0.75

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            SampleSet([1], [])


class TestStatistical:
    """Seeded Clopper-Pearson checks replacing magic tolerances."""

    def test_die_distribution(self):
        # Every face of the die must carry exactly 1/6 posterior mass;
        # the CP family check is calibrated instead of "within 0.02".
        tree = cpgcl_to_itree(n_sided_die(6), S0)
        samples = collect(tree, 4000, seed=11, extract=lambda s: s["x"])
        assert_pmf(samples.values, uniform_pmf(6, start=1))

    def test_fair_flip_frequency(self):
        tree = cpgcl_to_itree(flip("b", Fraction(1, 3)), S0)
        samples = collect(tree, 4000, seed=12, extract=lambda s: s["b"])
        assert_event_frequency(
            samples.values, lambda b: b is True, Fraction(1, 3)
        )


class TestHarness:
    def test_run_row_columns(self):
        row = run_row(
            n_sided_die(6),
            variable="x",
            param="n=6",
            true_pmf=uniform_pmf(6, start=1),
            n=2000,
            seed=4,
        )
        assert isinstance(row, Row)
        # Structural sanity of the row; distributional correctness is
        # asserted by the CP checks in TestStatistical.
        assert row.tv is not None and row.kl is not None
        assert row.samples == 2000
        # Six standard errors of the mean of Uniform{1..6} (var 35/12).
        expected_mean = (1 + 6) / 2
        assert abs(row.mean - expected_mean) < 6 * (35 / 12 / 2000) ** 0.5
        assert abs(row.mean_bits - 11 / 3) < 0.5

    def test_row_without_true_pmf(self):
        row = run_row(n_sided_die(6), "x", "n=6", n=200, seed=4)
        assert row.tv is None and row.kl is None and row.smape is None

    def test_format_table_renders(self):
        row = run_row(
            n_sided_die(6), "x", "n=6",
            true_pmf=uniform_pmf(6, start=1), n=500, seed=4,
        )
        text = format_table("Table 3 (excerpt)", [row], var_name="x")
        assert "Table 3" in text
        assert "n=6" in text
        assert "mu_bit" in text
