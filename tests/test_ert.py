"""Tests for the expected-running-time transformer (repro.semantics.ert)."""

from fractions import Fraction

import pytest

from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, flip
from repro.lang.syntax import (
    Assign,
    Choice,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.semantics.ert import ert
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import LoopOptions

S0 = State()


class TestAtomicCosts:
    def test_skip_costs_one(self):
        assert ert(Skip(), sigma=S0) == ExtReal(1)

    def test_assign_costs_one(self):
        assert ert(Assign("x", Lit(5)), sigma=S0) == ExtReal(1)

    def test_seq_adds(self):
        program = Seq(Skip(), Seq(Assign("x", Lit(1)), Skip()))
        assert ert(program, sigma=S0) == ExtReal(3)

    def test_continuation_cost(self):
        value = ert(Assign("x", Lit(2)), t=lambda s: s["x"], sigma=S0)
        assert value == ExtReal(3)  # 1 tick + x = 2

    def test_observe_failure_still_ticks(self):
        assert ert(Observe(Lit(False)), sigma=S0) == ExtReal(1)

    def test_ite_adds_guard_tick(self):
        program = Ite(Lit(True), Skip(), Skip())
        assert ert(program, sigma=S0) == ExtReal(2)

    def test_choice_mixes(self):
        program = Choice(Fraction(1, 3), Seq(Skip(), Skip()), Skip())
        # 1 + (1/3) * 2 + (2/3) * 1 = 1 + 4/3.
        assert ert(program, sigma=S0) == ExtReal(Fraction(7, 3))

    def test_uniform_costs_one_plus_continuation(self):
        program = Uniform(Lit(4), "m")
        value = ert(program, t=lambda s: s["m"], sigma=S0)
        assert value == ExtReal(1 + Fraction(3, 2))


class TestLoops:
    def test_false_guard_one_tick(self):
        assert ert(While(Lit(False), Skip()), sigma=S0) == ExtReal(1)

    def test_counted_loop(self):
        # while x < 3 {x := x+1}: 3 iterations * (guard + body) + exit.
        program = While(Var("x") < 3, Assign("x", Var("x") + 1))
        assert ert(program, sigma=S0) == ExtReal(7)

    def test_geometric_loop_exact(self):
        # b := true; while b { flip b 1/2 }.
        program = Seq(
            Assign("b", Lit(True)),
            While(Var("b"), flip("b", Fraction(1, 2))),
        )
        # X = 1 + (1 + 1 + X/2 + exit/2) with exit = 1: X = 7; +1 assign.
        assert ert(program, sigma=S0) == ExtReal(8)

    def test_divergent_loop_infinite(self):
        assert ert(While(Lit(True), Skip()), sigma=S0).is_infinite

    def test_dueling_coins_finite(self):
        value = ert(dueling_coins(Fraction(2, 3)), sigma=S0)
        assert value == ExtReal(Fraction(57, 4))

    def test_iterative_matches_exact(self):
        program = dueling_coins(Fraction(2, 3))
        exact = ert(program, sigma=S0, options=LoopOptions(strategy="exact"))
        iterated = ert(
            program, sigma=S0,
            options=LoopOptions(strategy="iterate", tol=Fraction(1, 10**10)),
        )
        assert iterated.distance(exact) <= ExtReal(Fraction(1, 10**6))

    def test_ert_dominates_termination_time(self):
        # ert >= wp-style termination probability scaled (sanity order).
        program = Seq(
            Assign("b", Lit(True)),
            While(Var("b"), flip("b", Fraction(1, 20))),
        )
        # Nearly always exits after one iteration: cost close to 1+1+2+1.
        value = ert(program, sigma=S0)
        assert ExtReal(5) <= value <= ExtReal(6)
