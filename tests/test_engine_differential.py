"""Differential tests: the batch engine vs. the reference trampoline.

The engine's contract (ISSUE 3) is *bit-for-bit* equivalence with
``run_itree`` on the tied pipeline: feeding both the same bit prefix
must yield identical sample sequences, identical per-sample bit
consumption, and ``BitsExhausted`` at the same stream position.  These
tests pin that contract on the paper's programs -- the die, the
dueling-coins loop, the geometric/primes program, and the hare-tortoise
race -- plus Hypothesis-generated programs in the slow tier.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.bits.source import BitsExhausted, CountingBits, ReplayBits
from repro.engine import BatchSampler, BitPool
from repro.itree.unfold import cpgcl_to_itree
from repro.lang.expr import Var
from repro.lang.state import State
from repro.lang.sugar import (
    dueling_coins,
    geometric_primes,
    hare_tortoise,
    n_sided_die,
)
from repro.sampler.run import run_itree

from strategies import commands_with_loops

S0 = State()

PROGRAMS = [
    ("die6", n_sided_die(6), 400),
    ("die200", n_sided_die(200), 200),
    ("dueling", dueling_coins(Fraction(1, 3)), 200),
    ("geometric", geometric_primes(Fraction(1, 2)), 200),
]

HEAVY_PROGRAMS = [
    ("hare_tortoise", hare_tortoise(Var("time") <= 10), 10),
]


def _pump(command, samples, seed, fuel=None):
    """Run trampoline and engine on identical pooled streams."""
    tree = cpgcl_to_itree(command, S0)
    sampler = BatchSampler.from_command(command)
    reference = CountingBits(BitPool(seed))
    engine = CountingBits(BitPool(seed))
    for index in range(samples):
        expected = run_itree(tree, reference, fuel)
        actual = sampler.sample(engine)
        assert actual == expected, "sample %d diverged" % index
        expected_bits = reference.take_count()
        actual_bits = engine.take_count()
        assert actual_bits == expected_bits, (
            "sample %d consumed %d bits on the engine, %d on the "
            "trampoline" % (index, actual_bits, expected_bits)
        )


@pytest.mark.parametrize(
    "command,samples", [(c, n) for _, c, n in PROGRAMS],
    ids=[name for name, _, _ in PROGRAMS],
)
def test_identical_samples_and_bits(command, samples):
    _pump(command, samples, seed=101)


@pytest.mark.slow
@pytest.mark.parametrize(
    "command,samples", [(c, n) for _, c, n in HEAVY_PROGRAMS],
    ids=[name for name, _, _ in HEAVY_PROGRAMS],
)
def test_identical_samples_and_bits_heavy(command, samples):
    _pump(command, samples, seed=101)


def _drain(step, bits):
    """Draw samples off a fixed prefix until it runs dry.

    Returns (values, per-sample bit counts, consumed-at-exhaustion).
    """
    source = ReplayBits(bits)
    counting = CountingBits(source)
    values, counts = [], []
    while True:
        try:
            values.append(step(counting))
        except BitsExhausted:
            return values, counts, source.consumed
        counts.append(counting.take_count())


@pytest.mark.parametrize(
    "command", [c for _, c, _ in PROGRAMS],
    ids=[name for name, _, _ in PROGRAMS],
)
@pytest.mark.parametrize("prefix_bits", [0, 1, 37, 512])
def test_exhaustion_at_same_point(command, prefix_bits):
    # Both drivers read the same finite prefix; they must produce the
    # same sample sequence and hit BitsExhausted at the same position.
    pool = BitPool(7)
    bits = [pool.next_bit() for _ in range(prefix_bits)]
    tree = cpgcl_to_itree(command, S0)
    sampler = BatchSampler.from_command(command)
    ref_values, ref_counts, ref_consumed = _drain(
        lambda source: run_itree(tree, source), bits
    )
    eng_values, eng_counts, eng_consumed = _drain(sampler.sample, bits)
    assert eng_values == ref_values
    assert eng_counts == ref_counts
    assert eng_consumed == ref_consumed


@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(command=commands_with_loops())
def test_generated_programs_differential(command):
    # Hypothesis sweep: every generated (almost-surely terminating)
    # program must agree sample-for-sample and bit-for-bit.  Programs
    # whose observations are contradictory spin forever under the tied
    # rejection semantics -- on both drivers -- so the reference runs
    # fueled and such programs are passed over.
    from repro.sampler.run import FuelExhausted

    try:
        _pump(command, samples=25, seed=13, fuel=200_000)
    except FuelExhausted:
        pass
