"""Tests for the sampler-hot-path memoization (repro.cftree.cache)."""

import pytest

from repro.cftree.cache import BoundedCache


class TestBoundedCache:
    def test_miss_returns_none(self):
        cache = BoundedCache(4)
        assert cache.get("absent") is None

    def test_put_then_get(self):
        cache = BoundedCache(4)
        cache.put("k", (), "v")
        assert cache.get("k") == "v"
        assert len(cache) == 1

    def test_put_is_first_write_wins(self):
        cache = BoundedCache(4)
        cache.put("k", (), "first")
        cache.put("k", (), "second")
        assert cache.get("k") == "first"

    def test_fifo_eviction_at_capacity(self):
        cache = BoundedCache(2)
        cache.put("a", (), 1)
        cache.put("b", (), 2)
        cache.put("c", (), 3)  # evicts "a" (oldest)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_lru_hit_refreshes_recency(self):
        # Eviction is least-recently-USED: a hot entry that keeps
        # hitting must survive capacity pressure even if it is the
        # oldest insertion (the expansion working set recurs every
        # sample, so FIFO would evict exactly the hot rows).
        cache = BoundedCache(2)
        cache.put("hot", (), 1)
        cache.put("b", (), 2)
        assert cache.get("hot") == 1  # refresh: "b" is now oldest
        cache.put("c", (), 3)  # evicts "b", not "hot"
        assert cache.get("hot") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_clear(self):
        cache = BoundedCache(4)
        cache.put("a", (), 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BoundedCache(0)

    def test_keepalive_pins_identity_keys(self):
        # Identity-keyed entries must keep their objects alive: if the
        # object were collected, a new allocation could reuse its id and
        # alias the cache entry.
        import gc

        cache = BoundedCache(4)
        obj = object()
        key = (id(obj), "suffix")
        cache.put(key, (obj,), "value")
        del obj
        gc.collect()
        # The keepalive tuple still references the object; its id cannot
        # have been recycled, and the entry is retrievable.
        assert cache.get(key) == "value"

    def test_compile_cache_integration(self):
        # The compiler memoizes on (command identity, state): compiling
        # the same command object twice returns the identical tree.
        from repro.cftree.compile import compile_cpgcl
        from repro.lang.state import State
        from repro.lang.syntax import Assign

        command = Assign("x", 1)
        first = compile_cpgcl(command, State())
        second = compile_cpgcl(command, State())
        assert first is second
