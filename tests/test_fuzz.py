"""Tests for the differential fuzzing harness (repro.verify.fuzz)."""

import random

import pytest

from repro.lang.syntax import Command
from repro.verify.fuzz import (
    Discrepancy,
    ProgramGenerator,
    fuzz,
    fuzz_one,
)


class TestGenerator:
    def test_deterministic_by_seed(self):
        a = ProgramGenerator(random.Random(5)).command(3)
        b = ProgramGenerator(random.Random(5)).command(3)
        assert a == b

    def test_generates_commands(self):
        for seed in range(20):
            program = ProgramGenerator(random.Random(seed)).command(3)
            assert isinstance(program, Command)

    def test_programs_statistically_diverse(self):
        kinds = set()
        for seed in range(40):
            program = ProgramGenerator(random.Random(seed)).command(3)
            kinds.add(type(program).__name__)
        assert len(kinds) >= 3


class TestFuzzOne:
    @pytest.mark.parametrize("seed", range(8))
    def test_rounds_pass(self, seed):
        result = fuzz_one(seed, depth=3, samples=600)
        assert result is None, result

    def test_detects_planted_bug(self, monkeypatch):
        # Sabotage debias to swap branches of biased choices: the
        # differential harness must catch the distribution change on
        # some seed within a small budget.
        #
        # NB: `repro.verify.__init__` re-exports the `fuzz` *function*
        # under the package attribute `fuzz`, shadowing the submodule --
        # `import repro.verify.fuzz as m` would bind the function, so
        # the module is taken from sys.modules instead.
        import sys

        fuzz_module = sys.modules["repro.verify.fuzz"]
        from repro.cftree.tree import Choice, Fail, Fix, Leaf

        def broken_debias(tree, coalesce="loopback"):
            from repro.cftree.debias import debias as real

            fixed = real(tree, coalesce)
            # swap children of the root choice if biased at source level
            if isinstance(tree, Choice) and tree.prob not in (0, 1):
                from fractions import Fraction

                if tree.prob != Fraction(1, 2):
                    return real(
                        Choice(tree.prob, tree.right, tree.left), coalesce
                    )
            return fixed

        monkeypatch.setattr(fuzz_module, "debias", broken_debias)
        caught = None
        for seed in range(60):
            caught = fuzz_one(seed, depth=2, samples=400)
            if caught is not None:
                break
        assert caught is not None
        assert caught.stage == "debias"


class TestCampaign:
    def test_small_campaign_clean(self):
        report = fuzz(rounds=6, base_seed=100, depth=3, samples=500)
        assert report.ok, report.discrepancies
        assert report.programs == 6

    def test_report_counts_skipped(self):
        # Over many seeds some programs condition on false: counted.
        report = fuzz(rounds=12, base_seed=300, depth=2, samples=300)
        assert report.programs == 12
        assert 0 <= report.skipped <= 12
