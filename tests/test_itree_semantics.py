"""Tests for itwp (Section 3.4's expectation semantics of samplers)."""

from fractions import Fraction

import pytest

from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.itree.itree import Ret, Tau, Vis
from repro.itree.semantics import itwp, itwp_tied
from repro.itree.unfold import open_pipeline, tie_itree, to_itree_open
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, flip
from repro.lang.syntax import Observe, Seq
from repro.lang.expr import Var
from repro.semantics.extreal import ExtReal

S0 = State()


class TestItwpOnFiniteTrees:
    def test_ret(self):
        result = itwp(Ret(3), lambda v: v)
        assert result.lower == ExtReal(3)
        assert result.residual == 0

    def test_fair_coin(self):
        tree = Vis(lambda b: Ret(1 if b else 0))
        result = itwp(tree, lambda v: v)
        assert result.lower == ExtReal(Fraction(1, 2))
        assert result.residual == 0

    def test_uniform_tree_exact(self):
        tree = tie_itree(to_itree_open(uniform_tree(4)))
        result = itwp(tree, lambda v: 1 if v == 2 else 0)
        assert result.lower == ExtReal(Fraction(1, 4))
        assert result.residual == 0

    def test_rejection_loop_converges(self):
        # Was `residual < 2^-8`: a hand-tuned cutoff-specific constant.
        # The certified check: the itwp bracket must intersect interval
        # bounds computed independently by fixpoint iteration over the
        # same CF tree, and refining the cutoff must shrink the residual
        # (convergence without naming a rate).
        from repro.inference import FixpointEngine

        tree = tie_itree(to_itree_open(bernoulli_tree(Fraction(2, 3))))
        result = itwp(
            tree, lambda v: 1 if v else 0, mass_cutoff=Fraction(1, 2**20)
        )
        true = ExtReal(Fraction(2, 3))
        assert result.within(true)

        engine = FixpointEngine()
        engine.run(bernoulli_tree(Fraction(2, 3)), width=Fraction(1, 2**24))
        certified = engine.account().unconditional_bounds(True)
        lower = result.lower.as_fraction()
        upper = lower + result.residual
        assert lower <= certified.hi and certified.lo <= upper

        coarse = itwp(
            tree, lambda v: 1 if v else 0, mass_cutoff=Fraction(1, 2**10)
        )
        assert result.residual < coarse.residual

    def test_pure_tau_divergence_sheds_mass(self):
        def spin():
            return Tau(spin)

        result = itwp(Tau(spin), lambda v: 1, max_taus=50)
        assert result.lower == ExtReal(0)
        assert result.residual == 1
        assert result.truncated


class TestItwpTied:
    def test_matches_cwp_for_conditioning(self):
        command = Seq(flip("b", Fraction(1, 2)), Observe(Var("b")))
        bracket = itwp_tied(
            open_pipeline(command, S0),
            lambda s: 1 if s["b"] is True else 0,
        )
        assert bracket.within(ExtReal(1))
        assert bracket.residual == 0  # finite open tree: exact

    @pytest.mark.slow
    def test_dueling_coins_posterior(self):
        # ~4 minutes of exact bracketing at mass cutoff 2^-30.
        # The loop keeps ~5/9 of its mass per ~16/3 bits, so depth-30
        # exploration leaves a few percent undecided; the bracket must
        # still contain the exact posterior 1/2.
        command = dueling_coins(Fraction(2, 3))
        bracket = itwp_tied(
            open_pipeline(command, S0),
            lambda s: 1 if s["a"] is True else 0,
            mass_cutoff=Fraction(1, 2**30),
        )
        assert bracket.within(ExtReal(Fraction(1, 2)))
        # Was `residual < 1/4` (and before that an unsatisfiable 1/10):
        # hand-measured constants.  The certified check: the tied
        # bracket computes the posterior of the query, so it must
        # intersect the posterior bounds the fixpoint engine certifies
        # for the same program.
        from repro.cftree.compile import compile_cpgcl
        from repro.inference import FixpointEngine, Posterior

        engine = FixpointEngine()
        engine.run(compile_cpgcl(command, S0), width=Fraction(1, 2**24))
        certified = Posterior(engine.account()).query(
            lambda s: s["a"] is True
        )
        lower = bracket.lower.as_fraction()
        upper = lower + bracket.residual
        assert lower <= certified.hi and certified.lo <= upper

    def test_all_fail_raises(self):
        command = Observe(Var("b"))  # b unbound reads 0 -> type error?
        from repro.lang.expr import Lit

        command = Observe(Lit(False))
        with pytest.raises(ZeroDivisionError):
            itwp_tied(open_pipeline(command, S0), lambda s: 1)

    def test_node_budget_reports_truncation(self):
        command = dueling_coins(Fraction(2, 3))
        bracket = itwp_tied(
            open_pipeline(command, S0), lambda s: 1, max_nodes=10
        )
        assert bracket.truncated
        assert bracket.residual > 0
        # Vacuously wide but still sound: the tied value is at most 1.
        assert bracket.upper() <= ExtReal(1)


class TestBracketSemantics:
    def test_upper_respects_bound(self):
        tree = Vis(lambda b: Ret(1 if b else 0))
        # A cutoff above 1/2 prunes at the root: all mass is residual.
        result = itwp(tree, lambda v: v, mass_cutoff=Fraction(3, 5))
        assert result.lower == ExtReal(0)
        assert result.residual == 1
        assert result.upper(bound=1) == ExtReal(1)
        assert result.upper(bound=7) == ExtReal(7)
