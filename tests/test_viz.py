"""Tests for tree rendering (repro.cftree.viz)."""

from fractions import Fraction

from repro.cftree.tree import Choice, Fail, Leaf
from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.cftree.viz import cftree_to_dot, render_cftree, render_itree
from repro.itree.itree import Ret, Tau, Vis
from repro.itree.unfold import tie_itree, to_itree_open


class TestRenderCFTree:
    def test_leaf_and_fail(self):
        assert render_cftree(Leaf(3)) == "Leaf 3"
        assert render_cftree(Fail()) == "Fail"

    def test_choice_structure(self):
        tree = Choice(Fraction(2, 3), Leaf(1), Fail())
        text = render_cftree(tree)
        assert "Choice 2/3" in text
        # Branch labels: 1 (heads/True) is the left subtree, 0 the right.
        assert "1:Leaf1" in text.replace(" ", "")
        assert "0:Fail" in text.replace(" ", "")

    def test_depth_truncation(self):
        tree = uniform_tree(8)
        text = render_cftree(tree, max_depth=1)
        assert "..." in text

    def test_fix_unfolding(self):
        tree = bernoulli_tree(Fraction(2, 3))
        closed = render_cftree(tree)
        assert "Fix" in closed and "Choice" not in closed
        opened = render_cftree(tree, unfold_fix=True)
        assert "Choice 1/2" in opened


class TestRenderITree:
    def test_ret(self):
        assert render_itree(Ret(7)) == "Ret 7"

    def test_tau_collapsed(self):
        assert render_itree(Tau(lambda: Ret(1))) == "Ret 1"

    def test_vis_branches(self):
        tree = Vis(lambda b: Ret("H" if b else "T"))
        text = render_itree(tree)
        assert "Vis GetBool" in text
        assert "Ret H" in text and "Ret T" in text

    def test_bit_budget(self):
        tree = tie_itree(to_itree_open(bernoulli_tree(Fraction(2, 3))))
        text = render_itree(tree, max_bits=3)
        assert "..." in text  # the rejection loop exceeds 3 bits

    def test_silent_divergence_marked(self):
        def spin():
            return Tau(spin)

        text = render_itree(Tau(spin), max_taus=32)
        assert "diverges" in text


class TestDot:
    def test_dot_structure(self):
        tree = Choice(Fraction(1, 2), Leaf(1), Fail())
        dot = cftree_to_dot(tree)
        assert dot.startswith("digraph")
        assert 'label="FAIL"' in dot
        assert dot.rstrip().endswith("}")

    def test_fix_rendered_as_doublecircle(self):
        dot = cftree_to_dot(uniform_tree(3))
        assert "doublecircle" in dot
