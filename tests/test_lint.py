"""Tests for the abstract-interpretation lint engine (repro.analysis).

Covers: golden diagnostics over examples/programs (including the broken
set, whose ``# expect: ZAR0xx`` headers pin their rule codes), the
schema-stable JSON form, exit-code conventions, custom analyzer
registration, bounded-analysis incompleteness, and the "lint never
crashes" Hypothesis property.
"""

import io
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import (
    AbstractInterpreter,
    AnalysisBudget,
    Diagnostic,
    LintReport,
    RULES,
    Severity,
    lint_program,
    lint_source,
    register_analyzer,
)
from repro.lang.parser import parse_program
from repro.lang.state import State

from tests.strategies import (
    commands_with_loops,
    loop_free_command,
    mixed_states,
)

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
    "programs",
)


def lint_file(name):
    path = os.path.join(EXAMPLES, name)
    with open(path) as handle:
        source = handle.read()
    return lint_source(source), source


def codes(report):
    return {d.code for d in report.diagnostics}


class TestGoldenExamples:
    """The acceptance bar: each broken program is flagged with its
    stable rule code and a non-zero exit code."""

    def test_divergent_loop(self):
        report, _ = lint_file(os.path.join("broken", "divergent_loop.gcl"))
        assert "ZAR001" in codes(report)
        assert report.exit_code == 2
        diag = next(d for d in report.diagnostics if d.code == "ZAR001")
        assert diag.severity == Severity.ERROR
        assert diag.line == 5  # the while, after the comment header

    def test_infeasible_observe(self):
        report, _ = lint_file(os.path.join("broken", "infeasible_observe.gcl"))
        assert "ZAR002" in codes(report)
        assert report.exit_code == 2

    def test_dead_branch(self):
        report, _ = lint_file(os.path.join("broken", "dead_branch.gcl"))
        assert "ZAR003" in codes(report)
        assert report.exit_code == 1
        diag = next(d for d in report.diagnostics if d.code == "ZAR003")
        assert "else-branch" in diag.message

    def test_dead_loop(self):
        report, _ = lint_file(os.path.join("broken", "dead_loop.gcl"))
        assert "ZAR003" in codes(report)
        assert report.exit_code == 1
        diag = next(d for d in report.diagnostics if d.code == "ZAR003")
        assert "loop body is dead" in diag.message

    def test_expect_headers_match(self):
        """Every broken example's ``# expect:`` header names a code the
        linter actually reports."""
        broken = os.path.join(EXAMPLES, "broken")
        assert os.path.isdir(broken)
        seen = 0
        for name in sorted(os.listdir(broken)):
            if not name.endswith(".gcl"):
                continue
            report, source = lint_file(os.path.join("broken", name))
            expected = set()
            for line in source.splitlines():
                if line.startswith("# expect:"):
                    expected.update(line.split(":", 1)[1].split())
            assert expected, "broken example %s has no expect header" % name
            assert expected <= codes(report), name
            assert report.exit_code != 0, name
            seen += 1
        assert seen >= 3

    def test_die_is_clean(self):
        report, _ = lint_file("die.gcl")
        assert report.exit_code == 0
        assert "ZAR009" in codes(report)  # the bit-cost info

    def test_clean_examples_have_no_errors(self):
        for name in sorted(os.listdir(EXAMPLES)):
            if not name.endswith(".gcl"):
                continue
            report, _ = lint_file(name)
            assert report.count(Severity.ERROR) == 0, name


class TestDiagnostics:
    def test_severity_labels(self):
        assert Severity.INFO.label == "info"
        assert Severity.WARNING.label == "warning"
        assert Severity.ERROR.label == "error"
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_rule_table_is_complete(self):
        for code, rule in RULES.items():
            assert code.startswith("ZAR")
            assert rule.code == code
            assert rule.name
            assert rule.summary

    def test_default_severity_comes_from_rule(self):
        diag = Diagnostic("ZAR001", "boom")
        assert diag.severity == RULES["ZAR001"].default_severity

    def test_render_includes_location_and_code(self):
        diag = Diagnostic("ZAR003", "dead").located(4, 7)
        assert diag.render() == "4:7: warning[ZAR003]: dead"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("ZAR999", "nope")


class TestJsonSchema:
    def test_schema_stable_fields(self):
        report, _ = lint_file(os.path.join("broken", "dead_branch.gcl"))
        payload = report.to_json()
        assert payload["version"] == 1
        assert set(payload) >= {
            "version", "diagnostics", "summary", "incomplete", "exit_code",
        }
        assert payload["exit_code"] == report.exit_code
        for entry in payload["diagnostics"]:
            assert set(entry) >= {
                "code", "rule", "severity", "message", "path", "line",
                "column",
            }
            assert entry["severity"] in ("info", "warning", "error")
        summary = payload["summary"]
        assert summary["warnings"] >= 1
        assert len(payload["diagnostics"]) == (
            summary["errors"] + summary["warnings"] + summary["infos"]
        )

    def test_render_json_round_trips(self):
        report, _ = lint_file("die.gcl")
        out = io.StringIO()
        report.render_json(out)
        parsed = json.loads(out.getvalue())
        assert parsed == json.loads(json.dumps(report.to_json()))

    def test_render_text_has_summary_line(self):
        report, _ = lint_file("die.gcl")
        out = io.StringIO()
        report.render_text(out, name="die.gcl")
        text = out.getvalue()
        assert "die.gcl:" in text
        assert "error(s)" in text and "info(s)" in text


class TestExitCodes:
    def test_empty_report_is_clean(self):
        report = LintReport([], incomplete=False)
        assert report.exit_code == 0
        assert report.max_severity is None

    def test_info_only_is_clean(self):
        report = LintReport([Diagnostic("ZAR009", "fyi")], incomplete=False)
        assert report.exit_code == 0

    def test_warning_is_one(self):
        report = LintReport([Diagnostic("ZAR003", "dead")], incomplete=False)
        assert report.exit_code == 1

    def test_error_dominates(self):
        report = LintReport(
            [Diagnostic("ZAR003", "dead"), Diagnostic("ZAR001", "diverges")],
            incomplete=False,
        )
        assert report.exit_code == 2


class TestCustomAnalyzers:
    def test_register_and_run(self):
        name = "test-custom-analyzer"

        def custom(ctx):
            ctx.emit(Diagnostic("ZAR009", "custom says hi"))

        register_analyzer(name, custom, replace=True)
        program = parse_program("x := 1;\n")
        report = lint_program(program, analyzers=[name])
        assert [d.message for d in report.diagnostics] == ["custom says hi"]

    def test_unknown_analyzer_raises(self):
        program = parse_program("x := 1;\n")
        with pytest.raises(KeyError):
            lint_program(program, analyzers=["no-such-analyzer"])


class TestBoundedAnalysis:
    def test_budget_exhaustion_reports_incomplete(self):
        source = (
            "x := 0;\n"
            "while x < 3 { x := x + 1; }\n"
        )
        program = parse_program(source)
        interp = AbstractInterpreter(budget=AnalysisBudget(limit=2))
        report = lint_program(program, interpreter=interp)
        assert report.incomplete
        assert "ZAR008" in codes(report)
        # Incompleteness is informational, never a failure by itself.
        incomplete = [d for d in report.diagnostics if d.code == "ZAR008"]
        assert all(d.severity == Severity.INFO for d in incomplete)

    def test_counted_loop_converges_exactly(self):
        """The widening threshold lets short counted loops converge
        without widening; bounded unrolling then proves termination, so
        no ZAR001 is emitted."""
        source = (
            "steps := 0;\n"
            "while steps < 2 {\n"
            "    { pos := pos + 1; } [1/2] { pos := pos - 1; };\n"
            "    steps := steps + 1;\n"
            "}\n"
        )
        report = lint_source(source)
        assert "ZAR001" not in codes(report)
        assert report.exit_code == 0

    def test_widened_loop_does_not_hang(self):
        """A loop whose interval never stabilizes exactly must still
        terminate (widening jumps to +inf) rather than iterate forever."""
        source = "x := 0;\nwhile x != -1 { x := x + 2; }\n"
        report = lint_source(source)
        assert report.exit_code in (0, 1, 2)  # terminated is the point


class TestLintNeverCrashes:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(command=loop_free_command(2), sigma=mixed_states)
    def test_loop_free(self, command, sigma):
        report = lint_program(command, sigma)
        assert isinstance(report, LintReport)
        assert report.exit_code in (0, 1, 2)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(command=commands_with_loops(2), sigma=mixed_states)
    def test_with_loops(self, command, sigma):
        report = lint_program(command, sigma)
        assert isinstance(report, LintReport)
        assert report.exit_code in (0, 1, 2)


class TestCliLint:
    def run(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_text_output(self):
        path = os.path.join(EXAMPLES, "broken", "dead_branch.gcl")
        code, text = self.run("lint", path)
        assert code == 1
        assert "ZAR003" in text
        assert "warning" in text

    def test_json_output(self):
        path = os.path.join(EXAMPLES, "broken", "divergent_loop.gcl")
        code, text = self.run("lint", path, "--format", "json")
        assert code == 2
        payload = json.loads(text)
        assert payload["version"] == 1
        assert any(
            d["code"] == "ZAR001" for d in payload["diagnostics"]
        )

    def test_analyzer_selection(self):
        path = os.path.join(EXAMPLES, "broken", "dead_branch.gcl")
        code, text = self.run("lint", path, "--analyzers", "deadcode")
        assert code == 1
        assert "ZAR009" not in text

    def test_unknown_analyzer_is_cli_error(self):
        path = os.path.join(EXAMPLES, "die.gcl")
        code, text = self.run("lint", path, "--analyzers", "bogus")
        assert code == 1
        assert "error" in text.lower()

    def test_parse_failure_exits_one(self, tmp_path):
        bad = tmp_path / "bad.gcl"
        bad.write_text("x := ;\n")
        code, text = self.run("lint", str(bad))
        assert code == 1
        assert "error" in text.lower()

    def test_check_routes_through_lint(self):
        # A typecheck-clean program with a lint warning: check exits 1.
        path = os.path.join(EXAMPLES, "broken", "dead_branch.gcl")
        code, text = self.run("check", path)
        assert code == 1
        assert "ZAR003" in text

    def test_check_ok_still_says_ok(self):
        path = os.path.join(EXAMPLES, "die.gcl")
        code, text = self.run("check", path)
        assert code == 0
        assert "OK" in text
