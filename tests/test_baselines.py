"""Tests for the baseline samplers (Appendix B comparators)."""

from collections import Counter
from fractions import Fraction

import pytest

from repro.baselines.fldr import FLDRSampler
from repro.baselines.knuth_yao import KnuthYaoSampler
from repro.baselines.optas import OptasSampler, optimal_dyadic_approximation
from repro.baselines.rejection import ModuloBiasedSampler, RejectionSampler
from repro.bits.source import CountingBits, ReplayBits, SystemBits
from repro.stats.divergence import tv_distance
from repro.stats.empirical import empirical_pmf
from repro.stats.entropy import shannon_entropy


def sample_many(sampler, n, seed=0):
    source = CountingBits(SystemBits(seed))
    values = [sampler.sample(source) for _ in range(n)]
    return values, source.count / n


class TestFLDR:
    def test_validates_weights(self):
        with pytest.raises(ValueError):
            FLDRSampler([])
        with pytest.raises(ValueError):
            FLDRSampler([0, 0])
        with pytest.raises(ValueError):
            FLDRSampler([1, -1])

    def test_uniform_die_distribution(self):
        sampler = FLDRSampler([1] * 6)
        values, _bits = sample_many(sampler, 20000)
        tv = tv_distance(empirical_pmf(values),
                         {i: 1 / 6 for i in range(6)})
        assert tv < 0.02

    def test_weighted_distribution(self):
        sampler = FLDRSampler([1, 2, 3])
        values, _bits = sample_many(sampler, 30000)
        observed = empirical_pmf(values)
        assert abs(observed[2] - 0.5) < 0.02
        assert abs(observed[0] - 1 / 6) < 0.02

    def test_power_of_two_total_needs_no_rejection(self):
        sampler = FLDRSampler([1, 3])  # total 4 = 2^2
        assert sampler.reject_index is None

    def test_entropy_band(self):
        # FLDR's guarantee: expected bits < H + 6.
        sampler = FLDRSampler([1] * 200)
        _values, bits = sample_many(sampler, 20000)
        entropy = shannon_entropy({i: 1 / 200 for i in range(200)})
        assert entropy <= bits < entropy + 6

    def test_exact_pmf(self):
        assert FLDRSampler([1, 3]).pmf() == {
            0: Fraction(1, 4), 1: Fraction(3, 4)
        }

    def test_deterministic_on_replayed_bits(self):
        sampler = FLDRSampler([1] * 6)
        bits = [True, False, True, True, False, False, True, False] * 4
        first = sampler.sample(ReplayBits(bits))
        second = sampler.sample(ReplayBits(bits))
        assert first == second


class TestKnuthYao:
    def test_requires_normalized(self):
        with pytest.raises(ValueError):
            KnuthYaoSampler([Fraction(1, 2)])

    def test_dyadic_distribution_exact_bits(self):
        # {1/2, 1/4, 1/4}: H = 1.5, and Knuth-Yao attains it exactly.
        sampler = KnuthYaoSampler(
            [Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)]
        )
        low, high = sampler.expected_bits()
        assert low == high == 1.5

    def test_uniform_200_expected_bits(self):
        # Matches OPTAS's Table 4 figure of ~8.55 bits.
        sampler = KnuthYaoSampler([Fraction(1, 200)] * 200)
        low, _high = sampler.expected_bits()
        assert abs(low - 8.55) < 0.01

    def test_optimality_band(self):
        probs = [Fraction(1, 3), Fraction(1, 3), Fraction(1, 3)]
        sampler = KnuthYaoSampler(probs)
        entropy = shannon_entropy({i: float(p) for i, p in enumerate(probs)})
        low, _ = sampler.expected_bits()
        assert entropy <= low < entropy + 2

    def test_distribution(self):
        sampler = KnuthYaoSampler([Fraction(2, 3), Fraction(1, 3)])
        values, _ = sample_many(sampler, 30000)
        counts = Counter(values)
        assert abs(counts[0] / 30000 - 2 / 3) < 0.01


class TestOptas:
    def test_approximation_sums_to_one(self):
        approx = optimal_dyadic_approximation(
            [Fraction(1, 3)] * 3, precision=16
        )
        assert sum(approx) == 1
        assert all(q.denominator <= 2**16 for q in approx)

    def test_higher_precision_reduces_error(self):
        target = [Fraction(1, 3)] * 3
        coarse = OptasSampler(target, precision=8)
        fine = OptasSampler(target, precision=24)
        assert fine.approximation_error_tv() <= coarse.approximation_error_tv()

    def test_dyadic_target_is_exact(self):
        target = [Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)]
        sampler = OptasSampler(target, precision=8)
        assert sampler.approximation == target
        assert sampler.approximation_error_tv() == 0

    def test_kernels_accepted(self):
        for kernel in ("hellinger", "tv", "kl"):
            OptasSampler([Fraction(1, 3)] * 3, precision=12, kernel=kernel)
        with pytest.raises(ValueError):
            OptasSampler([Fraction(1, 2)] * 2, precision=12, kernel="cosine")

    def test_beats_exact_samplers_on_bits(self):
        # The Table 4 story: OPTAS trades a ~2^-32 approximation error
        # for strictly fewer random bits than the exact pipeline's 9.
        sampler = OptasSampler([Fraction(1, 200)] * 200, precision=32)
        _values, bits = sample_many(sampler, 20000)
        assert bits < 9.0
        assert sampler.approximation_error_tv() < 1e-7


class TestRejection:
    def test_rejection_uniform(self):
        sampler = RejectionSampler(6)
        values, bits = sample_many(sampler, 20000)
        tv = tv_distance(empirical_pmf(values), {i: 1 / 6 for i in range(6)})
        assert tv < 0.02
        assert abs(bits - 4.0) < 0.1  # 3 bits / (6/8) acceptance

    def test_modulo_bias_exact(self):
        sampler = ModuloBiasedSampler(6, width=3)
        # 2^3 = 8 over 6 outcomes: outcomes 0,1 get 2/8, rest 1/8.
        # TV = (2*|1/4 - 1/6| + 4*|1/8 - 1/6|) / 2 = 1/6.
        assert sampler.pmf()[0] == Fraction(2, 8)
        assert sampler.pmf()[5] == Fraction(1, 8)
        assert sampler.bias_tv() == Fraction(1, 6)

    def test_modulo_bias_shrinks_with_width(self):
        narrow = ModuloBiasedSampler(6, width=3)
        wide = ModuloBiasedSampler(6, width=16)
        assert wide.bias_tv() < narrow.bias_tv()

    def test_modulo_bias_detectable_empirically(self):
        sampler = ModuloBiasedSampler(6, width=3)
        values, _ = sample_many(sampler, 40000)
        observed = empirical_pmf(values)
        tv = tv_distance(observed, {i: 1 / 6 for i in range(6)})
        assert abs(tv - float(sampler.bias_tv())) < 0.02
