"""Liveness-driven loop-state narrowing (repro.compiler.liveness).

``narrow_command`` resets dead scratch variables around loops so the
open-table engine interns loop states on their live projection.  The
contract: observed-variable semantics are untouched (wp-exact on the
Hypothesis domain), the engine and trampoline agree bit-for-bit on the
*narrowed* program, and on the paper's scratch-heavy programs the
narrowed table is materially smaller for the same samples.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.bits.source import CountingBits
from repro.compiler.liveness import narrow_command
from repro.engine import BatchSampler, BitPool
from repro.engine.api import collect_auto
from repro.itree.unfold import cpgcl_to_itree
from repro.lang.expr import Lit, Opaque, Var
from repro.lang.state import State
from repro.lang.sugar import gaussian, hare_tortoise
from repro.lang.syntax import Assign, Observe, Seq, Skip, Uniform, While
from repro.sampler.harness import run_row
from repro.sampler.run import run_itree
from repro.semantics.expectation import indicator
from repro.semantics.wp import wp

from strategies import commands_with_loops, states

S0 = State()


class TestIdentityCases:
    def test_no_loops_is_identity(self):
        program = Seq(Assign("x", Lit(1)), Observe(Var("x") > 0))
        assert narrow_command(program, observed=("x",)) is program

    def test_loop_without_scratch_is_identity(self):
        program = Seq(
            Assign("i", Lit(0)),
            While(Var("i") < 3, Assign("i", Var("i") + 1)),
        )
        assert narrow_command(program, observed=("i",)) is program

    def test_opaque_poisons_to_identity(self):
        # An Opaque with undeclared reads could observe anything; the
        # analysis must degrade to "everything live" and change nothing.
        program = Seq(
            Assign("tmp", Lit(5)),
            Seq(
                Assign("i", Lit(0)),
                Seq(
                    While(Var("i") < 2, Assign("i", Var("i") + 1)),
                    Assign("x", Opaque(lambda s: s.get("tmp", 0))),
                ),
            ),
        )
        assert narrow_command(program, observed=("x",)) is program


class TestScratchNarrowing:
    def _scratchy(self):
        # `waste` is reassigned every iteration and never read after
        # the draw that consumed it: dead at the loop head.
        body = Seq(
            Uniform(Lit(4), "waste"),
            Seq(
                Assign("acc", Var("acc") + Var("waste")),
                Assign("i", Var("i") + 1),
            ),
        )
        return Seq(Assign("i", Lit(0)), While(Var("i") < 8, body))

    def test_narrowing_shrinks_the_loop_state_space(self):
        program = self._scratchy()
        narrowed = narrow_command(program, observed=("acc",))
        assert narrowed is not program

        def rows(command):
            sampler = BatchSampler.from_command(command)
            sampler.collect(200, seed=7, backend="python")
            return len(sampler.table)

        assert rows(narrowed) < rows(program)

    def test_narrowed_engine_matches_trampoline_bit_for_bit(self):
        narrowed = narrow_command(self._scratchy(), observed=("acc",))
        tree = cpgcl_to_itree(narrowed, S0)
        sampler = BatchSampler.from_command(narrowed)
        reference = CountingBits(BitPool(31))
        engine = CountingBits(BitPool(31))
        for _ in range(100):
            assert sampler.sample(engine) == run_itree(tree, reference)
            assert engine.take_count() == reference.take_count()

    def test_hare_tortoise_observed_posterior_unchanged(self):
        # The fig9b program: narrowing must not move the reported
        # posterior (same seed, same sampled values for t0).
        program = hare_tortoise(Var("time") <= 10)
        narrowed = narrow_command(program, observed=("t0", "time"))
        assert narrowed is not program

        def draw(command):
            sampler = BatchSampler.from_command(command)
            result = sampler.collect(
                40, seed=17, extract=lambda s: s["t0"], backend="python"
            )
            return result.values, result.bits

        # Sequential draws: same bit stream, same reported values (no
        # leaf-coalescing merge triggers on this program, so even the
        # per-sample bit counts are unchanged).
        assert draw(program) == draw(narrowed)


class TestWiring:
    def test_collect_auto_narrow_flag(self):
        program = hare_tortoise(Var("time") <= 10)
        manual = collect_auto(
            narrow_command(program, observed=("t0",)),
            30,
            seed=5,
            extract=lambda s: s["t0"],
        )
        wired = collect_auto(
            program,
            30,
            seed=5,
            extract=lambda s: s["t0"],
            narrow=True,
            observed=("t0",),
        )
        assert wired.samples.values == manual.samples.values
        assert wired.samples.bits == manual.samples.bits

    def test_run_row_narrow_flag(self):
        program = hare_tortoise(Var("time") <= 10)
        wired = run_row(program, "t0", "row", n=30, seed=5, narrow=True)
        # The flag must be equivalent to narrowing by hand with the
        # reported variable kept live (same command -> same table ->
        # identical samples on any backend).
        manual = run_row(
            narrow_command(program, observed=("t0",)),
            "t0",
            "row",
            n=30,
            seed=5,
        )
        assert wired.mean == manual.mean
        assert wired.mean_bits == manual.mean_bits
        assert wired.samples == manual.samples


class TestSemanticsPreserved:
    @settings(deadline=None, max_examples=30)
    @given(commands_with_loops(2), states)
    def test_wp_over_observed_is_exact(self, command, sigma):
        f = indicator(lambda s: s["x"] > 0)
        narrowed = narrow_command(command, observed=("x",))
        assert wp(narrowed, f, sigma) == wp(command, f, sigma)

    @pytest.mark.slow
    @settings(deadline=None, max_examples=15)
    @given(commands_with_loops(1))
    def test_narrowed_programs_stay_in_the_differential_contract(
        self, command
    ):
        # Contradictory observations spin forever under the tied
        # rejection semantics (on both drivers): the reference runs
        # fueled and such programs are passed over.
        from repro.sampler.run import FuelExhausted

        narrowed = narrow_command(command, observed=("x",))
        tree = cpgcl_to_itree(narrowed, S0)
        sampler = BatchSampler.from_command(narrowed)
        reference = CountingBits(BitPool(3))
        engine = CountingBits(BitPool(3))
        try:
            for _ in range(20):
                expected = run_itree(tree, reference, 200_000)
                assert sampler.sample(engine) == expected
                assert engine.take_count() == reference.take_count()
        except FuelExhausted:
            pass
