"""Tests for content digests and the compilation cache (repro.compiler).

Covers digest stability/sensitivity, the in-memory LRU tier, the
on-disk tier (round trip, corruption tolerance, format gating), and the
configurable bounds + hit/miss counters of both the artifact cache and
the cftree memo caches (ISSUE 5 satellites).
"""

import os
import pickle

import pytest
from fractions import Fraction

from repro.bits.source import CountingBits
from repro.cftree.cache import BoundedCache, default_capacity
from repro.cftree.compile import compile_cache_stats, set_compile_cache_capacity
from repro.compiler.cache import CompilationCache
from repro.compiler.digest import Undigestable, fingerprint, program_digest
from repro.compiler.pipeline import Pipeline, compile_program
from repro.engine.pool import BitPool
from repro.lang.expr import Opaque, Var
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, n_sided_die
from repro.lang.syntax import Assign, Choice, Seq, Skip

S0 = State()


class TestDigest:
    def test_equal_programs_equal_digest(self):
        a = program_digest(n_sided_die(6), S0, "loopback", ("cse",), 100)
        b = program_digest(n_sided_die(6), S0, "loopback", ("cse",), 100)
        assert a == b

    def test_distinct_programs_distinct_digest(self):
        base = program_digest(n_sided_die(6), S0, "loopback", ("cse",), 100)
        assert base != program_digest(
            n_sided_die(7), S0, "loopback", ("cse",), 100
        )
        assert base != program_digest(
            n_sided_die(6), State(x=1), "loopback", ("cse",), 100
        )
        assert base != program_digest(
            n_sided_die(6), S0, "full", ("cse",), 100
        )
        assert base != program_digest(
            n_sided_die(6), S0, "loopback", ("debias", "cse"), 100
        )

    def test_concatenation_cannot_collide(self):
        assert fingerprint("ab", "c") != fingerprint("a", "bc")
        assert fingerprint(("ab",)) != fingerprint(("a", "b"))

    def test_bool_int_distinct(self):
        assert fingerprint(True) != fingerprint(1)

    def test_opaque_is_undigestable(self):
        opaque = Opaque(lambda sigma: 1, label="f")
        with pytest.raises(Undigestable):
            fingerprint(Assign("x", opaque))

    def test_undigestable_program_still_compiles(self):
        command = Seq(Assign("x", Opaque(lambda sigma: 4, label="f")), Skip())
        program = compile_program(command, use_cache=False)
        assert program.digest is None
        assert program.stats["undigestable"]
        assert program.collect(10, seed=0).values[0]["x"] == 4

    def test_all_command_forms_digest(self):
        from repro.lang.sugar import geometric_primes, hare_tortoise, laplace

        for command in (
            geometric_primes(Fraction(1, 3)),
            hare_tortoise(Var("time") <= 10),
            laplace("out", 1, 2),
        ):
            assert len(fingerprint(command)) == 64


class TestCompilationCache:
    def test_lru_eviction(self):
        cache = CompilationCache(capacity=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refreshes a
        cache.put("c", "C")  # evicts b (least recent)
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"

    def test_counters(self):
        cache = CompilationCache(capacity=4)
        assert cache.get("missing") is None
        cache.put("k", "V")
        assert cache.get("k") == "V"
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["memory_hits"] == 1
        assert stats["stores"] == 1

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("ZAR_COMPILE_CACHE_SIZE", "7")
        assert CompilationCache().capacity == 7
        monkeypatch.setenv("ZAR_COMPILE_CACHE_SIZE", "junk")
        assert CompilationCache().capacity == 128

    def test_env_disk_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("ZAR_COMPILE_CACHE_DIR", str(tmp_path))
        assert CompilationCache().disk_dir == str(tmp_path)

    def test_memory_reuse_within_process(self, tmp_path):
        cache = CompilationCache(capacity=8)
        pipeline = Pipeline(cache=cache)
        first = pipeline.compile(n_sided_die(6))
        second = pipeline.compile(n_sided_die(6))
        assert second is first
        assert cache.stats()["memory_hits"] == 1

    def test_table_shaping_options_are_part_of_the_key(self):
        # A pipeline with dedupe/compaction disabled must not collide
        # with (or poison) the default pipeline's cache entry.
        cache = CompilationCache(capacity=8)
        optimized = Pipeline(cache=cache).compile(n_sided_die(6))
        raw = Pipeline(
            cache=cache, dedupe=False, compact=False
        ).compile(n_sided_die(6))
        assert raw is not optimized
        assert raw.digest != optimized.digest
        assert len(raw.table) > len(optimized.table)


class TestDiskCache:
    def _pipeline(self, tmp_path, **kwargs):
        cache = CompilationCache(capacity=8, disk_dir=str(tmp_path))
        return Pipeline(cache=cache, **kwargs), cache

    def test_round_trip_across_processes(self, tmp_path):
        command = dueling_coins(Fraction(2, 3))
        pipeline, cache = self._pipeline(tmp_path)
        built = pipeline.compile(command)
        assert cache.stats()["disk_stores"] == 1

        # A fresh cache over the same directory simulates a new process.
        fresh, fresh_cache = self._pipeline(tmp_path)
        loaded = fresh.compile(command)
        assert loaded.source == "disk"
        assert fresh_cache.stats()["disk_hits"] == 1
        assert len(loaded.table) == len(built.table)

        # The rehydrated table samples identically.
        def stream(program):
            sampler = program.sampler()
            source = CountingBits(BitPool(13))
            return [
                (sampler.sample(source), source.take_count())
                for _ in range(200)
            ]

        assert stream(loaded) == stream(built)

    def test_open_tables_spill_to_disk(self, tmp_path):
        # Since the freeze/thaw layer (repro.engine.freeze), open tables
        # -- pending stubs and all -- spill as content-digest triples
        # and rehydrate in a fresh process.
        from repro.lang.sugar import geometric_primes

        pipeline, cache = self._pipeline(tmp_path, eager_expand=16)
        program = pipeline.compile(geometric_primes(Fraction(1, 2)))
        assert program.table.pending_stubs > 0
        assert cache.stats()["disk_stores"] == 1
        assert list(tmp_path.iterdir()) != []

        fresh, fresh_cache = self._pipeline(tmp_path, eager_expand=16)
        loaded = fresh.compile(geometric_primes(Fraction(1, 2)))
        assert loaded.source == "disk"
        assert not loaded.table.needs_rebind  # pipeline ran thaw_bind
        assert loaded.table.pending_stubs == program.table.pending_stubs

    def test_corrupt_file_is_a_miss(self, tmp_path):
        command = n_sided_die(6)
        pipeline, cache = self._pipeline(tmp_path)
        pipeline.compile(command)
        (artifact,) = list(tmp_path.iterdir())
        artifact.write_bytes(b"not a pickle")
        fresh, fresh_cache = self._pipeline(tmp_path)
        program = fresh.compile(command)
        assert program.source == "built"
        assert fresh_cache.stats()["disk_hits"] == 0

    def test_stale_format_is_a_miss(self, tmp_path):
        command = n_sided_die(6)
        pipeline, cache = self._pipeline(tmp_path)
        pipeline.compile(command)
        (artifact,) = list(tmp_path.iterdir())
        record = pickle.loads(artifact.read_bytes())
        record["format"] = -1
        artifact.write_bytes(pickle.dumps(record))
        fresh, _ = self._pipeline(tmp_path)
        assert fresh.compile(command).source == "built"

    def test_clear_disk(self, tmp_path):
        pipeline, cache = self._pipeline(tmp_path)
        pipeline.compile(n_sided_die(6))
        assert list(tmp_path.iterdir())
        cache.clear(disk=True)
        assert list(tmp_path.iterdir()) == []
        assert len(cache) == 0


class TestBoundedCacheConfig:
    def test_env_default_capacity(self, monkeypatch):
        monkeypatch.setenv("ZAR_CFTREE_CACHE_SIZE", "1234")
        assert default_capacity() == 1234
        assert BoundedCache().capacity == 1234
        from repro.cftree.cache import _DEFAULT_CAPACITY

        monkeypatch.setenv("ZAR_CFTREE_CACHE_SIZE", "-3")
        assert default_capacity() == _DEFAULT_CAPACITY
        monkeypatch.delenv("ZAR_CFTREE_CACHE_SIZE")
        assert default_capacity() == _DEFAULT_CAPACITY

    def test_resize_evicts_oldest(self):
        cache = BoundedCache(4)
        for key in "abcd":
            cache.put(key, (), key.upper())
        cache.resize(2)
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("d") == "D"

    def test_hit_miss_counters(self):
        cache = BoundedCache(4)
        cache.get("nope")
        cache.put("k", (), 1)
        cache.get("k")
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_compile_cache_api(self):
        # The live compile memo exposes counters and can be rebounded.
        stats = compile_cache_stats()
        assert set(stats) == {"hits", "misses", "entries", "capacity"}
        original = stats["capacity"]
        try:
            set_compile_cache_capacity(50_000)
            assert compile_cache_stats()["capacity"] == 50_000
        finally:
            set_compile_cache_capacity(original)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BoundedCache(4).resize(0)
        with pytest.raises(ValueError):
            CompilationCache(capacity=0)


class TestCliPipelineStats:
    def test_compile_reports_stage_stats(self, tmp_path):
        from repro.cli import main
        import io

        source = tmp_path / "die.gcl"
        source.write_text("m <~ uniform(6);\nx := m + 1;\n")
        out = io.StringIO()
        code = main(["compile", str(source)], out=out)
        text = out.getvalue()
        assert code == 0
        assert (
            "pipeline (normalize -> analyze -> build -> optimize -> lower):"
            in text
        )
        assert "analyze:" in text
        assert "digest:" in text
        assert "pass cse:" in text
        assert "compile memo:" in text
        # The acceptance bar: the CSE stage shrinks the die's table by
        # >= 20% (raw 19 rows -> 12).
        import re

        match = re.search(r"raw (\d+), -([0-9.]+)%", text)
        assert match, text
        assert float(match.group(2)) >= 20.0

    def test_no_pipeline_flag(self, tmp_path):
        from repro.cli import main
        import io

        source = tmp_path / "die.gcl"
        source.write_text("m <~ uniform(6);\nx := m + 1;\n")
        out = io.StringIO()
        assert main(["compile", str(source), "--no-pipeline"], out=out) == 0
        assert "pipeline (" not in out.getvalue()

    def test_custom_pass_list(self, tmp_path):
        from repro.cli import main
        import io

        source = tmp_path / "die.gcl"
        source.write_text("m <~ uniform(6);\nx := m + 1;\n")
        out = io.StringIO()
        code = main(
            ["compile", str(source), "--passes", "debias,cse"], out=out
        )
        assert code == 0
        assert "pass debias:" in out.getvalue()
        assert "pass elim_choices:" not in out.getvalue()

    def test_unknown_pass_is_cli_error(self, tmp_path):
        from repro.cli import main
        import io

        source = tmp_path / "die.gcl"
        source.write_text("m <~ uniform(6);\nx := m + 1;\n")
        out = io.StringIO()
        code = main(["compile", str(source), "--passes", "bogus"], out=out)
        assert code == 1
        assert "bogus" in out.getvalue()
