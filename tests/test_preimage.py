"""Tests for preimage computation (Section 4.2, Figure 6c)."""

from fractions import Fraction

from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.itree.itree import Ret, Vis
from repro.itree.unfold import tie_itree, to_itree_open
from repro.sampler.preimage import preimage


class TestFigure6:
    def test_bernoulli_two_thirds_measure(self):
        # The preimage of {true} under the Bernoulli(2/3) sampler is a
        # union of disjoint dyadic intervals of total measure 2/3
        # (Figure 6c; interval positions differ from the figure because
        # the artifact's tree keeps outcome copies, see DESIGN.md).
        sampler = tie_itree(to_itree_open(bernoulli_tree(Fraction(2, 3))))
        result = preimage(sampler, lambda v: v is True, max_bits=24)
        assert result.lower <= Fraction(2, 3) <= result.upper
        assert result.upper - result.lower < Fraction(1, 2**10)

    def test_complement_measures_sum_to_one(self):
        sampler = tie_itree(to_itree_open(bernoulli_tree(Fraction(2, 3))))
        heads = preimage(sampler, lambda v: v is True, max_bits=20)
        tails = preimage(sampler, lambda v: v is False, max_bits=20)
        total = heads.lower + tails.lower
        assert total <= 1
        assert 1 - total < Fraction(1, 2**8)  # only undecided mass missing

    def test_intervals_are_disjoint_basics(self):
        sampler = tie_itree(to_itree_open(bernoulli_tree(Fraction(2, 3))))
        result = preimage(sampler, lambda v: v is True, max_bits=16)
        intervals = result.preimage.intervals()
        for first, second in zip(intervals, intervals[1:]):
            assert first.high <= second.low


class TestExactCases:
    def test_single_flip(self):
        tree = Vis(lambda b: Ret(b))
        result = preimage(tree, lambda v: v is True, max_bits=4)
        assert result.lower == result.upper == Fraction(1, 2)
        # The preimage is exactly B("1").
        (component,) = result.preimage.components
        assert component.prefix == (True,)

    def test_uniform_die_outcome(self):
        sampler = tie_itree(to_itree_open(uniform_tree(6)))
        result = preimage(sampler, lambda v: v == 0, max_bits=20)
        assert result.lower <= Fraction(1, 6) <= result.upper
        assert result.upper - result.lower < Fraction(1, 2**12)

    def test_no_matching_event(self):
        tree = Ret("only")
        result = preimage(tree, lambda v: False, max_bits=4)
        assert result.lower == 0 and result.undecided == 0

    def test_divergence_mass_reported(self):
        from repro.itree.itree import Tau

        def spin():
            return Tau(spin)

        result = preimage(Tau(spin), lambda v: True, max_bits=4, max_taus=16)
        assert result.diverged == 1
