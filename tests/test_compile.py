"""Compiler tests: Definition 3.5 and Theorem 3.7 (exact)."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.cftree.compile import compile_cpgcl
from repro.cftree.semantics import tcwp
from repro.cftree.tree import Choice as TChoice, Fail, Fix, Leaf
from repro.lang.errors import ProbabilityRangeError, UniformRangeError
from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, flip, geometric_primes
from repro.lang.syntax import (
    Assign,
    Choice,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.semantics.cwp import ConditioningError, cwp
from repro.semantics.expectation import indicator
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import LoopOptions
from repro.verify.theorems import check_cf_compiler_correctness
from tests.strategies import loop_free_command, states

S0 = State()


class TestCompileShapes:
    """Definition 3.5, case by case (Figure 3's structure)."""

    def test_skip(self):
        assert compile_cpgcl(Skip(), S0) == Leaf(S0)

    def test_assign(self):
        tree = compile_cpgcl(Assign("x", Lit(5)), S0)
        assert tree == Leaf(State(x=5))

    def test_observe_true_false(self):
        assert compile_cpgcl(Observe(Lit(True)), S0) == Leaf(S0)
        assert compile_cpgcl(Observe(Lit(False)), S0) == Fail()

    def test_ite_resolves_statically_per_state(self):
        command = Ite(Var("x") < 0, Assign("y", Lit(1)), Assign("y", Lit(2)))
        assert compile_cpgcl(command, State(x=-1)) == Leaf(State(x=-1, y=1))

    def test_choice_evaluates_bias_at_state(self):
        command = Choice(Var("p"), Skip(), Skip())
        tree = compile_cpgcl(command, State(p=Fraction(1, 3)))
        assert isinstance(tree, TChoice)
        assert tree.prob == Fraction(1, 3)

    def test_while_becomes_fix(self):
        command = While(Var("b"), flip("b", Fraction(1, 2)))
        tree = compile_cpgcl(command, State(b=True))
        assert isinstance(tree, Fix)
        assert tree.init == State(b=True)
        assert tree.guard(State(b=True)) and not tree.guard(State(b=False))

    def test_primes_program_shape(self):
        # Figure 3: a Choice at the root (the first flip); both branches
        # are the loop's Fix node (Definition 3.5 compiles `while` to Fix
        # regardless of the guard's initial value).  The right branch has
        # a false guard at its initial state, so it exits straight into
        # the primality observation, which fails (h = 0 is not prime).
        tree = compile_cpgcl(geometric_primes(Fraction(2, 3)), S0)
        assert isinstance(tree, TChoice)
        assert tree.prob == Fraction(2, 3)
        assert isinstance(tree.left, Fix)
        assert isinstance(tree.right, Fix)
        assert tree.left.guard(tree.left.init)
        assert not tree.right.guard(tree.right.init)
        from repro.cftree.semantics import twp as tree_twp

        assert tree_twp(tree.right, lambda s: 1) == ExtReal(0)

    def test_uniform_binds_variable(self):
        tree = compile_cpgcl(Uniform(Lit(2), "m"), S0)
        # uniform_tree(2) has no rejection loop: a single fair choice.
        assert tree == TChoice(
            Fraction(1, 2), Leaf(State(m=0)), Leaf(State(m=1))
        )

    def test_side_conditions_checked(self):
        with pytest.raises(ProbabilityRangeError):
            compile_cpgcl(Choice(Var("p"), Skip(), Skip()), State(p=7))
        with pytest.raises(UniformRangeError):
            compile_cpgcl(Uniform(Var("n"), "m"), State(n=0))


class TestTheorem37:
    """tcwp ([[c]] sigma) f = cwp c f sigma, exactly."""

    def test_flip(self):
        check_cf_compiler_correctness(
            flip("b", Fraction(2, 3)),
            indicator(lambda s: s["b"] is True),
        )

    def test_conditioning(self):
        command = Seq(
            flip("a", Fraction(1, 2)),
            Seq(flip("b", Fraction(1, 2)), Observe(Var("a") | Var("b"))),
        )
        check_cf_compiler_correctness(
            command, indicator(lambda s: s["a"] is True)
        )

    def test_dueling_coins_exact(self):
        check_cf_compiler_correctness(
            dueling_coins(Fraction(2, 3)),
            indicator(lambda s: s["a"] is True),
        )

    def test_uniform(self):
        check_cf_compiler_correctness(
            Uniform(Lit(6), "m"), lambda s: s["m"]
        )

    @given(loop_free_command(3), states)
    def test_random_loop_free_programs(self, command, sigma):
        f = indicator(lambda s: s["x"] > 0)
        try:
            expected = cwp(command, f, sigma)
        except ConditioningError:
            with pytest.raises(Exception):
                tcwp(compile_cpgcl(command, sigma), f)
            return
        assert tcwp(compile_cpgcl(command, sigma), f) == expected

    def test_geometric_primes_iterative(self):
        # Infinite state space: both sides via iteration, same tolerance.
        options = LoopOptions(strategy="iterate", tol=Fraction(1, 10**10))
        command = geometric_primes(Fraction(1, 2))
        f = indicator(lambda s: s["h"] == 2)
        lhs = tcwp(compile_cpgcl(command, S0), f, options=options)
        rhs = cwp(command, f, S0, options=options)
        assert lhs.distance(rhs) <= ExtReal(Fraction(1, 10**6))
