"""The EngineProfile seam: differential bit-exactness, serialization,
telemetry, validation errors, fallback observability, and the tuner.

The refactor's contract is that extracting engine selection into
:class:`repro.engine.profile.EngineProfile` changed *nothing* about
what is sampled:

- every registered profile, pinned explicitly through ``collect_auto``,
  is bit-for-bit identical to the equivalent pre-profile kwargs
  (``engine=``/``backend=``) at the same seed;
- the ``batch-sequential`` profile is bit-for-bit identical to the
  reference trampoline on a shared bit source (the cross-engine anchor
  the differential suite pins per-sample; here at ``collect`` level);
- ``engine="auto"`` with no tuner engaged resolves to exactly
  :func:`~repro.engine.profile.static_profile` -- the old heuristic.

On top of that, the seam must be *observable*: profiles serialize
losslessly into telemetry JSONL records, silent batch-to-trampoline
downgrades surface as ``CollectResult.fallback_reason``, and unknown
engines/backends/profiles fail loudly with the valid set in the
message.
"""

import json
from fractions import Fraction

import pytest

from repro.engine import BatchSampler, BitPool, collect_auto
from repro.engine.profile import (
    PROFILES,
    EngineProfile,
    ProgramFeatures,
    feature_bucket,
    features_of,
    profile_from_dict,
    profile_named,
    static_profile,
    validate_profile,
)
from repro.engine.pool import HAVE_NUMPY
from repro.engine.tuner import EngineTuner, default_state_path, tuning_enabled
from repro.itree.unfold import cpgcl_to_itree
from repro.lang.expr import Var
from repro.lang.state import State
from repro.lang.sugar import (
    dueling_coins,
    geometric_primes,
    hare_tortoise,
    n_sided_die,
)
from repro.sampler.record import collect
from repro.telemetry import configure_telemetry, read_records, telemetry_path

S0 = State()

PROGRAMS = [
    ("die6", n_sided_die(6), 300),
    ("die200", n_sided_die(200), 150),
    ("dueling", dueling_coins(Fraction(1, 3)), 150),
    ("geometric", geometric_primes(Fraction(1, 2)), 150),
]

HEAVY_PROGRAMS = [
    ("hare_tortoise", hare_tortoise(Var("time") <= 10), 10),
]

#: (profile name, equivalent pre-profile collect_auto kwargs).
EQUIVALENT_KWARGS = [
    ("trampoline", {"engine": "trampoline"}),
    ("batch-python", {"backend": "python"}),
    ("batch-sequential", {"backend": "sequential"}),
    ("batch-numpy", {"backend": "numpy"}),
]


@pytest.fixture(autouse=True)
def _no_telemetry_leak():
    # Tests that enable telemetry point it at a tmp dir; everything else
    # must stay isolated from any ambient ZAR_TELEMETRY_DIR.
    configure_telemetry(None)
    yield
    configure_telemetry(None)


def _assert_same_samples(a, b, context):
    assert a.values == b.values, "%s: values diverged" % context
    assert a.bits == b.bits, "%s: per-sample bits diverged" % context


class TestDifferentialBitExactness:
    @pytest.mark.parametrize(
        "name,command,n", PROGRAMS, ids=[p[0] for p in PROGRAMS]
    )
    @pytest.mark.parametrize(
        "profile_name,kwargs", EQUIVALENT_KWARGS,
        ids=[name for name, _ in EQUIVALENT_KWARGS],
    )
    def test_profile_equals_preprofile_kwargs(
        self, name, command, n, profile_name, kwargs
    ):
        if profile_name == "batch-numpy" and not HAVE_NUMPY:
            pytest.skip("numpy backend unavailable")
        pinned = collect_auto(
            command, n, seed=23, profile=profile_named(profile_name)
        )
        loose = collect_auto(command, n, seed=23, **kwargs)
        _assert_same_samples(
            pinned.samples, loose.samples, "%s/%s" % (name, profile_name)
        )
        assert pinned.profile.name == profile_name
        assert pinned.fallback_reason is None

    @pytest.mark.parametrize(
        "name,command,n", PROGRAMS, ids=[p[0] for p in PROGRAMS]
    )
    def test_sequential_profile_matches_trampoline_on_shared_source(
        self, name, command, n
    ):
        reference = collect(
            cpgcl_to_itree(command, S0), n, source=BitPool(5)
        )
        sampler = BatchSampler.from_profile(
            command, profile=profile_named("batch-sequential")
        )
        engine = sampler.collect(n, source=BitPool(5))
        _assert_same_samples(reference, engine, name)

    @pytest.mark.parametrize(
        "name,command,n", PROGRAMS, ids=[p[0] for p in PROGRAMS]
    )
    def test_auto_resolves_to_static_profile(self, name, command, n):
        # No tuner engaged: engine="auto" must be the static heuristic,
        # bit for bit (the cold-start-identity guarantee).
        auto = collect_auto(command, n, seed=31)
        pinned = collect_auto(command, n, seed=31, profile=static_profile())
        _assert_same_samples(auto.samples, pinned.samples, name)
        assert auto.profile.name == static_profile().name

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name,command,n", HEAVY_PROGRAMS, ids=[p[0] for p in HEAVY_PROGRAMS]
    )
    def test_heavy_program_profiles_agree(self, name, command, n):
        auto = collect_auto(command, n, seed=47)
        pinned = collect_auto(command, n, seed=47, profile=static_profile())
        _assert_same_samples(auto.samples, pinned.samples, name)


class TestSerializationAndTelemetry:
    def test_profile_dict_roundtrip(self):
        for profile in PROFILES.values():
            assert profile_from_dict(profile.as_dict()) == profile

    def test_custom_profile_roundtrip_preserves_knobs(self):
        profile = EngineProfile(
            name="weird", backend="python", batch_size=64,
            passes=("debias", "cse"), narrow=True, fuel=99, max_nodes=123,
        )
        clone = profile_from_dict(profile.as_dict())
        assert clone == profile
        assert isinstance(clone.passes, tuple)

    def test_run_record_serializes_profile(self, tmp_path):
        configure_telemetry(str(tmp_path))
        result = collect_auto(n_sided_die(6), 50, seed=3)
        records = read_records()
        assert telemetry_path() == str(tmp_path / "telemetry.jsonl")
        assert len(records) == 1
        record = records[0]
        assert record["schema"] == 1
        assert record["engine"] == "batch"
        assert record["n"] == 50
        assert record["digest"], "run record must carry the program digest"
        assert record["fallback_reason"] is None
        assert record["feature_bucket"]
        assert record["samples_per_sec"] is None or record["samples_per_sec"] > 0
        assert profile_from_dict(record["profile"]) == result.profile

    def test_telemetry_appends_jsonl_lines(self, tmp_path):
        configure_telemetry(str(tmp_path))
        for seed in range(3):
            collect_auto(n_sided_die(6), 20, seed=seed)
        lines = (tmp_path / "telemetry.jsonl").read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_disabled_telemetry_writes_nothing(self, tmp_path):
        collect_auto(n_sided_die(6), 20, seed=1)
        assert not (tmp_path / "telemetry.jsonl").exists()
        assert read_records() == []


class TestValidationErrors:
    def test_unknown_engine_lists_valid_set(self):
        with pytest.raises(ValueError, match=r"auto, batch, trampoline"):
            collect_auto(n_sided_die(6), 10, engine="warp")

    def test_unknown_backend_lists_valid_set(self):
        with pytest.raises(
            ValueError, match=r"auto, native, numpy, python, sequential"
        ):
            collect_auto(n_sided_die(6), 10, backend="gpu")

    def test_batch_sampler_backend_error_lists_valid_set(self):
        sampler = BatchSampler.from_command(n_sided_die(6))
        with pytest.raises(
            ValueError, match=r"auto, native, numpy, python, sequential"
        ):
            sampler.collect(10, seed=0, backend="gpu")

    def test_unknown_profile_name_lists_registry(self):
        with pytest.raises(ValueError, match=r"batch-numpy.*trampoline"):
            profile_named("hyperspeed")

    def test_bad_profile_engine_rejected(self):
        with pytest.raises(ValueError, match=r"batch, trampoline"):
            validate_profile(EngineProfile(engine="auto"))

    def test_bad_profile_knobs_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            validate_profile(EngineProfile(batch_size=0))
        with pytest.raises(ValueError, match="max_nodes"):
            validate_profile(EngineProfile(max_nodes=0))


class TestFallbackObservability:
    def _tiny_auto_profile(self):
        return PROFILES["batch-auto"]._replace(max_nodes=8)

    def test_auto_fallback_reason_is_recorded(self, tmp_path):
        # Shrink the auto path's node budget so lowering the open
        # geometric program overflows: engine="auto" must downgrade to
        # the trampoline and say why.
        original = PROFILES["batch-auto"]
        PROFILES["batch-auto"] = self._tiny_auto_profile()
        try:
            configure_telemetry(str(tmp_path))
            result = collect_auto(
                geometric_primes(Fraction(1, 2)), 30, seed=11
            )
        finally:
            PROFILES["batch-auto"] = original
            configure_telemetry(None)
        assert result.engine == "trampoline"
        assert result.fallback_reason, "downgrade must carry its reason"
        assert result.samples.values, "fallback still samples"
        [record] = read_records(str(tmp_path / "telemetry.jsonl"))
        assert record["fallback_reason"] == result.fallback_reason

    def test_explicit_batch_engine_raises_instead(self):
        from repro.engine.table import LoweringError

        original = PROFILES["batch-auto"]
        PROFILES["batch-auto"] = self._tiny_auto_profile()
        try:
            with pytest.raises(LoweringError):
                collect_auto(
                    geometric_primes(Fraction(1, 2)), 30, seed=11,
                    engine="batch",
                )
        finally:
            PROFILES["batch-auto"] = original

    def test_explicit_tiny_profile_raises(self):
        from repro.engine.table import LoweringError

        with pytest.raises(LoweringError):
            collect_auto(
                geometric_primes(Fraction(1, 2)), 30, seed=11,
                profile=self._tiny_auto_profile(),
            )

    def test_backend_kwarg_override_is_reported(self, tmp_path):
        # A kwarg-level backend override must show up in the reported
        # profile and the telemetry record -- the run should never be
        # attributed to the base profile's backend.
        configure_telemetry(str(tmp_path))
        try:
            result = collect_auto(
                n_sided_die(6), 40, seed=5, backend="sequential"
            )
        finally:
            configure_telemetry(None)
        assert result.profile.backend == "sequential"
        assert result.profile.name.endswith("+sequential")
        [record] = read_records(str(tmp_path / "telemetry.jsonl"))
        assert record["backend"] == "sequential"


def _features(bucket_rows=8):
    return ProgramFeatures(
        rows=bucket_rows, closed=True, branch_entropy=2.5,
        pruned_sites=0, digest="d" * 8,
    )


class TestEngineTuner:
    def test_cold_start_is_static_heuristic(self):
        tuner = EngineTuner()
        assert tuner.choose(_features()) == static_profile()

    def test_exploit_picks_best_mean_throughput(self):
        tuner = EngineTuner(
            epsilon=0.0, candidates=["batch-python", "batch-sequential"]
        )
        features = _features()
        for _ in range(3):
            tuner.record(features, PROFILES["batch-python"], 100.0)
            tuner.record(features, PROFILES["batch-sequential"], 10.0)
        assert tuner.choose(features).name == "batch-python"
        assert tuner.mean_throughput(features, "batch-python") == 100.0

    def test_untried_arm_is_tried_before_settling(self):
        tuner = EngineTuner(
            epsilon=0.0, candidates=["batch-python", "batch-sequential"]
        )
        features = _features()
        tuner.record(features, PROFILES["batch-sequential"], 500.0)
        # batch-python has no data yet: optimistic initialization must
        # pick it once rather than starving it forever.
        assert tuner.choose(features).name == "batch-python"

    def test_buckets_do_not_share_statistics(self):
        tuner = EngineTuner(
            epsilon=0.0, candidates=["batch-python", "batch-sequential"]
        )
        small, large = _features(8), _features(4096)
        assert feature_bucket(small) != feature_bucket(large)
        tuner.record(small, PROFILES["batch-python"], 100.0)
        assert tuner.choose(large) == static_profile()

    def test_epsilon_one_always_explores(self):
        tuner = EngineTuner(
            epsilon=1.0, candidates=["batch-python", "batch-sequential"]
        )
        features = _features()
        for _ in range(2):
            tuner.record(features, PROFILES["batch-python"], 100.0)
            tuner.record(features, PROFILES["batch-sequential"], 10.0)
        chosen = {tuner.choose(features).name for _ in range(40)}
        assert chosen == {"batch-python", "batch-sequential"}

    def test_state_persists_and_reloads(self, tmp_path):
        path = str(tmp_path / "tuner.json")
        tuner = EngineTuner(path=path, epsilon=0.0,
                            candidates=["batch-python"])
        features = _features()
        tuner.record(features, PROFILES["batch-python"], 250.0)
        assert tuner.saves == 1

        reloaded = EngineTuner(path=path, epsilon=0.0,
                               candidates=["batch-python"])
        assert reloaded.loads == 1
        assert reloaded.mean_throughput(features, "batch-python") == 250.0

    def test_corrupt_state_is_cold_start(self, tmp_path):
        path = tmp_path / "tuner.json"
        path.write_text("{not json")
        tuner = EngineTuner(path=str(path))
        assert tuner.state == {}
        assert tuner.choose(_features()) == static_profile()

    def test_tuning_enabled_follows_env(self, monkeypatch):
        monkeypatch.delenv("ZAR_TUNER_STATE", raising=False)
        monkeypatch.delenv("ZAR_COMPILE_CACHE_DIR", raising=False)
        assert not tuning_enabled()
        monkeypatch.setenv("ZAR_TUNER_STATE", "/tmp/t.json")
        assert tuning_enabled()
        assert default_state_path() == "/tmp/t.json"

    def test_engaged_tuner_records_routed_runs(self, tmp_path):
        path = str(tmp_path / "tuner.json")
        tuner = EngineTuner(path=path, epsilon=0.0)
        collect_auto(n_sided_die(6), 40, seed=2, tuner=tuner)
        assert sum(
            stats[0]
            for arms in tuner.state.values()
            for stats in arms.values()
        ) == 1
        # The recorded arm is the one the policy resolved.
        [(bucket, arms)] = list(tuner.state.items())
        assert static_profile().name in arms
