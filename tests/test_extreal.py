"""Unit tests for extended nonnegative rationals (repro.semantics.extreal)."""

from fractions import Fraction

import pytest

from repro.semantics.extreal import INFINITY, ExtReal


class TestConstruction:
    def test_from_int_and_fraction(self):
        assert ExtReal(3) == Fraction(3)
        assert ExtReal(Fraction(1, 2)) == Fraction(1, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ExtReal(-1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ExtReal(True)

    def test_of_passthrough(self):
        x = ExtReal(5)
        assert ExtReal.of(x) is x


class TestArithmetic:
    def test_addition(self):
        assert ExtReal(Fraction(1, 3)) + ExtReal(Fraction(1, 6)) == Fraction(1, 2)

    def test_addition_with_infinity(self):
        assert (ExtReal(1) + INFINITY).is_infinite
        assert (INFINITY + INFINITY).is_infinite

    def test_multiplication(self):
        assert ExtReal(Fraction(2, 3)) * ExtReal(Fraction(3, 4)) == Fraction(1, 2)

    def test_zero_times_infinity_is_zero(self):
        # The measure-theoretic convention the wp rules rely on.
        assert ExtReal(0) * INFINITY == ExtReal(0)
        assert INFINITY * ExtReal(0) == ExtReal(0)

    def test_scale(self):
        assert ExtReal(Fraction(1, 2)).scale(Fraction(2, 3)) == Fraction(1, 3)
        assert INFINITY.scale(Fraction(0)) == ExtReal(0)
        assert INFINITY.scale(Fraction(1, 2)).is_infinite

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            ExtReal(1).scale(Fraction(-1))

    def test_division(self):
        assert ExtReal(1) / ExtReal(Fraction(1, 3)) == Fraction(3)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            ExtReal(1) / ExtReal(0)

    def test_infinity_division(self):
        assert (INFINITY / ExtReal(2)).is_infinite
        assert ExtReal(2) / INFINITY == ExtReal(0)
        with pytest.raises(ArithmeticError):
            INFINITY / INFINITY

    def test_subtraction(self):
        assert ExtReal(1) - ExtReal(Fraction(1, 4)) == Fraction(3, 4)

    def test_subtraction_below_zero_rejected(self):
        with pytest.raises(ValueError):
            ExtReal(0) - ExtReal(1)


class TestOrder:
    def test_total_order_on_finite(self):
        assert ExtReal(1) < ExtReal(2) <= ExtReal(2)

    def test_infinity_is_top(self):
        assert ExtReal(10**12) < INFINITY
        assert INFINITY <= INFINITY

    def test_distance(self):
        assert ExtReal(3).distance(ExtReal(1)) == ExtReal(2)
        assert INFINITY.distance(INFINITY) == ExtReal(0)
        assert INFINITY.distance(ExtReal(1)).is_infinite

    def test_comparison_with_numbers(self):
        assert ExtReal(Fraction(1, 2)) == Fraction(1, 2)
        assert ExtReal(2) == 2
        assert not ExtReal(2) == True  # noqa: E712 -- bool is not a value


class TestConversion:
    def test_float(self):
        assert float(ExtReal(Fraction(1, 4))) == 0.25
        assert float(INFINITY) == float("inf")

    def test_as_fraction_raises_on_infinity(self):
        with pytest.raises(OverflowError):
            INFINITY.as_fraction()
