"""Cross-oracle validation: the enumeration engine, the fixpoint
semantics, the debias transformation, and the MH kernel checked against
one another on common ground.

These tests intentionally pair *independent* implementations: path
enumeration (worklist over exact masses) knows nothing of the fixpoint
solver (structural recursion + linear algebra / Kleene iteration), and
the MH kernel knows nothing of either -- agreement is evidence against
whole classes of implementation bugs, in the spirit of the paper's
ProbFuzz discussion (Section 6).
"""

from collections import Counter
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.source import SystemBits
from repro.cftree.debias import debias
from repro.cftree.elim import elim_choices
from repro.cftree.semantics import twp
from repro.cftree.tree import Choice as TChoice, Fail, Leaf
from repro.inference import enumerate_paths
from repro.lang.state import State
from repro.lang.syntax import Assign, Choice
from repro.mcmc import ACCEPTED, mh_step, replay
from statistical import assert_frequency
from tests.strategies import cf_trees

THIRD = Fraction(1, 3)


def _leaf_values(tree):
    if isinstance(tree, Leaf):
        return {tree.value}
    if isinstance(tree, Fail):
        return set()
    return _leaf_values(tree.left) | _leaf_values(tree.right)


@settings(max_examples=40)
@given(tree=cf_trees())
def test_enumeration_agrees_with_twp_on_finite_trees(tree):
    """Both oracles are exact on finite trees: point-mass equality."""
    account = enumerate_paths(tree, max_expansions=100_000)
    assert account.unresolved == 0
    for value in _leaf_values(tree):
        expected = twp(tree, lambda v, target=value: 1 if v == target else 0)
        assert account.unconditional_bounds(value).lo == expected.as_fraction()
    # Failure mass agrees with twp_true - twp_false of the constant 1.
    fail_mass = twp(tree, lambda _v: 1, flag=True) - twp(tree, lambda _v: 1)
    assert account.fail == fail_mass.as_fraction()


@settings(max_examples=25)
@given(tree=cf_trees())
def test_debias_soundness_via_enumeration_oracle(tree):
    """Theorem 3.8 checked by an oracle that never computes twp: the
    enumerated outcome bounds of ``debias(t)`` must bracket the exact
    enumerated masses of ``t``."""
    exact = enumerate_paths(tree, max_expansions=100_000)
    assert exact.unresolved == 0
    debiased = enumerate_paths(
        debias(elim_choices(tree)),
        max_expansions=50_000,
        mass_tol=Fraction(1, 2**30),
    )
    for value in _leaf_values(tree):
        target = exact.unconditional_bounds(value).lo
        assert debiased.unconditional_bounds(value).contains(target)
    assert debiased.fail_bounds().contains(exact.fail)


class TestKernelTransitionFrequencies:
    """The MH kernel's *transition* probabilities (not just its
    stationary distribution) on the one-site biased coin, where they
    have closed forms: prior proposals give alpha = 1, so
    P(move to heads) = 1/3 and P(move to tails) = 2/3 from any state."""

    def _chain_moves(self, start_heads: bool, n: int):
        program = Choice(THIRD, Assign("x", 1), Assign("x", 0))
        source = SystemBits(42 if start_heads else 43)
        # Manufacture a starting trace with the requested value by
        # forward-sampling until it appears.
        while True:
            current = replay(program, State(), source=source)
            if bool(current.state["x"]) == start_heads:
                break
        moves = Counter()
        for _ in range(n):
            step = mh_step(
                program, State(), current.trace, current.state, source
            )
            assert step.outcome == ACCEPTED  # alpha is exactly 1 here
            moves[step.state["x"]] += 1
        return moves

    def test_from_tails(self):
        # Exact transition probability, exact CP check (was a 0.03
        # hand-tuned tolerance).
        n = 4000
        moves = self._chain_moves(start_heads=False, n=n)
        assert_frequency(moves[1], n, Fraction(1, 3))

    def test_from_heads(self):
        n = 4000
        moves = self._chain_moves(start_heads=True, n=n)
        assert_frequency(moves[0], n, Fraction(2, 3))


def test_enumeration_vs_sampling_on_fixed_tree():
    """A hand-built biased tree: enumeration masses are exact; a large
    sampling run (the pipeline's bit-level executor) agrees within
    binomial noise."""
    from repro.lang.interp import _run_tree

    tree = TChoice(
        Fraction(3, 4),
        TChoice(Fraction(1, 2), Leaf("a"), Leaf("b")),
        Leaf("c"),
    )
    debiased = debias(tree)
    account = enumerate_paths(tree)
    assert account.terminal == {
        "a": Fraction(3, 8),
        "b": Fraction(3, 8),
        "c": Fraction(1, 4),
    }
    source = SystemBits(7)
    n = 8000
    counts = Counter(_run_tree(debiased, source) for _ in range(n))
    # Enumeration masses are exact on a finite tree, so each count gets
    # an exact CP check (was a 0.02 hand-tuned tolerance).
    for value, mass in account.terminal.items():
        assert_frequency(counts[value], n, mass)
