"""Unit tests for the lexer (repro.lang.lexer)."""

import pytest

from repro.lang.errors import ParseError
from repro.lang.lexer import (
    KIND_EOF,
    KIND_IDENT,
    KIND_INT,
    KIND_KEYWORD,
    KIND_OP,
    tokenize,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == KIND_EOF

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("while whilex")
        assert tokens[0].kind == KIND_KEYWORD
        assert tokens[1].kind == KIND_IDENT

    def test_numbers(self):
        tokens = tokenize("42 007")
        assert tokens[0] == tokens[0]._replace(kind=KIND_INT, text="42")
        assert tokens[1].text == "007"

    def test_comments_skipped(self):
        assert texts("x # the rest is gone\ny") == ["x", "y"]


class TestMaximalMunch:
    def test_two_char_operators(self):
        assert texts("x := y <~ z <= w == v") == [
            "x", ":=", "y", "<~", "z", "<=", "w", "==", "v",
        ]

    def test_floor_div_vs_div(self):
        assert texts("a // b / c") == ["a", "//", "b", "/", "c"]

    def test_lt_followed_by_minus(self):
        # ':=' assignment avoids the classic '<-' vs '< -' ambiguity,
        # but '<' followed by '-' must still lex as two tokens.
        assert texts("x < -1") == ["x", "<", "-", "1"]

    def test_and_or_symbols(self):
        assert texts("a && b || !c") == ["a", "&&", "b", "||", "!", "c"]


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("x\n  y")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(ParseError) as err:
            tokenize("x\n  @")
        assert err.value.line == 2
        assert err.value.column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("x $ y")
