"""Unit tests for the CF tree type, monad, and semantics (Section 3.1-3.2)."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.cftree.monad import bind, fmap
from repro.cftree.semantics import TreeConditioningError, tcwp, twlp, twp
from repro.cftree.tree import Choice, Fail, Fix, LOOPBACK, Leaf
from repro.semantics.extreal import ExtReal
from tests.strategies import cf_trees


class TestTreeType:
    def test_choice_validates_bias(self):
        with pytest.raises(ValueError):
            Choice(Fraction(3, 2), Leaf(0), Leaf(1))

    def test_choice_requires_trees(self):
        with pytest.raises(TypeError):
            Choice(Fraction(1, 2), Leaf(0), "nope")

    def test_structural_equality(self):
        a = Choice(Fraction(1, 2), Leaf(1), Fail())
        b = Choice(Fraction(1, 2), Leaf(1), Fail())
        assert a == b and hash(a) == hash(b)

    def test_fix_identity_equality(self):
        fix_a = Fix(0, lambda s: False, Leaf, Leaf)
        fix_b = Fix(0, lambda s: False, Leaf, Leaf)
        assert fix_a == fix_a
        assert fix_a != fix_b

    def test_loopback_singleton(self):
        from repro.cftree.tree import _Loopback

        assert _Loopback() is LOOPBACK


class TestMonad:
    def test_bind_left_identity(self):
        # return a >>= k  ==  k a
        k = lambda v: Choice(Fraction(1, 2), Leaf(v), Leaf(v + 1))
        assert bind(Leaf(3), k) == k(3)

    @given(cf_trees(3))
    def test_bind_right_identity(self, tree):
        assert bind(tree, Leaf) == tree

    @given(cf_trees(2))
    def test_bind_associativity(self, tree):
        k1 = lambda v: Choice(Fraction(1, 3), Leaf(v), Fail())
        k2 = lambda v: Leaf(v + 1)
        lhs = bind(bind(tree, k1), k2)
        rhs = bind(tree, lambda v: bind(k1(v), k2))
        assert lhs == rhs

    def test_fail_absorbs(self):
        assert bind(Fail(), lambda v: Leaf(v)) == Fail()

    def test_fmap(self):
        tree = Choice(Fraction(1, 2), Leaf(1), Leaf(2))
        assert fmap(tree, lambda v: v * 10) == Choice(
            Fraction(1, 2), Leaf(10), Leaf(20)
        )

    def test_bind_defers_into_fix_continuation(self):
        fix = Fix(0, lambda s: False, Leaf, Leaf)
        bound = bind(fix, lambda v: Leaf(v + 1))
        assert isinstance(bound, Fix)
        # The continuation now maps straight into the bound function.
        assert twp(bound, lambda v: v) == twp(fix, lambda v: v + 1)


class TestTwp:
    def test_leaf(self):
        assert twp(Leaf(7), lambda v: v) == ExtReal(7)

    def test_fail_flag(self):
        assert twp(Fail(), lambda v: 1) == ExtReal(0)
        assert twp(Fail(), lambda v: 1, flag=True) == ExtReal(1)

    def test_choice_mixes(self):
        tree = Choice(Fraction(1, 4), Leaf(1), Leaf(0))
        assert twp(tree, lambda v: v) == ExtReal(Fraction(1, 4))

    def test_degenerate_biases_shortcut(self):
        tree = Choice(Fraction(0), Fail(), Leaf(1))
        assert twp(tree, lambda v: v) == ExtReal(1)
        tree = Choice(Fraction(1), Leaf(1), Fail())
        assert twp(tree, lambda v: v) == ExtReal(1)

    def test_fix_restart_loop(self):
        # Loop: flip fair coin; loopback on tails; leaf 1 on heads.
        flips = Choice(Fraction(1, 2), Leaf(1), Leaf(LOOPBACK))
        tree = Fix(
            LOOPBACK,
            lambda s: s is LOOPBACK,
            lambda s: flips,
            lambda s: Leaf(s),
        )
        assert twp(tree, lambda v: 1 if v == 1 else 0) == ExtReal(1)

    @given(cf_trees(3))
    def test_twp_linear_in_f(self, tree):
        f = lambda v: v
        g = lambda v: v * v
        combined = twp(tree, lambda v: f(v) + g(v))
        assert combined == twp(tree, f) + twp(tree, g)

    @given(cf_trees(3))
    def test_mass_conservation(self, tree):
        # success + failure mass = 1 for finite trees.
        success = twp(tree, lambda v: 1)
        with_failure = twp(tree, lambda v: 1, flag=True)
        assert with_failure == ExtReal(1)
        assert success <= ExtReal(1)


class TestTwlpAndTcwp:
    def test_twlp_counts_divergence(self):
        diverge = Fix(0, lambda s: True, lambda s: Leaf(s), Leaf)
        assert twp(diverge, lambda v: 1) == ExtReal(0)
        assert twlp(diverge, lambda v: 1) == ExtReal(1)

    def test_tcwp_renormalizes(self):
        tree = Choice(Fraction(1, 2), Leaf(1), Fail())
        assert tcwp(tree, lambda v: 1 if v == 1 else 0) == ExtReal(1)

    def test_tcwp_all_fail_raises(self):
        with pytest.raises(TreeConditioningError):
            tcwp(Fail(), lambda v: 1)

    @given(cf_trees(3))
    def test_twlp_dominates_twp(self, tree):
        f = lambda v: Fraction(1, 2)
        assert twp(tree, f) <= twlp(tree, f)
