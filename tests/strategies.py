"""Hypothesis strategies for cpGCL programs, expressions, and CF trees.

Generation is type-directed: numeric and boolean expressions are drawn
from separate strategies so generated programs always evaluate without
type errors.  Loop-free program generation is the workhorse of the
compiler-correctness property tests (Theorem 3.7 is checked *exactly* on
every generated program).
"""

from fractions import Fraction

from hypothesis import strategies as st

from repro.cftree.tree import Choice as TChoice, Fail, Leaf
from repro.lang.expr import BinOp, Call, Lit, UnOp, Var
from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
)

VAR_NAMES = ("x", "y", "z")

probabilities = st.builds(
    Fraction,
    st.integers(min_value=0, max_value=16),
    st.just(16),
)

strict_probabilities = st.builds(
    Fraction,
    st.integers(min_value=1, max_value=15),
    st.just(16),
)

small_ints = st.integers(min_value=-8, max_value=8)

var_names = st.sampled_from(VAR_NAMES)


def numeric_expr(depth: int = 2):
    """Integer-valued expressions over the fixed variable set."""
    base = st.one_of(
        st.builds(Lit, small_ints),
        st.builds(Var, var_names),
    )
    if depth <= 0:
        return base
    sub = numeric_expr(depth - 1)
    return st.one_of(
        base,
        st.builds(
            BinOp,
            st.sampled_from(["+", "-", "*"]),
            sub,
            sub,
        ),
        st.builds(UnOp, st.just("-"), sub),
        st.builds(lambda a: Call("abs", [a]), sub),
    )


def bool_expr(depth: int = 2):
    """Boolean-valued expressions over the fixed variable set."""
    base = st.one_of(
        st.builds(Lit, st.booleans()),
        st.builds(
            BinOp,
            st.sampled_from(["<", "<=", "==", "!=", ">", ">="]),
            numeric_expr(1),
            numeric_expr(1),
        ),
        st.builds(lambda a: Call("even", [a]), numeric_expr(1)),
    )
    if depth <= 0:
        return base
    sub = bool_expr(depth - 1)
    return st.one_of(
        base,
        st.builds(BinOp, st.sampled_from(["and", "or"]), sub, sub),
        st.builds(UnOp, st.just("not"), sub),
    )


def loop_free_command(depth: int = 3, allow_observe: bool = True):
    """Loop-free cpGCL commands (the Theorem 3.7 exact-check domain)."""
    leaves = [
        st.just(Skip()),
        st.builds(Assign, var_names, numeric_expr(2)),
        st.builds(Uniform, st.integers(min_value=1, max_value=6), var_names),
    ]
    if allow_observe:
        leaves.append(st.builds(Observe, bool_expr(1)))
    base = st.one_of(*leaves)
    if depth <= 0:
        return base
    sub = loop_free_command(depth - 1, allow_observe)
    return st.one_of(
        base,
        st.builds(Seq, sub, sub),
        st.builds(Ite, bool_expr(1), sub, sub),
        st.builds(Choice, probabilities, sub, sub),
    )


def commands_with_loops(depth: int = 2):
    """Commands that may contain (almost-surely terminating) loops.

    Loops are built from a template guaranteed to terminate: a geometric
    retry on a fresh counter bounded by a small constant, so wp/tcwp
    iteration always converges quickly.
    """
    bounded_loop = st.builds(
        lambda body, bound: Seq(
            Assign("k", Lit(0)),
            _bounded_while(body, bound),
        ),
        loop_free_command(1, allow_observe=False),
        st.integers(min_value=1, max_value=3),
    )
    sub = loop_free_command(depth, allow_observe=True)
    return st.one_of(sub, st.builds(Seq, sub, bounded_loop))


def _bounded_while(body, bound):
    from repro.lang.syntax import While

    guard = BinOp("<", Var("k"), Lit(bound))
    increment = Assign("k", BinOp("+", Var("k"), Lit(1)))
    return While(guard, Seq(body, increment))


def cf_trees(depth: int = 3):
    """Finite CF trees over small integer leaves (no Fix nodes --
    those carry functions and are exercised through compiled programs)."""
    base = st.one_of(
        st.builds(Leaf, st.integers(min_value=0, max_value=5)),
        st.just(Fail()),
    )
    if depth <= 0:
        return base
    sub = cf_trees(depth - 1)
    return st.one_of(base, st.builds(TChoice, probabilities, sub, sub))


# Generated expressions read x/y/z numerically, so generated states bind
# them to integers only; boolean-valued bindings go to separate names.
states = st.builds(
    lambda pairs: State(dict(pairs)),
    st.lists(st.tuples(var_names, small_ints), max_size=3),
)

mixed_states = st.builds(
    lambda pairs, flags: State({**dict(pairs), **dict(flags)}),
    st.lists(st.tuples(var_names, small_ints), max_size=3),
    st.lists(st.tuples(st.sampled_from(("b", "c")), st.booleans()), max_size=2),
)
