"""The native backend: generated C kernels for closed tables (ISSUE 10).

The contract under test, in order of importance:

1. **Bit-stream preservation.**  ``backend="native"`` is bit-for-bit
   identical to the sequential reference (and the pooled Python
   backend) at every seed: same payload stream, same per-sample bit
   counts.  This holds on closed tables (the kernel runs) *and* on
   refusals (open tables, fuel, disabled env), where the observable
   downgrade re-runs the pooled Python driver on the same pool.

2. **Digest-keyed kernel cache.**  The kernel digest is computed over a
   canonical discovery-order renumbering, so the same program reaches
   the same ``.so`` regardless of expansion history or process; a warm
   disk store means a fresh process never invokes the C compiler, and a
   corrupted entry is recompiled -- never executed.

3. **Observability.**  Every refusal surfaces as a
   ``"native-unavailable: ..."`` fallback note; kernel cache tier and
   compile time land in telemetry records; the tuner only offers the
   ``native`` arm when a compiler exists.

4. **The numpy contrast.**  The numpy backend's lane scheduling makes
   its stream depend on table *layout* (expansion history), so no
   identical-stream assertion can pin it across histories -- the gap
   documented in ``docs/architecture.md``.  Here we pin what *is*
   invariant: the sequential/native tiers are layout-insensitive
   bit-for-bit, and the numpy stream stays distributionally exact
   (Clopper-Pearson at alpha=1e-9) under every expansion history.
"""

import os
from fractions import Fraction

import pytest

from repro.compiler.cache import CompilationCache
from repro.compiler.liveness import narrow_command
from repro.compiler.pipeline import Pipeline
from repro.engine import collect_auto
from repro.engine.native import (
    KernelUnsupported,
    build_kernel,
    collect_kernel,
    compiler_invocations,
    encode_table,
    encoded_digest,
    kernel_for,
    kernel_status,
    native_available,
    reset_kernel_runtime,
)
from repro.engine.pool import HAVE_NUMPY
from repro.engine.profile import profile_named
from repro.engine.tuner import EngineTuner
from repro.lang.expr import Var
from repro.lang.sugar import (
    dueling_coins,
    geometric_primes,
    hare_tortoise,
    n_sided_die,
)
from repro.telemetry import configure_telemetry, read_records

from tests.statistical import assert_pmf

requires_native = pytest.mark.skipif(
    not native_available(),
    reason="no C compiler available (or ZAR_NATIVE_DISABLE set)",
)

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy absent")


@pytest.fixture(autouse=True)
def _isolate_runtime():
    """Tests mutate the kernel runtime (cache dirs, forced bindings);
    reset it afterwards so no test sees another's memory tier."""
    yield
    reset_kernel_runtime()
    configure_telemetry(None)


def _compile(command):
    return Pipeline(use_cache=False).compile(command)


def _stream(command, n, seed, backend, extract=None, fuel=None):
    """(values, bits) via ``collect_auto`` at a pinned backend."""
    result = collect_auto(
        command, n, seed=seed, extract=extract, backend=backend, fuel=fuel
    )
    return result.samples.values, result.samples.bits


# -- 1. bit-stream preservation ------------------------------------------

DIFFERENTIAL = [
    ("die6", n_sided_die(6), lambda s: s["x"], 400),
    ("die200", n_sided_die(200), lambda s: s["x"], 250),
    ("dueling_2_3", dueling_coins(Fraction(2, 3)), lambda s: s["a"], 250),
    ("dueling_1_20", dueling_coins(Fraction(1, 20)), lambda s: s["a"], 120),
    # Open table: native refuses, downgrade must stay bit-identical.
    ("geometric", geometric_primes(Fraction(1, 2)), lambda s: s["h"], 150),
]


@requires_native
class TestDifferential:
    @pytest.mark.parametrize(
        "name,command,extract,n",
        DIFFERENTIAL,
        ids=[case[0] for case in DIFFERENTIAL],
    )
    @pytest.mark.parametrize("seed", [0, 11, 20260808])
    def test_native_matches_sequential_and_python(
        self, name, command, extract, n, seed
    ):
        native = _stream(command, n, seed, "native", extract)
        assert native == _stream(command, n, seed, "sequential", extract)
        assert native == _stream(command, n, seed, "python", extract)

    def test_open_table_downgrade_is_observable(self):
        result = collect_auto(
            geometric_primes(Fraction(1, 2)), 50, seed=3, backend="native"
        )
        assert result.engine == "batch"
        assert result.fallback_reason is not None
        assert result.fallback_reason.startswith("native-unavailable:")
        assert "open table" in result.fallback_reason

    def test_fuel_metering_refuses_native(self):
        # Fuel counts Python-driver node visits; the kernel has no such
        # notion, so metered runs must stay on the exact Python path.
        command = n_sided_die(6)
        result = collect_auto(command, 60, seed=5, backend="native", fuel=500)
        assert result.fallback_reason is not None
        assert "fuel" in result.fallback_reason
        assert (result.samples.values, result.samples.bits) == _stream(
            command, 60, 5, "python", None, fuel=500
        )

    def test_thawed_fig9b_matches_sequential(self, tmp_path):
        # The fig9b resume path (narrowed hare/tortoise): OP_CALL rows
        # make the table natively unsupported, so ``backend="native"``
        # on the thawed program must downgrade and still be bit-for-bit
        # the sequential stream.
        command = narrow_command(
            hare_tortoise(Var("time") <= 10), observed=("t0", "time")
        )
        disk = str(tmp_path / "store")
        cache = CompilationCache(capacity=8, disk_dir=disk)
        program = Pipeline(cache=cache).compile(command)
        program.collect(120, seed=23, backend="python")  # warm trajectories
        cache.put(program.digest, program)

        fresh = Pipeline(cache=CompilationCache(capacity=8, disk_dir=disk))
        thawed = fresh.compile(command)
        assert thawed.source == "disk"

        def run(backend):
            result = thawed.collect(
                80, seed=91, extract=lambda s: s["t0"], backend=backend
            )
            return result.values, result.bits

        assert run("native") == run("sequential")


# -- 2. canonical encoding and the digest --------------------------------

@requires_native
class TestEncoding:
    def test_digest_stable_across_fresh_compiles(self):
        first = encoded_digest(encode_table(_compile(n_sided_die(6)).table))
        second = encoded_digest(encode_table(_compile(n_sided_die(6)).table))
        assert first == second

    def test_digest_stable_across_expansion_histories(self):
        # die2000 compiles with ~1000 pending stubs.  History A: closed
        # by the native resolver's bounded expansion.  History B: warmed
        # along sampled trajectories first (rows -- and payload indices
        # -- land in a different physical order), then closed.  The
        # discovery-order renumbering of rows *and* leaf codes must
        # erase the layout difference: same digest, so history B rides
        # the kernel history A compiled (memory tier, no compiler
        # work), with its own payload map making the mapped streams
        # bit-for-bit equal.
        reset_kernel_runtime()
        a = _compile(n_sided_die(2000))
        assert a.table.pending_stubs > 0
        kernel_a, reason_a, info_a = kernel_for(a.table)
        assert kernel_a is not None, reason_a

        before = compiler_invocations()
        b = _compile(n_sided_die(2000))
        b.collect(64, seed=99, backend="python")  # trajectory-order rows
        kernel_b, reason_b, info_b = kernel_for(b.table)
        assert kernel_b is not None, reason_b
        assert info_a["digest"] == info_b["digest"]
        assert info_b["tier"] == "memory"
        assert compiler_invocations() == before

        def run(program):
            result = program.collect(
                400, seed=5, extract=lambda s: s["x"], backend="native"
            )
            return result.values, result.bits

        assert run(a) == run(b)

    def test_open_table_refused_by_encoder(self):
        table = _compile(geometric_primes(Fraction(1, 2))).table
        with pytest.raises(KernelUnsupported):
            encode_table(table)

    def test_call_rows_refused_by_encoder(self):
        command = narrow_command(
            hare_tortoise(Var("time") <= 10), observed=("t0", "time")
        )
        program = _compile(command)
        program.collect(60, seed=7, backend="python")
        with pytest.raises(KernelUnsupported):
            encode_table(program.table)


# -- 3. cache tiers: cold / warm / fresh-process / corrupted -------------

@requires_native
class TestKernelCache:
    def test_cold_warm_disk_streams_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ZAR_NATIVE_CACHE_DIR", str(tmp_path))
        reset_kernel_runtime()
        table = _compile(n_sided_die(6)).table
        before = compiler_invocations()

        kernel, reason, info = kernel_for(table)
        assert kernel is not None, reason
        assert info["tier"] == "compiled"
        assert info["compile_ms"] > 0
        assert compiler_invocations() == before + 1
        assert os.path.exists(info["c_path"])  # kept for the CI artifact
        cold = collect_kernel(kernel, 500, seed=9)

        # Same process: memory tier, no compiler work.
        kernel2, _, info2 = kernel_for(table)
        assert info2["tier"] == "memory"
        assert compiler_invocations() == before + 1
        assert collect_kernel(kernel2, 500, seed=9) == cold

        # "Fresh process" (runtime reset) against the warm store: disk
        # tier, still no compiler work, identical stream.
        reset_kernel_runtime()
        fresh_table = _compile(n_sided_die(6)).table
        kernel3, _, info3 = kernel_for(fresh_table)
        assert info3["tier"] == "disk"
        assert info3["digest"] == info["digest"]
        assert compiler_invocations() == before + 1
        assert collect_kernel(kernel3, 500, seed=9) == cold

    def test_corrupted_cache_entry_recompiles(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ZAR_NATIVE_CACHE_DIR", str(tmp_path))
        reset_kernel_runtime()
        table = _compile(n_sided_die(6)).table
        kernel, _, info = kernel_for(table)
        want = collect_kernel(kernel, 300, seed=4)

        # Truncate/garble every cached object, then simulate a fresh
        # process.  A garbled entry must fail validation and be rebuilt
        # from source -- never executed.
        so_paths = [
            os.path.join(str(tmp_path), name)
            for name in os.listdir(str(tmp_path))
            if name.endswith(".so")
        ]
        assert so_paths
        for path in so_paths:
            with open(path, "wb") as handle:
                handle.write(b"\x7fELF not really a shared object")
        reset_kernel_runtime()
        before = compiler_invocations()
        fresh_table = _compile(n_sided_die(6)).table
        kernel2, reason, info2 = kernel_for(fresh_table)
        assert kernel2 is not None, reason
        assert info2["tier"] == "compiled"
        assert compiler_invocations() == before + 1
        assert collect_kernel(kernel2, 300, seed=4) == want

    def test_stale_digest_entry_recompiles(self, tmp_path):
        # A cached object whose embedded digest disagrees with its file
        # name (e.g. a hand-edited store) must also be dropped.
        table6 = _compile(n_sided_die(6)).table
        table8 = _compile(n_sided_die(8)).table
        enc6, enc8 = encode_table(table6), encode_table(table8)
        d6, d8 = encoded_digest(enc6), encoded_digest(enc8)
        assert d6 != d8
        cache = str(tmp_path)
        kernel6, info6 = build_kernel(enc6, cache_dir=cache)
        # Masquerade die6's object under die8's key.
        so6 = [p for p in os.listdir(cache) if p.endswith(".so")][0]
        bogus = os.path.join(cache, so6.replace(d6, d8))
        with open(os.path.join(cache, so6), "rb") as src:
            payload = src.read()
        with open(bogus, "wb") as dst:
            dst.write(payload)
        reset_kernel_runtime()
        before = compiler_invocations()
        kernel8, info8 = build_kernel(enc8, cache_dir=cache)
        assert info8["tier"] == "compiled"
        assert compiler_invocations() == before + 1
        assert kernel8.digest == d8

    def test_ctypes_binding_matches_cffi(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ZAR_NATIVE_CACHE_DIR", str(tmp_path))
        command = dueling_coins(Fraction(1, 3))
        reset_kernel_runtime()
        default = _stream(command, 300, 17, "native", lambda s: s["a"])

        monkeypatch.setenv("ZAR_NATIVE_FORCE_CTYPES", "1")
        reset_kernel_runtime()
        table = _compile(command).table
        kernel, reason, _ = kernel_for(table)
        assert kernel is not None, reason
        assert kernel.kernel.binding.name == "ctypes"
        forced = _stream(command, 300, 17, "native", lambda s: s["a"])
        assert forced == default


# -- 4. degraded environments --------------------------------------------

class TestDegraded:
    """These run (and matter most) on the CI leg where cffi and the C
    toolchain are absent or disabled: the downgrade must be observable
    and bit-identical, never an error."""

    def test_disabled_env_downgrades_bit_identically(self, monkeypatch):
        monkeypatch.setenv("ZAR_NATIVE_DISABLE", "1")
        command = n_sided_die(6)
        result = collect_auto(command, 200, seed=13, backend="native")
        assert result.fallback_reason == (
            "native-unavailable: disabled via ZAR_NATIVE_DISABLE"
        )
        assert (result.samples.values, result.samples.bits) == _stream(
            command, 200, 13, "python"
        )
        assert (result.samples.values, result.samples.bits) == _stream(
            command, 200, 13, "sequential"
        )

    def test_missing_compiler_downgrades_bit_identically(self, monkeypatch):
        # Clear the disable knob so this exercises the *compiler* path
        # even on the CI leg that exports ZAR_NATIVE_DISABLE=1.
        monkeypatch.delenv("ZAR_NATIVE_DISABLE", raising=False)
        monkeypatch.setattr(
            "repro.engine.native.kernel.find_compiler", lambda: None
        )
        command = dueling_coins(Fraction(2, 3))
        result = collect_auto(command, 150, seed=7, backend="native")
        assert result.fallback_reason is not None
        assert result.fallback_reason.startswith("native-unavailable:")
        assert "compiler" in result.fallback_reason
        assert (result.samples.values, result.samples.bits) == _stream(
            command, 150, 7, "python"
        )

    def test_broken_compiler_downgrades_bit_identically(
        self, tmp_path, monkeypatch
    ):
        # An explicit ZAR_NATIVE_CC that cannot run: the compile attempt
        # fails, the reason says so, and the samples still come back.
        monkeypatch.delenv("ZAR_NATIVE_DISABLE", raising=False)
        monkeypatch.setenv("ZAR_NATIVE_CC", str(tmp_path / "missing-cc"))
        monkeypatch.setenv("ZAR_NATIVE_CACHE_DIR", str(tmp_path / "cache"))
        reset_kernel_runtime()
        command = n_sided_die(6)
        result = collect_auto(command, 100, seed=21, backend="native")
        assert result.fallback_reason is not None
        assert result.fallback_reason.startswith(
            "native-unavailable: kernel compile failed"
        )
        assert (result.samples.values, result.samples.bits) == _stream(
            command, 100, 21, "python"
        )


# -- 5. seams: profile, tuner, telemetry, status line --------------------

@requires_native
class TestSeams:
    def test_native_profile_runs_the_kernel(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ZAR_NATIVE_CACHE_DIR", str(tmp_path))
        reset_kernel_runtime()
        profile = profile_named("native")
        result = collect_auto(
            n_sided_die(6), 200, seed=3, profile=profile,
            extract=lambda s: s["x"],
        )
        assert result.engine == "batch"
        assert result.fallback_reason is None
        assert result.profile is profile

    def test_tuner_offers_native_arm_when_available(self):
        assert "native" in EngineTuner().candidates()

    def test_tuner_drops_native_arm_when_unavailable(self, monkeypatch):
        monkeypatch.setenv("ZAR_NATIVE_DISABLE", "1")
        assert "native" not in EngineTuner().candidates()

    def test_telemetry_records_kernel_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ZAR_NATIVE_CACHE_DIR", str(tmp_path / "kernels"))
        reset_kernel_runtime()
        configure_telemetry(str(tmp_path / "tel"))
        collect_auto(n_sided_die(6), 50, seed=3,
                     profile=profile_named("native"))
        collect_auto(n_sided_die(6), 50, seed=3,
                     profile=profile_named("native"))
        first, second = read_records()
        assert first["backend"] == "native"
        assert first["kernel_cache"] == "compiled"
        assert first["kernel_compile_ms"] > 0
        assert second["kernel_cache"] == "memory"
        assert second["kernel_compile_ms"] is None

    def test_telemetry_records_fallback(self, tmp_path):
        configure_telemetry(str(tmp_path))
        collect_auto(geometric_primes(Fraction(1, 2)), 40, seed=3,
                     profile=profile_named("native"))
        [record] = read_records()
        assert record["fallback_reason"].startswith("native-unavailable:")
        assert record["kernel_cache"] is None

    def test_status_line_shapes(self):
        closed = _compile(n_sided_die(6)).table
        first = kernel_status(closed)
        assert first.startswith(("compiled (", "cached ("))
        assert "key " in first
        assert kernel_status(closed).startswith("cached (memory")
        open_table = _compile(geometric_primes(Fraction(1, 2))).table
        assert kernel_status(open_table).startswith("unavailable (open table")


# -- 6. the numpy lane-scheduling gap, pinned ----------------------------

def _prime_pmf(p=0.5, upto=31):
    """Exact posterior of geometric_primes: P(h) ~ p^h (1-p) on primes.

    Truncated at ``upto``; the tail mass (< 2^-32 at p=1/2) is orders
    of magnitude below the Clopper-Pearson resolution.
    """
    primes = [k for k in range(2, upto + 1)
              if all(k % d for d in range(2, k))]
    weights = {k: (p ** k) * (1 - p) for k in primes}
    total = sum(weights.values())
    return {k: w / total for k, w in weights.items()}


@requires_numpy
class TestNumpyLayoutGap:
    """Why the native differential above compares against *sequential*
    and *python* but never numpy: the numpy driver schedules lanes over
    the physical table layout, so its bit stream is a function of
    expansion history.  These tests pin the exact shape of that gap --
    sequential tiers are layout-insensitive bit-for-bit, numpy is
    pinned distributionally (order statistics against the exact pmf)
    under every history."""

    N = 4000
    SEED = 123

    def _histories(self):
        """The same open program under two expansion histories."""
        command = geometric_primes(Fraction(1, 2))
        cold = _compile(command)
        warmed = _compile(command)
        warmed.collect(200, seed=7, backend="python")  # different layout
        return cold, warmed

    def test_sequential_is_layout_insensitive(self):
        cold, warmed = self._histories()
        run = lambda p: p.collect(
            300, seed=self.SEED, extract=lambda s: s["h"], backend="python"
        )
        a, b = run(cold), run(warmed)
        assert (a.values, a.bits) == (b.values, b.bits)

    def test_numpy_stream_is_distributionally_exact_per_history(self):
        pmf = _prime_pmf()
        for program in self._histories():
            result = program.collect(
                self.N, seed=self.SEED, extract=lambda s: s["h"],
                backend="numpy",
            )
            assert_pmf(result.values, pmf, label="numpy/geometric")

    def test_numpy_histories_agree_on_order_statistics(self):
        # The streams themselves may (and do) diverge across layouts;
        # their order statistics must not drift.  At quantiles sitting
        # >= 0.1 away from every CDF jump (the CP band at n=4000 is
        # ~0.03 wide at alpha=1e-9), the empirical quantile of *every*
        # correct run equals the theoretical one, so the two histories
        # must agree exactly.
        pmf = _prime_pmf()
        support = sorted(pmf)

        def theoretical_quantile(q):
            running = 0.0
            for outcome in support:
                running += pmf[outcome]
                if running >= q:
                    return outcome
            return support[-1]

        cold, warmed = self._histories()
        run = lambda p: sorted(
            p.collect(self.N, seed=self.SEED, extract=lambda s: s["h"],
                      backend="numpy").values
        )
        a, b = run(cold), run(warmed)
        for quantile in (0.25, 0.5, 0.8):
            index = int(self.N * quantile)
            want = theoretical_quantile(quantile)
            assert a[index] == want
            assert b[index] == want
