"""Unit tests for the expression AST (repro.lang.expr)."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.lang.errors import EvalError
from repro.lang.expr import BinOp, Call, Lit, Opaque, UnOp, Var, to_expr
from repro.lang.state import State
from tests.strategies import bool_expr, numeric_expr, states


class TestLiteralsAndVars:
    def test_literal_eval(self):
        assert Lit(5).eval(State()) == 5
        assert Lit(True).eval(State()) is True

    def test_var_reads_state(self):
        assert Var("x").eval(State(x=7)) == 7

    def test_var_default_zero(self):
        assert Var("x").eval(State()) == 0

    def test_to_expr_lifts_constants(self):
        assert to_expr(3) == Lit(3)
        assert to_expr(Fraction(1, 2)) == Lit(Fraction(1, 2))

    def test_to_expr_passthrough(self):
        e = Var("x")
        assert to_expr(e) is e


class TestArithmetic:
    def test_operators_build_ast(self):
        e = Var("x") + 1
        assert e == BinOp("+", Var("x"), Lit(1))

    def test_add_sub_mul(self):
        s = State(x=3)
        assert (Var("x") + 4).eval(s) == 7
        assert (Var("x") - 5).eval(s) == -2
        assert (Var("x") * Var("x")).eval(s) == 9

    def test_exact_division(self):
        assert (Lit(2) / 3).eval(State()) == Fraction(2, 3)

    def test_floor_division(self):
        assert (Lit(7) // 2).eval(State()) == 3
        assert (Lit(-7) // 2).eval(State()) == -4

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            (Lit(1) / 0).eval(State())

    def test_modulo(self):
        assert (Lit(7) % 3).eval(State()) == 1

    def test_negation(self):
        assert (-Var("x")).eval(State(x=5)) == -5


class TestBooleans:
    def test_short_circuit_and(self):
        # The right operand would raise a type error if evaluated.
        e = BinOp("and", Lit(False), BinOp("and", Lit(3), Lit(4)))
        assert e.eval(State()) is False

    def test_short_circuit_or(self):
        e = BinOp("or", Lit(True), BinOp("and", Lit(3), Lit(4)))
        assert e.eval(State()) is True

    def test_not(self):
        assert (~Lit(True)).eval(State()) is False

    def test_comparisons(self):
        s = State(x=2)
        assert (Var("x") < 3).eval(s) is True
        assert (Var("x") >= 3).eval(s) is False
        assert Var("x").eq(2).eval(s) is True
        assert Var("x").ne(2).eval(s) is False

    def test_equality_bool_vs_int(self):
        assert Lit(True).eq(Lit(1)).eval(State()) is False

    def test_no_python_truth_value(self):
        with pytest.raises(TypeError):
            bool(Var("x"))


class TestStructural:
    def test_free_vars(self):
        e = (Var("x") + Var("y")) * Lit(2)
        assert e.free_vars() == {"x", "y"}

    def test_subst(self):
        e = Var("x") + Var("y")
        result = e.subst("x", Lit(10))
        assert result.eval(State(y=1)) == 11

    def test_subst_assignment_semantics(self):
        # wp(x := e, f) = f[x/e]: substitution then evaluation agrees
        # with evaluation in the updated state.
        e = Var("x") * Var("x") + Var("y")
        sigma = State(x=2, y=3)
        update = Var("y") + 1
        lhs = e.subst("x", update).eval(sigma)
        rhs = e.eval(sigma.set("x", update.eval(sigma)))
        assert lhs == rhs

    def test_hash_consistency(self):
        assert hash(Var("x") + 1) == hash(BinOp("+", Var("x"), Lit(1)))

    @given(numeric_expr(2), states)
    def test_numeric_exprs_evaluate(self, expr, sigma):
        value = expr.eval(sigma)
        assert isinstance(value, (int, Fraction))
        assert not isinstance(value, bool)

    @given(bool_expr(2), states)
    def test_bool_exprs_evaluate(self, expr, sigma):
        assert isinstance(expr.eval(sigma), bool)

    @given(numeric_expr(2), states)
    def test_subst_commutes_with_eval(self, expr, sigma):
        replaced = expr.subst("x", Lit(4))
        assert replaced.eval(sigma) == expr.eval(sigma.set("x", 4))


class TestOpaque:
    def test_eval(self):
        e = Opaque(lambda s: s.get("x") * 2, label="double")
        assert e.eval(State(x=21)) == 42

    def test_rejects_non_value_result(self):
        e = Opaque(lambda s: "boom")
        with pytest.raises(EvalError):
            e.eval(State())

    def test_subst_unsupported(self):
        e = Opaque(lambda s: 0)
        with pytest.raises(EvalError):
            e.subst("x", Lit(1))


class TestCall:
    def test_unknown_builtin(self):
        with pytest.raises(ValueError):
            Call("frobnicate", [])

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            Call("is_prime", [Lit(1), Lit(2)])
