"""Unit tests for the loop-fixpoint engine (repro.semantics.fixpoint).

The engine is exercised here through hand-built step functions (Markov
chains), independent of the wp/twp evaluators layered on top.
"""

from fractions import Fraction

import pytest

from repro.semantics.algebra import EXT_REAL
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import (
    ConvergenceError,
    LoopOptions,
    StateSpaceExceeded,
    solve_exact,
    solve_iterate,
    solve_loop,
)


def geometric_chain(p_continue: Fraction):
    """State 0 loops with probability p, exits to reward 1 otherwise."""

    def guard(s):
        return s == 0

    def step(s, h, alg):
        stay = alg.scale(p_continue, h(0))
        leave = alg.scale(1 - p_continue, h(1))
        return alg.add(stay, leave)

    def exit_value(_s):
        return ExtReal(1)

    return guard, step, exit_value


class TestExact:
    def test_geometric_chain_probability_one(self):
        guard, step, exit_value = geometric_chain(Fraction(1, 3))
        value = solve_exact(0, guard, step, exit_value, EXT_REAL, False)
        assert value == ExtReal(1)  # terminates almost surely

    def test_counting_chain(self):
        # States 0..3, each advances deterministically; reward at exit.
        def guard(s):
            return s < 3

        def step(s, h, alg):
            return h(s + 1)

        value = solve_exact(
            0, guard, step, lambda s: ExtReal(s), EXT_REAL, False
        )
        assert value == ExtReal(3)

    def test_state_space_cap(self):
        def guard(s):
            return True  # unbounded chain

        def step(s, h, alg):
            return h(s + 1)

        with pytest.raises(StateSpaceExceeded):
            solve_exact(
                0,
                guard,
                step,
                lambda s: ExtReal(0),
                EXT_REAL,
                False,
                LoopOptions(max_states=100),
            )

    def test_divergent_least_and_greatest(self):
        def guard(s):
            return True

        def step(s, h, alg):
            return h(s)

        least = solve_exact(0, guard, step, lambda s: ExtReal(1), EXT_REAL, False)
        greatest = solve_exact(0, guard, step, lambda s: ExtReal(1), EXT_REAL, True)
        assert least == ExtReal(0)
        assert greatest == ExtReal(1)


class TestIterate:
    def test_geometric_chain_converges(self):
        guard, step, exit_value = geometric_chain(Fraction(1, 2))
        value = solve_iterate(
            0, guard, step, exit_value, EXT_REAL, False,
            LoopOptions(tol=Fraction(1, 10**9)),
        )
        assert value.distance(ExtReal(1)) <= ExtReal(Fraction(1, 10**8))

    def test_long_deterministic_chain_not_truncated(self):
        # The value at the entry state stays 0 for 50 rounds and then
        # jumps to 1: premature "stability" must not end the iteration
        # (this is what the residual-mass criterion prevents).
        def guard(s):
            return s < 50

        def step(s, h, alg):
            return h(s + 1)

        value = solve_iterate(
            0, guard, step, lambda s: ExtReal(1), EXT_REAL, False
        )
        assert value == ExtReal(1)

    def test_divergent_loop_raises(self):
        def guard(s):
            return True

        def step(s, h, alg):
            return h(s)

        with pytest.raises(ConvergenceError):
            solve_iterate(
                0, guard, step, lambda s: ExtReal(1), EXT_REAL, False,
                LoopOptions(max_rounds=200),
            )


class TestSolveLoopDispatch:
    def test_guard_false_returns_exit(self):
        value = solve_loop(
            5,
            guard=lambda s: False,
            step=None,
            exit_value=lambda s: ExtReal(s),
            algebra=EXT_REAL,
            greatest=False,
        )
        assert value == ExtReal(5)

    def test_auto_falls_back_to_iteration(self):
        # Unbounded state space: exact raises, auto must fall back.
        def guard(s):
            return s >= 0

        def step(s, h, alg):
            # Move up with probability 1/2, exit otherwise.
            return alg.add(
                alg.scale(Fraction(1, 2), h(s + 1)),
                alg.scale(Fraction(1, 2), h(-1)),
            )

        value = solve_loop(
            0,
            guard=guard,
            step=step,
            exit_value=lambda s: ExtReal(1),
            algebra=EXT_REAL,
            greatest=False,
            options=LoopOptions(max_states=10),
        )
        assert value.distance(ExtReal(1)) <= ExtReal(Fraction(1, 10**10))

    def test_exact_strategy_propagates_cap(self):
        def guard(s):
            return s >= 0

        def step(s, h, alg):
            return h(s + 1)

        with pytest.raises(StateSpaceExceeded):
            solve_loop(
                0,
                guard=guard,
                step=step,
                exit_value=lambda s: ExtReal(0),
                algebra=EXT_REAL,
                greatest=False,
                options=LoopOptions(strategy="exact", max_states=10),
            )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            LoopOptions(strategy="guess")
