"""Certified-bounds oracle for the statistical test tier.

The paper's pitch is samplers whose correctness is *proved*; the
statistical tier should therefore test against *proved* answers, not
hand-derived constants.  This harness supplies them:

- A **registry** of benchmark programs (the sugar builders, the Fig. 1b
  conditioned geometric, a gap-form hare-tortoise, the Han-Hoshi
  baseline walk, and every non-broken program in ``examples/programs``).
- For each entry, **certified interval bounds** on the posterior
  marginal, computed once by fixpoint iteration over the CF-DAG
  (:mod:`repro.inference.fixpoint`) and content-addressed-cached in
  ``tests/oracle_cache/<name>.json`` keyed by the PR 4 digest scheme:
  the cache key folds in the program text, initial state, narrowing
  set, target width, and grid parameters, so any change to the program
  or the requested precision invalidates the entry and it is recomputed
  (and the committed JSON refreshed) transparently.
- **Assertion helpers** that check a seeded sample set against the
  bounds: for every value in the certified support, the Clopper-Pearson
  interval of its observed frequency must intersect the certified
  interval; values *outside* the certified support must be statistically
  consistent with the unresolved slack.  A correct sampler fails with
  probability at most ``alpha * |support|``; a sampler whose posterior
  is off by more than the certified width plus CP noise *must* fail.

Soundness of the cache: entries are only trusted when their recorded
digest matches the digest recomputed from the live registry definition,
and the deserialized intervals are re-validated (``0 <= lo <= hi <= 1``,
slack nonnegative).  A stale or hand-edited file is recomputed, never
silently believed.
"""

import ast
import json
from collections import Counter
from fractions import Fraction
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.baselines.han_hoshi import han_hoshi_tree
from repro.compiler.digest import fingerprint
from repro.inference import FixpointEngine, Interval, divide_bounds
from repro.inference.fixpoint import FLOOR_BITS, GRID_BITS
from repro.lang import sugar
from repro.lang.parser import parse_program
from repro.lang.state import State

from statistical import DEFAULT_ALPHA, frequency_interval

CACHE_DIR = Path(__file__).resolve().parent / "oracle_cache"
EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples" / "programs"

#: Bump to invalidate every cached bound (schema or engine changes).
SCHEME = "zar-oracle-1"

#: Gap-form hare-tortoise (Fig. 9): the race state collapses onto the
#: signed gap ``tortoise - hare`` (the guard and the jump dynamics only
#: read the gap), which is what makes certification tractable -- the raw
#: (tortoise, hare, time) state space defeats both enumeration and
#: fixpoint iteration.  ``observe gap >= -2`` conditions on a close
#: finish, keeping the posterior over the head start nontrivial.
HARE_TORTOISE_GAP = """
t0 <~ uniform(10);
gap := t0;
while gap > 0 {
    { jump <~ uniform(8); gap := gap + 1 - jump; } [2/5] { gap := gap + 1; };
}
observe gap >= 0 - 2;
"""


class OracleEntry:
    """One certified benchmark: how to build it, marginalize it, sample
    it, and how tight its bounds must be."""

    def __init__(
        self,
        name: str,
        build: Callable[[], object],
        var: Optional[str] = None,
        kind: str = "command",
        observed: Optional[Tuple[str, ...]] = None,
        width_bits: int = 22,
        max_sweeps: int = 100_000,
        projections: Optional[Dict[str, Callable[[object], object]]] = None,
    ):
        self.name = name
        self.build = build
        self.var = var
        self.kind = kind  # "command" | "tree"
        self.observed = observed
        self.width_bits = width_bits
        self.max_sweeps = max_sweeps
        if projections is None:
            if var is None:
                raise ValueError("command entries need a marginal var")
            projections = {"value": self._state_projection(var)}
        self.projections = projections

    @staticmethod
    def _state_projection(var: str):
        return lambda state: state[var]

    def digest(self) -> str:
        """Content address of the certified-bounds artifact."""
        if self.kind == "command":
            identity: object = self.build()
        else:
            # Trees hold closures (Undigestable); their registry entries
            # are addressed by name + the parameters listed here, so the
            # builder definition must bump SCHEME when its meaning moves.
            identity = ("tree", self.name)
        return fingerprint(
            SCHEME,
            identity,
            self.observed,
            self.width_bits,
            self.max_sweeps,
            GRID_BITS,
            FLOOR_BITS,
            tuple(sorted(self.projections)),
        )


def _example(path: str) -> Callable[[], object]:
    def build():
        return parse_program((EXAMPLES_DIR / path).read_text())

    return build


REGISTRY: Dict[str, OracleEntry] = {
    entry.name: entry
    for entry in [
        OracleEntry("die", lambda: sugar.n_sided_die(6), var="x"),
        OracleEntry(
            "dueling_coins",
            lambda: sugar.dueling_coins(Fraction(1, 3)),
            var="a",
        ),
        OracleEntry(
            "geometric",
            lambda: sugar.geometric_primes(Fraction(1, 2)),
            var="h",
            width_bits=23,
        ),
        # Fig. 1b: the posterior of Fig. 1a's geometric-primes at p=2/3.
        OracleEntry(
            "fig1b",
            lambda: sugar.geometric_primes(Fraction(2, 3)),
            var="h",
            width_bits=23,
        ),
        OracleEntry(
            "hare_tortoise",
            lambda: parse_program(HARE_TORTOISE_GAP),
            var="t0",
            observed=("t0",),
            width_bits=21,
            max_sweeps=2000,
        ),
        OracleEntry(
            "han_hoshi",
            lambda: han_hoshi_tree(
                (Fraction(1, 3), Fraction(1, 3), Fraction(1, 3))
            ),
            kind="tree",
            width_bits=30,
            projections={
                "outcome": lambda leaf: leaf[0],
                "bits": lambda leaf: leaf[1],
            },
        ),
        OracleEntry("ex_die", _example("die.gcl"), var="x"),
        OracleEntry(
            "ex_dueling_coins", _example("dueling_coins.gcl"), var="a"
        ),
        OracleEntry(
            "ex_geometric", _example("geometric.gcl"), var="h", width_bits=23
        ),
        # The raw race never revisits a loop state (time is monotone),
        # so memoized transitions degenerate to breadth-first expansion
        # and tight widths are out of reach; certify the finish-time
        # marginal to 2^-8 (still ~10x tighter than the old hand-tuned
        # tolerances).  The gap-form entry above carries the 2^-20 gate.
        OracleEntry(
            "ex_hare_tortoise",
            _example("hare_tortoise.gcl"),
            var="time",
            observed=("time",),
            width_bits=8,
            max_sweeps=240,
        ),
    ]
}


class OracleBounds:
    """Certified bounds for one registry entry."""

    __slots__ = ("name", "digest", "pmfs", "success", "slack", "unseen_hi", "stats")

    def __init__(self, name, digest, pmfs, success, slack, unseen_hi, stats):
        self.name = name
        self.digest = digest
        #: projection name -> {value: Interval}
        self.pmfs = pmfs
        self.success = success
        self.slack = slack
        #: sound upper bound on the posterior mass of ANY value outside
        #: a certified support (the unresolved slack, conditioned).
        self.unseen_hi = unseen_hi
        self.stats = stats

    def max_width(self, projection: str = "value") -> Fraction:
        return max(iv.width for iv in self.pmfs[projection].values())


def _marginal_bounds(account, project) -> Dict[object, Interval]:
    masses: Dict[object, Fraction] = {}
    for value, mass in account.terminal.items():
        key = project(value)
        masses[key] = masses.get(key, Fraction(0)) + mass
    slack = account.unresolved
    denominator = account.success_bounds()
    return {
        value: divide_bounds(
            Interval(mass, mass + slack), denominator
        ).outward(GRID_BITS)
        for value, mass in masses.items()
    }


def _compute(entry: OracleEntry) -> OracleBounds:
    if entry.kind == "command":
        from repro.inference import fixpoint_posterior

        posterior = fixpoint_posterior(
            entry.build(),
            State(),
            width=Fraction(1, 1 << entry.width_bits),
            max_sweeps=entry.max_sweeps,
            observed=entry.observed,
        )
        account, stats = posterior.account, posterior.stats
    else:
        engine = FixpointEngine()
        stats = engine.run(
            entry.build(),
            width=Fraction(1, 1 << entry.width_bits),
            max_sweeps=entry.max_sweeps,
        )
        account = engine.account()
    if account.unresolved > Fraction(1, 1 << entry.width_bits):
        raise AssertionError(
            "oracle entry %r failed to certify: slack %s > 2^-%d (%r)"
            % (entry.name, account.unresolved, entry.width_bits, stats)
        )
    pmfs = {
        projection: _marginal_bounds(account, project)
        for projection, project in entry.projections.items()
    }
    success = account.success_bounds().outward(GRID_BITS)
    unseen_hi = divide_bounds(
        Interval(0, account.unresolved), account.success_bounds()
    ).outward(GRID_BITS).hi
    return OracleBounds(
        entry.name,
        entry.digest(),
        pmfs,
        success,
        account.unresolved,
        unseen_hi,
        stats.as_dict(),
    )


# -- content-addressed cache (committed JSON + in-process memo) ----------

_MEMO: Dict[str, OracleBounds] = {}


def _frac(text: str) -> Fraction:
    return Fraction(text)


def _interval(pair) -> Interval:
    lo, hi = _frac(pair[0]), _frac(pair[1])
    if not (0 <= lo <= hi <= 1):
        raise ValueError("corrupt cached interval [%s, %s]" % (lo, hi))
    return Interval(lo, hi)


def _load(entry: OracleEntry, path: Path) -> Optional[OracleBounds]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if payload.get("scheme") != SCHEME:
        return None
    if payload.get("digest") != entry.digest():
        return None
    try:
        pmfs = {
            projection: {
                ast.literal_eval(row[0]): _interval((row[1], row[2]))
                for row in rows
            }
            for projection, rows in payload["pmfs"].items()
        }
        if set(pmfs) != set(entry.projections):
            return None
        slack = _frac(payload["slack"])
        if not 0 <= slack <= Fraction(1, 1 << entry.width_bits):
            return None
        return OracleBounds(
            entry.name,
            payload["digest"],
            pmfs,
            _interval(payload["success"]),
            slack,
            _frac(payload["unseen_hi"]),
            payload.get("stats", {}),
        )
    except (KeyError, ValueError, SyntaxError):
        return None


def _store(bounds: OracleBounds, path: Path) -> None:
    payload = {
        "scheme": SCHEME,
        "name": bounds.name,
        "digest": bounds.digest,
        "slack": str(bounds.slack),
        "success": [str(bounds.success.lo), str(bounds.success.hi)],
        "unseen_hi": str(bounds.unseen_hi),
        "pmfs": {
            projection: [
                [repr(value), str(iv.lo), str(iv.hi)]
                for value, iv in sorted(pmf.items(), key=lambda kv: repr(kv[0]))
            ]
            for projection, pmf in bounds.pmfs.items()
        },
        "stats": bounds.stats,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def certified(name: str) -> OracleBounds:
    """Certified bounds for registry entry ``name``: from the in-process
    memo, else the committed digest-checked JSON, else computed fresh
    (and written back so the next run is a cache hit)."""
    entry = REGISTRY[name]
    memo = _MEMO.get(name)
    if memo is not None and memo.digest == entry.digest():
        return memo
    path = CACHE_DIR / ("%s.json" % name)
    bounds = _load(entry, path)
    if bounds is None:
        bounds = _compute(entry)
        try:
            _store(bounds, path)
        except OSError:
            pass  # read-only checkout: the memo still serves this run
    _MEMO[name] = bounds
    return bounds


# -- sampling + assertions ----------------------------------------------

#: The full engine/backend matrix the oracle certifies: the trampoline
#: reference interpreter plus every batch-engine backend.
SAMPLERS = ("trampoline", "sequential", "python", "numpy")


def sample_values(
    name: str,
    n: int,
    seed: int,
    sampler: str = "sequential",
):
    """Seeded samples of a *command* registry entry's marginal variable
    via one engine/backend."""
    entry = REGISTRY[name]
    if entry.kind != "command":
        raise ValueError("entry %r is not a command program" % (name,))
    extract = entry.projections["value"]
    if sampler == "trampoline":
        from repro.engine.api import collect_auto

        result = collect_auto(
            entry.build(), n, State(), seed=seed, extract=extract,
            engine="trampoline",
        ).samples
    else:
        from repro.engine.api import BatchSampler

        result = BatchSampler.from_command(entry.build(), State()).collect(
            n, seed=seed, extract=extract, backend=sampler
        )
    return result.values


def assert_matches_bounds(
    name: str,
    values,
    projection: str = "value",
    alpha: float = DEFAULT_ALPHA,
    label: str = "",
) -> None:
    """Assert a sample set is consistent with the certified bounds.

    For each certified value, the exact Clopper-Pearson interval of its
    observed frequency must intersect the certified posterior interval;
    observed values outside the certified support must have a CP lower
    bound below the (conditioned) unresolved slack.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        raise ValueError("empty sample set")
    bounds = certified(name)
    pmf = bounds.pmfs[projection]
    counts = Counter(values)
    prefix = ("%s: " % label) if label else ""
    for value, certified_iv in sorted(pmf.items(), key=lambda kv: repr(kv[0])):
        k = counts.pop(value, 0)
        cp_lo, cp_hi = frequency_interval(k, n, alpha)
        if not (float(certified_iv.lo) <= cp_hi and cp_lo <= float(certified_iv.hi)):
            raise AssertionError(
                "%s%s[%s=%r]: observed %d/%d, CP [%.6g, %.6g] does not "
                "intersect certified [%.6g, %.6g]"
                % (
                    prefix, name, projection, value, k, n, cp_lo, cp_hi,
                    float(certified_iv.lo), float(certified_iv.hi),
                )
            )
    for value, k in counts.items():
        cp_lo, _cp_hi = frequency_interval(k, n, alpha)
        if cp_lo > float(bounds.unseen_hi):
            raise AssertionError(
                "%s%s[%s=%r]: observed %d/%d outside the certified support "
                "exceeds the slack ceiling %.3g"
                % (prefix, name, projection, value, k, n, float(bounds.unseen_hi))
            )


def assert_sampler_matches(
    name: str,
    n: int,
    seed: int,
    sampler: str,
    alpha: float = DEFAULT_ALPHA,
) -> None:
    """End-to-end oracle check: sample, then check against bounds."""
    assert_matches_bounds(
        name,
        sample_values(name, n, seed, sampler),
        alpha=alpha,
        label=sampler,
    )
