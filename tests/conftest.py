"""Shared pytest configuration: Hypothesis profiles."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")
