"""Shared pytest configuration: test tiers and Hypothesis profiles.

The suite is split into two tiers:

- **tier 1** (the default ``python -m pytest -x -q``): fast functional
  and statistical checks; targets well under 60 seconds wall time.
- **slow tier** (``--runslow``): heavy Hypothesis sweeps, large
  statistical sample counts, and exact-enumeration checks that take
  minutes.  Tests opt in with ``@pytest.mark.slow``.

``--runslow`` also switches Hypothesis to the ``thorough`` profile
(400 examples instead of 60), so the slow tier doubles as the
high-assurance configuration; ``HYPOTHESIS_PROFILE`` still overrides.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run the slow tier (and the thorough Hypothesis profile)",
    )


def pytest_configure(config):
    # (the `slow` marker itself is registered in pyproject.toml)
    profile = os.environ.get(
        "HYPOTHESIS_PROFILE",
        "thorough" if config.getoption("--runslow") else "default",
    )
    settings.load_profile(profile)


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow tier: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
