"""Property-based pipeline tests: random programs through every stage.

The heavy-duty randomized counterpart of the per-theorem unit tests:
for randomly generated programs (including bounded loops), the four
semantics -- cwp on source, tcwp on CF trees, tcwp after debias, and
bit-exact sampling determinism -- must all agree.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.cftree.compile import compile_cpgcl
from repro.cftree.debias import debias
from repro.cftree.elim import elim_choices
from repro.cftree.semantics import twlp, twp
from repro.itree.unfold import cpgcl_to_itree
from repro.sampler.run import run_with_bits
from repro.semantics.expectation import indicator
from repro.semantics.wp import wlp, wp
from repro.lang.state import State
from tests.strategies import commands_with_loops, loop_free_command, states


def posterior_f(sigma):
    return 1 if sigma["x"] > 0 else 0


class TestFourWayAgreement:
    @given(loop_free_command(3), states)
    def test_wp_equals_twp(self, command, sigma):
        lhs = twp(compile_cpgcl(command, sigma), indicator(lambda s: s["x"] > 0))
        rhs = wp(command, indicator(lambda s: s["x"] > 0), sigma)
        assert lhs == rhs

    @given(loop_free_command(3), states)
    def test_wlp_equals_twlp(self, command, sigma):
        f = indicator(lambda s: s["x"] > 0)
        lhs = twlp(compile_cpgcl(command, sigma), f)
        rhs = wlp(command, f, sigma)
        assert lhs == rhs

    @given(loop_free_command(3), states)
    def test_debias_preserves_everything(self, command, sigma):
        tree = elim_choices(compile_cpgcl(command, sigma))
        debiased = debias(tree)
        f = indicator(lambda s: s["x"] > 0)
        assert twp(debiased, f) == twp(tree, f)
        assert twp(debiased, f, flag=True) == twp(tree, f, flag=True)

    @settings(max_examples=25)
    @given(commands_with_loops(2), states)
    def test_with_bounded_loops(self, command, sigma):
        f = indicator(lambda s: s["x"] > 0)
        lhs = twp(compile_cpgcl(command, sigma), f)
        rhs = wp(command, f, sigma)
        assert lhs == rhs


class TestSamplingDeterminism:
    @settings(max_examples=25)
    @given(loop_free_command(2), states, *( [] ))
    def test_replay_stability(self, command, sigma):
        # The sampler is a function on Cantor space: the same bit prefix
        # always yields the same sample and consumption.
        import random as pyrandom

        tree = cpgcl_to_itree(command, sigma)
        rng = pyrandom.Random(0)
        bits = [bool(rng.getrandbits(1)) for _ in range(512)]
        from repro.bits.source import BitsExhausted
        from repro.sampler.run import FuelExhausted

        try:
            first = run_with_bits(tree, bits, fuel=100000)
        except (BitsExhausted, FuelExhausted):
            return
        second = run_with_bits(tree, bits, fuel=100000)
        assert first == second

    @settings(max_examples=15)
    @given(loop_free_command(2), states)
    def test_frequency_tracks_twp(self, command, sigma):
        """Coarse equidistribution: 800 samples vs the exact posterior.

        Thresholds are loose (8 sigma) -- the precise statistical checks
        live in test_end_to_end.py with fixed seeds; this guards against
        gross pipeline breakage on arbitrary programs.
        """
        from repro.cftree.semantics import TreeConditioningError, tcwp
        from repro.sampler.record import collect

        f = indicator(lambda s: s["x"] > 0)
        try:
            expected = float(tcwp(compile_cpgcl(command, sigma), f))
        except TreeConditioningError:
            return
        tree = cpgcl_to_itree(command, sigma)
        samples = collect(tree, 800, seed=7)
        freq = sum(1 for v in samples.values if v["x"] > 0) / 800
        assert abs(freq - expected) < 8 * 0.5 / (800 ** 0.5)
