"""Unit tests for immutable program states (repro.lang.state)."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.lang.errors import EvalError
from repro.lang.state import State
from tests.strategies import states


class TestBasics:
    def test_unbound_reads_as_zero(self):
        assert State().get("h") == 0

    def test_strict_unbound_raises(self):
        with pytest.raises(EvalError):
            State().get("h", strict=True)

    def test_set_returns_new_state(self):
        s0 = State()
        s1 = s0.set("x", 5)
        assert s0.get("x") == 0
        assert s1.get("x") == 5

    def test_update_many(self):
        s = State().update({"a": 1, "b": True})
        assert s["a"] == 1 and s["b"] is True

    def test_contains_and_len(self):
        s = State(x=1, b=False)
        assert "x" in s and "b" in s and "y" not in s
        assert len(s) == 2

    def test_rejects_bad_values(self):
        with pytest.raises(TypeError):
            State(x=0.5)


class TestCanonicalization:
    def test_zero_binding_equals_empty(self):
        # Unbound variables read as 0, so binding 0 must not distinguish
        # states (required for finite state spaces in the loop solver).
        assert State(h=0) == State()
        assert hash(State(h=0)) == hash(State())

    def test_false_binding_is_kept(self):
        # False is a *boolean*, not the default integer 0.
        assert State(b=False) != State()

    def test_integral_fraction_canonicalized(self):
        assert State(x=Fraction(4, 2)) == State(x=2)

    def test_true_binding_distinct_from_one(self):
        # Python's ``True == 1`` must not leak into state equality:
        # sigma[z := True] and sigma[z := 1] are semantically distinct
        # (guards reject numbers in boolean position), and the compiler's
        # structural interner keys memo entries on state equality -- the
        # two aliasing once produced wrong cached CF trees.
        assert State(z=True) != State(z=1)
        assert hash(State(z=True)) != hash(State(z=1))
        assert State(z=False) != State(z=0)


class TestHashability:
    def test_equal_states_equal_hash(self):
        assert hash(State(x=1, y=2)) == hash(State(y=2, x=1))

    def test_usable_as_dict_key(self):
        d = {State(x=1): "a"}
        assert d[State(x=1)] == "a"

    @given(states)
    def test_set_then_get_roundtrip(self, sigma):
        updated = sigma.set("q", 42)
        assert updated.get("q") == 42

    @given(states)
    def test_immutability_of_source(self, sigma):
        before = dict(sigma.items())
        sigma.set("q", 1)
        assert dict(sigma.items()) == before
