"""Tests for uniform_tree / bernoulli_tree (Lemma 3.6, Appendix A)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.cftree.analysis import expected_bits, is_unbiased
from repro.cftree.semantics import twp
from repro.cftree.tree import Choice, Fix, LOOPBACK, Leaf
from repro.cftree.uniform import (
    bernoulli_tree,
    perfect_tree,
    rejection_tree,
    uniform_tree,
)
from repro.semantics.extreal import ExtReal
from repro.verify.theorems import check_uniform_tree
from tests.strategies import strict_probabilities


class TestUniformTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8, 13, 64, 200])
    def test_lemma_3_6_point_masses(self, n):
        check_uniform_tree(n)

    def test_lemma_3_6_general_expectation(self):
        check_uniform_tree(6, f=lambda i: i * i)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_tree(0)

    def test_power_of_two_has_no_loop(self):
        assert not isinstance(uniform_tree(8), Fix)

    def test_non_power_of_two_has_loop(self):
        assert isinstance(uniform_tree(6), Fix)

    def test_all_unbiased(self):
        for n in (2, 3, 6, 200):
            assert is_unbiased(uniform_tree(n))

    @given(st.integers(min_value=1, max_value=50))
    def test_masses_sum_to_one(self, n):
        total = twp(uniform_tree(n), lambda v: 1)
        assert total == ExtReal(1)


class TestBernoulliTree:
    @given(strict_probabilities)
    def test_exact_bias(self, p):
        tree = bernoulli_tree(p)
        assert twp(tree, lambda b: 1 if b else 0) == ExtReal(p)

    @given(strict_probabilities)
    def test_unbiased(self, p):
        assert is_unbiased(bernoulli_tree(p))

    def test_degenerate_biases(self):
        assert bernoulli_tree(0) == Leaf(False)
        assert bernoulli_tree(1) == Leaf(True)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bernoulli_tree(Fraction(5, 4))

    def test_figure_4b_shape(self):
        # p = 2/3 with full coalescing gives exactly the tree of Fig 4b:
        # true at depth 1, false and loopback at depth 2.
        tree = bernoulli_tree(Fraction(2, 3), coalesce="full")
        assert isinstance(tree, Fix)
        flips = tree.body(LOOPBACK)
        assert flips == Choice(
            Fraction(1, 2),
            Leaf(True),
            Choice(Fraction(1, 2), Leaf(False), Leaf(LOOPBACK)),
        )

    def test_loopback_mode_keeps_outcome_copies(self):
        # The paper's implementation (default): both true-leaves stay at
        # depth 2, giving 8/3 expected flips instead of 2.
        default = bernoulli_tree(Fraction(2, 3), coalesce="loopback")
        full = bernoulli_tree(Fraction(2, 3), coalesce="full")
        assert expected_bits(default) == ExtReal(Fraction(8, 3))
        assert expected_bits(full) == ExtReal(2)

    def test_caching_returns_same_object(self):
        assert bernoulli_tree(Fraction(2, 3)) is bernoulli_tree(Fraction(2, 3))


class TestExpectedBits:
    """The entropy figures the paper measures (Tables 1 and 3)."""

    def test_die_6_is_11_thirds(self):
        assert expected_bits(uniform_tree(6)) == ExtReal(Fraction(11, 3))

    def test_die_200_is_9(self):
        assert expected_bits(uniform_tree(200)) == ExtReal(9)

    def test_power_of_two_is_log(self):
        assert expected_bits(uniform_tree(8)) == ExtReal(3)

    def test_coalescing_never_hurts(self):
        for n in (3, 5, 6, 7, 11, 200):
            loopback = expected_bits(uniform_tree(n, coalesce="loopback"))
            none = expected_bits(
                rejection_tree([Leaf(i) for i in range(n)], coalesce="none")
            )
            assert loopback <= none


class TestPerfectTree:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            perfect_tree([Leaf(0), Leaf(1), Leaf(2)])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            perfect_tree([Leaf(0), Leaf(1)], coalesce="everything")

    def test_preserves_masses(self):
        leaves = [Leaf(i % 3) for i in range(8)]
        tree = perfect_tree(leaves, coalesce="full")
        mass0 = twp(tree, lambda v: 1 if v == 0 else 0)
        assert mass0 == ExtReal(Fraction(3, 8))
