"""Freeze/thaw of open node tables (repro.engine.freeze, ISSUE 7).

The contract: a warm open table -- rows, memo, pending stubs, call
records -- spills to a picklable record keyed entirely by content
digests, and a fresh process that thaws it samples **bit-for-bit**
identically to the original (sequential drivers) without redoing the
expansion work the original paid for its trajectories.
"""

import pickle
from fractions import Fraction

import pytest

from repro.compiler.cache import CompilationCache
from repro.compiler.liveness import narrow_command
from repro.compiler.pipeline import Pipeline
from repro.engine.freeze import (
    FreezeUnsupported,
    decode_value,
    encode_value,
    freeze_report,
    freeze_table,
    thaw_table,
    token_serializable,
)
from repro.engine.table import LoweringError, _CallRecord
from repro.lang.expr import Var
from repro.lang.state import State
from repro.lang.sugar import geometric_primes, hare_tortoise
from repro.cftree.tree import LOOPBACK

GEOMETRIC = geometric_primes(Fraction(1, 2))


def _collect(program, n, seed):
    """Sequential-backend samples: (values, bits) -- table-layout
    independent, so equality means bit-for-bit."""
    result = program.collect(
        n, seed=seed, extract=lambda s: s["x"], backend="python"
    )
    return result.values, result.bits


class TestTokens:
    def test_digest_strings_serializable(self):
        assert token_serializable("a" * 64)
        assert token_serializable("H")

    def test_loopk_chains_serializable(self):
        assert token_serializable(("K", "f" * 64, "H"))
        assert token_serializable(("K", "f" * 64, ("K", "g" * 64, "H")))

    def test_identity_fallbacks_not_serializable(self):
        assert not token_serializable(("@", 140234))
        assert not token_serializable(("#", 140234))
        assert not token_serializable(("K", ("@", 1), "H"))

    def test_none_not_serializable(self):
        assert not token_serializable(None)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -7,
            "s",
            Fraction(3, 7),
            (1, (2, "x"), Fraction(1, 2)),
            State(x=3, flag=True),
            State(),
        ],
        ids=repr,
    )
    def test_round_trip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert decoded.__class__ is value.__class__

    def test_loopback_sentinel_identity(self):
        # LOOPBACK is compared with ``is``; the codec must restore the
        # singleton, not a structural copy.
        assert decode_value(encode_value(LOOPBACK)) is LOOPBACK

    def test_bool_int_distinction_survives(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)).__class__ is int

    def test_unsupported_value_raises(self):
        with pytest.raises(FreezeUnsupported):
            encode_value(object())

    def test_encoded_blob_pickles(self):
        blob = encode_value((LOOPBACK, State(x=1), Fraction(1, 3)))
        assert decode_value(pickle.loads(pickle.dumps(blob))) == (
            LOOPBACK,
            State(x=1),
            Fraction(1, 3),
        )


class TestFreezeReport:
    def test_warm_geometric_is_spillable(self):
        program = Pipeline(use_cache=False).compile(GEOMETRIC)
        program.collect(50, seed=3, backend="python")
        report = freeze_report(program.table)
        assert report["spillable"] is True
        assert report["pending_unkeyed"] == 0
        assert report["memo_keyed"] > 0

    def test_unkeyed_call_record_blocks_spill(self):
        program = Pipeline(use_cache=False).compile(GEOMETRIC)
        table = program.table
        table.calls.append(
            _CallRecord(None, None, {}, fix_token=("@", 1), k_token="H")
        )
        assert freeze_report(table)["spillable"] is False
        assert freeze_table(table) is None


class TestGeometricRoundTrip:
    def _spill_and_thaw(self, tmp_path, warm_batches):
        disk = str(tmp_path)
        cache = CompilationCache(capacity=8, disk_dir=disk)
        pipeline = Pipeline(cache=cache)
        program = pipeline.compile(GEOMETRIC)
        reference = [
            _collect(program, n, seed) for n, seed in warm_batches
        ]
        # Re-store to spill the *warm* table (compile() already stored
        # the cold one at the same digest).
        cache.put(program.digest, program)

        fresh = Pipeline(cache=CompilationCache(capacity=8, disk_dir=disk))
        thawed = fresh.compile(GEOMETRIC)
        assert thawed.source == "disk"
        return program, thawed, reference

    def test_bit_for_bit_across_processes(self, tmp_path):
        batches = [(100, 11), (100, 29)]
        program, thawed, reference = self._spill_and_thaw(tmp_path, batches)
        for (n, seed), want in zip(batches, reference):
            assert _collect(thawed, n, seed) == want

    def test_fresh_seed_matches_too(self, tmp_path):
        program, thawed, _ = self._spill_and_thaw(tmp_path, [(100, 11)])
        assert _collect(thawed, 100, seed=77) == _collect(
            program, 100, seed=77
        )

    def test_warm_trajectories_do_not_re_expand(self, tmp_path):
        batches = [(200, 11)]
        program, thawed, reference = self._spill_and_thaw(tmp_path, batches)
        before = thawed.table.expansions
        assert _collect(thawed, 200, seed=11) == reference[0]
        assert thawed.table.expansions == before

    def test_frozen_blob_is_digest_keyed(self, tmp_path):
        program = Pipeline(use_cache=False).compile(GEOMETRIC)
        program.collect(100, seed=5, backend="python")
        blob = freeze_table(program.table)
        assert blob is not None
        for index, fix_token, k_token, state in blob["pending"]:
            assert token_serializable(fix_token)
            assert token_serializable(k_token)
        # The record survives actual pickling (what the disk tier does).
        assert pickle.loads(pickle.dumps(blob, protocol=4))["root"] == (
            blob["root"]
        )


class TestThawedTableGuards:
    def test_expand_without_rebind_raises(self):
        program = Pipeline(use_cache=False).compile(GEOMETRIC)
        program.collect(50, seed=3, backend="python")
        blob = freeze_table(program.table)
        table = thaw_table(blob)
        assert table.needs_rebind
        (index, entry) = next(iter(table._pending.items()))
        with pytest.raises(LoweringError):
            table.expand(index)

    def test_version_mismatch_rejected(self):
        program = Pipeline(use_cache=False).compile(GEOMETRIC)
        blob = freeze_table(program.table)
        blob["freeze_version"] = 999
        with pytest.raises(ValueError):
            thaw_table(blob)


class TestNarrowedHareRoundTrip:
    """The fig9b resume path: frame-separated OP_CALL rows, nested
    loops, and unkeyed debias wrappers all in one table."""

    COMMAND = narrow_command(
        hare_tortoise(Var("time") <= 10), observed=("t0", "time")
    )

    def _collect(self, program, n, seed):
        result = program.collect(
            n, seed=seed, extract=lambda s: s["t0"], backend="python"
        )
        return result.values, result.bits

    def test_bit_for_bit_resume(self, tmp_path):
        disk = str(tmp_path)
        cache = CompilationCache(capacity=8, disk_dir=disk)
        program = Pipeline(cache=cache).compile(self.COMMAND)
        warm = self._collect(program, 150, seed=23)
        fresh_ref = self._collect(program, 60, seed=91)
        assert program.table.calls, "expected frame-separated OP_CALLs"
        cache.put(program.digest, program)

        fresh = Pipeline(cache=CompilationCache(capacity=8, disk_dir=disk))
        thawed = fresh.compile(self.COMMAND)
        assert thawed.source == "disk"
        # Repeat-seed: warm trajectories, incl. lazy call-return
        # rebinding through content tokens.
        assert self._collect(thawed, 150, seed=23) == warm
        # Fresh-seed: new trajectories expand against restored memos.
        assert self._collect(thawed, 60, seed=91) == fresh_ref
