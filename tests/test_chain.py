"""Tests for Markov-chain extraction from loops (repro.semantics.chain)."""

from fractions import Fraction

import pytest

from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import flip
from repro.lang.syntax import Assign, Choice, Observe, Seq, Skip, While
from repro.semantics.chain import extract_chain
from repro.semantics.fixpoint import StateSpaceExceeded

S0 = State()


def geometric_loop(p):
    """while b { flip b p } started from b = true."""
    return While(Var("b"), flip("b", p)), State(b=True)


class TestExtraction:
    def test_geometric_chain_shape(self):
        loop, start = geometric_loop(Fraction(1, 3))
        chain = extract_chain(loop, start)
        assert chain.states == (State(b=True),)
        assert chain.transitions[start][State(b=True)] == Fraction(1, 3)
        assert chain.exits[start][State(b=False)] == Fraction(2, 3)
        assert chain.fail[start] == 0

    def test_row_stochastic(self):
        loop, start = geometric_loop(Fraction(2, 3))
        chain = extract_chain(loop, start)
        for s in chain.states:
            total = (
                sum(chain.transitions[s].values(), Fraction(0))
                + sum(chain.exits[s].values(), Fraction(0))
                + chain.fail[s]
            )
            assert total == 1

    def test_counter_chain(self):
        loop = While(Var("i") < 3, Assign("i", Var("i") + 1))
        chain = extract_chain(loop, S0)
        assert len(chain.states) == 3  # i = 0, 1, 2
        assert chain.exits[State(i=2)][State(i=3)] == 1

    def test_observe_failure_mass(self):
        loop = While(
            Var("b"),
            Seq(flip("b", Fraction(1, 2)), Observe(~Var("b") | Var("b"))),
        )
        chain = extract_chain(loop, State(b=True))
        assert chain.fail[State(b=True)] == 0  # tautological observe

    def test_guard_false_immediately(self):
        loop, _ = geometric_loop(Fraction(1, 2))
        chain = extract_chain(loop, State(b=False))
        assert chain.states == (State(b=False),)
        assert chain.transitions[State(b=False)] == {}

    def test_state_cap(self):
        loop = While(Lit(True), Assign("i", Var("i") + 1))
        with pytest.raises(StateSpaceExceeded):
            extract_chain(loop, S0, max_states=50)

    def test_nested_loop_rejected(self):
        loop = While(Var("b"), While(Var("c"), Skip()))
        with pytest.raises(StateSpaceExceeded):
            extract_chain(loop, State(b=True))


class TestChainAnalyses:
    def test_termination_probability_one(self):
        loop, start = geometric_loop(Fraction(2, 3))
        chain = extract_chain(loop, start)
        assert chain.termination_probability() == 1

    def test_divergent_loop_detected(self):
        loop = While(Lit(True), Skip())
        chain = extract_chain(loop, S0)
        assert chain.termination_probability() == 0
        assert chain.recurrent_classes() == [frozenset({S0})]
        assert chain.expected_iterations() is None

    def test_expected_iterations_geometric(self):
        # P(continue) = 1/3 each round: E[body runs] = 1/(1 - 1/3) = 3/2.
        loop, start = geometric_loop(Fraction(1, 3))
        chain = extract_chain(loop, start)
        assert chain.expected_iterations() == Fraction(3, 2)

    def test_exit_distribution(self):
        # Leave with b=false always; distribution concentrates there.
        loop, start = geometric_loop(Fraction(1, 4))
        chain = extract_chain(loop, start)
        exit_dist = chain.exit_distribution()
        assert exit_dist == {State(b=False): Fraction(1)}

    def test_dueling_coins_chain(self):
        from repro.lang.sugar import dueling_coins
        from repro.lang.syntax import Seq as SeqCmd

        program = dueling_coins(Fraction(2, 3))
        # Extract the loop from a := false; b := false; while ...
        loop = program.second.second
        chain = extract_chain(loop, State(a=False, b=False))
        assert chain.termination_probability() == 1
        # P(exit per iteration) = 2 p (1-p) = 4/9: E[iterations] = 9/4.
        assert chain.expected_iterations() == Fraction(9, 4)
        exit_dist = chain.exit_distribution()
        heads = sum(
            probability
            for state, probability in exit_dist.items()
            if state["a"] is True
        )
        assert heads == Fraction(1, 2)

    def test_graph_structure(self):
        loop, start = geometric_loop(Fraction(1, 2))
        chain = extract_chain(loop, start)
        graph = chain.graph()
        assert graph.number_of_nodes() == 1
        assert graph.has_edge(start, start)
