"""Unit tests for builtin functions (repro.lang.builtins)."""

from fractions import Fraction

import pytest

from repro.lang.builtins import (
    TABLE,
    abs_value,
    ceil,
    even,
    floor,
    is_prime,
    max_value,
    min_value,
    odd,
    square,
)


class TestIsPrime:
    def test_small_primes(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
        for n in range(40):
            assert is_prime(n) == (n in primes), n

    def test_negative_not_prime(self):
        assert not is_prime(-7)

    def test_larger_composite_and_prime(self):
        assert is_prime(7919)  # the 1000th prime
        assert not is_prime(7917)  # 3 * 7 * 13 * 29

    def test_memoization_consistency(self):
        assert is_prime(97) and is_prime(97)

    def test_rejects_non_integers(self):
        with pytest.raises(TypeError):
            is_prime(Fraction(1, 2))


class TestParity:
    def test_even_odd_partition(self):
        for n in range(-5, 6):
            assert even(n) != odd(n)

    def test_even_zero(self):
        assert even(0)


class TestNumeric:
    def test_abs(self):
        assert abs_value(-3) == 3
        assert abs_value(Fraction(-2, 3)) == Fraction(2, 3)

    def test_floor_ceil(self):
        assert floor(Fraction(7, 2)) == 3
        assert ceil(Fraction(7, 2)) == 4
        assert floor(Fraction(-7, 2)) == -4

    def test_min_max(self):
        assert min_value(2, Fraction(5, 2)) == 2
        assert max_value(2, Fraction(5, 2)) == Fraction(5, 2)

    def test_square(self):
        assert square(Fraction(2, 3)) == Fraction(4, 9)
        assert square(-3) == 9


class TestTable:
    def test_arities(self):
        assert TABLE["is_prime"].arity == 1
        assert TABLE["min"].arity == 2

    def test_all_named_consistently(self):
        for name, builtin in TABLE.items():
            assert builtin.name == name
