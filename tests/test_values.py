"""Unit tests for program values (repro.lang.values)."""

from fractions import Fraction

import pytest

from repro.lang.values import (
    as_bool,
    as_fraction,
    as_int,
    is_value,
    kind_of,
    normalize,
    value_eq,
)


class TestIsValue:
    def test_accepts_bool_int_fraction(self):
        assert is_value(True)
        assert is_value(0)
        assert is_value(Fraction(2, 3))

    def test_rejects_float_str_none(self):
        assert not is_value(0.5)
        assert not is_value("x")
        assert not is_value(None)


class TestKindOf:
    def test_bool_before_int(self):
        # bool is a subclass of int in Python; kinds must not conflate them.
        assert kind_of(True) == "bool"
        assert kind_of(1) == "int"

    def test_rational(self):
        assert kind_of(Fraction(1, 2)) == "rational"

    def test_rejects_non_values(self):
        with pytest.raises(TypeError):
            kind_of(1.5)


class TestNormalize:
    def test_integral_fraction_becomes_int(self):
        result = normalize(Fraction(4, 2))
        assert result == 2
        assert isinstance(result, int)
        assert not isinstance(result, Fraction)

    def test_proper_fraction_unchanged(self):
        assert normalize(Fraction(1, 3)) == Fraction(1, 3)

    def test_bool_unchanged(self):
        assert normalize(True) is True


class TestValueEq:
    def test_bool_not_equal_to_int(self):
        assert not value_eq(True, 1)
        assert not value_eq(0, False)

    def test_int_equals_fraction(self):
        assert value_eq(2, Fraction(2))

    def test_bools(self):
        assert value_eq(True, True)
        assert not value_eq(True, False)


class TestCoercions:
    def test_as_fraction_rejects_bool(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_as_int_accepts_integral_fraction(self):
        assert as_int(Fraction(6, 3)) == 2

    def test_as_int_rejects_proper_fraction(self):
        with pytest.raises(TypeError):
            as_int(Fraction(1, 2))

    def test_as_bool_rejects_numbers(self):
        with pytest.raises(TypeError):
            as_bool(1)
