"""Tests for the Han-Hoshi interval sampler (repro.baselines.han_hoshi)."""

from fractions import Fraction

import pytest

from repro.baselines.han_hoshi import HanHoshiSampler
from repro.baselines.knuth_yao import KnuthYaoSampler
from repro.bits.source import CountingBits, ReplayBits, SystemBits
from repro.stats.entropy import shannon_entropy

from statistical import assert_event_frequency, assert_pmf


class TestConstruction:
    def test_requires_normalized(self):
        with pytest.raises(ValueError):
            HanHoshiSampler([Fraction(1, 2), Fraction(1, 3)])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HanHoshiSampler([Fraction(3, 2), Fraction(-1, 2)])


class TestSampling:
    def test_dyadic_distribution(self):
        sampler = HanHoshiSampler(
            [Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)]
        )
        # "0" -> [0, 1/2) -> outcome 0 after one bit.
        assert sampler.sample(ReplayBits([False])) == 0
        # "11" -> [3/4, 1) -> outcome 2 after two bits.
        assert sampler.sample(ReplayBits([True, True])) == 2

    def test_distribution_uniform_200(self):
        # Was `tv < 0.03`: miscalibrated, since E[TV] over 200 outcomes
        # at 20k samples is already ~0.028 for a *correct* sampler.
        # The Clopper-Pearson family check is exact per outcome instead.
        sampler = HanHoshiSampler([Fraction(1, 200)] * 200)
        source = SystemBits(3)
        values = [sampler.sample(source) for _ in range(20000)]
        assert_pmf(values, {i: Fraction(1, 200) for i in range(200)})

    def test_non_dyadic_bias(self):
        sampler = HanHoshiSampler([Fraction(1, 3), Fraction(2, 3)])
        source = SystemBits(4)
        values = [sampler.sample(source) for _ in range(30000)]
        assert_event_frequency(values, lambda v: v == 1, Fraction(2, 3))


class TestEntropy:
    def test_within_h_plus_3(self):
        probs = [Fraction(1, 200)] * 200
        sampler = HanHoshiSampler(probs)
        entropy = shannon_entropy({i: float(p) for i, p in enumerate(probs)})
        expected = sampler.expected_bits()
        assert entropy <= expected < entropy + 3

    def test_empirical_bit_costs_match_certified_bounds(self):
        # Was `abs(mean bits - expected_bits()) < 0.1`: a hand-tuned
        # tolerance on a derived statistic.  The certified oracle bounds
        # the full per-sample bit-cost *distribution* (fixpoint
        # iteration over the refinement walk's CF tree, tests/oracle.py)
        # and every observed bit count gets an exact CP check instead.
        import oracle

        probs = [Fraction(1, 3), Fraction(1, 3), Fraction(1, 3)]
        sampler = HanHoshiSampler(probs)
        source = CountingBits(SystemBits(5))
        n = 20000
        bits = []
        for _ in range(n):
            before = source.count
            sampler.sample(source)
            bits.append(source.count - before)
        oracle.assert_matches_bounds("han_hoshi", bits, projection="bits")

    def test_ordering_vs_knuth_yao(self):
        # Knuth-Yao is optimal: Han-Hoshi can only match or exceed it.
        probs = [Fraction(5, 16), Fraction(3, 16), Fraction(1, 2)]
        hh = HanHoshiSampler(probs).expected_bits()
        ky_low, ky_high = KnuthYaoSampler(probs).expected_bits()
        assert hh >= ky_low - 1e-9
