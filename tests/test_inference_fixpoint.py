"""Property tests: fixpoint iteration vs path enumeration.

Both inference paths produce *sound* interval bounds on the same
distribution -- enumeration by truncating the best-first path search at
a budget (`repro.inference.paths`), fixpoint iteration by contracting
frontier mass through memoized loop transitions
(`repro.inference.fixpoint`).  Soundness of each implies two testable
relations without knowing the true distribution:

- at **every** enumeration budget, both engines' intervals contain the
  truth, so they must pairwise intersect;
- refining either engine (more expansions, more sweeps) can only shrink
  its intervals, and the shrunken interval must nest inside the coarse
  one.

These run on randomly generated loopy programs, so they cover shapes
the curated oracle registry (tests/oracle.py) does not.
"""

from fractions import Fraction

from hypothesis import given, settings

from repro.cftree.compile import compile_cpgcl
from repro.inference import FixpointEngine, fixpoint_posterior, infer_posterior
from tests.strategies import commands_with_loops, mixed_states

BUDGETS = (4, 32, 256)
WIDTH = Fraction(1, 2**16)


def _support_union(*accounts):
    values = set()
    for account in accounts:
        values.update(account.terminal)
    return values


def _assert_intersects(a, b, context):
    assert a.lo <= a.hi and b.lo <= b.hi, context
    assert a.lo <= b.hi and b.lo <= a.hi, (
        "%s: %s and %s are disjoint" % (context, a, b)
    )


class TestCrossEngineConsistency:
    @settings(max_examples=25, deadline=None)
    @given(commands_with_loops(2), mixed_states)
    def test_bounds_intersect_at_every_budget(self, command, sigma):
        certified = fixpoint_posterior(command, sigma, width=WIDTH)
        assert certified.account.check_conservation()
        for budget in BUDGETS:
            coarse = infer_posterior(command, sigma, max_expansions=budget)
            assert coarse.account.check_conservation()
            _assert_intersects(
                certified.account.success_bounds(),
                coarse.account.success_bounds(),
                "success mass at budget %d" % budget,
            )
            _assert_intersects(
                certified.account.fail_bounds(),
                coarse.account.fail_bounds(),
                "fail mass at budget %d" % budget,
            )
            for value in _support_union(certified.account, coarse.account):
                _assert_intersects(
                    certified.account.unconditional_bounds(value),
                    coarse.account.unconditional_bounds(value),
                    "P(%r) at budget %d" % (value, budget),
                )

    @settings(max_examples=25, deadline=None)
    @given(commands_with_loops(2), mixed_states)
    def test_enumeration_refinement_is_monotone(self, command, sigma):
        previous = None
        for budget in BUDGETS:
            posterior = infer_posterior(command, sigma, max_expansions=budget)
            slack = posterior.account.unresolved
            assert 0 <= slack <= 1
            if previous is not None:
                assert slack <= previous
            previous = slack


class TestFixpointRefinement:
    @settings(max_examples=25, deadline=None)
    @given(commands_with_loops(2), mixed_states)
    def test_sweeps_nest_intervals(self, command, sigma):
        # The terminal ledger only ever grows and unresolved mass only
        # ever shrinks, so the interval for every value after sweep k+j
        # must nest inside the interval after sweep k.
        engine = FixpointEngine()
        engine.push(compile_cpgcl(command, sigma))
        snapshots = []
        for _round in range(4):
            for _sweep in range(2):
                engine.sweep()
            account = engine.account()
            assert account.check_conservation()
            snapshots.append(
                {
                    value: account.unconditional_bounds(value)
                    for value in account.terminal
                }
            )
            if not engine.frontier:
                break
        for earlier, later in zip(snapshots, snapshots[1:]):
            for value, coarse in earlier.items():
                fine = later[value]
                assert coarse.lo <= fine.lo <= fine.hi <= coarse.hi, (
                    "refinement widened P(%r): %s -> %s"
                    % (value, coarse, fine)
                )


class TestNestedLoopContinuations:
    def test_inner_loop_exit_reenters_outer_loop(self):
        # Regression: ``Uniform(3, ...)`` inside a ``While`` body
        # compiles to a rejection ``Fix`` nested in the outer loop's
        # body.  The engine used to expand the inner loop's ``cont``
        # with the halt continuation, so all mass terminated after ONE
        # outer iteration (k=1 states) instead of re-entering the outer
        # loop -- disjoint from enumeration's correct k=2 bounds.
        from repro.lang import Assign, BinOp, Lit, Seq, Uniform, Var, While

        command = Seq(
            Assign("k", Lit(0)),
            While(
                BinOp("<", Var("k"), Lit(2)),
                Seq(Uniform(Lit(3), "x"),
                    Assign("k", BinOp("+", Var("k"), Lit(1)))),
            ),
        )
        certified = fixpoint_posterior(command, width=WIDTH)
        account = certified.account
        assert account.check_conservation()
        assert account.terminal, "fixpoint settled no terminal mass"
        for state in account.terminal:
            assert state["k"] == 2, (
                "terminal state %r exited after one outer iteration" % (state,)
            )
        # Final x is uniform over {0, 1, 2}: every terminal interval
        # must contain 1/3, and enumeration must agree at any budget.
        third = Fraction(1, 3)
        coarse = infer_posterior(command, max_expansions=256)
        for state, _ in account.terminal.items():
            bounds = account.unconditional_bounds(state)
            assert bounds.lo <= third <= bounds.hi, (
                "P(%r) = %s excludes 1/3" % (state, bounds)
            )
            _assert_intersects(
                bounds,
                coarse.account.unconditional_bounds(state),
                "terminal mass at %r" % (state,),
            )
