"""Differential tests for the analysis-driven ``prune_dead`` pass.

The pass only performs bit-stream-preserving rewrites (a pruned
construct never consumed randomness), so the sampler must be
**bit-for-bit identical** with the pass on or off -- same values, same
per-sample bit counts, for the same seed.  On programs with dead nested
loops the pruned variant must additionally lower to a strictly smaller
node table after an identical sampling workload (dead ``Fix`` entries
stop allocating pinned rows).
"""

import os

import pytest

from repro.compiler.pipeline import Pipeline
from repro.engine.api import BatchSampler
from repro.lang.parser import parse_program
from repro.lang.state import State

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
    "programs",
)

BENCHMARKS = (
    "die.gcl",
    "dueling_coins.gcl",
    "geometric.gcl",
    "hare_tortoise.gcl",
)


def load(name):
    with open(os.path.join(EXAMPLES, name)) as handle:
        return parse_program(handle.read())


def compile_variant(command, pruning, **kwargs):
    pipeline = Pipeline(
        command_passes=("prune_dead",) if pruning else (),
        use_cache=False,
        **kwargs
    )
    return pipeline.compile(command, State())


def draw(program, n, seed):
    sampler = BatchSampler(program.table)
    return sampler.collect(n, seed=seed)


class TestBitForBitEquivalence:
    """Acceptance: pruning on vs off is sample-stream invisible."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_same_values_and_bits(self, name):
        command = load(name)
        on = compile_variant(command, pruning=True)
        off = compile_variant(command, pruning=False)
        samples_on = draw(on, 300, seed=11)
        samples_off = draw(off, 300, seed=11)
        assert samples_on.values == samples_off.values
        assert samples_on.bits == samples_off.bits

    def test_dead_loop_program_equivalent(self):
        command = load(os.path.join("broken", "dead_loop.gcl"))
        on = compile_variant(command, pruning=True)
        off = compile_variant(command, pruning=False)
        samples_on = draw(on, 500, seed=5)
        samples_off = draw(off, 500, seed=5)
        assert samples_on.values == samples_off.values
        assert samples_on.bits == samples_off.bits


class TestRowReduction:
    def test_dead_nested_loop_shrinks_table(self):
        """After an identical sampling workload, the pruned variant's
        node table must hold strictly fewer rows: the dead inner loop's
        pinned entry rows never materialize.

        ``eager_expand=0`` so both tables grow *only* through the
        (bit-identical, hence state-identical) sampling workload --
        with eager pre-expansion the two variants spend the same
        expansion budget on differently-sized bodies and raw row counts
        are not comparable."""
        command = load(os.path.join("broken", "dead_loop.gcl"))
        on = compile_variant(command, pruning=True, eager_expand=0)
        off = compile_variant(command, pruning=False, eager_expand=0)
        draw(on, 500, seed=5)
        draw(off, 500, seed=5)
        rows_on = len(on.table)
        rows_off = len(off.table)
        assert rows_on < rows_off, (rows_on, rows_off)

    def test_stats_record_pruning(self):
        command = load(os.path.join("broken", "dead_loop.gcl"))
        on = compile_variant(command, pruning=True)
        analysis = on.stats["analysis"]
        assert analysis["passes"] == ["prune_dead"]
        assert analysis["pruned_sites"] >= 1

    def test_clean_program_prunes_nothing(self):
        command = load("die.gcl")
        on = compile_variant(command, pruning=True)
        assert on.stats["analysis"]["pruned_sites"] == 0


class TestCacheKeying:
    def test_variants_have_distinct_digests(self):
        """``command_passes`` participates in the cache key, so pruned
        and unpruned artifacts can never collide."""
        command = load("die.gcl")
        on = compile_variant(command, pruning=True)
        off = compile_variant(command, pruning=False)
        assert on.digest is not None
        assert off.digest is not None
        assert on.digest != off.digest

    def test_default_pipeline_includes_prune(self):
        assert "prune_dead" in Pipeline().command_pass_names
