"""The certified-oracle tier (ISSUE 8).

Every sampling path the repo ships -- the trampoline reference
interpreter, the sequential driver, the pure-Python and numpy batch
backends, and the compilation-cache paths (cold compile, warm table,
freeze/thaw-resumed open table) -- must produce seeded samples whose
Clopper-Pearson intervals intersect machine-checked posterior bounds
computed by CF-DAG fixpoint iteration (``tests/oracle.py``).

This replaces hand-derived constants with *certificates*: the bounds
cannot be wrong, only loose, so an engine whose posterior drifts by
more than certified-width + CP noise fails deterministically.
"""

from fractions import Fraction

import pytest

import oracle
from statistical import frequency_interval

from repro.baselines.han_hoshi import HanHoshiSampler
from repro.bits.source import CountingBits, SystemBits
from repro.compiler.cache import CompilationCache
from repro.compiler.pipeline import Pipeline
from repro.inference import Interval

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

SEED = 20230808
N = 2000

#: Entries cheap enough for the tier-1 engine matrix.  The raw-race
#: entry (ex_hare_tortoise) takes ~20s per sequential run and moves to
#: the slow tier; han_hoshi is a tree entry exercised separately.
FAST_COMMANDS = (
    "die",
    "dueling_coins",
    "geometric",
    "fig1b",
    "hare_tortoise",
    "ex_die",
    "ex_dueling_coins",
    "ex_geometric",
)


def _require(sampler: str) -> None:
    if sampler == "numpy" and not HAVE_NUMPY:
        pytest.skip("numpy not installed")


class TestCertifiedWidths:
    """Acceptance gates: the bounds themselves are tight and sane."""

    @pytest.mark.parametrize("name", ["hare_tortoise", "fig1b"])
    def test_converges_below_2_pow_20(self, name):
        bounds = oracle.certified(name)
        assert bounds.max_width() <= Fraction(1, 2**20)

    @pytest.mark.parametrize("name", sorted(oracle.REGISTRY))
    def test_certifies_to_requested_width(self, name):
        entry = oracle.REGISTRY[name]
        bounds = oracle.certified(name)
        assert bounds.slack <= Fraction(1, 2**entry.width_bits)
        assert bounds.digest == entry.digest()

    @pytest.mark.parametrize("name", sorted(oracle.REGISTRY))
    def test_bounds_are_well_formed(self, name):
        bounds = oracle.certified(name)
        for pmf in bounds.pmfs.values():
            total_lo = Fraction(0)
            for interval in pmf.values():
                assert 0 <= interval.lo <= interval.hi <= 1
                total_lo += interval.lo
            # Lower bounds are masses of disjoint events.
            assert total_lo <= 1
        assert 0 <= bounds.unseen_hi <= 1


class TestEngineMatrix:
    """Every engine/backend intersects the certified bounds."""

    @pytest.mark.parametrize("sampler", oracle.SAMPLERS)
    @pytest.mark.parametrize("name", FAST_COMMANDS)
    def test_cp_interval_intersects_bounds(self, name, sampler):
        _require(sampler)
        oracle.assert_sampler_matches(name, N, SEED, sampler)

    @pytest.mark.parametrize("sampler", oracle.SAMPLERS)
    def test_seed_variation(self, sampler):
        # A second seed on the acceptance-gated entries: catches
        # accidentally seed-dependent correctness.
        _require(sampler)
        oracle.assert_sampler_matches("fig1b", N, SEED + 1, sampler)
        oracle.assert_sampler_matches("hare_tortoise", N, SEED + 1, sampler)


@pytest.mark.slow
class TestEngineMatrixSlow:
    @pytest.mark.parametrize("sampler", oracle.SAMPLERS)
    def test_raw_race(self, sampler):
        _require(sampler)
        oracle.assert_sampler_matches("ex_hare_tortoise", N, SEED, sampler)


class TestHanHoshiOracle:
    """The baseline interval sampler against its certified CF tree:
    both the outcome pmf and the per-sample bit cost."""

    def _draw(self, n):
        entry = oracle.REGISTRY["han_hoshi"]
        weights = (Fraction(1, 3), Fraction(1, 3), Fraction(1, 3))
        sampler = HanHoshiSampler(weights)
        source = CountingBits(SystemBits(SEED))
        outcomes, bits = [], []
        for _ in range(n):
            before = source.count
            outcomes.append(sampler.sample(source))
            bits.append(source.count - before)
        assert entry.kind == "tree"
        return outcomes, bits

    def test_outcomes_match_bounds(self):
        outcomes, _bits = self._draw(6000)
        oracle.assert_matches_bounds("han_hoshi", outcomes, projection="outcome")

    def test_bit_costs_match_bounds(self):
        _outcomes, bits = self._draw(6000)
        oracle.assert_matches_bounds("han_hoshi", bits, projection="bits")


class TestCachePaths:
    """Cold compile, warm table, and freeze/thaw-resumed table must all
    pass the same oracle check (regression guard on
    ``repro.engine.freeze`` rebinding)."""

    def _pipeline(self, tmp_path):
        return Pipeline(
            cache=CompilationCache(capacity=8, disk_dir=str(tmp_path))
        )

    def _values(self, program, seed):
        entry = oracle.REGISTRY["geometric"]
        return program.collect(
            N, seed=seed, extract=entry.projections["value"], backend="python"
        ).values

    def test_cold_and_warm_paths(self, tmp_path):
        program = self._pipeline(tmp_path).compile(
            oracle.REGISTRY["geometric"].build()
        )
        cold = self._values(program, SEED)
        warm = self._values(program, SEED + 7)
        oracle.assert_matches_bounds("geometric", cold, label="cold")
        oracle.assert_matches_bounds("geometric", warm, label="warm")

    def test_thawed_table_passes_oracle(self, tmp_path):
        entry = oracle.REGISTRY["geometric"]
        cache = CompilationCache(capacity=8, disk_dir=str(tmp_path))
        program = Pipeline(cache=cache).compile(entry.build())
        self._values(program, SEED)  # warm the open table
        cache.put(program.digest, program)  # spill the warm table

        fresh = Pipeline(
            cache=CompilationCache(capacity=8, disk_dir=str(tmp_path))
        )
        thawed = fresh.compile(entry.build())
        assert thawed.source == "disk"
        oracle.assert_matches_bounds(
            "geometric", self._values(thawed, SEED + 13), label="thawed"
        )
        # And bit-for-bit: thawed sequential sampling replays the warm
        # trajectories, so a shared seed must give identical samples.
        assert self._values(thawed, SEED) == self._values(program, SEED)


class TestOracleHarness:
    """The oracle's own plumbing: cache trust and assertion teeth."""

    def test_stale_cache_is_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setattr(oracle, "CACHE_DIR", tmp_path)
        monkeypatch.setattr(oracle, "_MEMO", {})
        bounds = oracle.certified("die")
        path = tmp_path / "die.json"
        assert path.exists()
        path.write_text(path.read_text().replace(bounds.digest, "f" * 64))
        monkeypatch.setattr(oracle, "_MEMO", {})
        again = oracle.certified("die")
        assert again.digest == bounds.digest  # recomputed, not believed

    def test_detects_wrong_distribution(self):
        # A die that always rolls 1 must fail the oracle check.
        with pytest.raises(AssertionError, match="does not intersect"):
            oracle.assert_matches_bounds("die", [1] * N)

    def test_detects_unsupported_values(self):
        # Mass on a value outside the certified support must fail.
        with pytest.raises(AssertionError, match="outside the certified"):
            oracle.assert_matches_bounds("die", [1, 2, 3, 4, 5, 6, 99] * 300)

    def test_cp_actually_intersects_definition(self):
        # Sanity on the helper's intersection logic.
        lo, hi = frequency_interval(500, 1000)
        assert Interval(Fraction(lo).limit_denominator(10**6),
                        Fraction(hi).limit_denominator(10**6)).contains(
            Fraction(1, 2)
        )
