"""Tests for the command-line driver (repro.cli)."""

import io
from fractions import Fraction

import pytest

from repro.cli import CliError, main, parse_initial_state
from repro.cli.commands import _parse_value


@pytest.fixture()
def programs_dir(tmp_path):
    """A temp directory with small cpGCL sources."""
    (tmp_path / "die.gcl").write_text("m <~ uniform(6);\nx := m + 1;\n")
    (tmp_path / "walk.gcl").write_text(
        "pos := 0;\n"
        "steps := 0;\n"
        "while steps < 2 {\n"
        "    { pos := pos + 1; } [1/2] { pos := pos - 1; };\n"
        "    steps := steps + 1;\n"
        "}\n"
        "observe even(pos);\n"
    )
    (tmp_path / "broken.gcl").write_text("x := ;\n")
    (tmp_path / "badprob.gcl").write_text(
        "{ x := 1; } [3/2] { x := 2; };\n"
    )
    return tmp_path


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCheck:
    def test_ok_program(self, programs_dir):
        code, text = run_cli("check", str(programs_dir / "die.gcl"))
        assert code == 0
        assert "OK" in text

    def test_parse_error_reported(self, programs_dir):
        code, text = run_cli("check", str(programs_dir / "broken.gcl"))
        assert code == 1
        assert "error" in text.lower()

    def test_static_probability_error(self, programs_dir):
        code, text = run_cli("check", str(programs_dir / "badprob.gcl"))
        assert code == 1
        assert "error" in text.lower()

    def test_missing_file(self):
        code, text = run_cli("check", "/nonexistent/prog.gcl")
        assert code == 1
        assert "cannot read" in text


class TestPretty:
    def test_roundtrip_output(self, programs_dir):
        code, text = run_cli("pretty", str(programs_dir / "walk.gcl"))
        assert code == 0
        assert "while steps < 2" in text
        assert "observe even(pos);" in text


class TestCompile:
    def test_reports_statistics(self, programs_dir):
        code, text = run_cli("compile", str(programs_dir / "die.gcl"))
        assert code == 0
        assert "size:" in text
        assert "unbiased:  True" in text
        assert "E[bits]:   11/3" in text

    def test_debias_stage_label(self, programs_dir):
        code, text = run_cli(
            "compile", str(programs_dir / "die.gcl"), "--debias"
        )
        assert code == 0
        assert "debias" in text

    def test_tree_rendering(self, programs_dir):
        code, text = run_cli(
            "compile", str(programs_dir / "walk.gcl"), "--tree"
        )
        assert code == 0
        assert "Fix" in text
        assert "Choice" in text  # the unfolded loop body's biased flip


class TestSample:
    def test_sample_summary(self, programs_dir):
        code, text = run_cli(
            "sample", str(programs_dir / "die.gcl"),
            "-n", "200", "--seed", "0", "--var", "x",
        )
        assert code == 0
        assert "samples:   200" in text
        assert "mean bits:" in text
        assert "top outcomes:" in text

    def test_initial_state_binding(self, tmp_path):
        source = tmp_path / "add.gcl"
        source.write_text("y := x + 1;\n")
        code, text = run_cli(
            "sample", str(source), "-n", "5", "--seed", "0",
            "--var", "y", "--init", "x=41",
        )
        assert code == 0
        assert "42" in text


class TestInfer:
    def test_exact_on_finite_program(self, programs_dir):
        code, text = run_cli(
            "infer", str(programs_dir / "walk.gcl"), "--var", "pos"
        )
        assert code == 0
        assert "slack: 0 (exact)" in text
        assert "P(pos=0)" in text

    def test_full_state_listing(self, programs_dir):
        code, text = run_cli("infer", str(programs_dir / "walk.gcl"))
        assert code == 0
        assert "P(" in text

    def test_tolerance_flag(self, programs_dir):
        code, text = run_cli(
            "infer", str(programs_dir / "die.gcl"),
            "--var", "x", "--tol", "1/1048576",
        )
        assert code == 0
        assert "P(x=1)" in text


class TestBounds:
    def test_certified_marginal(self, programs_dir):
        code, text = run_cli(
            "bounds", str(programs_dir / "die.gcl"), "--var", "x"
        )
        assert code == 0
        assert "sweeps:" in text
        assert "P(x=3) in [" in text
        assert "PARTIAL" not in text

    def test_json_payload(self, programs_dir):
        import json

        code, text = run_cli(
            "bounds", str(programs_dir / "walk.gcl"),
            "--var", "pos", "--format", "json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["partial"] is False
        assert payload["stats"]["converged"] is True
        values = {row["value"] for row in payload["marginal"]["pmf"]}
        assert values == {"0", "2", "-2"}
        for row in payload["marginal"]["pmf"]:
            assert Fraction(row["lo"]) <= Fraction(row["hi"])

    def test_divergent_loop_reports_partial(self, tmp_path):
        path = tmp_path / "spin.gcl"
        path.write_text("x := 0;\nwhile x < 1 {\n    x := x;\n}\n")
        code, text = run_cli("bounds", str(path))
        assert code == 0
        assert "PARTIAL" in text

    def test_rejects_bad_width(self, programs_dir):
        code, text = run_cli(
            "bounds", str(programs_dir / "die.gcl"), "--width-bits", "0"
        )
        assert code == 1
        assert "width-bits" in text


class TestMcmc:
    def test_chain_summary(self, programs_dir):
        code, text = run_cli(
            "mcmc", str(programs_dir / "walk.gcl"),
            "-n", "200", "--burn-in", "20", "--seed", "1", "--var", "pos",
        )
        assert code == 0
        assert "acceptance:" in text
        assert "bits/sample:" in text
        assert "ESS(pos):" in text


class TestInitialStateParsing:
    def test_parse_values(self):
        assert _parse_value("7") == 7
        assert _parse_value("true") is True
        assert _parse_value("False") is False
        assert _parse_value("2/3") == Fraction(2, 3)

    def test_parse_value_rejects_garbage(self):
        with pytest.raises(CliError):
            _parse_value("fish")

    def test_parse_initial_state(self):
        sigma = parse_initial_state(["x=1", "b=true"])
        assert sigma["x"] == 1
        assert sigma["b"] is True

    def test_parse_initial_state_rejects_missing_equals(self):
        with pytest.raises(CliError):
            parse_initial_state(["x"])

    def test_none_means_empty(self):
        sigma = parse_initial_state(None)
        assert sigma == parse_initial_state([])
