"""Tests for the MH kernel, sampler, and diagnostics (repro.mcmc)."""

import math
from collections import Counter
from fractions import Fraction

import pytest

from repro.bits.source import CountingBits, ReplayBits, SystemBits
from repro.lang.expr import Var
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, geometric_primes
from repro.lang.syntax import Assign, Choice, Observe, Seq, Skip, Uniform
from repro.mcmc import (
    ACCEPTED,
    NO_SITES,
    REJECTED_OBSERVATION,
    MHSampler,
    autocorrelation,
    bernoulli_exact,
    effective_sample_size,
    gelman_rubin,
    initialize,
    mh_step,
    replay,
    rhat,
    run_chains,
)
from repro.semantics.cwp import cwp
from repro.stats.distributions import geometric_primes_pmf

HALF = Fraction(1, 2)
THIRD = Fraction(1, 3)
S0 = State()


class TestBernoulliExact:
    def test_degenerate(self):
        source = ReplayBits([])
        assert bernoulli_exact(Fraction(0), source) is False
        assert bernoulli_exact(Fraction(1), source) is True
        assert bernoulli_exact(Fraction(2), source) is True
        assert source.remaining == 0  # no bits consumed

    def test_half_decided_by_one_bit(self):
        # u = .0... < 1/2 -> True; u = .1... >= 1/2 -> False.
        assert bernoulli_exact(HALF, ReplayBits([False])) is True
        assert bernoulli_exact(HALF, ReplayBits([True])) is False

    def test_quarter_decision_tree(self):
        # Binary expansion of 1/4 is .01
        assert bernoulli_exact(Fraction(1, 4), ReplayBits([True])) is False
        assert bernoulli_exact(
            Fraction(1, 4), ReplayBits([False, True])
        ) is False
        assert bernoulli_exact(
            Fraction(1, 4), ReplayBits([False, False])
        ) is True

    def test_third_empirical(self):
        source = SystemBits(13)
        n = 20_000
        heads = sum(bernoulli_exact(THIRD, source) for _ in range(n))
        assert abs(heads / n - 1 / 3) < 0.02

    def test_exact_boundary_match_rejects(self):
        # alpha = 1/2, u's bits match the expansion then alpha hits 0:
        # u == alpha exactly, and P(u < alpha) excludes equality.
        assert bernoulli_exact(HALF, ReplayBits([True])) is False

    def test_dyadic_alpha_exhaustively_exact(self):
        # For alpha = k / 2^m the decision consumes at most m bits, so
        # enumerating all 2^m equiprobable bitstreams must yield heads
        # on exactly k of them -- exactness, not approximation.
        import itertools

        m = 5
        for k in (0, 1, 7, 16, 21, 31, 32):
            alpha = Fraction(k, 2**m)
            heads = sum(
                bernoulli_exact(alpha, ReplayBits(bits))
                for bits in itertools.product((False, True), repeat=m)
            )
            assert heads == k, "alpha=%s" % alpha


class TestMHStep:
    def test_no_sites_is_identity(self):
        program = Assign("x", 42)
        result = replay(program, S0, source=SystemBits(0))
        step = mh_step(
            program, S0, result.trace, result.state, SystemBits(1)
        )
        assert step.outcome == NO_SITES
        assert step.state == result.state

    def test_fair_coin_always_accepts(self):
        # Symmetric single-site proposal: alpha is exactly 1.
        program = Choice(HALF, Assign("x", 0), Assign("x", 1))
        current = replay(program, S0, source=SystemBits(2))
        step = mh_step(
            program, S0, current.trace, current.state, SystemBits(3)
        )
        assert step.outcome == ACCEPTED
        assert step.alpha == 1

    def test_observation_violation_rejected(self):
        # x must stay 1; proposing x=0 violates the observation.
        program = Seq(
            Choice(HALF, Assign("x", 0), Assign("x", 1)),
            Observe(Var("x").eq(1)),
        )
        trace, state = initialize(program, S0, SystemBits(4))
        assert state["x"] == 1
        for seed in range(8):
            step = mh_step(program, S0, trace, state, SystemBits(seed))
            # Either the proposal redrew x=1 (accept, same posterior) or
            # x=0 (observation rejection); never an x=0 sample.
            assert step.state["x"] == 1
            assert step.outcome in (ACCEPTED, REJECTED_OBSERVATION)

    def test_biased_coin_acceptance_ratio(self):
        # From tails (prob 2/3) proposing heads (prob 1/3): the
        # single-site ratio is exactly 1 -- prior proposals cancel the
        # density -- so every proposal is accepted; the chain mixes by
        # proposing tails->tails half the time.
        program = Choice(THIRD, Assign("x", 0), Assign("x", 1))
        for seed in range(6):
            current = replay(program, S0, source=SystemBits(seed))
            step = mh_step(
                program, S0, current.trace, current.state,
                SystemBits(seed + 100),
            )
            assert step.alpha == 1
            assert step.outcome == ACCEPTED

    def test_impossible_reuse_rejected(self):
        from repro.mcmc import REJECTED_IMPOSSIBLE
        from repro.lang.syntax import Uniform

        program = Seq(Uniform(2, "y"), Uniform(Var("y") + 1, "z"))
        # Find a chain state with y=1, z=1: the only state from which
        # proposing y=0 strands the reused z.
        source = SystemBits(6)
        while True:
            current = replay(program, S0, source=source)
            if current.state["y"] == 1 and current.state["z"] == 1:
                break
        outcomes = set()
        for seed in range(24):
            step = mh_step(
                program, S0, current.trace, current.state, SystemBits(seed)
            )
            outcomes.add(step.outcome)
            if step.outcome == REJECTED_IMPOSSIBLE:
                assert step.state["z"] == 1  # chain state unchanged
        assert REJECTED_IMPOSSIBLE in outcomes

    def test_initialize_satisfies_observation(self):
        program = Seq(
            Uniform(6, "r"),
            Observe(Var("r").eq(5)),
        )
        trace, state = initialize(program, S0, SystemBits(7))
        assert state["r"] == 5

    def test_initialize_gives_up_on_contradiction(self):
        program = Seq(Assign("x", 0), Observe(Var("x").eq(1)))
        with pytest.raises(RuntimeError):
            initialize(program, S0, SystemBits(0), max_restarts=10)


class TestMHSampler:
    def test_run_returns_requested_samples(self):
        chain = MHSampler(dueling_coins(HALF), seed=0).run(50, burn_in=10)
        assert len(chain) == 50
        assert len(chain.extract("a")) == 50
        assert 0.0 <= chain.acceptance_rate() <= 1.0
        assert chain.bits_per_sample() > 0

    def test_thinning_multiplies_steps(self):
        chain = MHSampler(dueling_coins(HALF), seed=1).run(
            20, burn_in=5, thin=3
        )
        assert len(chain) == 20
        assert len(chain.outcomes) == 5 + 20 * 3

    def test_validation(self):
        sampler = MHSampler(Skip(), seed=0)
        with pytest.raises(ValueError):
            sampler.run(-1)
        with pytest.raises(ValueError):
            sampler.run(10, thin=0)

    def test_deterministic_program_chain(self):
        chain = MHSampler(Assign("x", 3), seed=0).run(5)
        assert all(state["x"] == 3 for state in chain.states)
        assert all(outcome == NO_SITES for outcome in chain.outcomes)

    def test_posterior_agreement_biased_coin(self):
        program = Choice(THIRD, Assign("x", 1), Assign("x", 0))
        chain = MHSampler(program, seed=3).run(6000, burn_in=200)
        mean = sum(chain.extract("x")) / len(chain)
        assert abs(mean - 1 / 3) < 0.03

    def test_posterior_agreement_geometric_primes(self):
        program = geometric_primes(HALF)
        chain = MHSampler(program, seed=5).run(6000, burn_in=500)
        counts = Counter(chain.extract("h"))
        closed = geometric_primes_pmf(HALF)
        for h in (2, 3, 5):
            assert abs(counts.get(h, 0) / len(chain) - closed[h]) < 0.04

    def test_posterior_matches_cwp_with_conditioning(self):
        # Conditioned die: r uniform in 0..5 given r >= 3.
        program = Seq(Uniform(6, "r"), Observe(Var("r") >= 3))
        chain = MHSampler(program, seed=8).run(6000, burn_in=200)
        counts = Counter(chain.extract("r"))
        assert set(counts) == {3, 4, 5}
        for r in (3, 4, 5):
            exact = float(
                cwp(program, lambda s, r=r: 1 if s["r"] == r else 0, S0)
            )
            assert abs(counts[r] / len(chain) - exact) < 0.04

    def test_mcmc_beats_rejection_entropy_under_rare_conditioning(self):
        # The paper's Table 2 shows rejection needs ~142 bits/sample at
        # p=1/5; trace MCMC reuses the accepted trace and pays an order
        # of magnitude less after initialization.
        program = geometric_primes(Fraction(1, 5))
        chain = MHSampler(program, seed=9).run(500, burn_in=100)
        assert chain.bits_per_sample() < 60


class TestDiagnostics:
    def test_autocorrelation_lag_zero_is_one(self):
        acf = autocorrelation([1.0, 2.0, 3.0, 4.0, 3.0, 2.0], max_lag=2)
        assert acf[0] == pytest.approx(1.0)

    def test_autocorrelation_constant_chain(self):
        assert autocorrelation([5.0] * 10, max_lag=3) == [1.0] * 4

    def test_autocorrelation_validation(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0], max_lag=0)
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], max_lag=5)

    def test_ess_independent_samples_near_n(self):
        import random

        rng = random.Random(0)
        values = [rng.random() for _ in range(2000)]
        ess = effective_sample_size(values)
        assert ess > 1200  # iid noise: ESS close to n

    def test_ess_sticky_chain_much_smaller(self):
        import random

        rng = random.Random(1)
        values = [0.0]
        for _ in range(1999):
            # High persistence: move rarely.
            values.append(
                values[-1] if rng.random() < 0.95 else rng.random()
            )
        assert effective_sample_size(values) < 400

    def test_ess_constant_chain_is_one(self):
        assert effective_sample_size([2.0] * 100) == 1.0

    def test_ess_tiny_chain(self):
        assert effective_sample_size([1.0, 2.0]) == 2.0

    def test_gelman_rubin_mixed_chains_near_one(self):
        import random

        rng = random.Random(2)
        chains = [
            [rng.gauss(0, 1) for _ in range(500)] for _ in range(4)
        ]
        assert gelman_rubin(chains) == pytest.approx(1.0, abs=0.05)

    def test_gelman_rubin_split_chains_large(self):
        import random

        rng = random.Random(3)
        near_zero = [rng.gauss(0, 0.1) for _ in range(200)]
        near_ten = [rng.gauss(10, 0.1) for _ in range(200)]
        assert gelman_rubin([near_zero, near_ten]) > 5

    def test_gelman_rubin_validation(self):
        with pytest.raises(ValueError):
            gelman_rubin([[1.0, 2.0]])
        with pytest.raises(ValueError):
            gelman_rubin([[1.0], [2.0]])
        with pytest.raises(ValueError):
            gelman_rubin([[1.0, 2.0], [1.0]])

    def test_gelman_rubin_constant_chains(self):
        assert gelman_rubin([[1.0, 1.0], [1.0, 1.0]]) == 1.0
        assert math.isinf(gelman_rubin([[1.0, 1.0], [2.0, 2.0]]))


class TestRunChains:
    def test_reproducible_and_independent(self):
        program = dueling_coins(HALF)
        first = run_chains(program, 50, chains=3, seed=7, burn_in=10)
        second = run_chains(program, 50, chains=3, seed=7, burn_in=10)
        assert len(first) == 3
        for a, b in zip(first, second):
            assert a.states == b.states  # derived seeds: reproducible
        assert first[0].states != first[1].states  # distinct seeds differ

    def test_rhat_on_mixed_chains(self):
        program = geometric_primes(HALF)
        records = run_chains(
            program, 400, chains=4, seed=3, burn_in=100
        )
        assert rhat(records, "h") < 1.2  # mixed into the same posterior

    def test_chain_count_validation(self):
        with pytest.raises(ValueError):
            run_chains(Skip(), 10, chains=0)


class TestChainEntropyAccounting:
    def test_counting_source_integration(self):
        inner = SystemBits(11)
        sampler = MHSampler(
            dueling_coins(Fraction(2, 3)), source=inner, seed=None
        )
        chain = sampler.run(100, burn_in=20)
        total = chain.bits_init + chain.bits_steps
        assert total > 0
        assert chain.bits_per_sample() == pytest.approx(total / 100)
