"""Tests for divergences, true posteriors, and entropy bounds."""

import math
from fractions import Fraction

import pytest

from repro.stats.distributions import (
    bernoulli_exp_pmf,
    bernoulli_pmf,
    discrete_gaussian_pmf,
    discrete_laplace_pmf,
    geometric_primes_pmf,
    uniform_pmf,
)
from repro.stats.divergence import kl_divergence, smape, tv_distance
from repro.stats.empirical import empirical_pmf
from repro.stats.entropy import knuth_yao_bounds, shannon_entropy


class TestDivergences:
    def test_identical_distributions(self):
        p = {0: 0.5, 1: 0.5}
        assert tv_distance(p, p) == 0
        assert kl_divergence(p, p) == 0
        assert smape(p, p) == 0

    def test_tv_disjoint_support(self):
        assert tv_distance({0: 1.0}, {1: 1.0}) == 1.0

    def test_tv_known_value(self):
        p = {0: 0.6, 1: 0.4}
        q = {0: 0.5, 1: 0.5}
        assert abs(tv_distance(p, q) - 0.1) < 1e-12

    def test_kl_asymmetric(self):
        p = {0: 0.9, 1: 0.1}
        q = {0: 0.5, 1: 0.5}
        assert kl_divergence(p, q) != kl_divergence(q, p)

    def test_kl_infinite_outside_support(self):
        assert kl_divergence({0: 0.5, 1: 0.5}, {0: 1.0}) == math.inf

    def test_kl_zero_p_terms_ignored(self):
        assert kl_divergence({0: 1.0, 1: 0.0}, {0: 1.0, 1: 0.0}) == 0

    def test_smape_bounded_by_one(self):
        assert smape({0: 1.0}, {1: 1.0}) <= 1.0

    def test_empirical_pmf(self):
        pmf = empirical_pmf([1, 1, 2, 2, 2, 3])
        assert pmf == {1: 2 / 6, 2: 3 / 6, 3: 1 / 6}

    def test_empirical_requires_samples(self):
        with pytest.raises(ValueError):
            empirical_pmf([])


class TestTruePosteriors:
    def test_bernoulli(self):
        pmf = bernoulli_pmf(Fraction(2, 3))
        assert abs(pmf[True] - 2 / 3) < 1e-12
        assert abs(sum(pmf.values()) - 1) < 1e-12

    def test_uniform(self):
        pmf = uniform_pmf(6, start=1)
        assert set(pmf) == {1, 2, 3, 4, 5, 6}
        assert all(abs(v - 1 / 6) < 1e-12 for v in pmf.values())

    def test_geometric_primes_support_is_prime(self):
        from repro.lang.builtins import is_prime

        pmf = geometric_primes_pmf(Fraction(2, 3))
        assert all(is_prime(h) for h in pmf)
        assert abs(sum(pmf.values()) - 1) < 1e-9

    def test_geometric_primes_paper_means(self):
        # Table 2's posterior means (the p^h convention; see the module
        # docstring on the paper's (1-p)^(h+1) typo).
        for p, mean in [(Fraction(1, 2), 2.64), (Fraction(2, 3), 3.24),
                        (Fraction(1, 5), 2.19)]:
            pmf = geometric_primes_pmf(p)
            mu = sum(h * q for h, q in pmf.items())
            assert abs(mu - mean) < 0.02, (p, mu)

    def test_bernoulli_exp(self):
        pmf = bernoulli_exp_pmf(Fraction(1, 2))
        assert abs(pmf[True] - math.exp(-0.5)) < 1e-12

    def test_discrete_laplace_symmetric(self):
        pmf = discrete_laplace_pmf(1, 2)
        assert abs(sum(pmf.values()) - 1) < 1e-9
        for x in range(1, 5):
            assert abs(pmf[x] - pmf[-x]) < 1e-12

    def test_discrete_laplace_rate(self):
        # P(x+1)/P(x) = exp(-s/t) for x >= 0.
        pmf = discrete_laplace_pmf(2, 1)
        assert abs(pmf[1] / pmf[0] - math.exp(-2)) < 1e-9

    def test_discrete_gaussian_moments(self):
        pmf = discrete_gaussian_pmf(10, 2)
        mean = sum(x * q for x, q in pmf.items())
        var = sum((x - mean) ** 2 * q for x, q in pmf.items())
        assert abs(mean - 10) < 1e-9
        assert abs(var - 4) < 0.05  # discrete variance ~ sigma^2

    def test_discrete_gaussian_negative_mean(self):
        pmf = discrete_gaussian_pmf(-50, 5)
        mean = sum(x * q for x, q in pmf.items())
        assert abs(mean + 50) < 1e-9


class TestEntropy:
    def test_uniform_entropy(self):
        assert abs(shannon_entropy(uniform_pmf(8)) - 3.0) < 1e-12

    def test_paper_table3_entropies(self):
        # Table 3 cites H = 2.59, 7.64, 13.29 for n = 6, 200, 10000.
        for n, h in [(6, 2.59), (200, 7.64), (10000, 13.29)]:
            assert abs(shannon_entropy(uniform_pmf(n)) - h) < 0.01

    def test_knuth_yao_band(self):
        low, high = knuth_yao_bounds(uniform_pmf(6))
        assert high - low == 2.0
        # The pipeline's 11/3 expected flips land inside the band.
        assert low <= 11 / 3 < high

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            shannon_entropy({0: -0.5, 1: 1.5})
