"""Unit tests for the static checker (repro.lang.typecheck)."""

from fractions import Fraction

import pytest

from repro.lang.errors import TypeCheckError
from repro.lang.expr import Lit, Var
from repro.lang.sugar import flip
from repro.lang.syntax import (
    Assign,
    Choice,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.lang.typecheck import check_program


class TestProbabilityChecks:
    def test_literal_out_of_range(self):
        program = Choice(Fraction(3, 2), Skip(), Skip())
        with pytest.raises(TypeCheckError):
            check_program(program)

    def test_literal_in_range_ok(self):
        report = check_program(flip("b", Fraction(2, 3)))
        assert report.ok

    def test_boolean_probability_rejected(self):
        program = Choice(Lit(True), Skip(), Skip())
        with pytest.raises(TypeCheckError):
            check_program(program)

    def test_dynamic_probability_warns(self):
        program = Seq(
            Assign("p", Lit(Fraction(1, 2))),
            Choice(Var("p"), Skip(), Skip()),
        )
        report = check_program(program)
        assert report.ok
        assert any("dynamically" in w for w in report.warnings)


class TestUniformChecks:
    def test_zero_range_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(Uniform(Lit(0), "x"))

    def test_non_integer_range_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(Uniform(Lit(Fraction(1, 2)), "x"))

    def test_positive_range_ok(self):
        assert check_program(Uniform(Lit(6), "x")).ok


class TestDefiniteAssignment:
    def test_read_before_assign_warns(self):
        report = check_program(Assign("y", Var("x")))
        assert report.ok
        assert any("'x'" in w for w in report.warnings)

    def test_assign_then_read_clean(self):
        program = Seq(Assign("x", Lit(1)), Assign("y", Var("x")))
        assert check_program(program).warnings == []

    def test_branches_meet(self):
        # x is assigned in only one branch: reading it afterwards warns.
        program = Seq(
            Ite(Lit(True), Assign("x", Lit(1)), Skip()),
            Observe(Var("x").eq(1)),
        )
        report = check_program(program)
        assert any("'x'" in w for w in report.warnings)

    def test_both_branches_assign(self):
        program = Seq(
            Ite(Lit(True), Assign("x", Lit(1)), Assign("x", Lit(2))),
            Observe(Var("x").eq(1)),
        )
        assert check_program(program).warnings == []

    def test_loop_body_not_definite(self):
        # The loop may run zero times.
        program = Seq(
            While(Lit(False), Assign("x", Lit(1))),
            Observe(Var("x").eq(1)),
        )
        report = check_program(program)
        assert any("'x'" in w for w in report.warnings)

    def test_uniform_assigns(self):
        program = Seq(Uniform(Lit(6), "m"), Assign("x", Var("m")))
        assert check_program(program).warnings == []

    def test_strict_false_returns_errors(self):
        program = Choice(Fraction(3, 2), Skip(), Skip())
        report = check_program(program, strict=False)
        assert not report.ok and report.errors
