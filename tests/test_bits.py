"""Tests for bit sources, bitstrings, and Cantor-space measure."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.bits.equidist import star_discrepancy, streams_to_points
from repro.bits.measure import BasicSet, DyadicInterval, Sigma01
from repro.bits.source import (
    BitsExhausted,
    ConstantBits,
    CountingBits,
    ReplayBits,
    StreamBits,
    SystemBits,
)
from repro.bits.streams import (
    all_bitstrings,
    bits_to_fraction,
    bits_to_int,
    int_to_bits,
    is_prefix,
)


class TestSources:
    def test_system_bits_deterministic_by_seed(self):
        a = SystemBits(42)
        b = SystemBits(42)
        assert [a.next_bit() for _ in range(64)] == [
            b.next_bit() for _ in range(64)
        ]

    def test_counting(self):
        source = CountingBits(ConstantBits(True))
        for _ in range(5):
            source.next_bit()
        assert source.count == 5
        assert source.take_count() == 5
        assert source.count == 0

    def test_replay_and_exhaustion(self):
        source = ReplayBits([True, False])
        assert source.next_bit() is True
        assert source.next_bit() is False
        with pytest.raises(BitsExhausted):
            source.next_bit()
        assert source.consumed == 2

    def test_stream_bits(self):
        source = StreamBits(iter([1, 0, 1]))
        assert [source.next_bit() for _ in range(3)] == [True, False, True]
        with pytest.raises(BitsExhausted):
            source.next_bit()


class TestBitstrings:
    def test_prefix_order(self):
        assert is_prefix([], [True])
        assert is_prefix([True], [True, False])
        assert not is_prefix([True, True], [True, False])
        assert not is_prefix([True, True], [True])

    def test_bisection_encoding(self):
        # Figure 6a: "0" -> [0, 1/2), "01" -> [1/4, 1/2), "1" -> [1/2, 1).
        assert bits_to_fraction([False]) == 0
        assert bits_to_fraction([True]) == Fraction(1, 2)
        assert bits_to_fraction([False, True]) == Fraction(1, 4)

    @given(st.integers(0, 255))
    def test_int_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 8)) == value

    def test_int_to_bits_range_checked(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)

    def test_all_bitstrings_in_dyadic_order(self):
        strings = all_bitstrings(3)
        values = [bits_to_fraction(s) for s in strings]
        assert values == sorted(values)
        assert len(strings) == 8


class TestMeasure:
    def test_basic_set_measure(self):
        assert BasicSet([True, False, True]).measure == Fraction(1, 8)

    def test_basic_set_membership(self):
        basic = BasicSet([True, False])
        assert basic.contains([True, False, True, True])
        assert not basic.contains([True, True])

    def test_interval_correspondence(self):
        # mu(B(omega)) = lambda(I(omega)) -- the Section 4.1 equation.
        for omega in all_bitstrings(4):
            basic = BasicSet(omega)
            interval = basic.interval()
            assert interval.width == basic.measure

    def test_dyadic_interval_contains(self):
        interval = DyadicInterval([True])  # [1/2, 1)
        assert interval.contains(Fraction(1, 2))
        assert not interval.contains(Fraction(1, 4))
        assert not interval.contains(Fraction(1))


class TestSigma01:
    def test_disjoint_union_measure_adds(self):
        s = Sigma01([BasicSet([False]), BasicSet([True, False])])
        assert s.measure == Fraction(1, 2) + Fraction(1, 4)

    def test_redundant_superset_ignored(self):
        s = Sigma01([BasicSet([False])])
        s.add(BasicSet([False, True]))  # subset of an existing component
        assert s.measure == Fraction(1, 2)
        assert len(s.components) == 1

    def test_absorbing_prefix_replaces_extensions(self):
        s = Sigma01([BasicSet([False, True]), BasicSet([False, False])])
        s.add(BasicSet([False]))
        assert s.measure == Fraction(1, 2)
        assert len(s.components) == 1

    def test_whole_space(self):
        s = Sigma01([BasicSet([])])
        assert s.measure == 1
        assert s.contains([True, False, True])

    def test_intervals_sorted(self):
        s = Sigma01([BasicSet([True]), BasicSet([False, False])])
        intervals = s.intervals()
        assert intervals[0].low < intervals[1].low


class TestEquidistribution:
    def test_star_discrepancy_of_regular_grid(self):
        # The van der Corput-like grid {i/n + 1/2n} has discrepancy 1/2n.
        n = 100
        points = [(i + 0.5) / n for i in range(n)]
        assert abs(star_discrepancy(points) - 1 / (2 * n)) < 1e-12

    def test_star_discrepancy_of_constant_sequence(self):
        assert star_discrepancy([0.5] * 10) >= 0.5

    def test_uniform_bits_have_small_discrepancy(self):
        source = SystemBits(1)
        streams = [
            [source.next_bit() for _ in range(16)] for _ in range(2000)
        ]
        d = star_discrepancy(streams_to_points(streams))
        # 5-sigma-ish bound for n = 2000 i.i.d. uniforms.
        assert d < 0.06
