"""Parser and pretty-printer tests, including the round-trip property."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.lang.errors import ParseError
from repro.lang.expr import BinOp, Call, Lit, UnOp, Var
from repro.lang.parser import (
    canonicalize,
    parse_expr,
    parse_program,
)
from repro.lang.pretty import pretty, pretty_expr
from repro.lang.state import State
from repro.lang.sugar import (
    dueling_coins,
    geometric_primes,
    laplace,
    n_sided_die,
)
from repro.lang.syntax import (
    Assign,
    Choice,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from tests.strategies import (
    bool_expr,
    loop_free_command,
    numeric_expr,
    states,
)


class TestParseExpr:
    def test_precedence_mul_over_add(self):
        assert parse_expr("1 + x * 3") == BinOp(
            "+", Lit(1), BinOp("*", Var("x"), Lit(3))
        )

    def test_left_associativity(self):
        assert parse_expr("x - y - z") == BinOp(
            "-", BinOp("-", Var("x"), Var("y")), Var("z")
        )

    def test_parentheses(self):
        assert parse_expr("(x + y) * z") == BinOp(
            "*", BinOp("+", Var("x"), Var("y")), Var("z")
        )

    def test_rational_literal_folds(self):
        assert parse_expr("2/3") == Lit(Fraction(2, 3))

    def test_negative_literal_folds(self):
        assert parse_expr("-5") == Lit(-5)

    def test_bool_connectives(self):
        expr = parse_expr("a && b || !c")
        assert expr == BinOp(
            "or",
            BinOp("and", Var("a"), Var("b")),
            UnOp("not", Var("c")),
        )

    def test_keyword_connectives(self):
        assert parse_expr("a and b") == BinOp("and", Var("a"), Var("b"))

    def test_builtin_call(self):
        assert parse_expr("is_prime(h)") == Call("is_prime", [Var("h")])

    def test_call_arity_checked(self):
        with pytest.raises(ParseError):
            parse_expr("min(1)")

    def test_unknown_builtin(self):
        with pytest.raises(ParseError):
            parse_expr("mystery(1)")

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 extra")

    def test_division_by_zero_not_folded(self):
        # Folding must not turn a runtime error into a parse failure.
        expr = parse_expr("1/0")
        assert expr == BinOp("/", Lit(1), Lit(0))


class TestParseProgram:
    def test_assignment(self):
        assert parse_program("x := 1;") == Assign("x", Lit(1))

    def test_skip_observe(self):
        program = parse_program("skip; observe even(x);")
        assert program == Seq(Skip(), Observe(Call("even", [Var("x")])))

    def test_if_without_else(self):
        program = parse_program("if x < 1 { skip; }")
        assert isinstance(program, Ite)
        assert program.orelse == Skip()

    def test_while(self):
        program = parse_program("while b { x := x + 1; }")
        assert isinstance(program, While)

    def test_choice_statement(self):
        program = parse_program("{ x := 1; } [1/3] { x := 2; };")
        assert isinstance(program, Choice)
        assert program.prob == Lit(Fraction(1, 3))

    def test_uniform_sugar(self):
        program = parse_program("m <~ uniform(6);")
        assert program == Uniform(Lit(6), "m")

    def test_flip_sugar_desugars_to_choice(self):
        program = parse_program("b <~ flip(2/3);")
        assert program == Choice(
            Lit(Fraction(2, 3)), Assign("b", True), Assign("b", False)
        )

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("x := 1")

    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as err:
            parse_program("x := ;")
        assert "1:" in str(err.value)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "program",
        [
            geometric_primes(Fraction(2, 3)),
            dueling_coins(Fraction(1, 20)),
            n_sided_die(6),
            laplace("out", 1, 2),
        ],
        ids=["primes", "dueling", "die", "laplace"],
    )
    def test_paper_programs(self, program):
        assert parse_program(pretty(program)) == canonicalize(program)

    @given(loop_free_command(3))
    def test_random_commands(self, command):
        assert parse_program(pretty(command)) == canonicalize(command)

    @given(numeric_expr(3))
    def test_random_numeric_exprs(self, expr):
        from repro.lang.parser import fold_constants_expr

        assert parse_expr(pretty_expr(expr)) == fold_constants_expr(expr)

    @given(bool_expr(3))
    def test_random_bool_exprs(self, expr):
        from repro.lang.parser import fold_constants_expr

        assert parse_expr(pretty_expr(expr)) == fold_constants_expr(expr)

    @given(numeric_expr(3), states)
    def test_folding_preserves_semantics(self, expr, sigma):
        from repro.lang.errors import EvalError
        from repro.lang.parser import fold_constants_expr

        try:
            expected = expr.eval(sigma)
        except EvalError:
            return  # runtime error stays a runtime error
        assert fold_constants_expr(expr).eval(sigma) == expected
