"""Tests for exact inference with interval bounds (repro.inference)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cftree.compile import compile_cpgcl
from repro.cftree.tree import Choice as TChoice, Fail, Leaf
from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.inference import (
    Interval,
    MassAccount,
    Posterior,
    divide_bounds,
    enumerate_paths,
    infer_posterior,
    infer_query,
    refine_until,
    unfold_fix_once,
)
from repro.lang.expr import Var
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, geometric_primes, n_sided_die
from repro.lang.syntax import Assign, Choice, Observe, Seq, Skip
from repro.semantics.cwp import cwp
from repro.stats.distributions import geometric_primes_pmf
from tests.strategies import loop_free_command

HALF = Fraction(1, 2)
THIRD = Fraction(1, 3)


# -- Interval ---------------------------------------------------------------


class TestInterval:
    def test_point_has_zero_width(self):
        assert Interval.point(THIRD).width == 0
        assert Interval.point(THIRD).is_point()

    def test_rejects_inverted_endpoints(self):
        with pytest.raises(ValueError):
            Interval(1, 0)

    def test_contains_endpoints(self):
        box = Interval(Fraction(1, 4), Fraction(3, 4))
        assert box.contains(Fraction(1, 4))
        assert box.contains(Fraction(3, 4))
        assert not box.contains(Fraction(4, 5))

    def test_add_and_scale(self):
        a = Interval(Fraction(1, 4), Fraction(1, 2))
        b = Interval(Fraction(1, 8), Fraction(1, 8))
        assert (a + b) == Interval(Fraction(3, 8), Fraction(5, 8))
        assert a.scale(2) == Interval(HALF, 1)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            Interval.point(1).scale(-1)

    def test_midpoint(self):
        assert Interval(0, 1).midpoint == HALF

    def test_intersects(self):
        assert Interval(0, HALF).intersects(Interval(HALF, 1))
        assert not Interval(0, THIRD).intersects(Interval(HALF, 1))

    def test_clamp(self):
        assert Interval(Fraction(-1), Fraction(2)).clamp() == Interval(0, 1)

    def test_divide_bounds_monotonicity(self):
        n = Interval(Fraction(1, 4), Fraction(1, 2))
        d = Interval(Fraction(1, 2), Fraction(1))
        out = divide_bounds(n, d)
        assert out == Interval(Fraction(1, 4), Fraction(1))

    def test_divide_bounds_zero_denominator_lo(self):
        out = divide_bounds(Interval(0, HALF), Interval(0, HALF))
        assert out == Interval(0, 1)

    def test_divide_bounds_zero_denominator_hi(self):
        with pytest.raises(ZeroDivisionError):
            divide_bounds(Interval.point(0), Interval.point(0))


# -- MassAccount ------------------------------------------------------------


class TestMassAccount:
    def test_initially_all_unresolved(self):
        account = MassAccount()
        assert account.unresolved == 1
        assert account.settled_mass() == 0
        assert account.check_conservation()

    def test_settle_conserves_mass(self):
        account = MassAccount()
        account.settle_leaf("a", HALF)
        account.settle_fail(Fraction(1, 4))
        assert account.unresolved == Fraction(1, 4)
        assert account.check_conservation()

    def test_cannot_overdraw(self):
        account = MassAccount()
        account.settle_leaf("a", Fraction(3, 4))
        with pytest.raises(ValueError):
            account.settle_fail(HALF)

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            MassAccount().settle_leaf("a", Fraction(-1, 2))

    def test_unconditional_bounds_include_slack(self):
        account = MassAccount()
        account.settle_leaf("a", HALF)
        assert account.unconditional_bounds("a") == Interval(
            HALF, Fraction(3, 4) + Fraction(1, 4)
        )
        assert account.unconditional_bounds("unseen") == Interval(0, HALF)

    def test_posterior_bounds_exact_when_fully_settled(self):
        account = MassAccount()
        account.settle_leaf("a", HALF)
        account.settle_leaf("b", Fraction(1, 4))
        account.settle_fail(Fraction(1, 4))
        assert account.posterior_bounds("a") == Interval.point(
            Fraction(2, 3)
        )
        assert account.posterior_bounds("b") == Interval.point(THIRD)

    def test_posterior_undefined_when_everything_fails(self):
        account = MassAccount()
        account.settle_fail(Fraction(1))
        with pytest.raises(ZeroDivisionError):
            account.posterior_bounds("a")

    def test_support_ordered_by_mass(self):
        account = MassAccount()
        account.settle_leaf("light", Fraction(1, 8))
        account.settle_leaf("heavy", HALF)
        assert account.support() == ("heavy", "light")


# -- path enumeration on hand-built trees ------------------------------------


class TestEnumeratePaths:
    def test_single_leaf_is_exact(self):
        account = enumerate_paths(Leaf("x"))
        assert account.terminal == {"x": Fraction(1)}
        assert account.unresolved == 0

    def test_fail_tree(self):
        account = enumerate_paths(Fail())
        assert account.fail == 1
        assert account.unresolved == 0

    def test_finite_choice_tree_exact(self):
        tree = TChoice(THIRD, Leaf("l"), TChoice(HALF, Leaf("m"), Fail()))
        account = enumerate_paths(tree)
        assert account.terminal["l"] == THIRD
        assert account.terminal["m"] == THIRD
        assert account.fail == THIRD
        assert account.check_conservation()

    def test_degenerate_choice_skips_zero_branch(self):
        tree = TChoice(Fraction(1), Leaf("always"), Fail())
        account = enumerate_paths(tree)
        assert account.terminal == {"always": Fraction(1)}
        assert account.fail == 0

    def test_bernoulli_tree_bounds_bracket_bias(self):
        account = enumerate_paths(
            bernoulli_tree(Fraction(2, 3)), mass_tol=Fraction(1, 2**20)
        )
        bounds = account.unconditional_bounds(True)
        assert bounds.contains(Fraction(2, 3))
        assert bounds.width <= Fraction(1, 2**19)

    def test_uniform_tree_bounds_bracket_each_outcome(self):
        account = enumerate_paths(
            uniform_tree(6), mass_tol=Fraction(1, 2**24)
        )
        for outcome in range(6):
            assert account.unconditional_bounds(outcome).contains(
                Fraction(1, 6)
            )

    def test_expansion_budget_respected(self):
        account = enumerate_paths(uniform_tree(6), max_expansions=3)
        assert account.expansions <= 3
        assert account.check_conservation()

    def test_zero_budget_returns_trivial_bounds(self):
        account = enumerate_paths(uniform_tree(6), max_expansions=0)
        assert account.unresolved == 1
        assert account.unconditional_bounds(0) == Interval(0, 1)

    def test_rejects_negative_budget_and_tolerance(self):
        with pytest.raises(ValueError):
            enumerate_paths(Leaf(1), max_expansions=-1)
        with pytest.raises(ValueError):
            enumerate_paths(Leaf(1), mass_tol=Fraction(-1, 2))

    def test_unfold_fix_once_requires_fix(self):
        with pytest.raises(TypeError):
            unfold_fix_once(Leaf(1))

    def test_unfold_fix_exit_takes_continuation(self):
        from repro.cftree.tree import Fix

        tree = Fix(7, lambda s: False, Leaf, lambda s: Leaf(s * 2))
        assert unfold_fix_once(tree) == Leaf(14)

    @pytest.mark.slow
    def test_fix_merging_matches_unmerged_account(self):
        # ~11s: 200k unmerged expansions.
        # Merging only reroutes mass between identical subtrees: run
        # both modes to completion-level tolerance and compare bounds.
        tree = compile_cpgcl(dueling_coins(Fraction(2, 3)), State())
        merged = enumerate_paths(
            tree, max_expansions=5_000, mass_tol=Fraction(1, 2**60)
        )
        plain = enumerate_paths(
            tree,
            max_expansions=200_000,
            mass_tol=Fraction(1, 2**20),
            merge_fixes=False,
        )
        assert merged.check_conservation()
        assert plain.check_conservation()
        for state, mass in merged.terminal.items():
            # Both accounts bracket the same true mass.
            assert plain.unconditional_bounds(state).intersects(
                merged.unconditional_bounds(state)
            )

    def test_fix_merging_geometric_decay_on_iid_loop(self):
        tree = compile_cpgcl(dueling_coins(Fraction(2, 3)), State())
        merged = enumerate_paths(tree, max_expansions=2_000)
        plain = enumerate_paths(
            tree, max_expansions=2_000, merge_fixes=False
        )
        # Same budget: merging is at least a dozen orders of magnitude
        # tighter on a state-recurring loop.
        assert merged.unresolved < Fraction(1, 10**12)
        assert plain.unresolved > Fraction(1, 10**6)


# -- conservation under arbitrary budgets (property) --------------------------


@given(
    budget=st.integers(min_value=0, max_value=200),
    n=st.integers(min_value=1, max_value=12),
)
def test_conservation_invariant_any_budget(budget, n):
    account = enumerate_paths(uniform_tree(n), max_expansions=budget)
    assert account.check_conservation()
    total_lo = sum(account.terminal.values(), Fraction(0))
    assert total_lo + account.fail + account.unresolved == 1


@settings(max_examples=30)
@given(program=loop_free_command())
def test_loop_free_enumeration_brackets_cwp(program):
    """On loop-free programs the enumerated posterior bounds must contain
    the exact cwp posterior of every discovered terminal state.  (The
    bounds are points unless the program draws from a non-power-of-two
    ``uniform``, whose rejection loop leaves geometric slack.)"""
    sigma = State()
    tree = compile_cpgcl(program, sigma)
    account = enumerate_paths(
        tree, max_expansions=20_000, mass_tol=Fraction(1, 2**40)
    )
    posterior = Posterior(account)
    for state, bounds in posterior.pmf_bounds().items():
        expected = cwp(
            program, lambda s, target=state: 1 if s == target else 0, sigma
        ).as_fraction()
        assert bounds.contains(expected)


# -- program-level inference --------------------------------------------------


class TestInferPosterior:
    def test_deterministic_program(self):
        program = Seq(Assign("x", 1), Assign("y", 2))
        posterior = infer_posterior(program)
        assert posterior.exact
        (state,) = posterior.states()
        assert state["x"] == 1 and state["y"] == 2
        assert posterior.probability(state) == Interval.point(1)

    def test_fair_choice_posterior(self):
        program = Choice(HALF, Assign("x", 0), Assign("x", 1))
        posterior = infer_posterior(program)
        marginal = posterior.marginal("x")
        assert marginal[0] == Interval.point(HALF)
        assert marginal[1] == Interval.point(HALF)

    def test_observation_renormalizes(self):
        program = Seq(
            Choice(THIRD, Assign("x", 0), Assign("x", 1)),
            Observe(Var("x").eq(1)),
        )
        posterior = infer_posterior(program)
        marginal = posterior.marginal("x")
        assert marginal[1] == Interval.point(1)
        assert 0 not in marginal

    def test_contradictory_observation(self):
        program = Seq(Assign("x", 0), Observe(Var("x").eq(1)))
        posterior = infer_posterior(program)
        assert posterior.states() == ()
        assert posterior.account.fail == 1
        with pytest.raises(ZeroDivisionError):
            posterior.query(lambda s: True)

    def test_dueling_coins_bounds_contract_to_half(self):
        # Fix merging turns this i.i.d. loop's slack decay geometric:
        # a small budget already certifies ~1e-12 bounds.
        posterior = infer_posterior(
            dueling_coins(Fraction(2, 3)),
            max_expansions=1_000,
            mass_tol=Fraction(1, 10**12),
        )
        assert posterior.slack <= Fraction(1, 10**12)
        marginal = posterior.marginal("a")
        for value in (True, False):
            assert marginal[value].contains(HALF)
            # marginal width is at most ~2x the slack
            assert marginal[value].width < Fraction(1, 10**11)

    def test_geometric_primes_brackets_closed_form(self):
        posterior = refine_until(
            geometric_primes(Fraction(2, 3)), Fraction(1, 10**5)
        )
        marginal = posterior.marginal("h")
        closed = geometric_primes_pmf(Fraction(2, 3))
        for h in (2, 3, 5, 7, 11):
            assert marginal[h].contains_float(closed[h], slack=1e-4)

    def test_die_posterior_uniform(self):
        posterior = infer_posterior(
            n_sided_die(6), mass_tol=Fraction(1, 2**30)
        )
        marginal = posterior.marginal("x")
        assert set(marginal) == {1, 2, 3, 4, 5, 6}
        for bounds in marginal.values():
            assert bounds.contains(Fraction(1, 6))

    def test_mean_bounds_exact_case(self):
        program = Choice(HALF, Assign("x", 0), Assign("x", 10))
        posterior = infer_posterior(program)
        assert posterior.mean_bounds("x") == Interval.point(5)

    def test_mean_bounds_none_when_slack(self):
        posterior = infer_posterior(
            geometric_primes(HALF), max_expansions=100
        )
        assert posterior.mean_bounds("h") is None

    @pytest.mark.slow
    def test_query_brackets_cwp(self):
        # ~18s: 30k exact-tree expansions plus an exact cwp solve.
        program = geometric_primes(Fraction(2, 3))
        bounds = infer_query(
            program, lambda s: s["h"] == 3, max_expansions=30_000
        )
        exact = cwp(
            program, lambda s: 1 if s["h"] == 3 else 0, State()
        ).as_fraction()
        # Kleene iteration under-approximates by ~1e-12; allow that slack.
        assert bounds.contains_float(float(exact), slack=1e-9)

    def test_skip_program(self):
        posterior = infer_posterior(Skip())
        assert posterior.exact
        assert posterior.probability(State()) == Interval.point(1)


class TestRefineUntil:
    def test_reaches_requested_width(self):
        posterior = refine_until(
            dueling_coins(HALF), Fraction(1, 10**4)
        )
        assert posterior.slack <= Fraction(1, 10**4)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            refine_until(Skip(), Fraction(0))

    def test_proven_divergence_returns_partial_bounds(self):
        # Divergence with probability 1/2: slack never drops below 1/2.
        # The abstract interpreter proves it (ZAR001), so refine_until
        # must not spin the budget loop: it returns sound partial
        # bounds flagged as such instead of raising.
        from repro.lang.syntax import While

        diverging = Choice(
            HALF,
            Seq(Assign("loop", True), While(Var("loop"), Skip())),
            Assign("loop", False),
        )
        posterior = refine_until(
            diverging,
            Fraction(1, 4),
            initial_expansions=16,
            max_total_expansions=512,
        )
        assert posterior.partial
        assert "ZAR001" in posterior.partial_reason
        assert posterior.slack >= HALF
        assert posterior.account.check_conservation()
        # The terminating half is still bounded soundly.
        bounds = posterior.query(lambda s: s["loop"] is False)
        assert bounds.contains(1)

    def test_gives_up_at_budget_without_divergence_proof(self):
        # Slow convergence the analyzer cannot distinguish from
        # divergence still raises at the budget, as before.
        posterior_width = Fraction(1, 10**30)
        with pytest.raises(RuntimeError):
            refine_until(
                dueling_coins(Fraction(1, 10**6)),
                posterior_width,
                initial_expansions=16,
                max_total_expansions=64,
            )
