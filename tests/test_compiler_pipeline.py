"""Tests for the staged compiler pipeline (repro.compiler, ISSUE 5).

Covers the pass manager (semantics preservation by differential
sampling, pass-order invariance where documented, CSE idempotence via a
Hypothesis sweep), the DAG-aware lowering (row deduplication, jump
threading, compaction), and the structural-key regression for the old
``(id(command), sigma)`` compile-cache scheme.
"""

import gc
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.bits.source import CountingBits
from repro.cftree.compile import compile_cpgcl
from repro.cftree.debias import debias
from repro.cftree.elim import elim_choices
from repro.cftree.tree import Choice as TChoice, Fail, Fix, Leaf
from repro.compiler.cse import TreeInterner, cse
from repro.compiler.passes import (
    DEFAULT_PASSES,
    PASS_REGISTRY,
    PassContext,
    register_pass,
    resolve_passes,
)
from repro.compiler.pipeline import (
    CompiledProgram,
    Pipeline,
    compile_program,
    dag_size,
)
from repro.engine.pool import BitPool
from repro.engine.table import OP_JMP, NodeTable
from repro.itree.unfold import cpgcl_to_itree
from repro.lang.expr import Var
from repro.lang.state import State
from repro.lang.sugar import (
    dueling_coins,
    geometric_primes,
    hare_tortoise,
    n_sided_die,
)
from repro.lang.syntax import Assign, Seq, Skip, While
from repro.sampler.run import run_itree

from strategies import cf_trees, commands_with_loops

S0 = State()

PROGRAMS = [
    ("die6", n_sided_die(6), 300),
    ("dueling", dueling_coins(Fraction(2, 3)), 200),
    ("geometric", geometric_primes(Fraction(1, 2)), 150),
]

HEAVY_PROGRAMS = [
    ("hare_tortoise", hare_tortoise(Var("time") <= 10), 10),
]


def _stream(table, samples, seed, fuel=2_000_000):
    """Sequential (value, bits) pairs off a pooled source."""
    from repro.engine.api import BatchSampler

    sampler = BatchSampler(table)
    source = CountingBits(BitPool(seed))
    out = []
    for _ in range(samples):
        value = sampler.sample(source, fuel)
        out.append((value, source.take_count()))
    return out


def _reference_stream(command, samples, seed, fuel=2_000_000):
    tree = cpgcl_to_itree(command, S0)
    source = CountingBits(BitPool(seed))
    out = []
    for _ in range(samples):
        value = run_itree(tree, source, fuel)
        out.append((value, source.take_count()))
    return out


class TestPassManager:
    def test_registry_has_builtins(self):
        for name in ("elim_choices", "debias", "cse", "coalesce_leaves"):
            assert name in PASS_REGISTRY

    def test_unknown_pass_rejected(self):
        with pytest.raises(KeyError):
            resolve_passes(("no_such_pass",))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_pass("cse", lambda tree, ctx: tree)

    def test_custom_pass_registers_and_runs(self):
        calls = []

        def probe(tree, ctx):
            calls.append(ctx.coalesce)
            return tree

        register_pass("probe_pass", probe, replace=True)
        try:
            pipeline = Pipeline(
                passes=("elim_choices", "probe_pass", "debias", "cse"),
                use_cache=False,
            )
            program = pipeline.compile(n_sided_die(4))
            assert calls == ["loopback"]
            names = [r["name"] for r in program.stats["optimize"]]
            assert names == ["elim_choices", "probe_pass", "debias", "cse"]
        finally:
            PASS_REGISTRY.pop("probe_pass", None)

    @pytest.mark.parametrize(
        "name,command,samples", PROGRAMS, ids=[p[0] for p in PROGRAMS]
    )
    def test_pipeline_bit_exact_vs_trampoline(self, name, command, samples):
        """Acceptance: samples through the full pipeline (all passes,
        dedupe, compaction) are bit-for-bit the trampoline's."""
        program = compile_program(command, use_cache=False)
        assert _stream(program.table, samples, seed=23) == _reference_stream(
            command, samples, seed=23
        )

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name,command,samples", HEAVY_PROGRAMS,
        ids=[p[0] for p in HEAVY_PROGRAMS],
    )
    def test_pipeline_bit_exact_heavy(self, name, command, samples):
        program = compile_program(command, use_cache=False)
        assert _stream(program.table, samples, seed=5) == _reference_stream(
            command, samples, seed=5
        )

    @pytest.mark.parametrize(
        "name,command,samples", PROGRAMS, ids=[p[0] for p in PROGRAMS]
    )
    def test_cse_pass_is_bit_invisible(self, name, command, samples):
        """Differential sampling pre/post the CSE pass: hash-consing
        only aliases equal subtrees, so the sample stream is unchanged
        bit for bit (unlike e.g. coalesce_leaves, which merges choices
        and *reduces* bit consumption)."""
        with_cse = Pipeline(
            passes=("elim_choices", "debias", "cse"), use_cache=False
        ).compile(command)
        without = Pipeline(
            passes=("elim_choices", "debias"),
            dedupe=False,
            compact=False,
            use_cache=False,
        ).compile(command)
        assert _stream(with_cse.table, samples, seed=91) == _stream(
            without.table, samples, seed=91
        )

    @pytest.mark.parametrize(
        "name,command,samples", PROGRAMS, ids=[p[0] for p in PROGRAMS]
    )
    def test_pass_order_invariance_documented(self, name, command, samples):
        """Running CSE early (then again last) must not change samples:
        cse commutes with elim_choices/debias up to sharing."""
        default = Pipeline(passes=DEFAULT_PASSES, use_cache=False).compile(
            command
        )
        reordered = Pipeline(
            passes=("cse", "elim_choices", "debias", "cse"), use_cache=False
        ).compile(command)
        assert _stream(default.table, samples, seed=7) == _stream(
            reordered.table, samples, seed=7
        )

    def test_elim_choices_preserves_distribution(self):
        """elim_choices changes the bit stream (it deletes flips) but
        not the outcome distribution; exact check on a loop-free tree
        with duplicated branches."""
        from repro.cftree.semantics import twp

        tree = TChoice(
            Fraction(1, 3),
            TChoice(Fraction(1, 2), Leaf(1), Leaf(1)),
            TChoice(Fraction(1, 4), Leaf(2), Leaf(3)),
        )
        eliminated = elim_choices(tree)
        for outcome in (1, 2, 3):
            f = lambda v, o=outcome: 1 if v == o else 0
            assert twp(tree, f) == twp(eliminated, f)


class TestCSE:
    def test_shares_equal_subtrees(self):
        half = Fraction(1, 2)
        left = TChoice(half, Leaf(1), Leaf(2))
        right = TChoice(half, Leaf(1), Leaf(2))
        shared = cse(TChoice(half, left, right))
        assert shared.left is shared.right

    def test_interner_scopes_sharing_across_trees(self):
        interner = TreeInterner()
        a = cse(TChoice(Fraction(1, 2), Leaf(1), Leaf(2)), interner)
        b = cse(TChoice(Fraction(1, 2), Leaf(1), Leaf(2)), interner)
        assert a is b

    def test_fail_is_interned(self):
        tree = TChoice(Fraction(1, 2), Fail(), Fail())
        shared = cse(tree)
        assert shared.left is shared.right

    def test_bool_and_int_leaves_stay_distinct(self):
        # Leaf(True) == Leaf(1) under structural equality, but the
        # interner keys on (type, value) and must not conflate payloads.
        tree = TChoice(Fraction(1, 2), Leaf(True), Leaf(1))
        shared = cse(tree)
        assert shared.left.value is True
        assert shared.right.value == 1
        assert not isinstance(shared.right.value, bool)

    def test_fix_interns_through_generators(self):
        # Loop-body trees produced lazily by a cse'd Fix are interned in
        # the same scope as the rest of the tree.
        interner = TreeInterner()
        body_tree = TChoice(Fraction(1, 2), Leaf(1), Leaf(2))
        fix = Fix(0, lambda s: s == 0, lambda s: body_tree, Leaf)
        wrapped = cse(fix, interner)
        assert isinstance(wrapped, Fix)
        assert wrapped.body(0) is cse(body_tree, interner)

    @settings(max_examples=60, deadline=None)
    @given(tree=cf_trees())
    def test_idempotent_on_fix_free_trees(self, tree):
        once = cse(tree)
        twice = cse(once)
        assert twice == once

    @settings(max_examples=40, deadline=None)
    @given(command=commands_with_loops())
    def test_idempotent_under_one_interner(self, command):
        # With Fix nodes equality is identity, so idempotence is stated
        # per interner: re-interning a canonical tree is the identity.
        tree = debias(elim_choices(compile_cpgcl(command, S0)))
        interner = TreeInterner()
        once = cse(tree, interner)
        assert cse(once, interner) is once


class TestLowering:
    def test_die_row_reduction_meets_bar(self):
        """Acceptance: >= 20% node-table row reduction on the Table 3
        die from the hash-consing/CSE stage (tree CSE + row dedup +
        jump-threading compaction)."""
        program = Pipeline(use_cache=False).compile(
            n_sided_die(6), measure_raw=True
        )
        lower = program.stats["lower"]
        assert lower["rows_raw"] > lower["rows"]
        assert lower["reduction_pct"] >= 20.0

    def test_dueling_row_reduction(self):
        program = Pipeline(use_cache=False).compile(
            dueling_coins(Fraction(2, 3)), measure_raw=True
        )
        assert program.stats["lower"]["reduction_pct"] >= 20.0

    def test_compaction_threads_all_jumps_when_closed(self):
        program = Pipeline(use_cache=False).compile(n_sided_die(6))
        stats = program.table.stats()
        assert stats["stub"] == 0
        assert stats["jmp"] == 0  # every jump threaded away

    def test_open_table_keeps_expanding_after_compact(self):
        # geometric_primes has an unbounded loop-state space: the build
        # expands a bounded prefix, compacts, and later samples must
        # still be able to grow the table through pending stubs.
        command = geometric_primes(Fraction(1, 2))
        program = Pipeline(
            eager_expand=32, use_cache=False
        ).compile(command)
        assert program.table.pending_stubs > 0
        assert _stream(program.table, 100, seed=3) == _reference_stream(
            command, 100, seed=3
        )

    def test_compact_is_idempotent(self):
        program = Pipeline(use_cache=False).compile(n_sided_die(6))
        assert program.table.compact() == 0

    def test_row_dedupe_at_allocation(self):
        # Two structurally equal leaves lower to one row when dedupe is
        # on, two rows otherwise.
        tree = TChoice(Fraction(1, 2), Leaf(5), Leaf(5))
        deduped = NodeTable.from_cftree(tree, dedupe=True)
        plain = NodeTable.from_cftree(tree, dedupe=False)
        assert len(deduped) < len(plain)
        assert deduped.dedup_hits >= 1

    def test_divergent_self_jump_survives_compaction(self):
        # while true { skip } lowers to a pure jump cycle; compaction
        # must keep it (and not hang or corrupt the table).
        from repro.lang.expr import TRUE
        from repro.sampler.run import FuelExhausted

        program = Pipeline(use_cache=False).compile(While(TRUE, Skip()))
        table = program.table
        assert any(op == OP_JMP for op in table.op)
        with pytest.raises(FuelExhausted):
            _stream(table, 1, seed=0, fuel=50)

    def test_dag_size_counts_shared_once(self):
        leaf = Leaf(1)
        shared = TChoice(Fraction(1, 2), leaf, leaf)
        duplicated = TChoice(Fraction(1, 2), Leaf(1), Leaf(1))
        assert dag_size(shared) == 2
        assert dag_size(duplicated) == 3


class TestStructuralCompileCache:
    """Regression for the seed's ``(id(command), sigma)`` memo keys."""

    def test_equal_commands_share_compiled_tree(self):
        # Two structurally equal but distinct command objects must hit
        # the same cache entry -- impossible under id-keying.
        a = Seq(Assign("x", 3), Assign("y", Var("x")))
        b = Seq(Assign("x", 3), Assign("y", Var("x")))
        assert a is not b
        assert compile_cpgcl(a, S0) is compile_cpgcl(b, S0)

    def test_id_reuse_cannot_cross_contaminate(self):
        # Churn through many short-lived distinct programs so the
        # allocator aggressively reuses addresses; every compile must
        # reflect its own program, never a stale entry whose keyed
        # address was recycled.
        for i in range(200):
            command = Seq(Assign("x", i), Assign("y", i + 1))
            tree = compile_cpgcl(command, S0)
            assert isinstance(tree, Leaf)
            assert tree.value["x"] == i
            assert tree.value["y"] == i + 1
            del command, tree
            if i % 50 == 0:
                gc.collect()

    def test_distinct_states_distinct_entries(self):
        command = Assign("y", Var("x"))
        t1 = compile_cpgcl(command, State(x=1))
        t2 = compile_cpgcl(command, State(x=2))
        assert t1.value["y"] == 1
        assert t2.value["y"] == 2

    def test_interner_fast_path_is_bounded(self):
        # Loop-heavy sampling interns a fresh (structurally recurring)
        # object per iteration: the id-keyed fast path pins its keys, so
        # it must be bounded independently of the structural table.
        from repro.compiler.normalize import Interner

        interner = Interner(capacity=64)
        for i in range(1000):
            interner.intern(State(x=1))
        assert len(interner._by_id) <= 64

    def test_interner_overflow_keeps_recent_canonicals(self):
        # Overflow drops the *oldest half* instead of clearing: a full
        # clear would change the identity of every canonical object at
        # once and cold-start each downstream id-keyed memo.
        from repro.compiler.normalize import Interner

        interner = Interner(capacity=8)
        recent = [State(x=i) for i in range(4, 8)]
        for i in range(8):
            interner.intern(State(x=i))
        interner.intern(State(x=99))  # triggers the half-drop
        for state in recent:
            canonical = interner.intern(State(x=state["x"]))
            # Recent canonicals kept their identity across the drop.
            assert canonical is interner.intern(State(x=state["x"]))
        assert len(interner._canon) <= 8

    def test_interner_identity_stable_for_live_canonicals(self):
        # The id-recycling regression: after heavy churn, an object the
        # caller still holds must keep interning to ITSELF -- if the
        # table dropped it while a dead object's id got recycled into
        # the fast path, a live key could alias a stale canonical.
        from repro.compiler.normalize import Interner

        interner = Interner(capacity=32)
        keeper = interner.intern(State(x=-1))
        for i in range(200):
            interner.intern(State(x=i))  # churn through several drops
        again = interner.intern(State(x=-1))
        assert again == keeper
        assert interner.intern(keeper) is interner.intern(keeper)


class TestCompiledProgram:
    def test_stats_shape(self):
        program = compile_program(n_sided_die(6))
        assert isinstance(program, CompiledProgram)
        assert program.digest
        assert [r["name"] for r in program.stats["optimize"]] == list(
            DEFAULT_PASSES
        )
        lower = program.stats["lower"]
        assert lower["rows"] == len(program.table)
        memo = program.stats["cftree_cache"]
        assert memo["hits"] >= 0 and memo["capacity"] > 0

    def test_collect_roundtrip(self):
        program = compile_program(n_sided_die(6))
        samples = program.collect(500, seed=11, extract=lambda s: s["x"])
        assert len(samples) == 500
        assert set(samples.values) <= set(range(1, 7))

    def test_sampler_entry_points_share_cached_table(self):
        from repro.engine.api import BatchSampler

        first = BatchSampler.from_command(n_sided_die(6))
        second = BatchSampler.from_command(n_sided_die(6))
        assert first.table is second.table
