"""Tests for CF tree analyses (repro.cftree.analysis)."""

from fractions import Fraction

import pytest

from repro.cftree.analysis import (
    expected_bits,
    is_unbiased,
    tree_depth,
    tree_size,
)
from repro.cftree.compile import compile_cpgcl
from repro.cftree.debias import debias
from repro.cftree.elim import elim_choices
from repro.cftree.tree import Choice, Fail, Fix, LOOPBACK, Leaf
from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.lang.state import State
from repro.lang.sugar import dueling_coins
from repro.semantics.extreal import ExtReal

S0 = State()
HALF = Fraction(1, 2)


class TestIsUnbiased:
    def test_leaf_and_fail(self):
        assert is_unbiased(Leaf(1))
        assert is_unbiased(Fail())

    def test_biased_choice_detected(self):
        assert not is_unbiased(Choice(Fraction(1, 3), Leaf(1), Leaf(0)))

    def test_bias_inside_fix_detected(self):
        biased = Choice(Fraction(1, 3), Leaf(1), Leaf(LOOPBACK))
        tree = Fix(LOOPBACK, lambda s: s is LOOPBACK, lambda s: biased, Leaf)
        assert not is_unbiased(tree)

    def test_bias_in_fix_continuation_detected(self):
        tree = Fix(
            0,
            lambda s: False,
            Leaf,
            lambda s: Choice(Fraction(1, 3), Leaf(1), Leaf(0)),
        )
        assert not is_unbiased(tree)

    def test_debiased_program_clean(self):
        tree = debias(elim_choices(compile_cpgcl(dueling_coins(Fraction(4, 5)), S0)))
        assert is_unbiased(tree, max_states=200)


class TestExpectedBits:
    def test_leaf_costs_nothing(self):
        assert expected_bits(Leaf(1)) == ExtReal(0)

    def test_single_choice_costs_one(self):
        assert expected_bits(Choice(HALF, Leaf(1), Leaf(0))) == ExtReal(1)

    def test_fail_ends_attempt(self):
        tree = Choice(HALF, Leaf(1), Fail())
        assert expected_bits(tree) == ExtReal(1)

    def test_continuation_cost_added(self):
        tree = Choice(HALF, Leaf("a"), Leaf("b"))
        cost = expected_bits(
            tree, continuation=lambda v: ExtReal(2 if v == "a" else 0)
        )
        assert cost == ExtReal(2)  # 1 flip + 1/2 * 2

    def test_rejection_loop_geometric(self):
        # bernoulli_tree(2/3), loopback mode: 2 flips per attempt,
        # success 3/4 => 8/3 total.
        assert expected_bits(bernoulli_tree(Fraction(2, 3))) == ExtReal(
            Fraction(8, 3)
        )

    def test_dueling_coins_table1_values(self):
        for p, bits in [
            (Fraction(2, 3), Fraction(12)),
            (Fraction(4, 5), Fraction(55, 2)),
            (Fraction(1, 20), Fraction(2560, 19)),
        ]:
            tree = debias(elim_choices(compile_cpgcl(dueling_coins(p), S0)))
            assert expected_bits(tree) == ExtReal(bits), p


class TestStructuralStats:
    def test_size(self):
        tree = Choice(HALF, Leaf(1), Choice(HALF, Leaf(2), Fail()))
        assert tree_size(tree) == 5

    def test_depth(self):
        tree = Choice(HALF, Leaf(1), Choice(HALF, Leaf(2), Fail()))
        assert tree_depth(tree) == 3

    def test_fix_counts_as_one(self):
        assert tree_size(uniform_tree(6)) == 1
        assert tree_depth(uniform_tree(6)) == 1

    def test_power_of_two_uniform_size(self):
        # uniform_tree(4): 3 choices + 4 leaves.
        assert tree_size(uniform_tree(4)) == 7
