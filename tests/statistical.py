"""Calibrated statistical assertions for sampler tests.

Frequency checks against exact probabilities go through the exact
Clopper-Pearson interval (:mod:`repro.stats.binomial`) instead of magic
tolerances: ``assert_frequency(k, n, p)`` passes iff the true
probability ``p`` lies in the exact CP interval around the observed
``k/n`` at confidence ``1 - alpha``.

With the default ``alpha = 1e-9`` a *correct* sampler fails a given
seeded check with probability at most one in a billion -- and since all
suite streams are seeded, a pass/fail outcome is fully reproducible.
A wrong distribution, by contrast, leaves the interval with probability
approaching 1 as ``n`` grows (the interval shrinks as ``~1/sqrt(n)``).

Helpers accept probabilities as floats or ``Fraction``s (the ``cwp``/
``twp`` engines produce exact rationals).
"""

from fractions import Fraction
from typing import Dict, Iterable, Optional

from repro.stats.binomial import clopper_pearson

# One-in-a-billion per-check false-alarm rate: strict enough that a
# seeded suite never flakes, loose enough that real bugs (which sit
# many sigma out at the suite's sample sizes) are still caught.
DEFAULT_ALPHA = 1e-9


def _as_float(p) -> float:
    if isinstance(p, Fraction):
        return p.numerator / p.denominator
    return float(p)


def assert_frequency(
    successes: int,
    trials: int,
    probability,
    alpha: float = DEFAULT_ALPHA,
    label: str = "",
) -> None:
    """Assert ``probability`` lies in the CP interval for ``successes/trials``."""
    p = _as_float(probability)
    lower, upper = clopper_pearson(successes, trials, alpha)
    if not lower <= p <= upper:
        raise AssertionError(
            "%sobserved %d/%d (freq %.6f) is inconsistent with true "
            "probability %.6f: CP interval [%.6f, %.6f] at alpha=%g"
            % (
                ("%s: " % label) if label else "",
                successes,
                trials,
                successes / trials,
                p,
                lower,
                upper,
                alpha,
            )
        )


def assert_event_frequency(
    values: Iterable[object],
    predicate,
    probability,
    alpha: float = DEFAULT_ALPHA,
    label: str = "",
) -> None:
    """CP check for the frequency of ``predicate`` over ``values``."""
    values = list(values)
    hits = sum(1 for value in values if predicate(value))
    assert_frequency(hits, len(values), probability, alpha, label)


def assert_pmf(
    values: Iterable[object],
    pmf: Dict[object, float],
    alpha: float = DEFAULT_ALPHA,
    label: str = "",
) -> None:
    """Per-outcome CP checks of observed counts against an exact pmf.

    The per-outcome ``alpha`` is split evenly (Bonferroni, with one
    extra slot for the support check) so the whole family keeps the
    requested false-alarm rate.  Mass leaked to outcomes *outside*
    ``pmf`` is caught by a CP check of the total in-support frequency
    against ``sum(pmf.values())`` -- which also handles truncated pmfs
    (support sums below 1) exactly.
    """
    values = list(values)
    per_check = alpha / (len(pmf) + 1)
    counts: Dict[object, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    in_support = sum(counts.get(outcome, 0) for outcome in pmf)
    total_mass = sum(_as_float(p) for p in pmf.values())
    assert_frequency(
        in_support,
        len(values),
        min(1.0, total_mass),
        per_check,
        label="%s in-support mass" % label if label else "in-support mass",
    )
    for outcome, probability in pmf.items():
        assert_frequency(
            counts.get(outcome, 0),
            len(values),
            probability,
            per_check,
            label="%s outcome=%r" % (label, outcome) if label else
            "outcome=%r" % (outcome,),
        )


def frequency_interval(
    successes: int, trials: int, alpha: float = DEFAULT_ALPHA
):
    """The CP interval itself (re-exported for ad-hoc assertions)."""
    return clopper_pearson(successes, trials, alpha)
