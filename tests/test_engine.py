"""Unit tests for the batch engine (table lowering, pools, drivers)."""

from fractions import Fraction

import pytest

from repro.bits.source import BitsExhausted, ReplayBits
from repro.cftree.tree import Choice, Fail, Leaf
from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.engine import (
    ENGINE_FAIL,
    BatchSampler,
    BitPool,
    HAVE_NUMPY,
    LoweringError,
    NodeTable,
    TableOverflow,
    lower_cftree,
)
from repro.engine.table import OP_BIT, OP_JMP, OP_LEAF
from repro.lang.expr import Var
from repro.lang.state import State
from repro.lang.sugar import flip, geometric_primes, n_sided_die
from repro.lang.syntax import Observe, Seq
from repro.sampler.record import SampleSet, collect
from repro.stats.distributions import uniform_pmf

from statistical import assert_event_frequency, assert_pmf

S0 = State()


class TestLowering:
    def test_perfect_tree_layout(self):
        # uniform_tree(4) is two fair bits: 3 BIT nodes over 4 leaves.
        table = lower_cftree(uniform_tree(4))
        stats = table.stats()
        assert stats["bit"] == 3
        assert stats["leaf"] == 4
        assert stats["stub"] == 0

    def test_rejection_loop_closes(self):
        # uniform_tree(6) wraps a rejection loop; after full expansion
        # the loopback must be a back-edge (a jump), not fresh copies.
        table = lower_cftree(uniform_tree(6))
        assert table.expand_all()
        stats = table.stats()
        assert stats["stub"] == 0
        assert stats["jmp"] >= 1
        assert stats["leaf"] == 6
        # Fixed point: expanding again changes nothing.
        size = len(table)
        assert table.expand_all()
        assert len(table) == size

    def test_payloads_deduplicated(self):
        # bernoulli_tree(1/3) has many True/False leaves but only two
        # distinct payloads.
        table = lower_cftree(bernoulli_tree(Fraction(1, 3)))
        table.expand_all()
        assert len(table.payloads) == 2

    def test_biased_choice_rejected(self):
        biased = Choice(Fraction(1, 3), Leaf(0), Leaf(1))
        with pytest.raises(LoweringError):
            lower_cftree(biased)

    def test_overflow_guard(self):
        with pytest.raises(TableOverflow):
            table = NodeTable.from_cftree(
                uniform_tree(64), max_nodes=16
            )
            table.expand_all()

    def test_fail_node_shared(self):
        tree = Choice(Fraction(1, 2), Fail(), Fail())
        table = lower_cftree(tree)
        assert table.stats()["fail"] == 1


class TestSequentialDriver:
    def test_explicit_bits_select_outcome(self):
        sampler = BatchSampler.from_cftree(uniform_tree(4))
        # True selects the left branch (the paper's "heads").
        assert sampler.sample(ReplayBits([True, True])) == 0
        assert sampler.sample(ReplayBits([True, False])) == 1
        assert sampler.sample(ReplayBits([False, True])) == 2
        assert sampler.sample(ReplayBits([False, False])) == 3

    def test_exhaustion_propagates(self):
        sampler = BatchSampler.from_cftree(uniform_tree(4))
        with pytest.raises(BitsExhausted):
            sampler.sample(ReplayBits([True]))

    def test_untied_failure_sentinel(self):
        command = Seq(flip("b", Fraction(1, 2)), Observe(Var("b")))
        tied = BatchSampler.from_command(command)
        open_sampler = BatchSampler(tied.table, tied=False)
        values = open_sampler.collect(
            200, seed=3, backend="python"
        ).values
        assert ENGINE_FAIL in values
        assert any(value is not ENGINE_FAIL for value in values)


class TestBatchDrivers:
    BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_die_distribution(self, backend):
        sampler = BatchSampler.from_command(n_sided_die(6))
        samples = sampler.collect(
            6000, seed=5, extract=lambda s: s["x"], backend=backend
        )
        assert isinstance(samples, SampleSet)
        assert len(samples) == 6000
        assert_pmf(samples.values, uniform_pmf(6, start=1))
        # Exact expected bit cost is 11/3; six sigma of the mean.
        assert abs(samples.mean_bits() - 11 / 3) < 0.2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seed_determinism(self, backend):
        sampler = BatchSampler.from_command(n_sided_die(6))
        first = sampler.collect(500, seed=9, backend=backend)
        second = sampler.collect(500, seed=9, backend=backend)
        assert first.values == second.values
        assert first.bits == second.bits

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_conditioning_restarts_counted(self, backend):
        # observe(b) rejects half the runs; burned bits must show up in
        # the per-sample accounting (mean well above 1 bit).
        command = Seq(flip("b", Fraction(1, 2)), Observe(Var("b")))
        sampler = BatchSampler.from_command(command)
        samples = sampler.collect(2000, seed=6, backend=backend)
        assert all(value["b"] is True for value in samples.values)
        # E[bits] = sum over restarts: 1 * sum_k k (1/2)^k = 2.
        assert abs(samples.mean_bits() - 2.0) < 0.35

    def test_collect_dispatches_tables(self):
        # repro.sampler.record.collect accepts tables and batch samplers.
        sampler = BatchSampler.from_command(n_sided_die(6))
        through_sampler = collect(sampler, 300, seed=1)
        through_table = collect(sampler.table, 300, seed=1)
        assert through_sampler.values == through_table.values

    def test_geometric_unbounded_state_space(self):
        # The geometric loop's counter is unbounded: lowering must stay
        # lazy and only materialize states actually reached.
        sampler = BatchSampler.from_command(geometric_primes(Fraction(1, 2)))
        samples = sampler.collect(
            2000, seed=8, extract=lambda s: s["h"], backend="python"
        )
        # Posterior over primes: every value is prime.
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31}
        assert set(samples.values) <= primes
        # P(h=2 | prime) = (1/8) / (1/8 + 1/16 + 1/64 + ...) -- check
        # the dominant outcome with a CP bound vs the exact posterior.
        from repro.stats.distributions import geometric_primes_pmf

        pmf = geometric_primes_pmf(Fraction(1, 2))
        assert_event_frequency(
            samples.values, lambda h: h == 2, pmf[2]
        )


class TestBitPool:
    def test_seeded_reproducibility(self):
        a = BitPool(42)
        b = BitPool(42)
        assert [a.next_bit() for _ in range(256)] == [
            b.next_bit() for _ in range(256)
        ]

    def test_chunk_and_bit_faces_agree(self):
        bitwise = BitPool(7)
        chunked = BitPool(7)
        value, width = chunked.next_chunk()
        expected = [bool((value >> i) & 1) for i in range(width)]
        assert [bitwise.next_bit() for _ in range(width)] == expected


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
class TestNumpyParity:
    def test_backends_agree_distributionally(self):
        sampler = BatchSampler.from_command(n_sided_die(8))
        fast = sampler.collect(4000, seed=2, extract=lambda s: s["x"],
                               backend="numpy")
        slow = sampler.collect(4000, seed=2, extract=lambda s: s["x"],
                               backend="python")
        # Different bit-assignment orders, same distribution: compare
        # both against the exact pmf, and exact bit costs (3 bits).
        assert_pmf(fast.values, uniform_pmf(8, start=1))
        assert_pmf(slow.values, uniform_pmf(8, start=1))
        assert fast.bits == [3] * 4000
        assert slow.bits == [3] * 4000
