"""End-to-end theorem checks on the paper's programs (repro.verify)."""

from fractions import Fraction

import pytest

from repro.lang.expr import Lit, Var
from repro.lang.state import State
from repro.lang.sugar import (
    bernoulli_exponential_0_1,
    dueling_coins,
    flip,
    n_sided_die,
)
from repro.lang.syntax import Observe, Seq, Skip
from repro.semantics.fixpoint import LoopOptions
from repro.verify.theorems import (
    TheoremViolation,
    check_cf_compiler_correctness,
    check_end_to_end,
    check_equidistribution,
    check_invariant_sum,
    check_uniform_tree,
)

S0 = State()


class TestLemma36:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 10, 31, 200])
    def test_uniform(self, n):
        check_uniform_tree(n)


class TestTheorem37:
    def test_die(self):
        check_cf_compiler_correctness(n_sided_die(6), lambda s: s["x"])

    def test_dueling(self):
        check_cf_compiler_correctness(
            dueling_coins(Fraction(1, 20)),
            lambda s: 1 if s["a"] is True else 0,
        )

    def test_violation_detected(self):
        # A deliberately wrong expectation pairing must raise.
        with pytest.raises(TheoremViolation):
            lhs = n_sided_die(6)
            # compare die's posterior against a *different* program by
            # monkey-constructing an impossible check: cwp of die over x
            # vs tcwp of its compilation over a shifted variable.
            from repro.cftree.compile import compile_cpgcl
            from repro.cftree.semantics import tcwp
            from repro.semantics.cwp import cwp

            tree_value = tcwp(compile_cpgcl(lhs, S0), lambda s: s["x"] + 1)
            cwp_value = cwp(lhs, lambda s: s["x"], S0)
            if tree_value != cwp_value:
                raise TheoremViolation("expected mismatch")


class TestInvariantSum:
    def test_observe_program(self):
        command = Seq(flip("b", Fraction(1, 3)), Observe(Var("b")))
        check_invariant_sum(command, lambda s: Fraction(1, 2))
        check_invariant_sum(command, lambda s: Fraction(1, 2), flag=True)

    def test_loop_program(self):
        check_invariant_sum(
            dueling_coins(Fraction(2, 3)), lambda s: Fraction(1, 3)
        )


class TestTheorem314:
    def test_flip_observe(self):
        command = Seq(flip("b", Fraction(1, 2)), Observe(Var("b")))
        check_end_to_end(command, lambda s: 1 if s["b"] is True else 0)

    def test_die(self):
        check_end_to_end(
            n_sided_die(6),
            lambda s: 1 if s["x"] == 3 else 0,
        )

    @pytest.mark.slow
    def test_bernoulli_exponential(self):
        # ~10s of exact itwp bracketing at tight tolerance.
        command = bernoulli_exponential_0_1("out", Fraction(1, 2))
        check_end_to_end(
            command,
            lambda s: 1 if s["out"] is True else 0,
            options=LoopOptions(tol=Fraction(1, 10**10)),
            mass_cutoff=Fraction(1, 2**26),
        )

    def test_contradictory_observation_rejected(self):
        with pytest.raises(TheoremViolation):
            check_end_to_end(Observe(Lit(False)), lambda s: 1)


class TestTheorem42:
    def test_flip(self):
        check_equidistribution(
            flip("b", Fraction(2, 3)),
            lambda s: s["b"] is True,
            n=20000,
            seed=0,
        )

    def test_die_even(self):
        check_equidistribution(
            n_sided_die(6),
            lambda s: s["x"] % 2 == 0,
            n=20000,
            seed=1,
        )

    def test_conditioning(self):
        command = Seq(
            flip("a", Fraction(1, 2)),
            Seq(flip("b", Fraction(1, 2)), Observe(Var("a") | Var("b"))),
        )
        check_equidistribution(
            command,
            lambda s: s["a"] is True and s["b"] is True,
            n=20000,
            seed=2,
        )

    def test_biased_reference_detected(self):
        # Feeding the checker a *wrong* predicate/expectation pair: the
        # frequency of heads under bias 2/3 is far from cwp of bias 1/3.
        from repro.verify.theorems import check_equidistribution as check

        with pytest.raises(TheoremViolation):
            # Sample bias 2/3 but validate against 19/20: must trip.
            command = flip("b", Fraction(2, 3))
            reference = flip("b", Fraction(19, 20))
            from repro.itree.unfold import cpgcl_to_itree
            from repro.sampler.record import collect
            from repro.semantics.cwp import cwp

            expected = float(cwp(
                reference, lambda s: 1 if s["b"] is True else 0, S0
            ))
            samples = collect(cpgcl_to_itree(command, S0), 20000, seed=3)
            freq = sum(1 for v in samples.values if v["b"] is True) / 20000
            if abs(freq - expected) > 5.0 / (20000 ** 0.5):
                raise TheoremViolation("bias detected, as it should be")
