"""Tests for trace recording and replay (repro.mcmc.trace / .replay)."""

from fractions import Fraction

import pytest

from repro.bits.source import ReplayBits, SystemBits
from repro.lang.expr import Var
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, geometric_primes
from repro.lang.syntax import (
    Assign,
    Choice,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.mcmc.replay import ReplayBudgetExhausted, replay
from repro.mcmc.trace import (
    Trace,
    TraceEntry,
    choice_entry,
    reuse_entry,
    uniform_entry,
)

HALF = Fraction(1, 2)
THIRD = Fraction(1, 3)


class TestTraceEntry:
    def test_choice_entry_heads_probability(self):
        entry = choice_entry(THIRD, True)
        assert entry.prob == THIRD
        assert choice_entry(THIRD, False).prob == Fraction(2, 3)

    def test_uniform_entry_probability(self):
        assert uniform_entry(6, 3).prob == Fraction(1, 6)

    def test_uniform_entry_range_check(self):
        with pytest.raises(ValueError):
            uniform_entry(6, 6)
        with pytest.raises(ValueError):
            uniform_entry(6, -1)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry("gaussian", 1, 0, HALF)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry("choice", HALF, True, Fraction(3, 2))

    def test_immutable(self):
        entry = choice_entry(HALF, True)
        with pytest.raises(AttributeError):
            entry.value = False


class TestTrace:
    def test_density_is_product(self):
        trace = Trace((choice_entry(THIRD, True), uniform_entry(4, 0)))
        assert trace.density() == THIRD * Fraction(1, 4)

    def test_empty_density_is_one(self):
        assert Trace().density() == 1

    def test_reuse_positional(self):
        trace = Trace((choice_entry(HALF, True),))
        assert trace.reuse_value(0, "choice") is True
        assert trace.reuse_value(1, "choice") is None

    def test_reuse_rejects_kind_mismatch(self):
        trace = Trace((choice_entry(HALF, True),))
        assert trace.reuse_value(0, "uniform") is None

    def test_reuse_keeps_value_even_when_param_changes(self):
        # Legality under the new parameter is priced by reuse_entry,
        # not decided here (keeps proposals symmetric).
        trace = Trace((uniform_entry(10, 7),))
        assert trace.reuse_value(0, "uniform") == 7

    def test_reuse_entry_prices_impossible_values_at_zero(self):
        assert reuse_entry("uniform", 5, 7).prob == 0
        assert reuse_entry("uniform", 8, 7).prob == Fraction(1, 8)
        assert reuse_entry("choice", Fraction(0), True).prob == 0
        assert reuse_entry("choice", Fraction(1), False).prob == 0
        assert reuse_entry("choice", Fraction(1), True).prob == 1

    def test_reuse_entry_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            reuse_entry("gaussian", 1, 0)

    def test_rejects_non_entries(self):
        with pytest.raises(TypeError):
            Trace((1, 2))


class TestReplay:
    def test_forward_records_all_sites(self):
        program = Seq(
            Choice(THIRD, Assign("x", 0), Assign("x", 1)),
            Uniform(4, "y"),
        )
        result = replay(program, State(), source=SystemBits(0))
        assert result.observed
        assert len(result.trace) == 2
        assert result.trace[0].kind == "choice"
        assert result.trace[1].kind == "uniform"
        # Everything was fresh: q_fresh is the full trace density.
        assert result.q_fresh == result.trace.density()
        assert result.reused == frozenset()

    def test_full_replay_is_deterministic(self):
        program = dueling_coins(Fraction(2, 3))
        first = replay(program, State(), source=SystemBits(5))
        again = replay(
            program,
            State(),
            old_trace=first.trace,
            source=ReplayBits([]),  # no fresh bits may be needed
        )
        assert again.state == first.state
        assert again.trace == first.trace
        assert again.q_fresh == 1
        assert again.reused == frozenset(range(len(first.trace)))

    def test_proposal_site_forces_fresh_draw(self):
        program = Choice(HALF, Assign("x", 0), Assign("x", 1))
        first = replay(program, State(), source=SystemBits(3))
        # Fresh draw at site 0 must consume a bit.
        flipped = replay(
            program,
            State(),
            old_trace=first.trace,
            proposal_site=0,
            source=ReplayBits([not first.trace[0].value]),
        )
        assert flipped.trace[0].value == (not first.trace[0].value)
        assert flipped.q_fresh == HALF
        assert flipped.reused == frozenset()

    def test_observation_failure_reported(self):
        program = Seq(Assign("x", 0), Observe(Var("x").eq(1)))
        result = replay(program, State(), source=SystemBits(0))
        assert not result.observed
        assert result.state is None

    def test_budget_exhaustion_raises(self):
        diverging = Seq(Assign("go", True), While(Var("go"), Skip()))
        with pytest.raises(ReplayBudgetExhausted):
            replay(diverging, State(), source=SystemBits(0), max_steps=50)

    def test_state_dependent_bias_recomputed_on_reuse(self):
        # p depends on y; replaying with a different prefix value changes
        # the recorded probability of the reused suffix entry.
        program = Seq(
            Uniform(2, "y"),
            Choice(
                Var("y") * Fraction(1, 2) + Fraction(1, 4),
                Assign("x", 0),
                Assign("x", 1),
            ),
        )
        base = replay(program, State(), source=SystemBits(9))
        y_value = base.trace[0].value
        for bit in (False, True):  # find the bit that flips y
            flipped = replay(
                program,
                State(),
                old_trace=base.trace,
                proposal_site=0,
                source=ReplayBits([bit]),
            )
            if flipped.trace[0].value != y_value:
                break
        else:
            pytest.fail("no single bit flipped the uniform(2) draw")
        assert flipped.trace[0].value == 1 - y_value
        # Choice outcome was reused, but its probability was recomputed
        # under the new bias p(y).
        assert flipped.trace[1].value == base.trace[1].value
        assert flipped.trace[1].param != base.trace[1].param

    def test_shrinking_range_makes_reuse_impossible(self):
        # z is drawn from uniform(y + 1); proposing y: 1 -> 0 shrinks the
        # range to 1, under which the reused z = 1 is impossible -- the
        # replay reports a zero-density proposal instead of redrawing.
        program = Seq(
            Uniform(2, "y"), Uniform(Var("y") + 1, "z")
        )
        base = None
        for seed in range(64):
            candidate = replay(program, State(), source=SystemBits(seed))
            if candidate.state["y"] == 1 and candidate.state["z"] == 1:
                base = candidate
                break
        assert base is not None, "no seed produced y=1, z=1"
        for bit in (False, True):
            flipped = replay(
                program,
                State(),
                old_trace=base.trace,
                proposal_site=0,
                source=ReplayBits([bit]),
            )
            if flipped.trace[0].value == 0:
                break
        else:
            pytest.fail("no single bit flipped the uniform(2) draw")
        assert flipped.impossible
        assert flipped.state is None
        assert flipped.trace.density() == 0

    def test_prefix_property(self):
        # Sites before the proposal site replay identically.
        program = geometric_primes(HALF)
        base = replay(program, State(), source=SystemBits(21))
        site = len(base.trace) - 1
        perturbed = replay(
            program,
            State(),
            old_trace=base.trace,
            proposal_site=site,
            source=SystemBits(22),
        )
        assert perturbed.trace.entries[:site] == base.trace.entries[:site]
