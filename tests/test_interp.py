"""Tests for the direct operational interpreter (repro.lang.interp)."""

from fractions import Fraction

import pytest

from repro.bits.source import ConstantBits, SystemBits
from repro.lang.expr import Lit, Var
from repro.lang.interp import (
    InterpreterLimits,
    interpret,
    interpret_many,
)
from repro.lang.state import State
from repro.lang.sugar import dueling_coins, flip, geometric_primes, n_sided_die
from repro.lang.syntax import Assign, Observe, Seq, Skip, While

S0 = State()


class TestDeterministicPrograms:
    def test_straight_line(self):
        program = Seq(Assign("x", Lit(2)), Assign("y", Var("x") * 3))
        result = interpret(program, S0, seed=0)
        assert result["x"] == 2 and result["y"] == 6

    def test_bounded_loop(self):
        program = While(Var("x") < 5, Assign("x", Var("x") + 1))
        assert interpret(program, S0, seed=0)["x"] == 5

    def test_observe_true_is_noop(self):
        program = Seq(Assign("x", Lit(1)), Observe(Var("x").eq(1)))
        assert interpret(program, S0, seed=0)["x"] == 1


class TestProbabilisticPrograms:
    def test_flip_frequency(self):
        program = flip("b", Fraction(2, 3))
        values = interpret_many(program, 6000, seed=5)
        frequency = sum(1 for s in values if s["b"] is True) / len(values)
        assert abs(frequency - 2 / 3) < 0.04

    def test_die_uniform(self):
        values = interpret_many(n_sided_die(6), 6000, seed=6)
        for face in range(1, 7):
            share = sum(1 for s in values if s["x"] == face) / len(values)
            assert abs(share - 1 / 6) < 0.03

    def test_dueling_coins_fair(self):
        values = interpret_many(dueling_coins(Fraction(2, 3)), 4000, seed=7)
        frequency = sum(1 for s in values if s["a"] is True) / len(values)
        assert abs(frequency - 0.5) < 0.04

    def test_conditioning_by_restart(self):
        program = Seq(flip("b", Fraction(1, 2)), Observe(Var("b")))
        values = interpret_many(program, 500, seed=8)
        assert all(s["b"] is True for s in values)

    def test_primes_posterior_support(self):
        from repro.lang.builtins import is_prime

        values = interpret_many(geometric_primes(Fraction(1, 2)), 800, seed=9)
        assert all(is_prime(s["h"]) for s in values)


class TestAgreementWithCompiledSampler:
    """The interpreter and the compiled pipeline target the same
    posterior: their empirical distributions must agree."""

    def test_geometric_primes(self):
        from repro.itree.unfold import cpgcl_to_itree
        from repro.sampler.record import collect

        program = geometric_primes(Fraction(2, 3))
        direct = interpret_many(program, 4000, seed=10)
        direct_mean = sum(s["h"] for s in direct) / len(direct)
        compiled = collect(
            cpgcl_to_itree(program, S0), 4000, seed=10,
            extract=lambda s: s["h"],
        )
        assert abs(direct_mean - compiled.mean()) < 0.25


class TestLimits:
    def test_restart_budget(self):
        program = Observe(Lit(False))
        with pytest.raises(InterpreterLimits):
            interpret(program, S0, seed=0, max_restarts=50)

    def test_step_budget(self):
        program = While(Lit(True), Skip())
        with pytest.raises(InterpreterLimits):
            interpret(program, S0, seed=0, max_steps=1000)

    def test_adversarial_source_hits_budget(self):
        # All-False bits keep the die's rejection loop spinning.
        program = n_sided_die(3)
        with pytest.raises(InterpreterLimits):
            interpret(program, S0, source=ConstantBits(False), max_steps=500)
