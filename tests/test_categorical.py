"""Tests for the verified categorical sampler (repro.uniform.categorical)."""

from fractions import Fraction

import pytest

from repro.bits.source import CountingBits, SystemBits
from repro.cftree.semantics import twp
from repro.semantics.extreal import ExtReal
from repro.stats.divergence import tv_distance
from repro.stats.empirical import empirical_pmf
from repro.uniform.categorical import ZarCategorical, categorical_tree


class TestCategoricalTree:
    def test_masses_exact(self):
        tree = categorical_tree([1, 2, 3])
        for index, expected in [(0, Fraction(1, 6)), (1, Fraction(2, 6)),
                                (2, Fraction(3, 6))]:
            mass = twp(tree, lambda v, i=index: 1 if v == i else 0)
            assert mass == ExtReal(expected)

    def test_zero_weights_skipped(self):
        tree = categorical_tree([0, 1, 0, 3])
        assert twp(tree, lambda v: 1 if v == 0 else 0) == ExtReal(0)
        assert twp(tree, lambda v: 1 if v == 3 else 0) == ExtReal(
            Fraction(3, 4)
        )

    def test_single_outcome(self):
        tree = categorical_tree([5])
        assert twp(tree, lambda v: 1 if v == 0 else 0) == ExtReal(1)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            categorical_tree([])
        with pytest.raises(ValueError):
            categorical_tree([0, 0])
        with pytest.raises(ValueError):
            categorical_tree([1, -1])


class TestZarCategorical:
    def test_construction_validates_debiased_tree(self):
        sampler = ZarCategorical([1, 2, 3, 4], validate=True)
        assert sampler.pmf()[3] == Fraction(4, 10)

    def test_sampled_distribution(self):
        sampler = ZarCategorical([1, 2, 3], seed=0, validate=True)
        values = sampler.samples(12000)
        observed = empirical_pmf(values)
        target = {0: 1 / 6, 1: 2 / 6, 2: 3 / 6}
        assert tv_distance(observed, target) < 0.02

    def test_agrees_with_fldr_distribution(self):
        # Same weighted die through two entirely different machines.
        from repro.baselines.fldr import FLDRSampler

        weights = [3, 1, 4, 1, 5]
        zar = ZarCategorical(weights, seed=1, validate=True)
        fldr = FLDRSampler(weights)
        source = CountingBits(SystemBits(1))
        zar_values = zar.samples(10000)
        fldr_values = [fldr.sample(source) for _ in range(10000)]
        assert tv_distance(
            empirical_pmf(zar_values), empirical_pmf(fldr_values)
        ) < 0.03

    def test_uniform_special_case(self):
        # validate=False: the exact twp validation of the 8-outcome
        # stick-breaking tree costs ~8s of rational fixpoint solving and
        # is already covered by test_construction_validates_debiased_tree.
        sampler = ZarCategorical([1] * 8, seed=2, validate=False)
        values = sampler.samples(200)
        assert set(values) <= set(range(8))

    def test_bits_metered(self):
        sampler = ZarCategorical([1, 1], seed=3, validate=True)
        sampler.samples(10)
        assert sampler.bits_consumed == 10  # one fair bit each
