"""Legacy setup shim.

The environment has setuptools but no ``wheel`` package (and no network),
so PEP 660 editable installs are unavailable; this file enables
``pip install -e . --no-build-isolation`` via the legacy setup.py path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
