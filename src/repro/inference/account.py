"""Exact mass bookkeeping for partial path enumeration.

A :class:`MassAccount` records how the unit of probability mass of a CF
tree has been split so far by the enumerator:

- ``terminal[v]`` -- mass of fully resolved paths ending in ``Leaf(v)``;
- ``fail`` -- mass of resolved paths ending in ``Fail`` (violated
  observations);
- ``unresolved`` -- mass still sitting at the frontier (unexpanded
  ``Choice`` subtrees and unexhausted ``Fix`` iterations).

The **conservation invariant** ``sum(terminal) + fail + unresolved == 1``
holds exactly (Fraction arithmetic) after every enumeration step; it is
the executable counterpart of the measure-theoretic fact that the basic
sets reached by a sampler partition Cantor space up to the divergence set
(Section 4.2 of the paper).  Divergence mass, if any, remains forever in
``unresolved`` -- which is exactly why the account yields *bounds* rather
than point masses.
"""

from fractions import Fraction
from typing import Dict, Iterable, Tuple

from repro.inference.interval import Interval, divide_bounds


class MassAccount:
    """Mutable accumulator for enumerated probability mass."""

    __slots__ = ("terminal", "fail", "unresolved", "parked", "expansions")

    def __init__(self):
        self.terminal: Dict[object, Fraction] = {}
        self.fail = Fraction(0)
        self.unresolved = Fraction(1)
        self.parked = Fraction(0)
        self.expansions = 0

    def settle_leaf(self, value: object, mass: Fraction) -> None:
        """Move ``mass`` from the frontier to terminal value ``value``."""
        self._draw(mass)
        self.terminal[value] = self.terminal.get(value, Fraction(0)) + mass

    def settle_fail(self, mass: Fraction) -> None:
        """Move ``mass`` from the frontier to observation failure."""
        self._draw(mass)
        self.fail += mass

    def park(self, mass: Fraction) -> None:
        """Mark ``mass`` of the unresolved frontier as *permanently*
        unresolved (pruned below the fixpoint engine's mass floor, or
        accumulated outward-rounding dust).

        Parked mass stays inside ``unresolved`` -- it still widens every
        bound, which is what makes pruning sound -- but recording it
        separately lets refinement loops distinguish "slack can still
        contract toward ``parked``" from "slack has hit its floor".
        """
        if mass < 0:
            raise ValueError("negative mass %s" % (mass,))
        if self.parked + mass > self.unresolved:
            raise ValueError(
                "parking %s exceeds unresolved mass %s (parked %s)"
                % (mass, self.unresolved, self.parked)
            )
        self.parked += mass

    def _draw(self, mass: Fraction) -> None:
        if mass < 0:
            raise ValueError("negative mass %s" % (mass,))
        if mass > self.unresolved:
            raise ValueError(
                "drawing %s exceeds unresolved mass %s"
                % (mass, self.unresolved)
            )
        self.unresolved -= mass

    # -- queries ----------------------------------------------------------

    def settled_mass(self) -> Fraction:
        """Total resolved mass (terminal + fail)."""
        return sum(self.terminal.values(), Fraction(0)) + self.fail

    def success_bounds(self) -> Interval:
        """Bounds on the success (non-failure, non-divergence) mass --
        the denominator ``twlp_false t 1`` of Definition 3.4 lies in this
        interval when the tree almost surely terminates."""
        settled_success = sum(self.terminal.values(), Fraction(0))
        return Interval(settled_success, settled_success + self.unresolved)

    def unconditional_bounds(self, value: object) -> Interval:
        """Bounds on the unconditional probability of terminating at
        ``value`` (the ``twp_false t [== value]`` of Definition 3.2)."""
        settled = self.terminal.get(value, Fraction(0))
        return Interval(settled, settled + self.unresolved)

    def fail_bounds(self) -> Interval:
        """Bounds on the observation-failure mass."""
        return Interval(self.fail, self.fail + self.unresolved)

    def posterior_bounds(self, value: object) -> Interval:
        """Bounds on the posterior probability of ``value`` given
        success -- the ``tcwp`` ratio of Definition 3.4, as an interval.

        Sound because the numerator mass is contained in the denominator
        mass and unresolved mass may independently end up in either.
        """
        numerator = self.unconditional_bounds(value)
        denominator = self.success_bounds()
        if denominator.hi == 0:
            raise ZeroDivisionError(
                "all mass fails the observation: posterior undefined"
            )
        return divide_bounds(numerator, denominator)

    def support(self) -> Tuple[object, ...]:
        """Values with settled mass, in decreasing-mass order."""
        return tuple(
            value
            for value, _mass in sorted(
                self.terminal.items(),
                key=lambda item: (-item[1], repr(item[0])),
            )
        )

    def check_conservation(self) -> bool:
        """The exact invariant: all mass is accounted for."""
        return self.settled_mass() + self.unresolved == 1

    def items(self) -> Iterable[Tuple[object, Fraction]]:
        return self.terminal.items()

    def __repr__(self):
        return (
            "MassAccount(settled=%s values, fail=%s, unresolved=%s, "
            "expansions=%d)"
            % (len(self.terminal), self.fail, self.unresolved, self.expansions)
        )
