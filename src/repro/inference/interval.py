"""Exact rational intervals for guaranteed inference bounds.

Path enumeration (:mod:`repro.inference.paths`) resolves only a finite
prefix of a sampler's behaviour, so every probability it reports is an
*interval*: the mass of resolved paths is a certain lower bound, and the
unresolved frontier mass bounds the slack above it.  All endpoints are
``Fraction``s -- the bounds are mathematically sound, not floating-point
estimates.

Only the operations needed by posterior-bound arithmetic are provided;
this is deliberately not a general interval-arithmetic library.
"""

from fractions import Fraction
from typing import Union

Rational = Union[int, Fraction]


class Interval:
    """A closed interval ``[lo, hi]`` with exact rational endpoints."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Rational, hi: Rational):
        lo = Fraction(lo)
        hi = Fraction(hi)
        if lo > hi:
            raise ValueError("empty interval: lo=%s > hi=%s" % (lo, hi))
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, *_):
        raise AttributeError("Interval is immutable")

    @classmethod
    def point(cls, value: Rational) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return cls(value, value)

    @property
    def width(self) -> Fraction:
        """``hi - lo``: the uncertainty carried by this bound."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> Fraction:
        return (self.lo + self.hi) / 2

    def is_point(self) -> bool:
        """True when the bound is exact (zero width)."""
        return self.lo == self.hi

    def contains(self, value: Rational) -> bool:
        """Whether ``lo <= value <= hi``."""
        return self.lo <= Fraction(value) <= self.hi

    def contains_float(self, value: float, slack: float = 0.0) -> bool:
        """Float-friendly membership test with additive ``slack``
        (for comparing against closed forms computed in floating point)."""
        return float(self.lo) - slack <= value <= float(self.hi) + slack

    def intersects(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def outward(self, bits: int) -> "Interval":
        """Round outward to the dyadic grid ``2**-bits``: the lower
        endpoint down, the upper endpoint up.

        Rounding *outward* is the sound direction for certified bounds:
        the result contains the original interval, so any value the
        original bound covers is still covered.  The fixpoint engine
        (:mod:`repro.inference.fixpoint`) uses the same idea one level
        lower -- its mass ledger floors every transfer onto the grid --
        and the oracle cache uses this method to serialize bounds with
        denominators capped at ``2**bits`` without losing soundness.
        """
        if bits < 0:
            raise ValueError("bits must be nonnegative")
        grid = 1 << bits
        lo_scaled = self.lo * grid
        hi_scaled = self.hi * grid
        lo = lo_scaled.numerator // lo_scaled.denominator
        hi = -((-hi_scaled.numerator) // hi_scaled.denominator)
        return Interval(Fraction(lo, grid), Fraction(hi, grid))

    def __add__(self, other: "Interval") -> "Interval":
        if not isinstance(other, Interval):
            return NotImplemented
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, factor: Rational) -> "Interval":
        """Multiply both endpoints by a nonnegative rational."""
        factor = Fraction(factor)
        if factor < 0:
            raise ValueError("scale factor must be nonnegative")
        return Interval(self.lo * factor, self.hi * factor)

    def clamp(self, lo: Rational = 0, hi: Rational = 1) -> "Interval":
        """Intersect with ``[lo, hi]`` (posteriors live in [0, 1])."""
        return Interval(
            max(Fraction(lo), min(self.lo, Fraction(hi))),
            min(Fraction(hi), max(self.hi, Fraction(lo))),
        )

    def __eq__(self, other):
        return (
            isinstance(other, Interval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self):
        return hash(("Interval", self.lo, self.hi))

    def __repr__(self):
        if self.is_point():
            return "Interval.point(%s)" % (self.lo,)
        return "Interval(%s, %s)" % (self.lo, self.hi)


def divide_bounds(
    numerator: Interval, denominator: Interval
) -> Interval:
    """Bounds on ``n / d`` for ``n in numerator``, ``d in denominator``,
    assuming ``0 <= n <= d`` pointwise (the posterior-probability case:
    numerator mass is part of the denominator mass).

    The quotient is monotone increasing in ``n`` and decreasing in ``d``,
    so the extremes are ``n.lo / d.hi`` and ``n.hi / d.lo``; the result is
    clamped to [0, 1] which is sound precisely because of the containment
    assumption.
    """
    if denominator.hi == 0:
        raise ZeroDivisionError("denominator interval is {0}")
    lo = numerator.lo / denominator.hi
    hi = Fraction(1) if denominator.lo == 0 else numerator.hi / denominator.lo
    return Interval(lo, min(hi, Fraction(1)))
