"""Program-level exact inference with guaranteed interval bounds.

Entry points:

- :func:`infer_posterior` -- enumerate the compiled CF tree of a program
  and return a :class:`Posterior` with exact interval bounds on the
  posterior probability of every discovered terminal state.
- :meth:`Posterior.marginal` -- interval pmf over one program variable.
- :func:`infer_query` -- bounds on ``cwp c [Q] sigma`` for a predicate
  ``Q``, the quantity Theorem 4.2 equidistributes samples against.
- :func:`refine_until` -- repeatedly double the enumeration budget until
  the posterior bounds are uniformly tighter than a requested width.

For almost-surely terminating programs the bounds contract to the true
posterior; contradictory observations surface as a zero upper bound on
success mass.  The bounds are *certificates*: unlike a sampler's
empirical frequencies they cannot be wrong, only loose.
"""

from fractions import Fraction
from typing import Callable, Dict, Optional, Tuple

from repro.cftree.compile import compile_cpgcl
from repro.inference.account import MassAccount
from repro.inference.interval import Interval, divide_bounds
from repro.inference.paths import enumerate_paths
from repro.lang.state import State
from repro.lang.syntax import Command


class Posterior:
    """Interval-valued posterior over terminal program states.

    ``stats`` carries the :class:`repro.inference.fixpoint.FixpointStats`
    of the run that produced the account, when fixpoint iteration (rather
    than enumeration) did.  ``partial`` marks accounts whose slack has a
    *known positive floor* -- the program provably diverges (ZAR001) or
    iteration stalled -- so callers don't refine them further; the bounds
    are still sound, merely permanently loose, and ``partial_reason``
    says why in one line.
    """

    __slots__ = ("account", "stats", "partial", "partial_reason")

    def __init__(
        self,
        account: MassAccount,
        stats=None,
        partial: bool = False,
        partial_reason: Optional[str] = None,
    ):
        self.account = account
        self.stats = stats
        self.partial = partial
        self.partial_reason = partial_reason

    @property
    def exact(self) -> bool:
        """True when enumeration resolved every path (zero slack)."""
        return self.account.unresolved == 0

    @property
    def slack(self) -> Fraction:
        """Unresolved mass: the uniform looseness of all bounds."""
        return self.account.unresolved

    def states(self) -> Tuple[State, ...]:
        """Discovered terminal states, heaviest first."""
        return self.account.support()

    def probability(self, state: State) -> Interval:
        """Posterior probability bounds for one terminal state."""
        return self.account.posterior_bounds(state)

    def pmf_bounds(self) -> Dict[State, Interval]:
        """Posterior bounds for every discovered terminal state."""
        return {
            state: self.account.posterior_bounds(state)
            for state in self.account.terminal
        }

    def query(self, predicate: Callable[[State], bool]) -> Interval:
        """Bounds on the posterior probability of ``predicate``.

        Settled mass satisfying the predicate is certain; unresolved mass
        may or may not satisfy it, and may also fail the observation, so
        it widens both the numerator and the denominator exactly as in
        :meth:`MassAccount.posterior_bounds`.
        """
        matching = sum(
            (
                mass
                for state, mass in self.account.terminal.items()
                if predicate(state)
            ),
            Fraction(0),
        )
        numerator = Interval(matching, matching + self.account.unresolved)
        denominator = self.account.success_bounds()
        if denominator.hi == 0:
            raise ZeroDivisionError(
                "all mass fails the observation: posterior undefined"
            )
        return divide_bounds(numerator, denominator)

    def marginal(self, var: str) -> Dict[object, Interval]:
        """Interval pmf of one program variable under the posterior."""
        masses: Dict[object, Fraction] = {}
        for state, mass in self.account.terminal.items():
            value = state[var]
            masses[value] = masses.get(value, Fraction(0)) + mass
        slack = self.account.unresolved
        denominator = self.account.success_bounds()
        if denominator.hi == 0:
            raise ZeroDivisionError(
                "all mass fails the observation: posterior undefined"
            )
        return {
            value: divide_bounds(
                Interval(mass, mass + slack), denominator
            )
            for value, mass in masses.items()
        }

    def mean_bounds(self, var: str) -> Optional[Interval]:
        """Bounds on the posterior mean of an integer variable, *if* the
        unresolved mass is zero (otherwise the mean is unbounded above by
        unseen states and ``None`` is returned)."""
        if not self.exact:
            return None
        total = self.account.success_bounds().lo
        if total == 0:
            raise ZeroDivisionError("posterior undefined (success mass 0)")
        acc = Fraction(0)
        for state, mass in self.account.terminal.items():
            acc += Fraction(state[var]) * mass
        return Interval.point(acc / total)

    def __repr__(self):
        flags = ", partial=%r" % (self.partial_reason,) if self.partial else ""
        return "Posterior(states=%d, slack=%s%s)" % (
            len(self.account.terminal),
            self.slack,
            flags,
        )


def infer_posterior(
    program: Command,
    sigma: Optional[State] = None,
    max_expansions: int = 10_000,
    mass_tol: Optional[Fraction] = None,
) -> Posterior:
    """Exact-bound posterior of ``program`` from initial state ``sigma``.

    Compiles to a CF tree (Definition 3.5) and enumerates paths
    best-first; see :func:`repro.inference.paths.enumerate_paths` for the
    stopping rule.
    """
    sigma = sigma if sigma is not None else State()
    tree = compile_cpgcl(program, sigma)
    account = enumerate_paths(
        tree, max_expansions=max_expansions, mass_tol=mass_tol
    )
    return Posterior(account)


def infer_query(
    program: Command,
    predicate: Callable[[State], bool],
    sigma: Optional[State] = None,
    max_expansions: int = 10_000,
    mass_tol: Optional[Fraction] = None,
) -> Interval:
    """Bounds on ``cwp program [predicate] sigma`` by enumeration."""
    posterior = infer_posterior(
        program, sigma, max_expansions=max_expansions, mass_tol=mass_tol
    )
    return posterior.query(predicate)


def fixpoint_posterior(
    program: Command,
    sigma: Optional[State] = None,
    width: Fraction = Fraction(1, 1 << 20),
    max_sweeps: int = 100_000,
    observed: Optional[Tuple[str, ...]] = None,
    grid_bits: Optional[int] = None,
    floor_bits: Optional[int] = None,
) -> Posterior:
    """Certified posterior bounds by fixpoint iteration over the CF-DAG.

    The workhorse behind the certified test oracle (``tests/oracle.py``)
    and ``zar bounds``: where :func:`infer_posterior` truncates at an
    enumeration budget, this contracts the unresolved mass geometrically
    per sweep (see :mod:`repro.inference.fixpoint`), so open loops whose
    states recur -- random walks, rejection loops -- converge to widths
    enumeration cannot reach.

    ``observed`` opt-in applies :func:`repro.compiler.liveness.
    narrow_command` first: resetting dead scratch variables at loop
    heads collapses the station space onto its live projection, often
    the difference between thousands of stations and a handful.  The
    posterior is then exact over the ``observed`` variables only.

    Returns a partial (``partial=True``) posterior instead of spinning
    when iteration stalls -- the diverging-loop case -- or when
    ``max_sweeps`` runs out; the bounds are sound either way.
    """
    from repro.compiler.liveness import narrow_command
    from repro.inference.fixpoint import FixpointEngine

    sigma = sigma if sigma is not None else State()
    if observed is not None:
        program = narrow_command(program, observed=tuple(observed))
    tree = compile_cpgcl(program, sigma)
    kwargs = {}
    if grid_bits is not None:
        kwargs["grid_bits"] = grid_bits
    if floor_bits is not None:
        kwargs["floor_bits"] = floor_bits
    engine = FixpointEngine(**kwargs)
    stats = engine.run(tree, width=Fraction(width), max_sweeps=max_sweeps)
    reason = None
    if stats.stalled:
        reason = "fixpoint stalled: slack %.3g has a positive limit" % (
            float(stats.slack),
        )
    elif not stats.converged:
        reason = "sweep budget %d exhausted at slack %.3g" % (
            max_sweeps,
            float(stats.slack),
        )
    return Posterior(
        engine.account(),
        stats=stats,
        partial=reason is not None,
        partial_reason=reason,
    )


def refine_until(
    program: Command,
    width: Fraction,
    sigma: Optional[State] = None,
    initial_expansions: int = 256,
    max_total_expansions: int = 1_000_000,
) -> Posterior:
    """Double the enumeration budget until ``slack <= width``.

    Programs the abstract interpreter *proves* divergent (the ZAR001
    error: every path through some reachable loop keeps its guard true)
    have slack with a positive limit, so no budget reaches ``width``.
    For those the doubling loop is capped at ``initial_expansions`` and
    the bounds come back marked ``partial=True`` with the analyzer's
    verdict in ``partial_reason`` -- still sound, permanently loose.

    Raises ``RuntimeError`` if the requested precision is not reached
    within ``max_total_expansions`` on a program the analyzer could
    *not* prove divergent (slow convergence and unproven divergence are
    indistinguishable to enumeration; callers pick the budget).
    """
    width = Fraction(width)
    if width <= 0:
        raise ValueError("width must be positive")

    from repro.analysis.interp import analyze

    diverges = False
    try:
        diverges = analyze(program, sigma).certainly_diverges()
    except Exception:
        # Analysis is best-effort: anything it cannot handle (Opaque
        # terms, budget blowups) falls back to the plain budget loop.
        diverges = False
    if diverges:
        posterior = infer_posterior(
            program, sigma, max_expansions=initial_expansions, mass_tol=width
        )
        return Posterior(
            posterior.account,
            partial=True,
            partial_reason=(
                "ZAR001: program certainly diverges; slack %s cannot "
                "contract below the divergence mass" % (posterior.slack,)
            ),
        )

    budget = initial_expansions
    while True:
        posterior = infer_posterior(
            program, sigma, max_expansions=budget, mass_tol=width
        )
        if posterior.slack <= width:
            return posterior
        if budget >= max_total_expansions:
            raise RuntimeError(
                "slack %s still above %s after %d expansions"
                % (posterior.slack, width, budget)
            )
        budget *= 2
