"""Program-level exact inference with guaranteed interval bounds.

Entry points:

- :func:`infer_posterior` -- enumerate the compiled CF tree of a program
  and return a :class:`Posterior` with exact interval bounds on the
  posterior probability of every discovered terminal state.
- :meth:`Posterior.marginal` -- interval pmf over one program variable.
- :func:`infer_query` -- bounds on ``cwp c [Q] sigma`` for a predicate
  ``Q``, the quantity Theorem 4.2 equidistributes samples against.
- :func:`refine_until` -- repeatedly double the enumeration budget until
  the posterior bounds are uniformly tighter than a requested width.

For almost-surely terminating programs the bounds contract to the true
posterior; contradictory observations surface as a zero upper bound on
success mass.  The bounds are *certificates*: unlike a sampler's
empirical frequencies they cannot be wrong, only loose.
"""

from fractions import Fraction
from typing import Callable, Dict, Optional, Tuple

from repro.cftree.compile import compile_cpgcl
from repro.inference.account import MassAccount
from repro.inference.interval import Interval, divide_bounds
from repro.inference.paths import enumerate_paths
from repro.lang.state import State
from repro.lang.syntax import Command


class Posterior:
    """Interval-valued posterior over terminal program states."""

    __slots__ = ("account",)

    def __init__(self, account: MassAccount):
        self.account = account

    @property
    def exact(self) -> bool:
        """True when enumeration resolved every path (zero slack)."""
        return self.account.unresolved == 0

    @property
    def slack(self) -> Fraction:
        """Unresolved mass: the uniform looseness of all bounds."""
        return self.account.unresolved

    def states(self) -> Tuple[State, ...]:
        """Discovered terminal states, heaviest first."""
        return self.account.support()

    def probability(self, state: State) -> Interval:
        """Posterior probability bounds for one terminal state."""
        return self.account.posterior_bounds(state)

    def pmf_bounds(self) -> Dict[State, Interval]:
        """Posterior bounds for every discovered terminal state."""
        return {
            state: self.account.posterior_bounds(state)
            for state in self.account.terminal
        }

    def query(self, predicate: Callable[[State], bool]) -> Interval:
        """Bounds on the posterior probability of ``predicate``.

        Settled mass satisfying the predicate is certain; unresolved mass
        may or may not satisfy it, and may also fail the observation, so
        it widens both the numerator and the denominator exactly as in
        :meth:`MassAccount.posterior_bounds`.
        """
        matching = sum(
            (
                mass
                for state, mass in self.account.terminal.items()
                if predicate(state)
            ),
            Fraction(0),
        )
        numerator = Interval(matching, matching + self.account.unresolved)
        denominator = self.account.success_bounds()
        if denominator.hi == 0:
            raise ZeroDivisionError(
                "all mass fails the observation: posterior undefined"
            )
        return divide_bounds(numerator, denominator)

    def marginal(self, var: str) -> Dict[object, Interval]:
        """Interval pmf of one program variable under the posterior."""
        masses: Dict[object, Fraction] = {}
        for state, mass in self.account.terminal.items():
            value = state[var]
            masses[value] = masses.get(value, Fraction(0)) + mass
        slack = self.account.unresolved
        denominator = self.account.success_bounds()
        if denominator.hi == 0:
            raise ZeroDivisionError(
                "all mass fails the observation: posterior undefined"
            )
        return {
            value: divide_bounds(
                Interval(mass, mass + slack), denominator
            )
            for value, mass in masses.items()
        }

    def mean_bounds(self, var: str) -> Optional[Interval]:
        """Bounds on the posterior mean of an integer variable, *if* the
        unresolved mass is zero (otherwise the mean is unbounded above by
        unseen states and ``None`` is returned)."""
        if not self.exact:
            return None
        total = self.account.success_bounds().lo
        if total == 0:
            raise ZeroDivisionError("posterior undefined (success mass 0)")
        acc = Fraction(0)
        for state, mass in self.account.terminal.items():
            acc += Fraction(state[var]) * mass
        return Interval.point(acc / total)

    def __repr__(self):
        return "Posterior(states=%d, slack=%s)" % (
            len(self.account.terminal),
            self.slack,
        )


def infer_posterior(
    program: Command,
    sigma: Optional[State] = None,
    max_expansions: int = 10_000,
    mass_tol: Optional[Fraction] = None,
) -> Posterior:
    """Exact-bound posterior of ``program`` from initial state ``sigma``.

    Compiles to a CF tree (Definition 3.5) and enumerates paths
    best-first; see :func:`repro.inference.paths.enumerate_paths` for the
    stopping rule.
    """
    sigma = sigma if sigma is not None else State()
    tree = compile_cpgcl(program, sigma)
    account = enumerate_paths(
        tree, max_expansions=max_expansions, mass_tol=mass_tol
    )
    return Posterior(account)


def infer_query(
    program: Command,
    predicate: Callable[[State], bool],
    sigma: Optional[State] = None,
    max_expansions: int = 10_000,
    mass_tol: Optional[Fraction] = None,
) -> Interval:
    """Bounds on ``cwp program [predicate] sigma`` by enumeration."""
    posterior = infer_posterior(
        program, sigma, max_expansions=max_expansions, mass_tol=mass_tol
    )
    return posterior.query(predicate)


def refine_until(
    program: Command,
    width: Fraction,
    sigma: Optional[State] = None,
    initial_expansions: int = 256,
    max_total_expansions: int = 1_000_000,
) -> Posterior:
    """Double the enumeration budget until ``slack <= width``.

    Raises ``RuntimeError`` if the requested precision is not reached
    within ``max_total_expansions`` -- e.g. for programs with nonzero
    divergence probability, whose slack has a positive limit.
    """
    width = Fraction(width)
    if width <= 0:
        raise ValueError("width must be positive")
    budget = initial_expansions
    while True:
        posterior = infer_posterior(
            program, sigma, max_expansions=budget, mass_tol=width
        )
        if posterior.slack <= width:
            return posterior
        if budget >= max_total_expansions:
            raise RuntimeError(
                "slack %s still above %s after %d expansions"
                % (posterior.slack, width, budget)
            )
        budget *= 2
