"""Fixpoint iteration over the hash-consed CF-DAG.

Best-first path enumeration (:mod:`repro.inference.paths`) treats a
``Fix`` node as something to *unfold*: every loop iteration allocates
fresh tree structure, so an open loop whose state space recurs (the
hare-tortoise walk, rejection loops) pays the full expansion cost at
every iteration and its slack decays only as fast as paths can be
popped one at a time.  This module instead treats the compiled CF-DAG
as a **mass-transfer system** and iterates it to a fixpoint:

- A **station** is a triple ``(token, kont, state)``: a loop head
  (identified by its content token -- the PR 6 digest key when present,
  pointer identity otherwise), the continuation context its exits
  deliver to (``None`` for halt, or a ``("K", outer_token, outer_kont)``
  chain naming the enclosing loop -- the exact analogue of the node
  table's ``_LoopK`` tokens), and a concrete loop state.
- The **transition** out of a station expands one operational step --
  ``body(state)`` when the guard holds (leaves re-enter the same loop),
  ``cont(state)`` otherwise (leaves deliver to ``kont``: terminal when
  halting, re-entry of the enclosing loop otherwise; nested loops
  become new stations) -- through all ``Choice`` nodes eagerly.  The
  eager part is
  finite because loops are the only source of unboundedness in a CF
  tree.  Transitions are **memoized per station**, so the thousandth
  loop iteration re-uses the first iteration's expansion for free.
- A **sweep** (synchronous Gauss-Jacobi step) pushes all frontier mass
  through the memoized transitions at once.  For loops whose one-step
  escape probability is bounded below by ``eps`` (see
  :func:`repro.cftree.analysis.escape_lower_bound`) the unresolved mass
  contracts by at least ``1 - eps`` per sweep -- geometric convergence
  with per-sweep cost ``O(live stations)`` instead of per-path cost.

**Outward rounding.**  Exact ``Fraction`` masses through hundreds of
sweeps grow unboundedly long denominators.  The engine therefore keeps
all mass as *integer numerators on a fixed dyadic grid* ``2**-grid_bits``
and rounds every transfer **down** (floor division).  Rounding down is
the outward direction for lower bounds: settled terminal/fail mass is
understated, never overstated, and the lost dust stays in ``unresolved``
forever -- so every reported interval remains sound, merely up to
``transfers * 2**-grid_bits`` wider than the exact iterate (about
``2**-72`` for the heaviest benchmark, far below any requested width).

**Mass-floor pruning.**  Frontier entries whose mass falls below
``2**-floor_bits`` are dropped and their mass is **parked**: moved to a
ledger of permanently unresolved mass (again sound -- parked mass only
widens bounds).  This caps the live station count on walks with long
soft tails.  The parked total is the floor below which the slack can
never contract, and is reported so callers can distinguish "converged
as far as the floor allows" from genuine divergence mass.

The account produced by :meth:`FixpointEngine.account` satisfies the
same conservation invariant as enumeration -- ``sum(terminal) + fail +
unresolved == 1`` exactly -- so all of :class:`repro.inference.Posterior`
works unchanged on top of it.
"""

import time
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.cftree.analysis import escape_lower_bound
from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf
from repro.inference.account import MassAccount

#: Default dyadic grid: masses are integer multiples of ``2**-GRID_BITS``.
GRID_BITS = 96

#: Default pruning floor: frontier entries below ``2**-FLOOR_BITS`` park.
FLOOR_BITS = 50

#: Consecutive sweeps with *exactly* unchanged slack before declaring a
#: stall (a diverging loop recycles its frontier mass bit-for-bit).
STALL_WINDOW = 8


def station_token(fix: Fix) -> object:
    """Content identity of a loop head, ignoring its current state.

    Keyed ``Fix`` nodes (PR 6) promise extensionally equal
    ``(guard, body, cont)`` whenever keys are equal, so the digest key
    alone names the loop.  Unkeyed loops fall back to pointer identity
    of the three closures -- sound (identical functions are trivially
    extensionally equal) but blind to structurally equal copies.
    """
    if fix.key is not None:
        return fix.key
    return ("@", id(fix.guard), id(fix.body), id(fix.cont))


class FixpointStats:
    """Convergence report for one :meth:`FixpointEngine.run`."""

    __slots__ = (
        "sweeps",
        "stations",
        "frontier_size",
        "slack",
        "parked",
        "converged",
        "stalled",
        "escape_bound",
        "escape_complete",
        "wall_seconds",
        "residual_trace",
    )

    def __init__(self):
        self.sweeps = 0
        self.stations = 0
        self.frontier_size = 0
        self.slack = Fraction(1)
        self.parked = Fraction(0)
        self.converged = False
        self.stalled = False
        self.escape_bound: Optional[Fraction] = None
        self.escape_complete = False
        self.wall_seconds = 0.0
        self.residual_trace: List[float] = []

    def predicted_sweeps(self, width: Fraction) -> Optional[int]:
        """Iterations-to-width estimate from the contraction rate.

        With per-sweep escape probability at least ``eps`` the slack
        after ``n`` sweeps is at most ``(1 - eps)**n``, so reaching
        ``width`` needs at most ``log(width) / log(1 - eps)`` sweeps.
        ``None`` when no (positive) escape bound is available.
        """
        eps = self.escape_bound
        if not eps or eps <= 0:
            return None
        if eps >= 1:
            return 1
        import math

        return int(math.ceil(math.log(float(width)) / math.log(1.0 - float(eps))))

    def as_dict(self) -> Dict[str, object]:
        return {
            "sweeps": self.sweeps,
            "stations": self.stations,
            "frontier_size": self.frontier_size,
            "slack": float(self.slack),
            "parked": float(self.parked),
            "converged": self.converged,
            "stalled": self.stalled,
            "escape_bound": (
                None if self.escape_bound is None else float(self.escape_bound)
            ),
            "escape_complete": self.escape_complete,
            "wall_seconds": self.wall_seconds,
        }

    def __repr__(self):
        return (
            "FixpointStats(sweeps=%d, stations=%d, slack=%.3g, "
            "converged=%s, stalled=%s)"
            % (
                self.sweeps,
                self.stations,
                float(self.slack),
                self.converged,
                self.stalled,
            )
        )


class FixpointEngine:
    """Iterative mass-transfer over the stations of a CF-DAG.

    All mass is held as integer numerators on the dyadic grid
    ``2**-grid_bits`` (see module docstring for the soundness argument).
    The engine is resumable: :meth:`run` may be called repeatedly with
    tighter widths and continues from the current frontier.
    """

    def __init__(self, grid_bits: int = GRID_BITS, floor_bits: int = FLOOR_BITS):
        if floor_bits >= grid_bits:
            raise ValueError("floor_bits must be below grid_bits")
        self.grid_bits = grid_bits
        self.grid = 1 << grid_bits
        self.floor = 1 << (grid_bits - floor_bits)
        #: token -> representative Fix node (keeps closures alive so
        #: identity-based tokens stay unambiguous).
        self.reps: Dict[object, Fix] = {}
        #: (token, kont, state) -> (terminals, fail, next) with exact
        #: Fraction masses stored as (numerator, denominator) pairs.
        self.transitions: Dict[Tuple[object, object, object], tuple] = {}
        self.terminal: Dict[object, int] = {}
        self.fail = 0
        self.parked = 0
        self.frontier: Dict[Tuple[object, object, object], int] = {}
        self.sweeps = 0

    # -- exact one-step expansion (memoized) -----------------------------

    def _expand(self, tree: CFTree, kont) -> tuple:
        """Expand ``tree`` through Choices with exact Fractions.

        ``kont`` is the continuation context of this expansion: ``None``
        for halt, or ``("K", token, outer_kont)`` naming the loop that
        leaves re-enter.  Leaves deliver their value to ``kont`` --
        terminal when halting, a re-entry station of the named loop
        otherwise (body expansion: Definition 3.1's loop-again reading).
        Nested ``Fix`` nodes become stations of their own token *under
        the current* ``kont``, so when they eventually exit their leaves
        continue in the enclosing context rather than terminating.
        Returns ``(terminals, fail, next)`` where terminals and next
        carry ``(key, numerator, denominator)`` triples.
        """
        terms: Dict[object, Fraction] = {}
        nxt: Dict[Tuple[object, object, object], Fraction] = {}
        fail = Fraction(0)
        work = [(tree, Fraction(1))]
        while work:
            node, mass = work.pop()
            if mass == 0:
                continue
            if isinstance(node, Choice):
                left = mass * node.prob
                work.append((node.left, left))
                work.append((node.right, mass - left))
            elif isinstance(node, Fail):
                fail += mass
            elif isinstance(node, Leaf):
                if kont is not None:
                    _, token, outer = kont
                    key = (token, outer, node.value)
                    nxt[key] = nxt.get(key, Fraction(0)) + mass
                else:
                    terms[node.value] = terms.get(node.value, Fraction(0)) + mass
            elif isinstance(node, Fix):
                token = station_token(node)
                self.reps.setdefault(token, node)
                key = (token, kont, node.init)
                nxt[key] = nxt.get(key, Fraction(0)) + mass
            else:
                raise TypeError("not a CF tree: %r" % (node,))
        return (
            tuple((v, m.numerator, m.denominator) for v, m in terms.items()),
            (fail.numerator, fail.denominator),
            tuple((k, m.numerator, m.denominator) for k, m in nxt.items()),
        )

    def _transition(self, token: object, kont, state: object) -> tuple:
        memo = self.transitions.get((token, kont, state))
        if memo is not None:
            return memo
        fix = self.reps[token]
        if fix.guard(state):
            result = self._expand(fix.body(state), ("K", token, kont))
        else:
            result = self._expand(fix.cont(state), kont)
        self.transitions[(token, kont, state)] = result
        return result

    # -- mass transfer ---------------------------------------------------

    def push(self, tree: CFTree) -> None:
        """Seed the engine with the unit mass of ``tree``."""
        terms, (fn, fd), nxt = self._expand(tree, None)
        grid = self.grid
        for value, n, d in terms:
            self.terminal[value] = self.terminal.get(value, 0) + (n * grid) // d
        self.fail += (fn * grid) // fd
        for key, n, d in nxt:
            self.frontier[key] = self.frontier.get(key, 0) + (n * grid) // d

    def sweep(self) -> None:
        """One synchronous mass-transfer step over the whole frontier.

        Every floor division rounds a transfer down: the dust (at most
        one grid unit per transfer) permanently joins the unresolved
        mass, which is the sound direction for every bound we report.
        """
        new: Dict[Tuple[object, object], int] = {}
        terminal = self.terminal
        fail = self.fail
        for key, mass in self.frontier.items():
            terms, (fn, fd), nxt = self._transition(*key)
            for value, n, d in terms:
                terminal[value] = terminal.get(value, 0) + (mass * n) // d
            if fn:
                fail += (mass * fn) // fd
            for nkey, n, d in nxt:
                q = (mass * n) // d
                if q:
                    new[nkey] = new.get(nkey, 0) + q
        self.fail = fail
        floor = self.floor
        pruned = 0
        frontier = {}
        for key, mass in new.items():
            if mass >= floor:
                frontier[key] = mass
            else:
                pruned += mass
        self.parked += pruned
        self.frontier = frontier
        self.sweeps += 1

    # -- queries ---------------------------------------------------------

    def settled(self) -> int:
        return sum(self.terminal.values()) + self.fail

    def slack(self) -> Fraction:
        """Exact unresolved mass: ``1 - settled`` (includes frontier
        mass, parked mass, and accumulated rounding dust)."""
        return 1 - Fraction(self.settled(), self.grid)

    def parked_mass(self) -> Fraction:
        return Fraction(self.parked, self.grid)

    def account(self) -> MassAccount:
        """Snapshot the ledger as a conservation-checked account."""
        account = MassAccount()
        for value, mass in self.terminal.items():
            if mass:
                account.settle_leaf(value, Fraction(mass, self.grid))
        if self.fail:
            account.settle_fail(Fraction(self.fail, self.grid))
        if self.parked:
            account.park(Fraction(self.parked, self.grid))
        account.expansions = len(self.transitions)
        return account

    def run(
        self,
        tree: Optional[CFTree] = None,
        width: Fraction = Fraction(1, 1 << 20),
        max_sweeps: int = 100_000,
        stall_window: int = STALL_WINDOW,
    ) -> FixpointStats:
        """Iterate sweeps until ``slack <= width`` or progress stops.

        Stops early (with ``converged=False``) when the frontier drains
        completely, when ``max_sweeps`` is exhausted, or when the slack
        is bit-for-bit unchanged for ``stall_window`` consecutive sweeps
        -- the signature of a loop with escape probability 0, whose
        frontier recycles the same integer masses forever (the ZAR001
        divergence case; see :func:`repro.inference.refine_until` for
        the analyzer-backed version of this cap).
        """
        t0 = time.perf_counter()
        if tree is not None:
            self.push(tree)
        width = Fraction(width)
        stats = FixpointStats()
        slack = self.slack()
        unchanged = 0
        start = self.sweeps
        while (
            slack > width
            and self.frontier
            and self.sweeps - start < max_sweeps
            and unchanged < stall_window
        ):
            self.sweep()
            new_slack = self.slack()
            unchanged = unchanged + 1 if new_slack == slack else 0
            slack = new_slack
            if len(stats.residual_trace) < 4096:
                stats.residual_trace.append(float(slack))
        stats.sweeps = self.sweeps
        stats.stations = len(self.transitions)
        stats.frontier_size = len(self.frontier)
        stats.slack = slack
        stats.parked = self.parked_mass()
        stats.converged = slack <= width
        stats.stalled = unchanged >= stall_window
        if self.reps:
            bound: Optional[Fraction] = None
            complete = True
            for fix in self.reps.values():
                eps, comp = escape_lower_bound(fix)
                complete = complete and comp
                bound = eps if bound is None else min(bound, eps)
            stats.escape_bound = bound
            stats.escape_complete = complete
        stats.wall_seconds = time.perf_counter() - t0
        return stats
