"""Exact inference with guaranteed interval bounds (extension).

The paper's Section 6 notes that Zar "currently [does] not support exact
inference"; this subpackage supplies it on top of the unchanged CF-tree
IR, twice over:

- **Path enumeration** (:mod:`repro.inference.paths`): execution paths
  of a compiled tree, best-first with exact ``Fraction`` mass
  bookkeeping.  Exact for finite trees; budget-truncated on open loops.
- **Fixpoint iteration** (:mod:`repro.inference.fixpoint`): mass
  transfer over the hash-consed CF-DAG's loop stations with memoized
  one-step transitions and outward-rounded dyadic arithmetic.  Converges
  geometrically on loops whose states recur, where enumeration stalls.

Both yield posterior probabilities as *sound intervals* that contract to
the true posterior for almost-surely terminating programs.

Typical use::

    from repro.inference import fixpoint_posterior

    post = fixpoint_posterior(program, State(), width=Fraction(1, 2**20))
    for value, bounds in sorted(post.marginal("h").items()):
        print(value, float(bounds.lo), float(bounds.hi))
"""

from repro.inference.account import MassAccount
from repro.inference.fixpoint import FixpointEngine, FixpointStats, station_token
from repro.inference.interval import Interval, divide_bounds
from repro.inference.paths import enumerate_paths, unfold_fix_once
from repro.inference.posterior import (
    Posterior,
    fixpoint_posterior,
    infer_posterior,
    infer_query,
    refine_until,
)

__all__ = [
    "FixpointEngine",
    "FixpointStats",
    "Interval",
    "MassAccount",
    "Posterior",
    "divide_bounds",
    "enumerate_paths",
    "fixpoint_posterior",
    "infer_posterior",
    "infer_query",
    "refine_until",
    "station_token",
    "unfold_fix_once",
]
