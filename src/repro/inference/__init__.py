"""Exact inference with guaranteed interval bounds (extension).

The paper's Section 6 notes that Zar "currently [does] not support exact
inference"; this subpackage supplies it on top of the unchanged CF-tree
IR.  Execution paths of a compiled tree are enumerated best-first with
exact ``Fraction`` mass bookkeeping, yielding posterior probabilities as
*sound intervals* that contract to the true posterior for almost-surely
terminating programs.

Typical use::

    from repro.inference import infer_posterior

    post = infer_posterior(program, State(), mass_tol=Fraction(1, 10**6))
    for value, bounds in sorted(post.marginal("h").items()):
        print(value, float(bounds.lo), float(bounds.hi))
"""

from repro.inference.account import MassAccount
from repro.inference.interval import Interval, divide_bounds
from repro.inference.paths import enumerate_paths, unfold_fix_once
from repro.inference.posterior import (
    Posterior,
    infer_posterior,
    infer_query,
    refine_until,
)

__all__ = [
    "Interval",
    "MassAccount",
    "Posterior",
    "divide_bounds",
    "enumerate_paths",
    "infer_posterior",
    "infer_query",
    "refine_until",
    "unfold_fix_once",
]
