"""Best-first path enumeration of CF trees.

The paper's pipeline *samples* the posterior; this module *computes* it,
up to exact interval bounds, by enumerating execution paths of the
compiled CF tree in decreasing order of probability mass.  This supplies
the exact-inference capability the paper explicitly defers ("we currently
do not support exact inference", Section 6) using nothing beyond the
existing IR:

- a ``Choice p`` node splits the incoming mass into ``p`` / ``1 - p``;
- a ``Fix`` node is unfolded one loop step at a time via the operational
  reading of Definition 3.1 (guard true: run the body, then loop again
  from the body's terminal; guard false: continue);
- ``Leaf``/``Fail`` settle their mass in a :class:`MassAccount`.

Because the frontier is a priority queue keyed on mass, the heaviest
unresolved subtree is always expanded next, which for almost-surely
terminating programs drives the unresolved mass to 0 at the fastest
geometric rate available without tree-specific analysis.

**Fix merging.** Loops whose states recur -- i.i.d. loops like the
dueling coins, and the loopback rejection schemes inside
``uniform_tree``/``bernoulli_tree`` -- would scatter the frontier across
many copies of the *same* loop-head subtree, degrading the slack decay
from geometric to ``O(1/n)``.  Enumeration therefore merges frontier
mass landing on identical ``Fix`` nodes (same guard/body/continuation
functions, equal loop state: such nodes denote identical distributions,
so summing their masses is exact).  The compiler's per-``(command,
state)`` caching makes recurring loop heads *pointer*-identical, so the
merge key is cheap.  ``merge_fixes=False`` restores plain tree-walking
(used by the ablation bench to quantify the win).

Enumeration works on *any* CF tree -- biased, debiased, or optimized --
and is itself useful as an independent oracle: its bounds must bracket
``twp``/``tcwp`` computed by the fixpoint engine (tested in
``tests/test_inference.py``).
"""

import heapq
import itertools
from fractions import Fraction
from typing import Optional

from repro.cftree.monad import bind
from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf
from repro.inference.account import MassAccount


def unfold_fix_once(tree: Fix) -> CFTree:
    """One operational step of a ``Fix`` node.

    ``Fix sigma e g k`` steps to ``g(sigma) >>= (lambda s. Fix s e g k)``
    when the guard holds and to ``k(sigma)`` otherwise -- the unfolding
    that ``to_itree_open`` performs with ``ITree.iter`` (Definition 3.11),
    here applied inductively so the enumerator only ever holds finite
    tree prefixes.
    """
    if not isinstance(tree, Fix):
        raise TypeError("expected a Fix node, got %r" % (tree,))
    if tree.guard(tree.init):
        guard, body, cont = tree.guard, tree.body, tree.cont
        return bind(
            body(tree.init),
            lambda s: Fix(s, guard, body, cont),
        )
    return tree.cont(tree.init)


def _fix_key(node: Fix):
    """Merge key: pointer identity of the loop functions plus the loop
    state.  Equal keys imply identical subtree distributions."""
    return (id(node.guard), id(node.body), id(node.cont), node.init)


def enumerate_paths(
    tree: CFTree,
    max_expansions: int = 10_000,
    mass_tol: Optional[Fraction] = None,
    merge_fixes: bool = True,
) -> MassAccount:
    """Enumerate paths of ``tree`` best-first into a :class:`MassAccount`.

    Stops when the frontier is empty (every path resolved -- the account
    is then exact), when ``max_expansions`` nodes have been expanded, or
    when the unresolved mass drops to ``mass_tol`` or below.

    The returned account always satisfies mass conservation; callers read
    off sound probability bounds regardless of why enumeration stopped.
    """
    if max_expansions < 0:
        raise ValueError("max_expansions must be nonnegative")
    tol = Fraction(0) if mass_tol is None else Fraction(mass_tol)
    if tol < 0:
        raise ValueError("mass_tol must be nonnegative")

    account = MassAccount()
    counter = itertools.count()  # heap tiebreaker; trees are unordered
    frontier = []
    # Pending mass per merged Fix key; a heap entry per key is live while
    # the key is in this dict (its priority may understate merged-in
    # mass, which only affects expansion *order*, never correctness).
    fix_mass = {}
    fix_node = {}

    def push(node, mass):
        if mass == 0:
            return
        if merge_fixes and isinstance(node, Fix):
            key = _fix_key(node)
            if key in fix_mass:
                fix_mass[key] += mass
                return
            fix_mass[key] = mass
            fix_node[key] = node
            heapq.heappush(frontier, (-mass, next(counter), key, None))
        else:
            heapq.heappush(frontier, (-mass, next(counter), None, node))

    push(tree, Fraction(1))

    while frontier:
        if account.unresolved <= tol:
            break
        if account.expansions >= max_expansions:
            break
        neg_mass, _tie, key, node = heapq.heappop(frontier)
        if key is not None:
            # Merged Fix entry: claim all mass accumulated on this loop
            # head since the heap entry was created.
            mass = fix_mass.pop(key)
            node = fix_node.pop(key)
        else:
            mass = -neg_mass
        account.expansions += 1

        if isinstance(node, Leaf):
            account.settle_leaf(node.value, mass)
        elif isinstance(node, Fail):
            account.settle_fail(mass)
        elif isinstance(node, Choice):
            left_mass = mass * node.prob
            push(node.left, left_mass)
            push(node.right, mass - left_mass)
        elif isinstance(node, Fix):
            # One operational step; the unfolding re-enters push() so a
            # loop head reached again (i.i.d. loops) merges afresh.
            push(unfold_fix_once(node), mass)
        else:
            raise TypeError("not a CF tree: %r" % (node,))

    return account
