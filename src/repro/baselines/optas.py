"""Optimal approximate sampling under an entropy budget (OPTAS).

Saad et al. (POPL 2020) sample from the *closest approximation* of a
target distribution among those realizable by a DDG tree of a given bit
precision ``k``: all outcome probabilities are dyadic with denominator
``2^k``.  This module implements the closest synthetic equivalent (see
DESIGN.md): :func:`optimal_dyadic_approximation` computes an
error-minimal dyadic approximation for a family of f-divergence-style
error measures (including the paper's "hellinger" kernel), and
:class:`OptasSampler` samples it with the entropy-optimal Knuth-Yao back
end -- reproducing OPTAS's observable Table 4 behavior: slightly lower
entropy cost than the exact samplers, at the price of a small, explicit
approximation error.

The approximation algorithm follows the structure of the original: start
from the floor allocation ``floor(p_i * 2^k)`` and distribute the
remaining probability mass greedily to the outcomes where it reduces the
chosen error measure the most.
"""

import heapq
import math
from fractions import Fraction
from typing import Callable, Dict, List, Sequence

from repro.baselines.knuth_yao import KnuthYaoSampler
from repro.bits.source import BitSource


def _hellinger_gain(p: float, current: float, step: float) -> float:
    """Reduction in squared Hellinger distance from adding ``step``."""
    before = (math.sqrt(p) - math.sqrt(current)) ** 2
    after = (math.sqrt(p) - math.sqrt(current + step)) ** 2
    return before - after


def _tv_gain(p: float, current: float, step: float) -> float:
    before = abs(p - current)
    after = abs(p - (current + step))
    return before - after


def _kl_gain(p: float, current: float, step: float) -> float:
    if p == 0.0:
        return 0.0
    eps = 1e-300
    before = p * math.log(p / max(current, eps))
    after = p * math.log(p / (current + step))
    return before - after


_KERNELS: Dict[str, Callable[[float, float, float], float]] = {
    "hellinger": _hellinger_gain,
    "tv": _tv_gain,
    "kl": _kl_gain,
}


def optimal_dyadic_approximation(
    probabilities: Sequence[Fraction],
    precision: int,
    kernel: str = "hellinger",
) -> List[Fraction]:
    """Error-minimal pmf with all probabilities of the form ``c / 2^k``.

    Floor-allocates ``floor(p_i 2^k)`` grains, then assigns the leftover
    grains one at a time to the outcome with the largest marginal error
    reduction (greedy is optimal here: the error measures are convex and
    separable across outcomes, so marginal gains are decreasing).
    """
    if precision <= 0:
        raise ValueError("precision must be a positive bit count")
    if kernel not in _KERNELS:
        raise ValueError(
            "unknown kernel %r (have %s)" % (kernel, sorted(_KERNELS))
        )
    gain = _KERNELS[kernel]
    probs = [Fraction(p) for p in probabilities]
    if sum(probs) != 1:
        raise ValueError("probabilities must sum to 1")
    grains = 1 << precision
    step = 1.0 / grains
    allocation = [int(p * grains) for p in probs]  # floor
    remaining = grains - sum(allocation)
    # Max-heap of (negated) marginal gains.
    heap = []
    for index, p in enumerate(probs):
        current = allocation[index] * step
        heapq.heappush(
            heap, (-gain(float(p), current, step), index)
        )
    for _ in range(remaining):
        while True:
            negated, index = heapq.heappop(heap)
            current = allocation[index] * step
            fresh = gain(float(probs[index]), current, step)
            # Lazy deletion: the cached priority may be stale after a
            # previous grant to the same outcome.
            if -negated - fresh > 1e-15:
                heapq.heappush(heap, (-fresh, index))
                continue
            allocation[index] += 1
            heapq.heappush(
                heap,
                (-gain(float(probs[index]), allocation[index] * step, step), index),
            )
            break
    return [Fraction(count, grains) for count in allocation]


class OptasSampler:
    """Optimal approximate sampler: dyadic approximation + Knuth-Yao."""

    def __init__(
        self,
        probabilities: Sequence[Fraction],
        precision: int = 32,
        kernel: str = "hellinger",
    ):
        self.target = [Fraction(p) for p in probabilities]
        self.precision = precision
        self.kernel = kernel
        self.approximation = optimal_dyadic_approximation(
            self.target, precision, kernel
        )
        self._sampler = KnuthYaoSampler(self.approximation)

    def sample(self, source: BitSource) -> int:
        return self._sampler.sample(source)

    def pmf(self) -> Dict[int, Fraction]:
        """The (approximate) distribution actually sampled."""
        return {
            index: p for index, p in enumerate(self.approximation) if p
        }

    def approximation_error_tv(self) -> float:
        """Total variation distance between target and approximation."""
        return 0.5 * sum(
            abs(float(p) - float(q))
            for p, q in zip(self.target, self.approximation)
        )
