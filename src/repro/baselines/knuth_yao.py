"""The entropy-optimal Knuth-Yao DDG sampler (Knuth and Yao 1976).

For a target pmf with dyadic probabilities ``p_i = sum_j b_ij 2^-j``,
the optimal sampler is the discrete distribution generating tree whose
level ``j`` has one terminal leaf per outcome with ``b_ij = 1``; its
expected bit consumption lies in ``[H, H + 2)``.  Rational non-dyadic
probabilities unfold their binary expansions lazily (eventually-periodic,
so level patterns are memoized by remainder state).

This is the optimality reference against which the Zar pipeline and FLDR
are measured, and the sampling back end of the OPTAS substitute.
"""

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.bits.source import BitSource


class KnuthYaoSampler:
    """Entropy-optimal sampler for rational pmfs in the bit model."""

    def __init__(self, probabilities: Sequence[Fraction]):
        probs = [Fraction(p) for p in probabilities]
        if any(p < 0 for p in probs):
            raise ValueError("probabilities must be nonnegative")
        if sum(probs) != 1:
            raise ValueError("probabilities must sum to 1 exactly")
        self.probabilities = probs
        # Binary-expansion state per outcome: remainder r with invariant
        # "remaining probability mass at level j is r * 2^-j".
        self._levels: List[List[int]] = []
        self._remainders: List[Fraction] = list(probs)

    def _level(self, depth: int) -> List[int]:
        """Outcomes with a terminal at this depth (bit of expansion = 1)."""
        while depth >= len(self._levels):
            level: List[int] = []
            for index, remainder in enumerate(self._remainders):
                doubled = remainder * 2
                if doubled >= 1:
                    level.append(index)
                    doubled -= 1
                self._remainders[index] = doubled
            self._levels.append(level)
        return self._levels[depth]

    def sample(self, source: BitSource) -> int:
        """Draw one outcome index (0-based)."""
        depth = 0
        position = 0
        while True:
            position = 2 * position + (1 if source.next_bit() else 0)
            leaves = self._level(depth)
            if position < len(leaves):
                return leaves[position]
            position -= len(leaves)
            depth += 1
            if depth > 64 and not any(self._remainders):
                raise AssertionError("Knuth-Yao walk escaped the DDG tree")

    def pmf(self) -> Dict[int, Fraction]:
        return {
            index: p for index, p in enumerate(self.probabilities) if p
        }

    def expected_bits(self, max_depth: int = 128) -> Tuple[float, float]:
        """Bracket the expected bits per sample.

        Level ``j`` contributes ``j * (#terminals at j) * 2^-j``; the
        truncated tail is bounded using the total remaining mass.
        """
        total = 0.0
        mass_remaining = 1.0
        for depth in range(max_depth):
            leaves = self._level(depth)
            contribution = (depth + 1) * len(leaves) * 2.0 ** -(depth + 1)
            total += contribution
            mass_remaining -= len(leaves) * 2.0 ** -(depth + 1)
            if mass_remaining <= 0:
                return total, total
        # Remaining mass terminates at depth > max_depth; crude tail bound
        # assuming geometric continuation.
        tail = mass_remaining * (max_depth + 2)
        return total, total + tail
