"""Baseline samplers (Appendix B).

Comparators for the Table 4 evaluation, implemented from their
publications:

- :mod:`repro.baselines.fldr` -- the Fast Loaded Dice Roller (Saad et
  al., AISTATS 2020): exact sampling from rational pmfs via a binary DDG
  matrix;
- :mod:`repro.baselines.knuth_yao` -- the entropy-optimal DDG tree
  sampler (Knuth and Yao 1976), the optimality reference;
- :mod:`repro.baselines.optas` -- optimal *approximate* sampling under a
  bit-precision budget (Saad et al., POPL 2020): closest synthetic
  equivalent, pairing an error-optimal dyadic approximation with a
  Knuth-Yao sampler (see DESIGN.md's substitution table);
- :mod:`repro.baselines.rejection` -- textbook rejection sampling and
  the *modulo-biased* sampler the introduction warns about.
"""

from repro.baselines.fldr import FLDRSampler
from repro.baselines.han_hoshi import HanHoshiSampler
from repro.baselines.knuth_yao import KnuthYaoSampler
from repro.baselines.optas import OptasSampler, optimal_dyadic_approximation
from repro.baselines.rejection import ModuloBiasedSampler, RejectionSampler

__all__ = [
    "FLDRSampler",
    "HanHoshiSampler",
    "KnuthYaoSampler",
    "ModuloBiasedSampler",
    "OptasSampler",
    "RejectionSampler",
    "optimal_dyadic_approximation",
]
