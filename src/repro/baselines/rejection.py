"""Textbook uniform samplers: correct rejection and the modulo-bias bug.

The introduction motivates verified sampling with the "modulo bias"
failure: drawing ``w`` random bits and reducing mod ``n`` over-weights
the small outcomes whenever ``2^w mod n != 0``, which has broken
deployed cryptosystems.  :class:`ModuloBiasedSampler` implements the bug
(for demonstrations and tests that *detect* the bias);
:class:`RejectionSampler` is the standard correct fix.
"""

from fractions import Fraction
from typing import Dict

from repro.bits.source import BitSource


class RejectionSampler:
    """Uniform over ``{0..n-1}``: draw ``ceil(log2 n)`` bits, retry if
    the value is out of range.  Exact, at an expected
    ``ceil(log2 n) * 2^m / n`` bits per sample."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("need a positive range")
        self.n = n
        self.width = max(1, (n - 1).bit_length())

    def sample(self, source: BitSource) -> int:
        while True:
            value = 0
            for _ in range(self.width):
                value = (value << 1) | (1 if source.next_bit() else 0)
            if value < self.n:
                return value

    def pmf(self) -> Dict[int, Fraction]:
        return {i: Fraction(1, self.n) for i in range(self.n)}


class ModuloBiasedSampler:
    """The *incorrect* uniform sampler: ``w`` bits reduced mod ``n``.

    Outcomes below ``2^w mod n`` receive probability
    ``ceil(2^w / n) / 2^w``, the rest ``floor(2^w / n) / 2^w`` -- a bias
    of order ``n / 2^w`` that empirical validation can easily miss for
    large ``w`` (Section 1's motivating example).  ``pmf`` returns the
    *actual* biased distribution so tests can quantify the error.
    """

    def __init__(self, n: int, width: int):
        if n <= 0:
            raise ValueError("need a positive range")
        if width <= 0:
            raise ValueError("need a positive bit width")
        self.n = n
        self.width = width

    def sample(self, source: BitSource) -> int:
        value = 0
        for _ in range(self.width):
            value = (value << 1) | (1 if source.next_bit() else 0)
        return value % self.n

    def pmf(self) -> Dict[int, Fraction]:
        space = 1 << self.width
        quotient, remainder = divmod(space, self.n)
        return {
            i: Fraction(quotient + (1 if i < remainder else 0), space)
            for i in range(self.n)
        }

    def bias_tv(self) -> Fraction:
        """Exact total-variation distance from true uniform."""
        uniform = Fraction(1, self.n)
        return sum(
            (abs(p - uniform) for p in self.pmf().values()), Fraction(0)
        ) / 2
