"""The Han-Hoshi interval sampler (Han and Hoshi 1997).

A third classical algorithm in the random bit model, complementing
Knuth-Yao (entropy-optimal DDG trees) and FLDR: maintain the target
distribution as a partition of [0, 1) into consecutive intervals (one
per outcome, width = probability); refine a dyadic interval bit by bit
and emit the outcome whose interval contains it.  Expected bit cost is
below ``H + 3`` -- between Knuth-Yao's ``H + 2`` and FLDR's ``H + 6``.

Included because it exercises a *different* reduction to fair coins
(interval arithmetic rather than tree walks), giving the comparison
benchmarks a third independent point in the entropy/space trade-off.
"""

from fractions import Fraction
from typing import Dict, List, Sequence

from repro.bits.source import BitSource
from repro.cftree.tree import Choice, Fix, Leaf


class HanHoshiSampler:
    """Exact interval-refinement sampler for rational pmfs."""

    def __init__(self, probabilities: Sequence[Fraction]):
        probs = [Fraction(p) for p in probabilities]
        if any(p < 0 for p in probs):
            raise ValueError("probabilities must be nonnegative")
        if sum(probs) != 1:
            raise ValueError("probabilities must sum to 1 exactly")
        self.probabilities = probs
        # Cumulative boundaries: outcome i owns [bounds[i], bounds[i+1]).
        self._bounds: List[Fraction] = [Fraction(0)]
        for p in probs:
            self._bounds.append(self._bounds[-1] + p)

    def _locate(self, low: Fraction, high: Fraction):
        """Index of the outcome interval containing [low, high), or None
        if the dyadic interval still straddles a boundary."""
        # Binary search for the rightmost boundary <= low.
        lo, hi = 0, len(self._bounds) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._bounds[mid] <= low:
                lo = mid
            else:
                hi = mid
        if high <= self._bounds[lo + 1]:
            return lo
        return None

    def sample(self, source: BitSource) -> int:
        low = Fraction(0)
        width = Fraction(1)
        while True:
            outcome = self._locate(low, low + width)
            if outcome is not None:
                return outcome
            width /= 2
            if source.next_bit():
                low += width

    def pmf(self) -> Dict[int, Fraction]:
        return {
            index: p for index, p in enumerate(self.probabilities) if p
        }

    def expected_bits(self, max_depth: int = 96) -> float:
        """Expected bits, by exact traversal of the refinement tree.

        Enumerates dyadic intervals breadth-first; an interval that fits
        inside one outcome interval terminates its branch.
        """
        total = 0.0
        pending = [(Fraction(0), Fraction(1))]
        for depth in range(max_depth):
            next_pending = []
            for low, width in pending:
                half = width / 2
                for branch_low in (low, low + half):
                    if self._locate(branch_low, branch_low + half) is None:
                        next_pending.append((branch_low, half))
                    else:
                        total += (depth + 1) * float(half)
            if not next_pending:
                return total
            pending = next_pending
        # Remaining mass terminates deeper; bound crudely.
        remaining = sum(float(w) for _low, w in pending)
        return total + remaining * (max_depth + 3)


def han_hoshi_tree(probabilities: Sequence[Fraction]) -> Fix:
    """The interval-refinement walk as a CF tree.

    The loop state is ``(low, depth)`` -- the current dyadic interval is
    ``[low, low + 2**-depth)`` -- and each iteration flips a fair coin to
    descend into one half, exactly mirroring :meth:`HanHoshiSampler.
    sample`.  Terminal leaves carry ``(outcome, bits)``: the emitted
    outcome index and the number of bits the walk consumed.

    This makes the baseline sampler certifiable by the fixpoint engine
    (:mod:`repro.inference.fixpoint`): every refinement step lands in an
    outcome interval with probability at least 1/2 unless it straddles a
    boundary, so unresolved mass halves (at worst) per sweep and both
    the outcome pmf and the bit-cost pmf get certified interval bounds
    -- the oracle the statistical tier checks empirical bit counts
    against, replacing the old hand-tuned ``expected_bits`` tolerance.
    """
    sampler = HanHoshiSampler(probabilities)

    def width(depth: int) -> Fraction:
        return Fraction(1, 1 << depth)

    def guard(state) -> bool:
        low, depth = state
        return sampler._locate(low, low + width(depth)) is None

    def body(state):
        low, depth = state
        half = width(depth + 1)
        return Choice(
            Fraction(1, 2),
            Leaf((low, depth + 1)),
            Leaf((low + half, depth + 1)),
        )

    def cont(state):
        low, depth = state
        return Leaf((sampler._locate(low, low + width(depth)), depth))

    return Fix((Fraction(0), 0), guard, body, cont)
