"""The Fast Loaded Dice Roller (Saad, Freer, Rinard, Mansinghka 2020).

FLDR samples exactly from a distribution given by nonnegative integer
weights ``a_1..a_n`` summing to ``m``, using the random bit model.
Preprocessing builds the discrete distribution generating (DDG) "matrix"
of the augmented distribution ``(a_1, .., a_n, 2^k - m)`` where
``k = ceil(log2 m)``: level ``j`` of the matrix lists which outcomes have
bit ``j`` set in their weight's ``k``-bit binary expansion.  Sampling
walks levels, consuming one fair bit per level, and rejects (restarts) on
the padding outcome ``n+1``.

The expected number of bits per sample is within ``[H, H + 6)`` of the
entropy (the FLDR paper's Theorem 4.3); Table 4 compares it against the
Zar pipeline's 200-sided die.
"""

from fractions import Fraction
from typing import Dict, List, Sequence

from repro.bits.source import BitSource


class FLDRSampler:
    """Exact sampler for integer-weighted outcomes in the bit model."""

    def __init__(self, weights: Sequence[int]):
        if not weights:
            raise ValueError("need at least one outcome")
        if any(w < 0 for w in weights) or all(w == 0 for w in weights):
            raise ValueError("weights must be nonnegative, not all zero")
        self.weights = list(weights)
        self.n = len(weights)
        m = sum(weights)
        if m & (m - 1) == 0:
            self.k = m.bit_length() - 1
            augmented = list(weights)
            self.reject_index = None
        else:
            self.k = m.bit_length()  # ceil(log2 m) for non-powers of two
            augmented = list(weights) + [(1 << self.k) - m]
            self.reject_index = self.n
        # levels[j] = outcomes whose weight has bit (k-1-j) set: the DDG
        # matrix in row-major order, leaves ordered left to right.
        self.levels: List[List[int]] = []
        for j in range(self.k):
            bit = self.k - 1 - j
            level = [
                index
                for index, weight in enumerate(augmented)
                if (weight >> bit) & 1
            ]
            self.levels.append(level)

    def sample(self, source: BitSource) -> int:
        """Draw one outcome index (0-based)."""
        while True:
            depth = 0
            position = 0
            while True:
                position = 2 * position + (1 if source.next_bit() else 0)
                leaves = self.levels[depth]
                if position < len(leaves):
                    outcome = leaves[position]
                    if outcome == self.reject_index:
                        break  # rejected: restart from the root
                    return outcome
                position -= len(leaves)
                depth += 1
                if depth >= self.k:
                    # All weight bits exhausted: the walk must have landed
                    # on a leaf by now; numerically unreachable.
                    raise AssertionError("FLDR walk escaped the DDG tree")

    def pmf(self) -> Dict[int, Fraction]:
        """The exact distribution sampled (for verification)."""
        total = sum(self.weights)
        return {
            index: Fraction(weight, total)
            for index, weight in enumerate(self.weights)
            if weight
        }
