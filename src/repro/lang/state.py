"""Immutable program states.

A program state ``sigma : Sigma`` maps identifiers to values.  States are
immutable and hashable:

- immutability makes the compiler of Definition 3.5 (which closes over
  states inside ``Fix`` nodes) safe without defensive copying, and
- hashability is what lets the exact loop solver (``repro.semantics``)
  memoize weakest pre-expectations per reachable state and set up one linear
  unknown per state.

Unbound variables read as integer ``0`` by default, matching the paper's
convention that e.g. the counter ``h`` in the geometric-primes program of
Figure 1a starts at 0 without explicit initialization.  A strict mode is
available for the static checker and for tests.
"""

from typing import Dict, Iterator, Optional, Tuple

from repro.lang.errors import EvalError
from repro.lang.values import Value, is_value, normalize


class State:
    """An immutable, hashable mapping from identifiers to values."""

    __slots__ = ("_items", "_key", "_hash")

    def __init__(self, mapping: Optional[Dict[str, Value]] = None, **kwargs: Value):
        items: Dict[str, Value] = {}
        if mapping:
            items.update(mapping)
        if kwargs:
            items.update(kwargs)
        for name, value in items.items():
            if not isinstance(name, str):
                raise TypeError("variable names must be strings: %r" % (name,))
            if not is_value(value):
                raise TypeError(
                    "illegal value %r for variable %s" % (value, name)
                )
        # Dropping default-valued (0) bindings gives a canonical form, so
        # that sigma[x := 0] == sigma when x was unbound -- important for
        # state-space finiteness in the exact loop solver.
        self._items: Tuple[Tuple[str, Value], ...] = tuple(
            sorted(
                (name, normalize(value))
                for name, value in items.items()
                if not _is_default(normalize(value))
            )
        )
        # Equality/hash key with explicit kind tags: Python's ``True == 1``
        # and ``hash(True) == hash(1)`` would otherwise make sigma[z := True]
        # and sigma[z := 1] one state, although they are semantically
        # distinct (``value_eq``; guards reject numbers in boolean
        # position), which let the structural interner alias them.
        self._key = tuple(
            (name, value.__class__ is bool, value)
            for name, value in self._items
        )
        self._hash = hash(self._key)

    @staticmethod
    def empty() -> "State":
        """The state binding nothing (every variable reads as 0)."""
        return _EMPTY

    @classmethod
    def _from_sorted(cls, items: Tuple[Tuple[str, Value], ...]) -> "State":
        """Trusted constructor: ``items`` must already be sorted,
        normalized, and free of default (int 0) bindings -- the
        invariants ``_items`` itself carries.  Lets ``set``/``update``
        and the engine's footprint splitter skip re-validating and
        re-sorting bindings that came out of an existing state."""
        self = object.__new__(cls)
        self._items = items
        self._key = tuple(
            (name, value.__class__ is bool, value) for name, value in items
        )
        self._hash = hash(self._key)
        return self

    def get(self, name: str, strict: bool = False) -> Value:
        """Read variable ``name``; unbound variables read as 0.

        With ``strict=True`` an unbound read raises :class:`EvalError`
        instead (used by tests and the static checker).
        """
        for key, value in self._items:
            if key == name:
                return value
        if strict:
            raise EvalError("unbound variable %r" % (name,))
        return 0

    def set(self, name: str, value: Value) -> "State":
        """Return a new state with ``name`` bound to ``value``."""
        if not is_value(value):
            raise TypeError("illegal value %r for variable %s" % (value, name))
        value = normalize(value)
        items = self._items
        if _is_default(value):
            for i, (key, _) in enumerate(items):
                if key == name:
                    return State._from_sorted(items[:i] + items[i + 1 :])
            return self
        entry = (name, value)
        for i, (key, old) in enumerate(items):
            if key == name:
                if old.__class__ is value.__class__ and old == value:
                    return self
                return State._from_sorted(items[:i] + (entry,) + items[i + 1 :])
            if key > name:
                return State._from_sorted(items[:i] + (entry,) + items[i:])
        return State._from_sorted(items + (entry,))

    def update(self, mapping: Dict[str, Value]) -> "State":
        """Return a new state with all bindings in ``mapping`` applied."""
        if not mapping:
            return self
        new = dict(self._items)
        for name, value in mapping.items():
            if not isinstance(name, str):
                raise TypeError(
                    "variable names must be strings: %r" % (name,)
                )
            if not is_value(value):
                raise TypeError(
                    "illegal value %r for variable %s" % (value, name)
                )
            value = normalize(value)
            if _is_default(value):
                new.pop(name, None)
            else:
                new[name] = value
        return State._from_sorted(tuple(sorted(new.items())))

    def bound(self) -> Tuple[str, ...]:
        """Names bound to a non-default value, sorted."""
        return tuple(name for name, _ in self._items)

    def items(self) -> Tuple[Tuple[str, Value], ...]:
        return self._items

    def __getitem__(self, name: str) -> Value:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self._items)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._items:
            return "State()"
        body = ", ".join("%s=%r" % (name, value) for name, value in self._items)
        return "State(%s)" % body


def _is_default(value: Value) -> bool:
    """True for the implicit value of unbound variables (integer 0)."""
    return value == 0 and not isinstance(value, bool)


_EMPTY = State()
