"""Static well-formedness checks for cpGCL programs.

Definition 2.1 imposes side conditions that a Coq development discharges
with proofs: choice probabilities lie in [0, 1] and uniform ranges are
positive.  For literal expressions we check these statically; for
state-dependent expressions the checks are performed dynamically by the
compiler (:mod:`repro.cftree.compile`) and this checker records that a
dynamic check will be needed.

The checker also performs a definite-assignment analysis.  Reading an
unassigned variable is *legal* (it reads as 0, following the paper's
convention for e.g. ``h`` in Figure 1a) but often unintended, so such reads
are reported as warnings.
"""

from fractions import Fraction
from typing import FrozenSet, List, NamedTuple

from repro.lang.errors import TypeCheckError
from repro.lang.expr import Lit
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)


class CheckReport(NamedTuple):
    """Outcome of static checking.

    ``errors`` are definite violations (bad literal probability/range);
    ``warnings`` are possible issues (unassigned reads, dynamic checks).
    """

    errors: List[str]
    warnings: List[str]

    @property
    def ok(self) -> bool:
        return not self.errors


def check_program(command: Command, strict: bool = True) -> CheckReport:
    """Check ``command``; with ``strict=True`` raise on errors."""
    checker = _Checker()
    checker.run(command, frozenset())
    report = CheckReport(checker.errors, checker.warnings)
    if strict and report.errors:
        raise TypeCheckError("; ".join(report.errors))
    return report


class _Checker:
    def __init__(self):
        self.errors: List[str] = []
        self.warnings: List[str] = []

    def run(self, command: Command, assigned: FrozenSet[str]) -> FrozenSet[str]:
        """Walk ``command``; return the definitely-assigned set after it."""
        if isinstance(command, Skip):
            return assigned
        if isinstance(command, Assign):
            self._check_reads(command.expr.free_vars(), assigned, command)
            return assigned | {command.name}
        if isinstance(command, Seq):
            assigned = self.run(command.first, assigned)
            return self.run(command.second, assigned)
        if isinstance(command, Observe):
            self._check_reads(command.pred.free_vars(), assigned, command)
            return assigned
        if isinstance(command, Ite):
            self._check_reads(command.cond.free_vars(), assigned, command)
            after_then = self.run(command.then, assigned)
            after_else = self.run(command.orelse, assigned)
            return after_then & after_else
        if isinstance(command, Choice):
            self._check_reads(command.prob.free_vars(), assigned, command)
            self._check_probability(command.prob)
            after_left = self.run(command.left, assigned)
            after_right = self.run(command.right, assigned)
            return after_left & after_right
        if isinstance(command, Uniform):
            self._check_reads(command.range_expr.free_vars(), assigned, command)
            self._check_range(command.range_expr)
            return assigned | {command.name}
        if isinstance(command, While):
            self._check_reads(command.cond.free_vars(), assigned, command)
            # The body may execute zero times: nothing it assigns is
            # definite afterwards, but its own reads are checked against
            # what is definitely assigned at loop entry.
            self.run(command.body, assigned)
            return assigned
        raise TypeError("not a command: %r" % (command,))

    def _check_reads(self, names, assigned, command):
        for name in sorted(names):
            if name == "*":
                continue  # opaque expression: free variables unknown
            if name not in assigned:
                self.warnings.append(
                    "variable %r may be read before assignment in %r "
                    "(unassigned variables read as 0)" % (name, command)
                )

    def _check_probability(self, prob):
        if isinstance(prob, Lit):
            value = prob.value
            if isinstance(value, bool) or not isinstance(
                value, (int, Fraction)
            ):
                self.errors.append(
                    "choice probability must be numeric, got %r" % (value,)
                )
            elif not 0 <= value <= 1:
                self.errors.append(
                    "choice probability %s is outside [0, 1]" % (value,)
                )
        else:
            self.warnings.append(
                "state-dependent choice probability %r checked dynamically"
                % (prob,)
            )

    def _check_range(self, bound):
        if isinstance(bound, Lit):
            value = bound.value
            if isinstance(value, bool) or not isinstance(value, int):
                self.errors.append(
                    "uniform range must be an integer, got %r" % (value,)
                )
            elif value <= 0:
                self.errors.append(
                    "uniform range must be positive, got %s" % (value,)
                )
        else:
            self.warnings.append(
                "state-dependent uniform range %r checked dynamically"
                % (bound,)
            )
