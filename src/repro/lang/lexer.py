"""Lexer for cpGCL concrete syntax.

Hand-written maximal-munch scanner producing a list of tokens with line
and column information for error reporting.  ``#`` starts a line comment.
"""

from typing import List, NamedTuple

from repro.lang.errors import ParseError


class Token(NamedTuple):
    kind: str  # one of KINDS below
    text: str
    line: int
    column: int


KIND_IDENT = "IDENT"
KIND_INT = "INT"
KIND_KEYWORD = "KEYWORD"
KIND_OP = "OP"
KIND_EOF = "EOF"

KEYWORDS = frozenset(
    (
        "skip",
        "observe",
        "if",
        "else",
        "while",
        "uniform",
        "flip",
        "true",
        "false",
        "and",
        "or",
        "not",
    )
)

# Longest operators first (maximal munch).
_OPERATORS = (
    "<~",
    ":=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "//",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
)


def tokenize(source: str) -> List[Token]:
    """Scan ``source`` into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            tokens.append(Token(KIND_INT, text, line, column))
            column += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = KIND_KEYWORD if text in KEYWORDS else KIND_IDENT
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(KIND_OP, op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise ParseError("unexpected character %r" % ch, line, column)
    tokens.append(Token(KIND_EOF, "", line, column))
    return tokens
