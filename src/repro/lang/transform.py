"""Source-level optimization passes for cpGCL.

The compiled pipeline optimizes at the CF-tree level (``elim_choices``);
these passes optimize at the *source* level, where structure the tree
has already monomorphized is still visible.  All passes preserve the
cwp semantics exactly -- the property suite checks ``wp``/``wlp``
equality on random programs.

- :func:`fold_program` -- constant-fold expressions (reuses the parser's
  folder).
- :func:`simplify_control` -- prune ``if``/``while``/choice with literal
  conditions: ``if true``, ``while false``, ``{c1}[1]{c2}``; drop
  ``observe true``; collapse ``skip`` units in sequences.
- :func:`unroll_loops` -- fully unroll loops whose iteration count is
  statically bounded by constant-guard evaluation (turns bounded
  programs loop-free, enabling the exact loop-free inference path).
- :func:`dead_assignment_elimination` -- remove assignments to variables
  never read afterwards (a backward liveness pass).
- :func:`optimize` -- the standard composition.
"""

from typing import FrozenSet, Optional

from repro.lang.errors import EvalError
from repro.lang.expr import Expr, Lit
from repro.lang.parser import fold_constants_expr
from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)


def fold_program(command: Command) -> Command:
    """Constant-fold every expression in the program."""
    from repro.lang.parser import fold_constants

    return fold_constants(command)


def _literal_bool(expr: Expr) -> Optional[bool]:
    if isinstance(expr, Lit) and isinstance(expr.value, bool):
        return expr.value
    return None


def simplify_control(command: Command) -> Command:
    """Prune statically decided control flow (semantics-preserving)."""
    if isinstance(command, (Skip, Assign, Uniform)):
        return command
    if isinstance(command, Observe):
        if _literal_bool(command.pred) is True:
            return Skip()
        return command
    if isinstance(command, Seq):
        first = simplify_control(command.first)
        second = simplify_control(command.second)
        if isinstance(first, Skip):
            return second
        if isinstance(second, Skip):
            return first
        return Seq(first, second)
    if isinstance(command, Ite):
        decided = _literal_bool(command.cond)
        if decided is True:
            return simplify_control(command.then)
        if decided is False:
            return simplify_control(command.orelse)
        return Ite(
            command.cond,
            simplify_control(command.then),
            simplify_control(command.orelse),
        )
    if isinstance(command, Choice):
        prob = command.prob
        if isinstance(prob, Lit) and not isinstance(prob.value, bool):
            if prob.value == 1:
                return simplify_control(command.left)
            if prob.value == 0:
                return simplify_control(command.right)
        left = simplify_control(command.left)
        right = simplify_control(command.right)
        if left == right:
            # {c}[p]{c} = c for any p: the source-level analogue of the
            # elim_choices duplicate-branch rule.
            return left
        return Choice(prob, left, right)
    if isinstance(command, While):
        if _literal_bool(command.cond) is False:
            return Skip()
        return While(command.cond, simplify_control(command.body))
    raise TypeError("not a command: %r" % (command,))


def unroll_loops(command: Command, max_unroll: int = 64) -> Command:
    """Fully unroll loops with statically bounded iteration counts.

    A loop qualifies when its guard depends only on variables whose
    values are fully determined along every path (tracked with a small
    constant-propagation environment) and it exits within
    ``max_unroll`` iterations.  Qualifying programs become loop-free,
    where inference is exact without any fixpoint machinery.

    Only a conservative subset qualifies: bodies whose guard variables
    are updated by constant-expressible assignments on all paths.
    """

    def go(c: Command, env: Optional[dict]) -> (Command, Optional[dict]):
        # env maps variable -> known constant value; None = unknown env.
        if isinstance(c, Skip):
            return c, env
        if isinstance(c, Assign):
            if env is not None:
                value = _try_eval(c.expr, env)
                env = dict(env)
                if value is not None:
                    env[c.name] = value
                else:
                    env.pop(c.name, None)
            return c, env
        if isinstance(c, Uniform):
            if env is not None:
                env = dict(env)
                env.pop(c.name, None)  # value is random: unknown
            return c, env
        if isinstance(c, Observe):
            return c, env
        if isinstance(c, Seq):
            first, env = go(c.first, env)
            second, env = go(c.second, env)
            return Seq(first, second), env
        if isinstance(c, Ite):
            then, env_then = go(c.then, env)
            orelse, env_else = go(c.orelse, env)
            return Ite(c.cond, then, orelse), _meet(env_then, env_else)
        if isinstance(c, Choice):
            left, env_left = go(c.left, env)
            right, env_right = go(c.right, env)
            return Choice(c.prob, left, right), _meet(env_left, env_right)
        if isinstance(c, While):
            unrolled = _try_unroll(c, env, max_unroll)
            if unrolled is not None:
                return go(unrolled, env)
            # Cannot unroll: variables the body assigns become unknown.
            survivors = None
            if env is not None:
                survivors = {
                    name: value
                    for name, value in env.items()
                    if name not in c.assigned_vars()
                }
            body, _ = go(c.body, None)
            return While(c.cond, body), survivors
        raise TypeError("not a command: %r" % (c,))

    result, _ = go(command, {})
    return result


def _try_eval(expr: Expr, env: dict):
    free = expr.free_vars()
    if "*" in free or any(name not in env for name in free):
        return None
    try:
        return expr.eval(State(env))
    except (EvalError, TypeError):
        return None


def _meet(a: Optional[dict], b: Optional[dict]) -> Optional[dict]:
    if a is None or b is None:
        return None
    return {k: v for k, v in a.items() if k in b and b[k] == v}


def _try_unroll(loop: While, env: Optional[dict], max_unroll: int):
    """Symbolically execute the loop on the constant environment."""
    if env is None:
        return None
    current = dict(env)
    pieces = []
    for _ in range(max_unroll):
        guard = _try_eval(loop.cond, current)
        if guard is None or not isinstance(guard, bool):
            return None
        if guard is False:
            result: Command = Skip()
            for piece in reversed(pieces):
                result = Seq(piece, result)
            return result
        advanced = _advance(loop.body, current)
        if advanced is None:
            return None
        pieces.append(loop.body)
        current = advanced
    return None  # did not exit within the budget


def _advance(body: Command, env: dict) -> Optional[dict]:
    """Constant-propagate through one deterministic body execution.

    Returns None when the body's effect on guard-relevant variables is
    not statically determined (randomness, branching on unknowns).
    """
    if isinstance(body, Skip):
        return env
    if isinstance(body, Assign):
        value = _try_eval(body.expr, env)
        updated = dict(env)
        if value is None:
            updated.pop(body.name, None)
        else:
            updated[body.name] = value
        return updated
    if isinstance(body, Seq):
        middle = _advance(body.first, env)
        if middle is None:
            return None
        return _advance(body.second, middle)
    if isinstance(body, Observe):
        outcome = _try_eval(body.pred, env)
        return env if outcome is True else None
    if isinstance(body, Ite):
        cond = _try_eval(body.cond, env)
        if cond is True:
            return _advance(body.then, env)
        if cond is False:
            return _advance(body.orelse, env)
        return None
    if isinstance(body, (Choice, Uniform, While)):
        # Probabilistic or nested-loop effects: treat every assigned
        # variable as unknown; unrolling remains possible only if the
        # guard does not depend on them.
        updated = dict(env)
        for name in body.assigned_vars():
            updated.pop(name, None)
        return updated
    raise TypeError("not a command: %r" % (body,))


def dead_assignment_elimination(command: Command, outputs) -> Command:
    """Remove assignments never read before the program ends.

    ``outputs`` are the variables observable in terminal states (the
    post-expectations the caller will ever ask about); the pass
    preserves ``wp c f`` exactly for every ``f`` that depends only on
    ``outputs``.  Removing writes to non-output variables *does* change
    the terminal states themselves -- that is the point -- so this pass
    is only applied with an explicit output set.

    ``Uniform`` draws are *kept* even when dead: they consume
    randomness, and removing them would change bit consumption (not the
    posterior; the paper gives no bit-count guarantees, but we preserve
    comparability).
    """

    def go(c: Command, live: FrozenSet[str]) -> (Command, FrozenSet[str]):
        if isinstance(c, Skip):
            return c, live
        if isinstance(c, Assign):
            if c.name not in live:
                return Skip(), live
            return c, (live - {c.name}) | c.expr.free_vars()
        if isinstance(c, Uniform):
            return c, (live - {c.name}) | c.range_expr.free_vars()
        if isinstance(c, Observe):
            return c, live | c.pred.free_vars()
        if isinstance(c, Seq):
            second, live = go(c.second, live)
            first, live = go(c.first, live)
            if isinstance(first, Skip):
                return second, live
            if isinstance(second, Skip):
                return first, live
            return Seq(first, second), live
        if isinstance(c, Ite):
            then, live_then = go(c.then, live)
            orelse, live_else = go(c.orelse, live)
            return (
                Ite(c.cond, then, orelse),
                live_then | live_else | c.cond.free_vars(),
            )
        if isinstance(c, Choice):
            left, live_left = go(c.left, live)
            right, live_right = go(c.right, live)
            return (
                Choice(c.prob, left, right),
                live_left | live_right | c.prob.free_vars(),
            )
        if isinstance(c, While):
            # Fixpoint of liveness through the loop: iterate to stability.
            live_in = live | c.cond.free_vars()
            while True:
                _, live_body = go(c.body, live_in)
                widened = live_in | live_body
                if widened == live_in:
                    break
                live_in = widened
            body, _ = go(c.body, live_in)
            return While(c.cond, body), live_in
        raise TypeError("not a command: %r" % (c,))

    # "*" (opaque free-variable marker) keeps everything alive.
    result, live = go(command, frozenset(outputs))
    if "*" in live:
        return command
    return result


def optimize(command: Command, outputs=None, max_unroll: int = 64) -> Command:
    """The standard pass pipeline: fold, simplify, unroll, simplify,
    then dead-assignment elimination when ``outputs`` is given."""
    command = fold_program(command)
    command = simplify_control(command)
    command = unroll_loops(command, max_unroll)
    command = simplify_control(command)
    if outputs is not None:
        command = dead_assignment_elimination(command, outputs)
    return simplify_control(command)
