"""Pretty-printer for cpGCL concrete syntax.

The output parses back with :func:`repro.lang.parser.parse_program`:
``parse(pretty(c))`` equals ``c`` up to constant folding of literal
arithmetic (the parser folds e.g. ``2/3`` into the rational literal 2/3;
see the parser module docstring).

Concrete syntax summary::

    skip;                     x := e;
    x <~ uniform(e);          x <~ flip(p);
    observe e;
    if e { ... } else { ... }
    while e { ... }
    { ... } [p] { ... };      # probabilistic choice

Boolean connectives print as ``&&``, ``||``, ``!``; comments are ``#``.
"""

from fractions import Fraction

from repro.lang.expr import BinOp, Call, Expr, Lit, Opaque, UnOp, Var
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)

# Binding strength: higher binds tighter.  Used to decide parenthesization.
_PREC_OR = 1
_PREC_AND = 2
_PREC_CMP = 3
_PREC_ADD = 4
_PREC_MUL = 5
_PREC_UNARY = 6
_PREC_ATOM = 7

_BINOP_PREC = {
    "or": _PREC_OR,
    "and": _PREC_AND,
    "==": _PREC_CMP,
    "!=": _PREC_CMP,
    "<": _PREC_CMP,
    "<=": _PREC_CMP,
    ">": _PREC_CMP,
    ">=": _PREC_CMP,
    "+": _PREC_ADD,
    "-": _PREC_ADD,
    "*": _PREC_MUL,
    "/": _PREC_MUL,
    "//": _PREC_MUL,
    "%": _PREC_MUL,
}

_BINOP_TOKEN = {"or": "||", "and": "&&"}


def pretty_expr(expr: Expr) -> str:
    """Render an expression in concrete syntax."""
    return _expr(expr, 0)


def _expr(expr: Expr, context_prec: int) -> str:
    if isinstance(expr, Lit):
        text = _literal(expr.value)
        # Negative/fractional literals re-parse as unary/binary operator
        # applications, so protect them in tight contexts.
        needs_parens = (
            context_prec >= _PREC_UNARY and text.startswith("-")
        ) or (context_prec >= _PREC_MUL and "/" in text)
        return "(%s)" % text if needs_parens else text
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, UnOp):
        token = "!" if expr.op == "not" else "-"
        body = _expr(expr.arg, _PREC_UNARY)
        text = token + body
        return "(%s)" % text if context_prec > _PREC_UNARY else text
    if isinstance(expr, BinOp):
        prec = _BINOP_PREC[expr.op]
        token = _BINOP_TOKEN.get(expr.op, expr.op)
        # All binary operators associate to the left in the parser, so the
        # right operand needs strictly-tighter printing.
        left = _expr(expr.lhs, prec)
        right = _expr(expr.rhs, prec + 1)
        text = "%s %s %s" % (left, token, right)
        return "(%s)" % text if prec < context_prec else text
    if isinstance(expr, Call):
        args = ", ".join(_expr(arg, 0) for arg in expr.args)
        return "%s(%s)" % (expr.func, args)
    if isinstance(expr, Opaque):
        raise ValueError(
            "opaque expression %s has no concrete syntax" % (expr.label,)
        )
    raise TypeError("not an expression: %r" % (expr,))


def _literal(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, Fraction):
        return "%d/%d" % (value.numerator, value.denominator)
    return str(value)


def pretty(command: Command, indent: int = 0) -> str:
    """Render a command in concrete syntax, one statement per line."""
    return "\n".join(_stmt(command, indent))


def _stmt(command: Command, depth: int):
    pad = "    " * depth
    if isinstance(command, Skip):
        return [pad + "skip;"]
    if isinstance(command, Assign):
        return [pad + "%s := %s;" % (command.name, pretty_expr(command.expr))]
    if isinstance(command, Seq):
        return _stmt(command.first, depth) + _stmt(command.second, depth)
    if isinstance(command, Observe):
        return [pad + "observe %s;" % pretty_expr(command.pred)]
    if isinstance(command, Uniform):
        return [
            pad
            + "%s <~ uniform(%s);"
            % (command.name, pretty_expr(command.range_expr))
        ]
    if isinstance(command, Ite):
        lines = [pad + "if %s {" % pretty_expr(command.cond)]
        lines += _stmt(command.then, depth + 1)
        if isinstance(command.orelse, Skip):
            lines.append(pad + "}")
        else:
            lines.append(pad + "} else {")
            lines += _stmt(command.orelse, depth + 1)
            lines.append(pad + "}")
        return lines
    if isinstance(command, While):
        lines = [pad + "while %s {" % pretty_expr(command.cond)]
        lines += _stmt(command.body, depth + 1)
        lines.append(pad + "}")
        return lines
    if isinstance(command, Choice):
        sugar = _flip_sugar(command)
        if sugar is not None:
            return [pad + sugar]
        lines = [pad + "{"]
        lines += _stmt(command.left, depth + 1)
        lines.append(pad + "} [%s] {" % pretty_expr(command.prob))
        lines += _stmt(command.right, depth + 1)
        lines.append(pad + "};")
        return lines
    raise TypeError("not a command: %r" % (command,))


def _flip_sugar(command: Choice):
    """Recognize ``flip`` (Definition 5.1) and print it as such."""
    left, right = command.left, command.right
    if (
        isinstance(left, Assign)
        and isinstance(right, Assign)
        and left.name == right.name
        and left.expr == Lit(True)
        and right.expr == Lit(False)
    ):
        return "%s <~ flip(%s);" % (left.name, pretty_expr(command.prob))
    return None
