"""Exception hierarchy for the cpGCL front end.

All errors raised by the language layer derive from :class:`CpGCLError`, so
callers can catch one type to handle any front-end failure.
"""


class CpGCLError(Exception):
    """Base class for all cpGCL front-end errors."""


class EvalError(CpGCLError):
    """Raised when an expression cannot be evaluated in a given state.

    Typical causes: reading an unbound variable in strict mode, a type
    mismatch (e.g. adding a boolean to an integer), or division by zero.
    """


class ParseError(CpGCLError):
    """Raised by the lexer or parser on malformed concrete syntax."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "%d:%d: %s" % (line, column, message)
        super().__init__(message)


class TypeCheckError(CpGCLError):
    """Raised by the static checker on an ill-formed program."""


class ProbabilityRangeError(CpGCLError):
    """Raised when a choice probability falls outside [0, 1].

    Definition 2.1 (cpGCL-choice) requires ``0 <= p(sigma) <= 1`` for every
    state; this error reports the violating state and value.
    """

    def __init__(self, value, state=None):
        self.value = value
        self.state = state
        super().__init__(
            "choice probability %s is outside [0, 1]%s"
            % (value, "" if state is None else " in state %s" % (state,))
        )


class UniformRangeError(CpGCLError):
    """Raised when a ``uniform`` bound is not a positive integer.

    Definition 2.1 (cpGCL-uniform) requires ``0 < e(sigma)``.
    """

    def __init__(self, value, state=None):
        self.value = value
        self.state = state
        super().__init__(
            "uniform range %s is not a positive integer%s"
            % (value, "" if state is None else " in state %s" % (state,))
        )
