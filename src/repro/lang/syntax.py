"""The cpGCL command AST (Definition 2.1).

Constructors mirror the inductive type of the paper:

==================  =====================================================
Paper               Here
==================  =====================================================
``skip``            :class:`Skip`
``x <- e``          :class:`Assign`
``c1; c2``          :class:`Seq` (binary; :func:`seq` folds a list)
``observe e``       :class:`Observe`
``if e ...``        :class:`Ite`
``{c1} [p] {c2}``   :class:`Choice` (``p`` may depend on the state)
``uniform e k``     :class:`Uniform` -- see the deviation note below
``while e do c``    :class:`While`
==================  =====================================================

Deviation (documented in DESIGN.md section 2): the paper's ``uniform e k``
takes a higher-order continuation ``k : N -> cpGCL``.  Every use in the
paper instantiates ``k`` as "bind the drawn number to a variable, then
continue", so we represent the binding form directly: ``Uniform(e, x)``
draws ``0 <= n < e(sigma)`` uniformly and stores it in ``x``.  The general
form is recovered as ``Seq(Uniform(e, x), rest)``.
"""

from typing import FrozenSet, Iterable, Tuple

from repro.lang.expr import Expr, to_expr


class Command:
    """Base class of cpGCL commands."""

    __slots__ = ()

    def free_vars(self) -> FrozenSet[str]:
        """Variables read by this command (in expressions)."""
        raise NotImplementedError

    def assigned_vars(self) -> FrozenSet[str]:
        """Variables this command may write ("clobbered" variables,
        in the terminology of Appendix C)."""
        raise NotImplementedError

    def __rshift__(self, other: "Command") -> "Command":
        """``c1 >> c2`` builds ``Seq(c1, c2)``."""
        return Seq(self, other)


class Skip(Command):
    """The no-op command."""

    __slots__ = ()

    def free_vars(self):
        return frozenset()

    def assigned_vars(self):
        return frozenset()

    def __eq__(self, other):
        return isinstance(other, Skip)

    def __hash__(self):
        return hash("Skip")

    def __repr__(self):
        return "Skip()"


class Assign(Command):
    """``x <- e``: assign the value of ``e`` to ``x``."""

    __slots__ = ("name", "expr")

    def __init__(self, name: str, expr):
        if not isinstance(name, str) or not name:
            raise TypeError("assignment target must be a non-empty string")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "expr", to_expr(expr))

    def __setattr__(self, *_):
        raise AttributeError("Assign is immutable")

    def free_vars(self):
        return self.expr.free_vars()

    def assigned_vars(self):
        return frozenset((self.name,))

    def __eq__(self, other):
        return (
            isinstance(other, Assign)
            and self.name == other.name
            and self.expr == other.expr
        )

    def __hash__(self):
        return hash(("Assign", self.name, self.expr))

    def __repr__(self):
        return "Assign(%r, %r)" % (self.name, self.expr)


class Seq(Command):
    """``c1; c2``: sequential composition."""

    __slots__ = ("first", "second")

    def __init__(self, first: Command, second: Command):
        _require_command(first)
        _require_command(second)
        object.__setattr__(self, "first", first)
        object.__setattr__(self, "second", second)

    def __setattr__(self, *_):
        raise AttributeError("Seq is immutable")

    def free_vars(self):
        return self.first.free_vars() | self.second.free_vars()

    def assigned_vars(self):
        return self.first.assigned_vars() | self.second.assigned_vars()

    def __eq__(self, other):
        return (
            isinstance(other, Seq)
            and self.first == other.first
            and self.second == other.second
        )

    def __hash__(self):
        return hash(("Seq", self.first, self.second))

    def __repr__(self):
        return "Seq(%r, %r)" % (self.first, self.second)


class Observe(Command):
    """``observe e``: condition the posterior on predicate ``e``.

    Operationally (after compilation) a failed observation restarts the
    sampler from the initial state -- the rejection-sampling reading given
    by ``tie_itree`` (Definition 3.12).
    """

    __slots__ = ("pred",)

    def __init__(self, pred):
        object.__setattr__(self, "pred", to_expr(pred))

    def __setattr__(self, *_):
        raise AttributeError("Observe is immutable")

    def free_vars(self):
        return self.pred.free_vars()

    def assigned_vars(self):
        return frozenset()

    def __eq__(self, other):
        return isinstance(other, Observe) and self.pred == other.pred

    def __hash__(self):
        return hash(("Observe", self.pred))

    def __repr__(self):
        return "Observe(%r)" % (self.pred,)


class Ite(Command):
    """``if e then c1 else c2``: deterministic branching."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond, then: Command, orelse: Command):
        _require_command(then)
        _require_command(orelse)
        object.__setattr__(self, "cond", to_expr(cond))
        object.__setattr__(self, "then", then)
        object.__setattr__(self, "orelse", orelse)

    def __setattr__(self, *_):
        raise AttributeError("Ite is immutable")

    def free_vars(self):
        return (
            self.cond.free_vars()
            | self.then.free_vars()
            | self.orelse.free_vars()
        )

    def assigned_vars(self):
        return self.then.assigned_vars() | self.orelse.assigned_vars()

    def __eq__(self, other):
        return (
            isinstance(other, Ite)
            and self.cond == other.cond
            and self.then == other.then
            and self.orelse == other.orelse
        )

    def __hash__(self):
        return hash(("Ite", self.cond, self.then, self.orelse))

    def __repr__(self):
        return "Ite(%r, %r, %r)" % (self.cond, self.then, self.orelse)


class Choice(Command):
    """``{c1} [p] {c2}``: execute ``c1`` with probability ``p(sigma)``.

    The probability expression may depend on the program state (paper
    extension (2) in Section 2); the cpGCL-choice rule requires its value
    to lie in [0, 1] in every reachable state, checked dynamically at
    compile/evaluation time.
    """

    __slots__ = ("prob", "left", "right")

    def __init__(self, prob, left: Command, right: Command):
        _require_command(left)
        _require_command(right)
        object.__setattr__(self, "prob", to_expr(prob))
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, *_):
        raise AttributeError("Choice is immutable")

    def free_vars(self):
        return (
            self.prob.free_vars()
            | self.left.free_vars()
            | self.right.free_vars()
        )

    def assigned_vars(self):
        return self.left.assigned_vars() | self.right.assigned_vars()

    def __eq__(self, other):
        return (
            isinstance(other, Choice)
            and self.prob == other.prob
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("Choice", self.prob, self.left, self.right))

    def __repr__(self):
        return "Choice(%r, %r, %r)" % (self.prob, self.left, self.right)


class Uniform(Command):
    """``uniform e x``: draw ``n`` uniformly from ``{0 .. e(sigma)-1}``
    and assign it to ``x`` (binding form of cpGCL-uniform; see module
    docstring).  Requires ``e(sigma) > 0``.
    """

    __slots__ = ("range_expr", "name")

    def __init__(self, range_expr, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("uniform target must be a non-empty string")
        object.__setattr__(self, "range_expr", to_expr(range_expr))
        object.__setattr__(self, "name", name)

    def __setattr__(self, *_):
        raise AttributeError("Uniform is immutable")

    def free_vars(self):
        return self.range_expr.free_vars()

    def assigned_vars(self):
        return frozenset((self.name,))

    def __eq__(self, other):
        return (
            isinstance(other, Uniform)
            and self.range_expr == other.range_expr
            and self.name == other.name
        )

    def __hash__(self):
        return hash(("Uniform", self.range_expr, self.name))

    def __repr__(self):
        return "Uniform(%r, %r)" % (self.range_expr, self.name)


class While(Command):
    """``while e do c end``: an (possibly unbounded) guarded loop."""

    __slots__ = ("cond", "body")

    def __init__(self, cond, body: Command):
        _require_command(body)
        object.__setattr__(self, "cond", to_expr(cond))
        object.__setattr__(self, "body", body)

    def __setattr__(self, *_):
        raise AttributeError("While is immutable")

    def free_vars(self):
        return self.cond.free_vars() | self.body.free_vars()

    def assigned_vars(self):
        return self.body.assigned_vars()

    def __eq__(self, other):
        return (
            isinstance(other, While)
            and self.cond == other.cond
            and self.body == other.body
        )

    def __hash__(self):
        return hash(("While", self.cond, self.body))

    def __repr__(self):
        return "While(%r, %r)" % (self.cond, self.body)


def seq(commands: Iterable[Command]) -> Command:
    """Right-fold a sequence of commands with ``Seq`` (empty -> ``Skip``)."""
    items: Tuple[Command, ...] = tuple(commands)
    if not items:
        return Skip()
    result = items[-1]
    _require_command(result)
    for command in reversed(items[:-1]):
        result = Seq(command, result)
    return result


def _require_command(c):
    if not isinstance(c, Command):
        raise TypeError("expected a cpGCL command, got %r" % (c,))
