"""The cpGCL language substrate.

This subpackage implements the conditional probabilistic guarded command
language of Definition 2.1 in the paper: program values, immutable program
states, a first-class expression AST, the command AST, derived commands
(``flip``, the discrete Laplace/Gaussian subroutines of Appendix C), a
concrete syntax with lexer/parser, a pretty-printer, and a static checker.
"""

from repro.lang.errors import (
    CpGCLError,
    EvalError,
    ParseError,
    TypeCheckError,
)
from repro.lang.values import Value, is_value, value_eq
from repro.lang.state import State
from repro.lang.expr import (
    BinOp,
    Call,
    Expr,
    Lit,
    Opaque,
    UnOp,
    Var,
    to_expr,
)
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
    seq,
)
from repro.lang.sugar import (
    bernoulli_exponential,
    bernoulli_exponential_0_1,
    dueling_coins,
    flip,
    gaussian,
    gaussian_0,
    geometric_primes,
    hare_tortoise,
    laplace,
    n_sided_die,
)
from repro.lang.pretty import pretty, pretty_expr
from repro.lang.parser import parse_expr, parse_program
from repro.lang.typecheck import check_program

__all__ = [
    "Assign",
    "BinOp",
    "Call",
    "Choice",
    "Command",
    "CpGCLError",
    "EvalError",
    "Expr",
    "Ite",
    "Lit",
    "Observe",
    "Opaque",
    "ParseError",
    "Seq",
    "Skip",
    "State",
    "TypeCheckError",
    "UnOp",
    "Uniform",
    "Value",
    "Var",
    "While",
    "bernoulli_exponential",
    "bernoulli_exponential_0_1",
    "check_program",
    "dueling_coins",
    "flip",
    "gaussian",
    "gaussian_0",
    "geometric_primes",
    "hare_tortoise",
    "is_value",
    "laplace",
    "n_sided_die",
    "parse_expr",
    "parse_program",
    "pretty",
    "pretty_expr",
    "seq",
    "to_expr",
    "value_eq",
]
