"""Direct operational interpreter for cpGCL.

An independent *forward-sampling* semantics: execute a program step by
step, resolving probabilistic choices with random draws and restarting
from the initial state when an ``observe`` fails -- the operational
reading of conditioning.  No compilation involved.

This is deliberately redundant with the compiled pipeline: the
differential-testing harness (:mod:`repro.verify.fuzz`) cross-checks the
interpreter's empirical distribution against compiled samplers and
against exact cwp inference, in the spirit of the ProbFuzz methodology
the paper cites for evaluating PPL implementations.

The interpreter draws randomness from the same :class:`BitSource`
abstraction, consuming bits via the *same* uniform/Bernoulli tree
constructions executed directly on the source -- so its entropy usage is
comparable to the compiled sampler's, while its control path is
completely different code.
"""

from fractions import Fraction
from typing import Optional, Tuple

from repro.bits.source import BitSource, SystemBits
from repro.cftree.tree import Choice, Fail, Fix, Leaf
from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.lang.errors import ProbabilityRangeError, UniformRangeError
from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice as ChoiceCmd,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.lang.values import as_bool, as_fraction, as_int


class ObservationFailure(Exception):
    """Raised internally when an ``observe`` predicate is violated."""


class InterpreterLimits(Exception):
    """The step or restart budget was exhausted."""


def _run_tree(tree, source: BitSource, tick=None):
    """Execute a (finite or Fix-guarded) CF tree directly on a source.

    ``tick`` (when given) is charged once per consumed bit and per loop
    turn, so adversarial bit streams cannot spin a rejection loop past
    the interpreter's step budget.
    """
    while True:
        if isinstance(tree, Leaf):
            return tree.value
        if isinstance(tree, Fail):
            raise ObservationFailure()
        if isinstance(tree, Choice):
            if tick is not None:
                tick()
            tree = tree.left if source.next_bit() else tree.right
            continue
        if isinstance(tree, Fix):
            state = tree.init
            while tree.guard(state):
                if tick is not None:
                    tick()
                state = _run_tree(tree.body(state), source, tick)
            tree = tree.cont(state)
            continue
        raise TypeError("not a CF tree: %r" % (tree,))


def draw_bernoulli(p: Fraction, source: BitSource, tick=None) -> bool:
    """Draw Bernoulli(p) from fair bits (degenerate biases are free).

    Uses the verified ``bernoulli_tree`` construction, so entropy usage
    matches the compiled pipeline's for the same bias.
    """
    if p == 0:
        return False
    if p == 1:
        return True
    return _run_tree(bernoulli_tree(p), source, tick)


def draw_uniform(n: int, source: BitSource, tick=None) -> int:
    """Draw uniformly from ``{0 .. n-1}`` via ``uniform_tree``."""
    return _run_tree(uniform_tree(n), source, tick)


# Internal aliases kept for the interpreter body below.
_flip = draw_bernoulli
_uniform = draw_uniform


def execute_once(
    command: Command,
    sigma: State,
    source: BitSource,
    max_steps: Optional[int] = None,
) -> State:
    """One execution attempt; raises :class:`ObservationFailure` on a
    violated observation and :class:`InterpreterLimits` on step budget."""
    budget = [max_steps]

    def tick():
        if budget[0] is not None:
            budget[0] -= 1
            if budget[0] < 0:
                raise InterpreterLimits("step budget exhausted")

    def go(c: Command, s: State) -> State:
        tick()
        if isinstance(c, Skip):
            return s
        if isinstance(c, Assign):
            return s.set(c.name, c.expr.eval(s))
        if isinstance(c, Seq):
            return go(c.second, go(c.first, s))
        if isinstance(c, Observe):
            if as_bool(c.pred.eval(s)):
                return s
            raise ObservationFailure()
        if isinstance(c, Ite):
            taken = c.then if as_bool(c.cond.eval(s)) else c.orelse
            return go(taken, s)
        if isinstance(c, ChoiceCmd):
            p = as_fraction(c.prob.eval(s))
            if not 0 <= p <= 1:
                raise ProbabilityRangeError(p, s)
            return go(c.left if _flip(p, source, tick) else c.right, s)
        if isinstance(c, Uniform):
            n = as_int(c.range_expr.eval(s))
            if n <= 0:
                raise UniformRangeError(n, s)
            return s.set(c.name, _uniform(n, source, tick))
        if isinstance(c, While):
            current = s
            while as_bool(c.cond.eval(current)):
                tick()
                current = go(c.body, current)
            return current
        raise TypeError("not a command: %r" % (c,))

    return go(command, sigma)


def interpret(
    command: Command,
    sigma: Optional[State] = None,
    source: Optional[BitSource] = None,
    seed: Optional[int] = None,
    max_steps: Optional[int] = 1_000_000,
    max_restarts: Optional[int] = 100_000,
) -> State:
    """Sample one terminal state, restarting on observation failure.

    The operational counterpart of ``tie_itree``: rejected executions
    are discarded and the program restarts from ``sigma``.
    """
    sigma = sigma if sigma is not None else State()
    source = source if source is not None else SystemBits(seed)
    attempts = 0
    while True:
        try:
            return execute_once(command, sigma, source, max_steps)
        except ObservationFailure:
            attempts += 1
            if max_restarts is not None and attempts > max_restarts:
                raise InterpreterLimits(
                    "observation failed %d times; conditioning event may "
                    "have probability 0" % attempts
                )


def interpret_many(
    command: Command,
    n: int,
    sigma: Optional[State] = None,
    seed: Optional[int] = None,
    **limits,
) -> Tuple[State, ...]:
    """Draw ``n`` independent samples with a shared seeded source."""
    source = SystemBits(seed)
    sigma = sigma if sigma is not None else State()
    return tuple(
        interpret(command, sigma, source=source, **limits) for _ in range(n)
    )
