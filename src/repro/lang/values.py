"""Program values.

cpGCL is a discrete language: program variables range over booleans,
(unbounded) integers, and exact rationals.  The paper requires that all
probabilities appearing in programs be rational (Section 1.3); we therefore
use :class:`fractions.Fraction` rather than floats everywhere, so that the
weakest pre-expectation semantics and the choice-fix tree semantics can be
computed *exactly* and the compiler-correctness theorems can be checked with
zero tolerance.

``bool`` is a subclass of ``int`` in Python, so all dispatch on value kinds
tests booleans first.
"""

from fractions import Fraction
from typing import Union

Value = Union[bool, int, Fraction]

#: The kinds a value can have, used by error messages and the type checker.
KIND_BOOL = "bool"
KIND_INT = "int"
KIND_RAT = "rational"


def is_value(x) -> bool:
    """Return True if ``x`` is a legal cpGCL program value."""
    return isinstance(x, (bool, int, Fraction))


def kind_of(x) -> str:
    """Return the kind name of value ``x`` (bool is checked before int)."""
    if isinstance(x, bool):
        return KIND_BOOL
    if isinstance(x, int):
        return KIND_INT
    if isinstance(x, Fraction):
        return KIND_RAT
    raise TypeError("not a cpGCL value: %r" % (x,))


def normalize(x: Value) -> Value:
    """Canonicalize a value: integral Fractions become ints.

    Exact equality of states (needed by the finite-state loop solver and by
    structural equality of choice-fix trees) requires a canonical
    representation, so ``Fraction(4, 2)`` and ``2`` must not be distinct.
    """
    if isinstance(x, bool):
        return x
    if isinstance(x, Fraction):
        if x.denominator == 1:
            return int(x)
        return x
    if isinstance(x, int):
        return x
    raise TypeError("not a cpGCL value: %r" % (x,))


def value_eq(a: Value, b: Value) -> bool:
    """Semantic equality of values.

    Booleans compare equal only to booleans (``True != 1`` as cpGCL values),
    while ints and rationals compare numerically.
    """
    a_bool = isinstance(a, bool)
    b_bool = isinstance(b, bool)
    if a_bool or b_bool:
        return a_bool and b_bool and a == b
    return a == b


def as_fraction(x: Value) -> Fraction:
    """Coerce a numeric value to an exact Fraction.

    Booleans are rejected: cpGCL has no implicit bool-to-number coercion
    (the Iverson bracket is explicit in the semantics layer instead).
    """
    if isinstance(x, bool):
        raise TypeError("cannot use boolean %r as a number" % (x,))
    if isinstance(x, (int, Fraction)):
        return Fraction(x)
    raise TypeError("not a numeric cpGCL value: %r" % (x,))


def as_int(x: Value) -> int:
    """Coerce a value to an integer, rejecting non-integral rationals."""
    if isinstance(x, bool):
        raise TypeError("cannot use boolean %r as an integer" % (x,))
    if isinstance(x, int):
        return x
    if isinstance(x, Fraction) and x.denominator == 1:
        return int(x)
    raise TypeError("not an integral cpGCL value: %r" % (x,))


def as_bool(x: Value) -> bool:
    """Coerce a value to a boolean; only booleans are accepted.

    Guard conditions and observed predicates have type ``Sigma -> B`` in
    Definition 2.1, so numbers in boolean position are a type error.
    """
    if isinstance(x, bool):
        return x
    raise TypeError("not a boolean cpGCL value: %r" % (x,))
