"""Derived commands and the paper's example programs.

This module transcribes, as Python builders over the cpGCL AST:

- ``flip`` (Definition 5.1);
- the geometric-primes program (Figure 1a);
- the dueling-coins program (Figure 8a);
- the n-sided die (Figure 8b);
- the Appendix C subroutines ``bernoulli_exponential_0_1``,
  ``bernoulli_exponential`` (Figure 11), ``laplace`` (Figure 12),
  ``gaussian_0``/``gaussian`` (Figure 13), following the discrete
  Laplace/Gaussian sampling algorithms of Canonne et al. (2020);
- the hare-and-tortoise race (Figure 9a).

Subroutines clobber fixed helper variables exactly as in the paper
(``k a i b lp d v il x y c ol``); an optional ``ns`` prefix namespaces them
when a caller's variables would collide.
"""

from fractions import Fraction

from repro.lang.expr import Call, Expr, Lit, Var, to_expr
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
    seq,
)


def flip(x: str, p) -> Command:
    """``flip x p``: assign ``x`` the outcome of a coin with bias ``p``.

    Definition 5.1: ``{ x <- true } [p] { x <- false }``.
    """
    return Choice(p, Assign(x, True), Assign(x, False))


def geometric_primes(p) -> Command:
    """The 'primes' program of Figure 1a.

    Flip a coin with bias ``p`` of heads; while heads, increment ``h`` and
    reflip; finally condition on ``h`` being prime.  The posterior over
    ``h`` is the geometric distribution restricted to the primes.
    """
    h = Var("h")
    return seq(
        [
            flip("b", p),
            While(Var("b"), seq([Assign("h", h + 1), flip("b", p)])),
            Observe(Call("is_prime", [h])),
        ]
    )


def dueling_coins(p) -> Command:
    """The dueling-coins program of Figure 8a.

    An i.i.d. loop simulating a fair coin with a biased one: flip two
    ``p``-biased coins until they disagree.  The posterior over ``a`` is
    Bernoulli(1/2) for any ``p`` in (0, 1).
    """
    return seq(
        [
            Assign("a", False),
            Assign("b", False),
            While(
                Var("a").eq(Var("b")),
                Seq(flip("a", p), flip("b", p)),
            ),
        ]
    )


def n_sided_die(n: int) -> Command:
    """Rolling an n-sided die (Figure 8b): ``uniform n (\\m. x <- m+1)``."""
    if n <= 0:
        raise ValueError("die must have a positive number of sides")
    return Seq(Uniform(n, "m"), Assign("x", Var("m") + 1))


def bernoulli_exponential_0_1(out: str, gamma, ns: str = "") -> Command:
    """Sample ``out ~ Bernoulli(exp(-gamma))`` for ``0 <= gamma <= 1``
    (Figure 11, top).

    The loop flips ``k -> k+1`` with the *state-dependent* probability
    ``gamma/(k+1)`` (this is the construct that motivates compiling through
    choice-fix trees rather than a source-to-source debiasing); ``out`` is
    true iff the final counter is even.
    """
    gamma = to_expr(gamma)
    k = Var(ns + "k")
    a = Var(ns + "a")
    return seq(
        [
            Assign(ns + "k", 0),
            Assign(ns + "a", True),
            While(
                a,
                Choice(
                    gamma / (k + 1),
                    Assign(ns + "k", k + 1),
                    Assign(ns + "a", False),
                ),
            ),
            Ite(Call("even", [k]), Assign(out, True), Assign(out, False)),
        ]
    )


def bernoulli_exponential(out: str, gamma, ns: str = "") -> Command:
    """Sample ``out ~ Bernoulli(exp(-gamma))`` for any ``gamma >= 0``
    (Figure 11, bottom).

    For ``gamma > 1``, decompose ``exp(-gamma)`` as
    ``exp(-1)^floor(gamma) * exp(-(gamma - floor(gamma)))``.
    """
    gamma = to_expr(gamma)
    i = Var(ns + "i")
    b = Var(ns + "b")
    return Ite(
        gamma <= 1,
        bernoulli_exponential_0_1(out, gamma, ns),
        seq(
            [
                Assign(ns + "i", 1),
                Assign(ns + "b", True),
                While(
                    b & (i <= gamma),
                    Seq(
                        bernoulli_exponential_0_1(ns + "b", 1, ns),
                        Assign(ns + "i", i + 1),
                    ),
                ),
                Ite(
                    b,
                    bernoulli_exponential_0_1(
                        out, gamma - Call("floor", [gamma]), ns
                    ),
                    Assign(out, False),
                ),
            ]
        ),
    )


def laplace(out: str, s: int, t: int, ns: str = "") -> Command:
    """Sample ``out ~ Lap_Z(t/s)`` -- the discrete Laplace distribution
    with scale ``t/s`` (Figure 12; Canonne et al. 2020, Algorithm 2).

    ``s`` and ``t`` are positive integer constants.  Clobbers the helper
    variables ``u d v il x y c lp`` (prefixed by ``ns``).
    """
    if s <= 0 or t <= 0:
        raise ValueError("laplace requires positive integers s and t")
    u = Var(ns + "u")
    d = Var(ns + "d")
    v = Var(ns + "v")
    il = Var(ns + "il")
    x = Var(ns + "x")
    y = Var(ns + "y")
    c = Var(ns + "c")
    lp = Var(ns + "lp")
    body = seq(
        [
            Uniform(t, ns + "u"),
            bernoulli_exponential(ns + "d", u / t, ns),
            Ite(
                d,
                seq(
                    [
                        Assign(ns + "v", 0),
                        bernoulli_exponential(ns + "il", 1, ns),
                        While(
                            il,
                            Seq(
                                Assign(ns + "v", v + 1),
                                bernoulli_exponential(ns + "il", 1, ns),
                            ),
                        ),
                        Assign(ns + "x", u + t * v),
                        Assign(ns + "y", x // s),
                        flip(ns + "c", Fraction(1, 2)),
                        Ite(
                            c & y.eq(0),
                            Skip(),
                            Seq(
                                Assign(ns + "lp", False),
                                # out <- (1 - 2[c]) * y: negate when c.
                                Ite(c, Assign(out, -y), Assign(out, y)),
                            ),
                        ),
                    ]
                ),
                Skip(),
            ),
        ]
    )
    return Seq(Assign(ns + "lp", True), While(lp, body))


def gaussian_0(z: str, sigma, ns: str = "") -> Command:
    """Sample ``z ~ N_Z(0, sigma^2)`` -- the centered discrete Gaussian
    (Figure 13, top; Canonne et al. 2020, Algorithm 3).

    Rejection-samples a discrete Laplace with scale ``t = floor(sigma)+1``
    and accepts with probability ``exp(-(|z| - sigma^2/t)^2 / (2 sigma^2))``.
    ``sigma`` must be a positive rational constant.
    """
    sigma = Fraction(sigma)
    if sigma <= 0:
        raise ValueError("gaussian requires sigma > 0")
    t = int(sigma) + 1
    sigma_sq = sigma * sigma
    ol = Var(ns + "ol")
    z_var = Var(z)
    deviation = Call("abs", [z_var]) - Lit(sigma_sq / t)
    gamma = Call("square", [deviation]) / Lit(2 * sigma_sq)
    return seq(
        [
            Assign(ns + "ol", False),
            While(
                ~ol,
                Seq(
                    laplace(z, 1, t, ns),
                    bernoulli_exponential(ns + "ol", gamma, ns),
                ),
            ),
        ]
    )


def gaussian(out: str, mu, sigma, ns: str = "") -> Command:
    """Sample ``out ~ N_Z(mu, sigma^2)`` (Figure 13, bottom).

    ``mu`` may be any integer-valued expression; entropy usage depends only
    on ``sigma``.
    """
    return Seq(
        gaussian_0(out, sigma, ns),
        Assign(out, Var(out) + to_expr(mu)),
    )


def hare_tortoise(pred) -> Command:
    """The hare-and-tortoise race of Figure 9a.

    The tortoise starts with a uniform head start ``t0 < 10`` and advances
    one unit per time step; the hare starts at 0 and, with probability 2/5
    per step, leaps forward a discrete-Gaussian(4, 2^2) distance.  The
    terminal state (when the hare catches up) is conditioned on ``pred``.
    """
    hare = Var("hare")
    tortoise = Var("tortoise")
    time = Var("time")
    return seq(
        [
            Uniform(10, "t0"),
            Assign("tortoise", Var("t0")),
            Assign("hare", 0),
            Assign("time", 0),
            While(
                hare < tortoise,
                seq(
                    [
                        Assign("time", time + 1),
                        Assign("tortoise", tortoise + 1),
                        Choice(
                            Fraction(2, 5),
                            Seq(
                                gaussian("jump", 4, 2),
                                Assign("hare", hare + Var("jump")),
                            ),
                            Skip(),
                        ),
                    ]
                ),
            ),
            Observe(pred),
        ]
    )
