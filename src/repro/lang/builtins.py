"""Builtin functions callable from cpGCL expressions.

The geometric-primes program of Figure 1a conditions on ``h is prime``; the
discrete Laplace/Gaussian subroutines of Appendix C use ``even``, absolute
value, and floors.  All builtins are pure, total on legal inputs, and work
on exact values.
"""

from typing import Callable, Dict, NamedTuple

from repro.lang.values import Value, as_fraction, as_int, normalize


class Builtin(NamedTuple):
    """A builtin: name, arity, and the exact implementation."""

    name: str
    arity: int
    fn: Callable[..., Value]


_PRIME_CACHE: Dict[int, bool] = {0: False, 1: False, 2: True, 3: True}


def is_prime(n: Value) -> bool:
    """Primality by trial division with memoization.

    The posteriors in Section 5.2 have infinite support but their samplers
    only ever query small arguments, so trial division is ample.
    """
    n = as_int(n)
    if n < 0:
        return False
    cached = _PRIME_CACHE.get(n)
    if cached is not None:
        return cached
    result = True
    if n % 2 == 0:
        result = n == 2
    else:
        d = 3
        while d * d <= n:
            if n % d == 0:
                result = False
                break
            d += 2
    _PRIME_CACHE[n] = result
    return result


def even(n: Value) -> bool:
    return as_int(n) % 2 == 0


def odd(n: Value) -> bool:
    return as_int(n) % 2 == 1


def abs_value(x: Value) -> Value:
    return normalize(abs(as_fraction(x)))


def floor(x: Value) -> int:
    return as_fraction(x).__floor__()


def ceil(x: Value) -> int:
    return as_fraction(x).__ceil__()


def min_value(a: Value, b: Value) -> Value:
    return a if as_fraction(a) <= as_fraction(b) else b


def max_value(a: Value, b: Value) -> Value:
    return a if as_fraction(a) >= as_fraction(b) else b


def square(x: Value) -> Value:
    f = as_fraction(x)
    return normalize(f * f)


TABLE: Dict[str, Builtin] = {
    builtin.name: builtin
    for builtin in (
        Builtin("is_prime", 1, is_prime),
        Builtin("even", 1, even),
        Builtin("odd", 1, odd),
        Builtin("abs", 1, abs_value),
        Builtin("floor", 1, floor),
        Builtin("ceil", 1, ceil),
        Builtin("min", 2, min_value),
        Builtin("max", 2, max_value),
        Builtin("square", 1, square),
    )
}
