"""Recursive-descent parser for cpGCL concrete syntax.

Grammar (statements)::

    program := stmt*                      (folded right with Seq)
    stmt    := "skip" ";"
             | IDENT ":=" expr ";"
             | IDENT "<~" "uniform" "(" expr ")" ";"
             | IDENT "<~" "flip" "(" expr ")" ";"
             | "observe" expr ";"
             | "if" expr block ("else" block)?
             | "while" expr block
             | block "[" expr "]" block ";"      (probabilistic choice)
    block   := "{" stmt* "}"

Expressions use precedence climbing with (loosest to tightest): ``||``,
``&&``, comparisons, additive, multiplicative, unary, atoms.  Both the
symbolic (``&& || !``) and keyword (``and or not``) connectives are
accepted.

The parser **folds constants**: an arithmetic operation whose operands are
literals is reduced to a literal, so ``2/3`` parses to the rational literal
``Lit(Fraction(2, 3))``.  This is what makes the pretty-printer/parser
round trip exact: ``parse(pretty(c)) == fold_constants(c)``.
"""

from typing import Dict, List, Tuple

from repro.lang import builtins
from repro.lang.errors import EvalError, ParseError
from repro.lang.expr import BinOp, Call, Expr, Lit, UnOp, Var
from repro.lang.lexer import (
    KIND_EOF,
    KIND_IDENT,
    KIND_INT,
    KIND_KEYWORD,
    KIND_OP,
    Token,
    tokenize,
)
from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Skip,
    Uniform,
    While,
    seq,
)

_CMP_OPS = ("==", "!=", "<=", ">=", "<", ">")
_ADD_OPS = ("+", "-")
_MUL_OPS = ("*", "/", "//", "%")


class _Parser:
    def __init__(self, tokens: List[Token], track_locations: bool = False):
        self._tokens = tokens
        self._pos = 0
        self._track = track_locations
        # id(node) -> (line, column); _pins keeps the nodes alive so the
        # ids stay valid for as long as the location table is.
        self.locations: Dict[int, Tuple[int, int]] = {}
        self._pins: List[Command] = []

    def _note(self, command: Command, token: Token) -> Command:
        if self._track and id(command) not in self.locations:
            self.locations[id(command)] = (token.line, token.column)
            self._pins.append(command)
        return command

    # -- token plumbing --------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _check(self, kind: str, text: str = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _match(self, kind: str, text: str = None) -> bool:
        if self._check(kind, text):
            self._advance()
            return True
        return False

    def _expect(self, kind: str, text: str = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                "expected %r, found %r" % (want, token.text or "<eof>"),
                token.line,
                token.column,
            )
        return self._advance()

    # -- statements ------------------------------------------------------

    def program(self) -> Command:
        commands = []
        while not self._check(KIND_EOF):
            commands.append(self.statement())
        return seq(commands)

    def block(self) -> Command:
        self._expect(KIND_OP, "{")
        commands = []
        while not self._check(KIND_OP, "}"):
            commands.append(self.statement())
        self._expect(KIND_OP, "}")
        return seq(commands)

    def statement(self) -> Command:
        token = self._peek()
        return self._note(self._statement(), token)

    def _statement(self) -> Command:
        token = self._peek()
        if self._match(KIND_KEYWORD, "skip"):
            self._expect(KIND_OP, ";")
            return Skip()
        if self._match(KIND_KEYWORD, "observe"):
            pred = self.expression()
            self._expect(KIND_OP, ";")
            return Observe(pred)
        if self._match(KIND_KEYWORD, "if"):
            cond = self.expression()
            then = self.block()
            orelse: Command = Skip()
            if self._match(KIND_KEYWORD, "else"):
                orelse = self.block()
            return Ite(cond, then, orelse)
        if self._match(KIND_KEYWORD, "while"):
            cond = self.expression()
            body = self.block()
            return While(cond, body)
        if self._check(KIND_OP, "{"):
            left = self.block()
            self._expect(KIND_OP, "[")
            prob = self.expression()
            self._expect(KIND_OP, "]")
            right = self.block()
            self._expect(KIND_OP, ";")
            return Choice(prob, left, right)
        if token.kind == KIND_IDENT:
            name = self._advance().text
            if self._match(KIND_OP, ":="):
                value = self.expression()
                self._expect(KIND_OP, ";")
                return Assign(name, value)
            if self._match(KIND_OP, "<~"):
                return self._sampling(name)
            raise ParseError(
                "expected ':=' or '<~' after identifier %r" % name,
                token.line,
                token.column,
            )
        raise ParseError(
            "expected a statement, found %r" % (token.text or "<eof>"),
            token.line,
            token.column,
        )

    def _sampling(self, name: str) -> Command:
        token = self._peek()
        if self._match(KIND_KEYWORD, "uniform"):
            self._expect(KIND_OP, "(")
            bound = self.expression()
            self._expect(KIND_OP, ")")
            self._expect(KIND_OP, ";")
            return Uniform(bound, name)
        if self._match(KIND_KEYWORD, "flip"):
            self._expect(KIND_OP, "(")
            prob = self.expression()
            self._expect(KIND_OP, ")")
            self._expect(KIND_OP, ";")
            return Choice(prob, Assign(name, True), Assign(name, False))
        raise ParseError(
            "expected 'uniform' or 'flip' after '<~', found %r"
            % (token.text or "<eof>"),
            token.line,
            token.column,
        )

    # -- expressions -----------------------------------------------------

    def expression(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        expr = self._and()
        while self._check_op("||") or self._check(KIND_KEYWORD, "or"):
            self._advance()
            expr = _fold(BinOp("or", expr, self._and()))
        return expr

    def _and(self) -> Expr:
        expr = self._comparison()
        while self._check_op("&&") or self._check(KIND_KEYWORD, "and"):
            self._advance()
            expr = _fold(BinOp("and", expr, self._comparison()))
        return expr

    def _comparison(self) -> Expr:
        expr = self._additive()
        while any(self._check_op(op) for op in _CMP_OPS):
            op = self._advance().text
            expr = _fold(BinOp(op, expr, self._additive()))
        return expr

    def _additive(self) -> Expr:
        expr = self._multiplicative()
        while any(self._check_op(op) for op in _ADD_OPS):
            op = self._advance().text
            expr = _fold(BinOp(op, expr, self._multiplicative()))
        return expr

    def _multiplicative(self) -> Expr:
        expr = self._unary()
        while any(self._check_op(op) for op in _MUL_OPS):
            op = self._advance().text
            expr = _fold(BinOp(op, expr, self._unary()))
        return expr

    def _unary(self) -> Expr:
        if self._check_op("!") or self._check(KIND_KEYWORD, "not"):
            self._advance()
            return _fold(UnOp("not", self._unary()))
        if self._check_op("-"):
            self._advance()
            return _fold(UnOp("-", self._unary()))
        return self._atom()

    def _atom(self) -> Expr:
        token = self._peek()
        if self._match(KIND_KEYWORD, "true"):
            return Lit(True)
        if self._match(KIND_KEYWORD, "false"):
            return Lit(False)
        if token.kind == KIND_INT:
            self._advance()
            return Lit(int(token.text))
        if token.kind == KIND_IDENT:
            name = self._advance().text
            if self._match(KIND_OP, "("):
                args = []
                if not self._check(KIND_OP, ")"):
                    args.append(self.expression())
                    while self._match(KIND_OP, ","):
                        args.append(self.expression())
                self._expect(KIND_OP, ")")
                if name not in builtins.TABLE:
                    raise ParseError(
                        "unknown builtin %r" % name, token.line, token.column
                    )
                try:
                    return Call(name, args)
                except ValueError as exc:
                    raise ParseError(str(exc), token.line, token.column)
            return Var(name)
        if self._match(KIND_OP, "("):
            expr = self.expression()
            self._expect(KIND_OP, ")")
            return expr
        raise ParseError(
            "expected an expression, found %r" % (token.text or "<eof>"),
            token.line,
            token.column,
        )

    def _check_op(self, text: str) -> bool:
        return self._check(KIND_OP, text)


def _fold(expr: Expr) -> Expr:
    """Reduce operations on literals to literals (constant folding).

    Folding is skipped when evaluation would fail (e.g. division by zero),
    leaving the error to evaluation time as the dynamic semantics dictates.
    """
    if isinstance(expr, BinOp):
        if isinstance(expr.lhs, Lit) and isinstance(expr.rhs, Lit):
            try:
                return Lit(expr.eval(State.empty()))
            except (EvalError, TypeError):
                return expr
        return expr
    if isinstance(expr, UnOp) and isinstance(expr.arg, Lit):
        try:
            return Lit(expr.eval(State.empty()))
        except (EvalError, TypeError):
            return expr
    return expr


def fold_constants_expr(expr: Expr) -> Expr:
    """Recursively fold literal arithmetic inside an expression."""
    if isinstance(expr, BinOp):
        return _fold(
            BinOp(
                expr.op,
                fold_constants_expr(expr.lhs),
                fold_constants_expr(expr.rhs),
            )
        )
    if isinstance(expr, UnOp):
        return _fold(UnOp(expr.op, fold_constants_expr(expr.arg)))
    if isinstance(expr, Call):
        return Call(expr.func, [fold_constants_expr(a) for a in expr.args])
    return expr


def fold_constants(command: Command) -> Command:
    """Recursively fold literal arithmetic inside a command.

    ``parse(pretty(c)) == fold_constants(c)`` for every opaque-free
    command ``c`` -- the round-trip property tested by the suite.
    """
    from repro.lang.syntax import Seq

    if isinstance(command, Skip):
        return command
    if isinstance(command, Assign):
        return Assign(command.name, fold_constants_expr(command.expr))
    if isinstance(command, Seq):
        return Seq(fold_constants(command.first), fold_constants(command.second))
    if isinstance(command, Observe):
        return Observe(fold_constants_expr(command.pred))
    if isinstance(command, Ite):
        return Ite(
            fold_constants_expr(command.cond),
            fold_constants(command.then),
            fold_constants(command.orelse),
        )
    if isinstance(command, Choice):
        return Choice(
            fold_constants_expr(command.prob),
            fold_constants(command.left),
            fold_constants(command.right),
        )
    if isinstance(command, Uniform):
        return Uniform(fold_constants_expr(command.range_expr), command.name)
    if isinstance(command, While):
        return While(
            fold_constants_expr(command.cond), fold_constants(command.body)
        )
    raise TypeError("not a command: %r" % (command,))


def reassociate_seq(command: Command) -> Command:
    """Right-associate and flatten nested ``Seq`` chains.

    ``Seq`` is semantically associative (wp composes functionally), and
    the parser always produces right-nested sequences; this normalizer
    maps any equivalent nesting onto that shape.
    """
    from repro.lang.syntax import Seq

    def flatten(c, acc):
        if isinstance(c, Seq):
            flatten(c.first, acc)
            flatten(c.second, acc)
        else:
            acc.append(_reassociate_children(c))
        return acc

    parts = flatten(command, [])
    return seq(parts)


def _reassociate_children(command: Command) -> Command:
    if isinstance(command, Ite):
        return Ite(
            command.cond,
            reassociate_seq(command.then),
            reassociate_seq(command.orelse),
        )
    if isinstance(command, Choice):
        return Choice(
            command.prob,
            reassociate_seq(command.left),
            reassociate_seq(command.right),
        )
    if isinstance(command, While):
        return While(command.cond, reassociate_seq(command.body))
    return command


def canonicalize(command: Command) -> Command:
    """The parser's canonical form: right-nested sequences with folded
    literal arithmetic.  ``parse_program(pretty(c)) == canonicalize(c)``
    for every opaque-free command ``c``."""
    return fold_constants(reassociate_seq(command))


def parse_program(source: str) -> Command:
    """Parse a whole program (a statement sequence) from source text."""
    return _Parser(tokenize(source)).program()


def parse_program_located(source: str):
    """Parse a program, also returning a location table mapping
    ``id(statement-node)`` to the 1-based ``(line, column)`` of the
    statement's first token.

    The table's keys are object identities of the returned AST's nodes;
    it is only meaningful for that exact AST (normalization rebuilds
    nodes), which is why the analyzer threads it alongside the command
    rather than storing it on the (immutable, structurally-hashed)
    nodes themselves.
    """
    parser = _Parser(tokenize(source), track_locations=True)
    command = parser.program()
    return command, _LocationTable(parser.locations, parser._pins)


class _LocationTable(dict):
    """A ``dict`` of ``id(node) -> (line, column)`` that keeps the noted
    nodes alive (so ids are never recycled while the table is used)."""

    def __init__(self, mapping, pins):
        dict.__init__(self, mapping)
        self._pins = list(pins)


def parse_expr(source: str) -> Expr:
    """Parse a single expression from source text."""
    parser = _Parser(tokenize(source))
    expr = parser.expression()
    token = parser._peek()
    if token.kind != KIND_EOF:
        raise ParseError(
            "trailing input after expression: %r" % token.text,
            token.line,
            token.column,
        )
    return expr
