"""Bitstring utilities: prefixes and dyadic encodings (Figure 6a).

A finite bitstring ``omega`` names both the basic set ``B(omega)`` of
bitstreams extending it and the dyadic interval ``I(omega)`` of the unit
interval, under the bisection scheme: bit ``0`` selects the left half,
bit ``1`` the right half (so e.g. "01" names [1/4, 1/2)).
"""

from fractions import Fraction
from typing import List, Sequence, Tuple


def is_prefix(prefix: Sequence[bool], stream: Sequence[bool]) -> bool:
    """The prefix order on bitstrings: ``prefix <= stream``."""
    if len(prefix) > len(stream):
        return False
    return all(p == s for p, s in zip(prefix, stream))


def bits_to_fraction(bits: Sequence[bool]) -> Fraction:
    """Left endpoint of the dyadic interval ``I(bits)``.

    ``I(bits) = [value, value + 2^-len(bits))`` under bisection.
    """
    value = Fraction(0)
    width = Fraction(1)
    for bit in bits:
        width /= 2
        if bit:
            value += width
    return value


def bits_to_int(bits: Sequence[bool]) -> int:
    """Big-endian integer value of a bitstring."""
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def int_to_bits(value: int, width: int) -> List[bool]:
    """Big-endian ``width``-bit encoding of ``value``."""
    if value < 0 or value >= (1 << width):
        raise ValueError("%d does not fit in %d bits" % (value, width))
    return [bool((value >> (width - 1 - i)) & 1) for i in range(width)]


def all_bitstrings(width: int) -> List[Tuple[bool, ...]]:
    """All ``2^width`` bitstrings of the given length, in dyadic order."""
    return [
        tuple(int_to_bits(value, width)) for value in range(1 << width)
    ]
