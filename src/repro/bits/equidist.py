"""Empirical uniform-distribution checks (Definition 4.1).

A sequence of bitstreams is Sigma^0_1-uniformly distributed when the
relative frequency of landing in any Sigma^0_1 set converges to its
measure.  Testing all such sets is impossible; we provide

- :func:`empirical_discrepancy` -- max deviation |freq - measure| over a
  given finite family of Sigma^0_1 sets (the sampler's own preimage sets
  are the natural family, per Section 4.2), and
- :func:`star_discrepancy` -- the classical D* statistic of the induced
  points in [0, 1] (bitstreams map to reals via the bisection scheme),
  the standard quantitative measure of equidistribution; a u.d. sequence
  has D*_n -> 0, with expected O(sqrt(log log n / n)) fluctuation for
  i.i.d. uniforms.
"""

from fractions import Fraction
from typing import Iterable, List, Sequence

from repro.bits.measure import Sigma01
from repro.bits.streams import bits_to_fraction


def empirical_discrepancy(
    streams: Sequence[Sequence[bool]],
    sets: Iterable[Sigma01],
) -> Fraction:
    """Max |relative frequency - measure| over the given test sets."""
    n = len(streams)
    if n == 0:
        raise ValueError("need at least one bitstream")
    worst = Fraction(0)
    for test_set in sets:
        hits = sum(1 for stream in streams if test_set.contains(stream))
        deviation = abs(Fraction(hits, n) - test_set.measure)
        worst = max(worst, deviation)
    return worst


def star_discrepancy(points: Sequence[float]) -> float:
    """Exact star discrepancy D*_n of points in [0, 1].

    D*_n = sup_t |#{x_i < t}/n - t|; the supremum is attained at the
    sample points, giving the classical O(n log n) formula
    ``max_i max(i/n - x_(i), x_(i) - (i-1)/n)``.
    """
    n = len(points)
    if n == 0:
        raise ValueError("need at least one point")
    ordered = sorted(points)
    worst = 0.0
    for i, x in enumerate(ordered, start=1):
        worst = max(worst, i / n - x, x - (i - 1) / n)
    return worst


def streams_to_points(streams: Sequence[Sequence[bool]]) -> List[float]:
    """Map bitstream prefixes to unit-interval points (bisection)."""
    return [float(bits_to_fraction(stream)) for stream in streams]
