"""Bit sources: the environment half of the ``GetBool`` event.

The OCaml shim of Figure 7 answers each ``VisF`` node with
``Random.bool ()``; these classes are the Python equivalents, plus the
instrumentation the evaluation needs:

- :class:`SystemBits` -- PRNG-backed (``random.Random``), the default;
- :class:`CountingBits` -- wraps any source and meters consumption (the
  ``mu_bit``/``sigma_bit`` columns of the paper's tables);
- :class:`ReplayBits` -- a finite, deterministic prefix; exhaustion
  raises :class:`BitsExhausted` (used to map samplers over Cantor-space
  prefixes and by the preimage computation);
- :class:`StreamBits` -- adapts any Python iterator of bits;
- :class:`ConstantBits` -- all-zeros / all-ones, for divergence tests.
"""

import random
from typing import Iterable, Iterator, List, Optional


class BitsExhausted(Exception):
    """A finite bit source ran out of bits."""


class BitSource:
    """Interface: ``next_bit()`` returns the next fair bit."""

    def next_bit(self) -> bool:
        raise NotImplementedError


class SystemBits(BitSource):
    """Bits from a seedable PRNG (``random.Random``).

    Correctness of extracted samplers relies on the source being
    Sigma^0_1-uniformly distributed (Definition 4.1); for the Mersenne
    Twister this is an empirical assumption, exactly as the paper assumes
    it of OCaml's ``Random`` (Section 5, "Trusted Computing Base").
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = random.Random(seed)

    def next_bit(self) -> bool:
        return self._rng.getrandbits(1) == 1


class CountingBits(BitSource):
    """Meter the number of bits drawn from an underlying source."""

    def __init__(self, inner: BitSource):
        self._inner = inner
        self.count = 0

    def next_bit(self) -> bool:
        self.count += 1
        return self._inner.next_bit()

    def take_count(self) -> int:
        """Return the bits consumed since the last call, and reset."""
        count = self.count
        self.count = 0
        return count


class ReplayBits(BitSource):
    """A fixed finite bit string; raises :class:`BitsExhausted` at the end.

    The ``consumed`` counter tells callers how long a prefix a sampler
    actually read -- the basic set ``B(omega)`` of Section 4.2.
    """

    def __init__(self, bits: Iterable[bool]):
        self._bits: List[bool] = [bool(b) for b in bits]
        self.consumed = 0

    def next_bit(self) -> bool:
        if self.consumed >= len(self._bits):
            raise BitsExhausted(
                "replay source exhausted after %d bits" % len(self._bits)
            )
        bit = self._bits[self.consumed]
        self.consumed += 1
        return bit

    @property
    def remaining(self) -> int:
        return len(self._bits) - self.consumed


class StreamBits(BitSource):
    """Bits from an arbitrary iterator (e.g. a recorded trace)."""

    def __init__(self, iterator: Iterator[bool]):
        self._iterator = iter(iterator)

    def next_bit(self) -> bool:
        try:
            return bool(next(self._iterator))
        except StopIteration:
            raise BitsExhausted("bit stream ended")


class ConstantBits(BitSource):
    """An infinite constant stream (degenerate, for divergence tests)."""

    def __init__(self, value: bool):
        self._value = bool(value)

    def next_bit(self) -> bool:
        return self._value
