"""The source of randomness (Section 4.1).

Samplers in the random bit model consume a stream of i.i.d. fair bits.
This subpackage provides the bit-source abstraction used by the driver
(PRNG-backed, replayable, counting, and exhaustible sources), bitstring
utilities, the measure space on Cantor space ``2^N`` (basic sets,
dyadic intervals, Sigma^0_1 unions), and empirical checks of
Sigma^0_1-uniform-distribution (Definition 4.1).
"""

from repro.bits.source import (
    BitSource,
    BitsExhausted,
    ConstantBits,
    CountingBits,
    ReplayBits,
    StreamBits,
    SystemBits,
)
from repro.bits.streams import (
    bits_to_fraction,
    bits_to_int,
    int_to_bits,
    is_prefix,
)
from repro.bits.measure import BasicSet, DyadicInterval, Sigma01
from repro.bits.equidist import (
    empirical_discrepancy,
    star_discrepancy,
)

__all__ = [
    "BasicSet",
    "BitSource",
    "BitsExhausted",
    "ConstantBits",
    "CountingBits",
    "DyadicInterval",
    "ReplayBits",
    "Sigma01",
    "StreamBits",
    "SystemBits",
    "bits_to_fraction",
    "bits_to_int",
    "empirical_discrepancy",
    "int_to_bits",
    "is_prefix",
    "star_discrepancy",
]
