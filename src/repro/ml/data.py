"""Synthetic MNIST-like dataset.

Ten classes of 8x8 "digits": each class has a fixed random prototype
pattern; examples are prototypes corrupted with Gaussian pixel noise.
Linearly separable enough for a small MLP to reach high accuracy in a
few epochs, which is all the Section 5.3 demo requires (the claim under
test is about the *sampler*, not the dataset).
"""

from typing import Tuple

import numpy as np


def synthetic_mnist(
    n_train: int = 2000,
    n_test: int = 500,
    n_classes: int = 10,
    side: int = 8,
    noise: float = 0.35,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(x_train, y_train, x_test, y_test)``.

    Features are flattened ``side x side`` images in [0, 1]; labels are
    integer classes.
    """
    rng = np.random.default_rng(seed)
    dim = side * side
    prototypes = rng.uniform(0.0, 1.0, size=(n_classes, dim))

    def make(count: int):
        labels = rng.integers(0, n_classes, size=count)
        images = prototypes[labels] + rng.normal(0.0, noise, size=(count, dim))
        return np.clip(images, 0.0, 1.0).astype(np.float64), labels

    x_train, y_train = make(n_train)
    x_test, y_test = make(n_test)
    return x_train, y_train, x_test, y_test
