"""A minimal multilayer perceptron with softmax cross-entropy.

One hidden ReLU layer, plain SGD updates; everything in numpy.  Kept
deliberately small -- the Section 5.3 demo measures the *sampler's*
effect on training, not model quality.
"""

from typing import List

import numpy as np


class MLP:
    """``input -> ReLU(hidden) -> softmax(classes)``."""

    def __init__(self, n_in: int, n_hidden: int, n_out: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / n_in)
        scale2 = np.sqrt(2.0 / n_hidden)
        self.w1 = rng.normal(0.0, scale1, size=(n_in, n_hidden))
        self.b1 = np.zeros(n_hidden)
        self.w2 = rng.normal(0.0, scale2, size=(n_hidden, n_out))
        self.b2 = np.zeros(n_out)

    def logits(self, x: np.ndarray) -> np.ndarray:
        hidden = np.maximum(x @ self.w1 + self.b1, 0.0)
        return hidden @ self.w2 + self.b2

    def loss_and_gradients(self, x: np.ndarray, y: np.ndarray):
        """Mean cross-entropy and parameter gradients for a batch."""
        batch = x.shape[0]
        hidden_pre = x @ self.w1 + self.b1
        hidden = np.maximum(hidden_pre, 0.0)
        logits = hidden @ self.w2 + self.b2
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        loss = -np.log(probs[np.arange(batch), y] + 1e-12).mean()

        dlogits = probs
        dlogits[np.arange(batch), y] -= 1.0
        dlogits /= batch
        dw2 = hidden.T @ dlogits
        db2 = dlogits.sum(axis=0)
        dhidden = dlogits @ self.w2.T
        dhidden[hidden_pre <= 0.0] = 0.0
        dw1 = x.T @ dhidden
        db1 = dhidden.sum(axis=0)
        return loss, (dw1, db1, dw2, db2)

    def apply_gradients(self, grads, learning_rate: float) -> None:
        dw1, db1, dw2, db2 = grads
        self.w1 -= learning_rate * dw1
        self.b1 -= learning_rate * db1
        self.w2 -= learning_rate * dw2
        self.b2 -= learning_rate * db2

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        predictions = self.logits(x).argmax(axis=1)
        return float((predictions == y).mean())
