"""Minibatch SGD with a pluggable batch-index sampler (Section 5.3).

``train`` selects each minibatch by drawing indices from a uniform
sampler over the training set -- either the verified ``ZarUniform``
(``sampler="zar"``) or the stdlib PRNG (``sampler="stdlib"``).  The
Section 5.3 claim is that swapping the verified sampler in has a
negligible effect on training; the benchmark compares the two runs.
"""

import random
from typing import List, NamedTuple, Optional

import numpy as np

from repro.ml.mlp import MLP
from repro.uniform.api import ZarUniform


class TrainResult(NamedTuple):
    """Loss trajectory and final test accuracy of one training run."""

    losses: List[float]
    test_accuracy: float
    sampler: str


def _index_source(sampler: str, n: int, seed: int):
    if sampler == "zar":
        die = ZarUniform(n, seed=seed, validate=False)
        return die.sample
    if sampler == "stdlib":
        rng = random.Random(seed)
        return lambda: rng.randrange(n)
    raise ValueError("unknown sampler %r (want 'zar' or 'stdlib')" % sampler)


def train(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    sampler: str = "zar",
    hidden: int = 32,
    batch_size: int = 32,
    steps: int = 300,
    learning_rate: float = 0.5,
    seed: int = 0,
    model: Optional[MLP] = None,
) -> TrainResult:
    """Train an MLP with the chosen batch-index sampler."""
    n, dim = x_train.shape
    classes = int(y_train.max()) + 1
    net = model if model is not None else MLP(dim, hidden, classes, seed=seed)
    draw = _index_source(sampler, n, seed)
    losses: List[float] = []
    for _ in range(steps):
        indices = np.array([draw() for _ in range(batch_size)])
        loss, grads = net.loss_and_gradients(x_train[indices], y_train[indices])
        net.apply_gradients(grads, learning_rate)
        losses.append(float(loss))
    return TrainResult(losses, net.accuracy(x_test, y_test), sampler)
