"""SGD training demo substrate (Section 5.3's TensorFlow/MNIST demo).

The paper demonstrates Zar as a high-assurance replacement for the
unverified uniform sampler inside SGD minibatch selection, observing no
effect on training.  TensorFlow and MNIST are unavailable offline, so
this substrate provides the closest synthetic equivalent (documented in
DESIGN.md): a pure-numpy MLP trained on a synthetic MNIST-like dataset,
with the batch-index sampler pluggable between the verified
``ZarUniform`` and the stdlib PRNG.
"""

from repro.ml.data import synthetic_mnist
from repro.ml.mlp import MLP
from repro.ml.sgd import TrainResult, train

__all__ = ["MLP", "TrainResult", "synthetic_mnist", "train"]
