"""Run telemetry: JSONL records of what sampled, how, and how fast.

See :mod:`repro.telemetry.record` for the schema and the
``ZAR_TELEMETRY_DIR`` knob.  The engine tuner
(:mod:`repro.engine.tuner`) and the ``perf-policy`` CI gate consume
these records.
"""

from repro.telemetry.record import (
    TELEMETRY_ENV,
    TELEMETRY_FILENAME,
    configure_telemetry,
    emit,
    make_run_record,
    read_records,
    telemetry_dir,
    telemetry_enabled,
    telemetry_path,
)

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_FILENAME",
    "configure_telemetry",
    "emit",
    "make_run_record",
    "read_records",
    "telemetry_dir",
    "telemetry_enabled",
    "telemetry_path",
]
