"""Per-run JSONL telemetry for the sampling engine.

Every routed sampling run (``collect_auto``, the CLI ``sample``
command, the benchmark harness) can append one JSON record to a
telemetry log: program digest, the :class:`~repro.engine.profile.
EngineProfile` that ran, wall-clock seconds, samples per second, bits
consumed, which cache tier served the artifact, and -- when a batch
lowering failed -- the stringified ``LoweringError`` that forced the
trampoline fallback.  The recorded-throughput tuner
(:mod:`repro.engine.tuner`) and the ``perf-policy`` CI gate both feed
on these records.

Telemetry is **off by default** and costs one dict check per run when
off.  Enable it with the ``ZAR_TELEMETRY_DIR`` environment variable or
:func:`configure_telemetry`; records append to
``<dir>/telemetry.jsonl``.  Appends are best-effort: an unwritable
directory never fails a sampling run.
"""

import json
import os
import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_FILENAME",
    "configure_telemetry",
    "emit",
    "make_run_record",
    "read_records",
    "telemetry_dir",
    "telemetry_enabled",
    "telemetry_path",
]

TELEMETRY_ENV = "ZAR_TELEMETRY_DIR"
TELEMETRY_FILENAME = "telemetry.jsonl"

#: Bump when the record schema changes incompatibly.
SCHEMA_VERSION = 1

_configured: Optional[str] = None
_explicitly_disabled = False
_lock = threading.Lock()


def configure_telemetry(directory: Optional[str]) -> None:
    """Set (or, with ``None``, clear) the telemetry directory in-process.

    An explicit ``configure_telemetry(None)`` disables telemetry even
    when ``ZAR_TELEMETRY_DIR`` is set -- tests use this to isolate
    themselves from the environment.
    """
    global _configured, _explicitly_disabled
    with _lock:
        _configured = directory
        _explicitly_disabled = directory is None


def telemetry_dir() -> Optional[str]:
    """The active telemetry directory, or ``None`` when disabled."""
    if _configured is not None:
        return _configured
    if _explicitly_disabled:
        return None
    return os.environ.get(TELEMETRY_ENV) or None


def telemetry_enabled() -> bool:
    return telemetry_dir() is not None


def telemetry_path() -> Optional[str]:
    directory = telemetry_dir()
    if directory is None:
        return None
    return os.path.join(directory, TELEMETRY_FILENAME)


def make_run_record(
    digest: Optional[str],
    profile: Optional[Dict[str, object]],
    n: int,
    seconds: float,
    engine: str,
    backend: Optional[str] = None,
    bits_total: Optional[int] = None,
    cache_source: Optional[str] = None,
    fallback_reason: Optional[str] = None,
    table_rows: int = 0,
    feature_bucket: Optional[str] = None,
    kind: str = "collect",
    kernel_cache: Optional[str] = None,
    kernel_compile_ms: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble one schema-stable run record (not yet written).

    ``kernel_cache``/``kernel_compile_ms`` describe the native
    backend's kernel resolution (cache tier served, and compile time
    when the C compiler actually ran); both stay ``None`` on every
    other backend.  The addition is schema-compatible: consumers key on
    known fields, so no version bump.
    """
    samples_per_sec = (n / seconds) if seconds > 0 else None
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "timestamp": time.time(),
        "digest": digest,
        "profile": profile,
        "engine": engine,
        "backend": backend,
        "n": n,
        "seconds": seconds,
        "samples_per_sec": samples_per_sec,
        "bits_total": bits_total,
        "cache_source": cache_source,
        "fallback_reason": fallback_reason,
        "table_rows": table_rows,
        "feature_bucket": feature_bucket,
        "kernel_cache": kernel_cache,
        "kernel_compile_ms": kernel_compile_ms,
    }


def emit(record: Dict[str, object]) -> Optional[str]:
    """Append ``record`` as one JSONL line; returns the path written.

    No-op (returning ``None``) when telemetry is disabled or the
    directory is unwritable -- sampling never fails on telemetry.
    """
    path = telemetry_path()
    if path is None:
        return None
    try:
        line = json.dumps(record, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        return None
    try:
        with _lock:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "a") as handle:
                handle.write(line + "\n")
    except OSError:
        return None
    return path


def read_records(path: Optional[str] = None) -> List[Dict[str, object]]:
    """Parse a telemetry JSONL file (default: the active log).

    Skips malformed lines (a crashed writer may leave a torn tail) so
    analysis over a long-lived log never dies on one bad record.
    """
    target = path if path is not None else telemetry_path()
    if target is None or not os.path.exists(target):
        return []
    records: List[Dict[str, object]] = []
    with open(target) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records
