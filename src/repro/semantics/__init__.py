"""Conditional weakest pre-expectation semantics (Section 2.2).

Implements the expectation transformers ``wp_b``/``wlp_b`` of
Definitions 2.2/2.3 and ``cwp`` of Definition 2.4 over exact extended
nonnegative rationals, with two loop strategies:

- **exact**: when a loop's reachable state space is finite, its least (wp)
  or greatest (wlp) fixpoint is the solution of a linear system over Q,
  solved exactly by Gaussian elimination (``repro.semantics.linsolve``);
- **iterate**: Kleene iteration of the loop functional with convergence
  detection -- every iterate is a sound monotone bound (lower for wp,
  upper for wlp).

The same engine is reused by the choice-fix tree semantics
(:mod:`repro.cftree.semantics`), which is what makes the compiler
correctness checks (Theorem 3.7) exact.
"""

from repro.semantics.extreal import ExtReal, INFINITY
from repro.semantics.fixpoint import (
    ConvergenceError,
    LoopOptions,
    StateSpaceExceeded,
)
from repro.semantics.expectation import (
    bounded_expectation,
    const_expectation,
    indicator,
    lift_expectation,
)
from repro.semantics.wp import wlp, wp
from repro.semantics.cwp import ConditioningError, cwp, invariant_sum_check
from repro.semantics.ert import ert
from repro.semantics.chain import LoopChain, extract_chain

__all__ = [
    "LoopChain",
    "ert",
    "extract_chain",
    "ConditioningError",
    "ConvergenceError",
    "ExtReal",
    "INFINITY",
    "LoopOptions",
    "StateSpaceExceeded",
    "bounded_expectation",
    "const_expectation",
    "cwp",
    "indicator",
    "invariant_sum_check",
    "lift_expectation",
    "wlp",
    "wp",
]
