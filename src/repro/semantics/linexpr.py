"""Linear expressions over unknowns, with values in a base algebra.

A :class:`LinExpr` is ``const + sum_i q_i * X_i`` where the ``q_i`` are
nonnegative rational coefficients, the ``X_i`` are :class:`Unknown` tags
(one per reachable loop-head state in the exact loop solver), and ``const``
lives in an arbitrary base algebra (extended reals, or nested linear
expressions for nested loops).

Expectation transformers are linear in the post-expectation, so evaluating
a loop body's wp with symbolic post-expectation values produces exactly
these objects; the loop's fixpoint is then the solution of the resulting
linear system (:mod:`repro.semantics.linsolve`).
"""

import itertools
from fractions import Fraction
from typing import Dict


class Unknown:
    """A fresh symbolic unknown (identity-based, with a debug label)."""

    __slots__ = ("uid", "label")

    _counter = itertools.count()

    def __init__(self, label: str = ""):
        object.__setattr__(self, "uid", next(Unknown._counter))
        object.__setattr__(self, "label", label)

    def __setattr__(self, *_):
        raise AttributeError("Unknown is immutable")

    def __repr__(self):
        return "X%d%s" % (self.uid, "[%s]" % self.label if self.label else "")


class LinExpr:
    """``const + sum q_i * X_i`` with nonnegative rational coefficients."""

    __slots__ = ("const", "coeffs")

    def __init__(self, const, coeffs: Dict[Unknown, Fraction]):
        object.__setattr__(self, "const", const)
        object.__setattr__(
            self, "coeffs", {x: q for x, q in coeffs.items() if q != 0}
        )

    def __setattr__(self, *_):
        raise AttributeError("LinExpr is immutable")

    @staticmethod
    def unknown(x: Unknown, base_zero) -> "LinExpr":
        """The expression ``1 * x`` (constant part = base algebra zero)."""
        return LinExpr(base_zero, {x: Fraction(1)})

    def add(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        for x, q in other.coeffs.items():
            coeffs[x] = coeffs.get(x, Fraction(0)) + q
        return LinExpr(_add_const(self.const, other.const), coeffs)

    def scale(self, q: Fraction) -> "LinExpr":
        if q == 0:
            return LinExpr(_scale_const(Fraction(0), self.const), {})
        return LinExpr(
            _scale_const(q, self.const),
            {x: c * q for x, c in self.coeffs.items()},
        )

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __eq__(self, other):
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.const == other.const and self.coeffs == other.coeffs

    def __hash__(self):
        return hash((repr(self.const), tuple(sorted(
            (x.uid, q) for x, q in self.coeffs.items()
        ))))

    def __repr__(self):
        parts = [repr(self.const)]
        parts += ["%s*%r" % (q, x) for x, q in sorted(
            self.coeffs.items(), key=lambda item: item[0].uid
        )]
        return "LinExpr(%s)" % " + ".join(parts)


def _add_const(a, b):
    """Add base-algebra constants (ExtReal or nested LinExpr)."""
    if isinstance(a, LinExpr):
        return a.add(b)
    return a + b


def _scale_const(q: Fraction, v):
    """Scale a base-algebra constant by a nonnegative rational.

    Both ExtReal and (nested) LinExpr constants expose ``.scale``.
    """
    return v.scale(q)
