"""Value algebras for the expectation transformers.

``wp``/``twp`` only ever combine post-expectation values with three
operations: addition, scaling by a nonnegative rational, and injection of
rational constants.  Abstracting those operations into an *algebra* lets
the same structural evaluator compute

- concrete expectations (algebra = extended nonnegative rationals), and
- symbolic expectations that are linear in a set of unknowns (algebra =
  linear expressions over a base algebra), which is how loops with finite
  reachable state spaces are solved exactly: one unknown per reachable
  state, one linear equation per loop unfolding.

Nesting is free: a loop inside a loop is solved over linear expressions
whose constants are themselves linear expressions.
"""

from fractions import Fraction

from repro.semantics import extreal
from repro.semantics.extreal import ExtReal
from repro.semantics.linexpr import LinExpr


class ExtRealAlgebra:
    """The base algebra: extended nonnegative rationals."""

    @staticmethod
    def zero() -> ExtReal:
        return extreal.ZERO

    @staticmethod
    def one() -> ExtReal:
        return extreal.ONE

    @staticmethod
    def infinity() -> ExtReal:
        return extreal.INFINITY

    @staticmethod
    def add(a: ExtReal, b: ExtReal) -> ExtReal:
        return a + b

    @staticmethod
    def scale(q: Fraction, v: ExtReal) -> ExtReal:
        return v.scale(q)

    @staticmethod
    def from_scalar(q) -> ExtReal:
        return ExtReal.of(q)

    @staticmethod
    def is_symbolic() -> bool:
        return False


EXT_REAL = ExtRealAlgebra()


class LinExprAlgebra:
    """Linear expressions over a base algebra (see :mod:`linexpr`)."""

    def __init__(self, base):
        self.base = base

    def zero(self) -> LinExpr:
        return LinExpr(self.base.zero(), {})

    def one(self) -> LinExpr:
        return LinExpr(self.base.one(), {})

    def infinity(self) -> LinExpr:
        return LinExpr(self.base.infinity(), {})

    @staticmethod
    def add(a: LinExpr, b: LinExpr) -> LinExpr:
        return a.add(b)

    @staticmethod
    def scale(q: Fraction, v: LinExpr) -> LinExpr:
        return v.scale(q)

    def from_scalar(self, q) -> LinExpr:
        return LinExpr(self.base.from_scalar(q), {})

    def lift(self, v) -> LinExpr:
        """Inject a base-algebra value as a constant linear expression."""
        return LinExpr(v, {})

    @staticmethod
    def is_symbolic() -> bool:
        return True
