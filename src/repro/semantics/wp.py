"""The weakest (liberal) pre-expectation transformers (Definitions 2.2/2.3).

``wp_b c f sigma`` is defined by structural recursion on ``c``:

====================  ==================================================
``skip``              ``f``
``x <- e``            ``f[x/e]``
``observe e``         ``[e] * f + [not e and b]``
``c1; c2``            ``wp_b c1 (wp_b c2 f)``
``if e ...``          ``[e] * wp_b c1 f + [not e] * wp_b c2 f``
``{c1} [p] {c2}``     ``p * wp_b c1 f + (1-p) * wp_b c2 f``
``uniform e x``       ``1/e(sigma) * sum_i f(sigma[x -> i])`` (binding form)
``while e do c``      ``sup_n F^n 0``, ``F g = [e] * wp_b c g + [not e] * f``
====================  ==================================================

``wlp_b`` replaces the ``while`` supremum by the infimum of ``F^n 1`` and
restricts ``f`` to bounded expectations.  The Boolean parameter ``b``
(``flag`` below) controls whether observation-failure mass is counted,
exactly as in the paper's generalized transformers; the classic wp/wlp are
``b = false``.

The evaluator is generic over a value algebra so the exact loop solver can
run it with symbolic post-expectation values (see :mod:`fixpoint`).
"""

from fractions import Fraction
from typing import Callable

from repro.lang.errors import ProbabilityRangeError, UniformRangeError
from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.lang.values import as_bool, as_fraction, as_int
from repro.semantics.algebra import EXT_REAL
from repro.semantics.expectation import bounded_expectation, lift_expectation
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import DEFAULT_OPTIONS, LoopOptions, solve_loop


def wp(
    command: Command,
    f: Callable[[State], object],
    sigma: State = None,
    flag: bool = False,
    options: LoopOptions = DEFAULT_OPTIONS,
):
    """``wp_b command f`` -- total-correctness pre-expectation.

    With ``sigma`` given, returns the :class:`ExtReal` value at that state;
    otherwise returns the pre-expectation as a function of the state.
    """
    f = lift_expectation(f)
    if sigma is None:
        return lambda s: _eval(command, f, s, EXT_REAL, flag, False, options)
    return _eval(command, f, sigma, EXT_REAL, flag, False, options)


def wlp(
    command: Command,
    f: Callable[[State], object],
    sigma: State = None,
    flag: bool = False,
    options: LoopOptions = DEFAULT_OPTIONS,
):
    """``wlp_b command f`` -- partial-correctness (liberal) variant.

    Requires ``f <= 1`` pointwise; divergence contributes its full mass.
    """
    f = bounded_expectation(lift_expectation(f))
    if sigma is None:
        return lambda s: _eval(command, f, s, EXT_REAL, flag, True, options)
    return _eval(command, f, sigma, EXT_REAL, flag, True, options)


def _eval(command, f, sigma, alg, flag, liberal, options):
    """Structural evaluation of wp_b/wlp_b over algebra ``alg``.

    ``f`` maps states into ``alg``'s value type (callers at the top level
    always pass extended-real expectations; the loop solver passes
    symbolic continuations).
    """
    if isinstance(command, Skip):
        return f(sigma)
    if isinstance(command, Assign):
        return f(sigma.set(command.name, command.expr.eval(sigma)))
    if isinstance(command, Seq):
        first, second = command.first, command.second

        def rest(s):
            return _eval(second, f, s, alg, flag, liberal, options)

        return _eval(first, rest, sigma, alg, flag, liberal, options)
    if isinstance(command, Observe):
        if as_bool(command.pred.eval(sigma)):
            return f(sigma)
        return alg.one() if flag else alg.zero()
    if isinstance(command, Ite):
        branch = command.then if as_bool(command.cond.eval(sigma)) else command.orelse
        return _eval(branch, f, sigma, alg, flag, liberal, options)
    if isinstance(command, Choice):
        p = as_fraction(command.prob.eval(sigma))
        if not 0 <= p <= 1:
            raise ProbabilityRangeError(p, sigma)
        # Skipping a zero-probability branch avoids useless work (and is
        # semantically forced: its weight annihilates any value).
        if p == 1:
            return _eval(command.left, f, sigma, alg, flag, liberal, options)
        if p == 0:
            return _eval(command.right, f, sigma, alg, flag, liberal, options)
        left = _eval(command.left, f, sigma, alg, flag, liberal, options)
        right = _eval(command.right, f, sigma, alg, flag, liberal, options)
        return alg.add(alg.scale(p, left), alg.scale(1 - p, right))
    if isinstance(command, Uniform):
        n = as_int(command.range_expr.eval(sigma))
        if n <= 0:
            raise UniformRangeError(n, sigma)
        share = Fraction(1, n)
        total = alg.zero()
        for i in range(n):
            total = alg.add(total, alg.scale(share, f(sigma.set(command.name, i))))
        return total
    if isinstance(command, While):
        guard_expr, body = command.cond, command.body

        def guard(s):
            return as_bool(guard_expr.eval(s))

        def step(s, h, step_alg):
            return _eval(body, h, s, step_alg, flag, liberal, options)

        def mass_step(s, h, step_alg):
            # Pure transition mass: no failure constants (flag=False),
            # least-fixpoint inner loops.
            return _eval(body, h, s, step_alg, False, False, options)

        return solve_loop(
            init_state=sigma,
            guard=guard,
            step=step,
            exit_value=f,
            algebra=alg,
            greatest=liberal,
            options=options,
            mass_step=mass_step,
        )
    raise TypeError("not a command: %r" % (command,))


def wp_value(command, f, sigma, alg, flag, liberal, options) -> object:
    """Low-level entry point used by the verification harness and tests."""
    return _eval(command, f, sigma, alg, flag, liberal, options)


def iverson(pred_expr) -> Callable[[State], ExtReal]:
    """Expectation ``[e]`` for a boolean program expression ``e``."""
    from repro.semantics import extreal

    def f(sigma: State) -> ExtReal:
        return extreal.ONE if as_bool(pred_expr.eval(sigma)) else extreal.ZERO

    return f
