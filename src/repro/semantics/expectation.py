"""Expectations: functions from program states to extended reals.

Helpers for building the post-expectations ``f : Sigma -> R∞≥0`` consumed
by :func:`repro.semantics.wp.wp` and friends:

- :func:`indicator` lifts a predicate to its Iverson bracket ``[Q]``;
- :func:`const_expectation` builds a constant expectation;
- :func:`lift_expectation` adapts a user function returning plain numbers;
- :func:`bounded_expectation` checks the ``f <= 1`` side condition of
  the liberal transformer (Definition 2.3).
"""

from typing import Callable

from repro.lang.state import State
from repro.semantics import extreal
from repro.semantics.extreal import ExtReal


def indicator(pred: Callable[[State], bool]) -> Callable[[State], ExtReal]:
    """The Iverson bracket ``[pred]`` as an expectation."""

    def f(sigma: State) -> ExtReal:
        return extreal.ONE if pred(sigma) else extreal.ZERO

    return f


def const_expectation(value) -> Callable[[State], ExtReal]:
    """The constant expectation ``lambda _. value``."""
    v = ExtReal.of(value)

    def f(_sigma: State) -> ExtReal:
        return v

    return f


def lift_expectation(f: Callable[[State], object]) -> Callable[[State], ExtReal]:
    """Wrap a function returning int/Fraction/ExtReal into an expectation."""

    def g(sigma: State) -> ExtReal:
        return ExtReal.of(f(sigma))

    return g


def bounded_expectation(
    f: Callable[[State], ExtReal],
) -> Callable[[State], ExtReal]:
    """Check pointwise that ``f <= 1`` (the wlp domain restriction)."""

    def g(sigma: State) -> ExtReal:
        value = ExtReal.of(f(sigma))
        if not value <= extreal.ONE:
            raise ValueError(
                "wlp requires a bounded expectation; got %s at %s"
                % (value, sigma)
            )
        return value

    return g
