"""Conditional weakest pre-expectations (Definition 2.4).

``cwp c f = (wp_false c f) / (wlp_false c 1)``: the expected value of ``f``
over terminal states of ``c``, conditioned on all observations succeeding.
The denominator ``wlp_false c 1`` is the probability that the program does
*not* fail an observation (divergence counts as success, per the liberal
reading); programs that condition on contradictory observations have
denominator 0 and no posterior -- :class:`ConditioningError`.

Also provides the invariant-sum property checker of Section 2.2:
``wp_b c f + wlp_{not b} c (1 - f) = 1`` for bounded ``f``.
"""

from typing import Callable

from repro.lang.state import State
from repro.lang.syntax import Command
from repro.semantics.expectation import (
    const_expectation,
    lift_expectation,
)
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import DEFAULT_OPTIONS, LoopOptions
from repro.semantics.wp import wlp, wp


class ConditioningError(ZeroDivisionError):
    """The program conditions on a probability-zero event.

    Mirrors the side condition ``0 < wlp_false c 1 sigma`` of the
    end-to-end correctness theorem (Theorem 3.14): the compiled rejection
    sampler would restart forever.
    """


def cwp(
    command: Command,
    f: Callable[[State], object],
    sigma: State,
    options: LoopOptions = DEFAULT_OPTIONS,
) -> ExtReal:
    """``cwp command f`` at initial state ``sigma`` (Definition 2.4)."""
    numerator = wp(command, f, sigma, flag=False, options=options)
    denominator = wlp(command, const_expectation(1), sigma, flag=False,
                      options=options)
    if denominator == ExtReal(0):
        raise ConditioningError(
            "program conditions on a probability-zero event (wlp = 0)"
        )
    return numerator / denominator


def cwp_probability(
    command: Command,
    pred: Callable[[State], bool],
    sigma: State,
    options: LoopOptions = DEFAULT_OPTIONS,
) -> ExtReal:
    """Posterior probability of ``pred`` over terminal states."""
    from repro.semantics.expectation import indicator

    return cwp(command, indicator(pred), sigma, options)


def invariant_sum_check(
    command: Command,
    f: Callable[[State], object],
    sigma: State,
    flag: bool = False,
    options: LoopOptions = DEFAULT_OPTIONS,
) -> ExtReal:
    """Value of ``wp_b c f + wlp_{not b} c (1 - f)`` at ``sigma``.

    Section 2.2 states this equals 1 for every bounded ``f <= 1``; the
    verification suite checks it exactly on finite-state programs.
    """
    f = lift_expectation(f)

    def complement(s: State) -> ExtReal:
        return ExtReal(1) - f(s)

    total = wp(command, f, sigma, flag=flag, options=options)
    liberal = wlp(command, complement, sigma, flag=not flag, options=options)
    return total + liberal
