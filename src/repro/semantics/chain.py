"""Finite-state Markov-chain extraction from cpGCL loops.

The exact loop solver works by implicitly constructing the Markov chain
of a loop over its reachable state space; this module makes that chain
a first-class, inspectable object:

- :func:`extract_chain` -- reachable loop-head states, one-step
  transition probabilities between them, and per-state exit
  distributions (all exact rationals);
- :class:`LoopChain` -- queries on top: exit distribution from the
  initial state, expected iterations, termination probability, and the
  transient/recurrent structure via strongly connected components
  (networkx).

Useful both as a debugging aid for the inference engine and as an
analysis in its own right (e.g. the dueling-coins chain has 4 states
with uniform-ish structure; the bernoulli-tree rejection loops are
two-state chains).
"""

from fractions import Fraction
from typing import Dict, List, NamedTuple, Tuple

import networkx as nx

from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.lang.values import as_bool, as_fraction, as_int
from repro.semantics.fixpoint import StateSpaceExceeded


class LoopChain(NamedTuple):
    """The Markov chain induced by one ``while`` loop.

    ``transitions[s][s']`` is the probability of one body execution
    from loop state ``s`` ending at loop state ``s'``;
    ``exits[s][t]`` the probability of ending at guard-false state
    ``t``; ``fail[s]`` the observation-failure mass.  Rows satisfy
    ``sum(transitions[s]) + sum(exits[s]) + fail[s] = 1`` exactly.
    """

    init: State
    states: Tuple[State, ...]
    transitions: Dict[State, Dict[State, Fraction]]
    exits: Dict[State, Dict[State, Fraction]]
    fail: Dict[State, Fraction]

    def graph(self) -> "nx.DiGraph":
        """The loop-state transition graph (probabilities as weights)."""
        g = nx.DiGraph()
        g.add_nodes_from(self.states)
        for source, targets in self.transitions.items():
            for target, probability in targets.items():
                g.add_edge(source, target, weight=float(probability))
        return g

    def recurrent_classes(self) -> List[frozenset]:
        """SCCs with no internal leak: states the loop can never leave
        (probability-1 internal mass).  Nonempty iff the loop diverges
        with positive probability from some reachable state."""
        g = self.graph()
        closed = []
        for component in nx.strongly_connected_components(g):
            internal = all(
                sum(
                    self.transitions[s].get(t, Fraction(0))
                    for t in component
                ) == 1
                for s in component
            )
            if internal:
                closed.append(frozenset(component))
        return closed

    def termination_probability(self) -> Fraction:
        """Probability of leaving the loop (exit or observe-fail) from
        ``init``, by exact absorption solving."""
        index = {s: i for i, s in enumerate(self.states)}
        from repro.semantics.linsolve import solve_monotone

        n = len(self.states)
        matrix = [[Fraction(0)] * n for _ in range(n)]
        consts = []
        for s in self.states:
            for target, probability in self.transitions[s].items():
                matrix[index[s]][index[target]] = probability
            leak = sum(self.exits[s].values(), Fraction(0)) + self.fail[s]
            consts.append(leak)
        solution = solve_monotone(matrix, default_one=False)
        row = solution.coeffs[index[self.init]]
        total = solution.ones[index[self.init]]
        for j, q in enumerate(row):
            total += q * consts[j]
        return total

    def expected_iterations(self):
        """Expected body executions from ``init`` (Fraction, or None if
        the loop diverges with positive probability)."""
        if self.termination_probability() != 1:
            return None
        index = {s: i for i, s in enumerate(self.states)}
        from repro.semantics.linsolve import solve_monotone

        n = len(self.states)
        matrix = [[Fraction(0)] * n for _ in range(n)]
        for s in self.states:
            for target, probability in self.transitions[s].items():
                matrix[index[s]][index[target]] = probability
        solution = solve_monotone(matrix, default_one=False)
        row = solution.coeffs[index[self.init]]
        total = solution.ones[index[self.init]]
        for j, _ in enumerate(row):
            total += row[j] * Fraction(1)  # each state contributes 1 visit
        return total

    def exit_distribution(self) -> Dict[State, Fraction]:
        """Distribution over guard-false exit states from ``init``."""
        index = {s: i for i, s in enumerate(self.states)}
        from repro.semantics.linsolve import solve_monotone

        n = len(self.states)
        matrix = [[Fraction(0)] * n for _ in range(n)]
        for s in self.states:
            for target, probability in self.transitions[s].items():
                matrix[index[s]][index[target]] = probability
        solution = solve_monotone(matrix, default_one=False)
        weights = solution.coeffs[index[self.init]]
        result: Dict[State, Fraction] = {}
        for s in self.states:
            share = weights[index[s]]
            if share == 0:
                continue
            for target, probability in self.exits[s].items():
                result[target] = result.get(target, Fraction(0)) + share * probability
        return result


def extract_chain(
    loop: While, sigma: State, max_states: int = 10000
) -> LoopChain:
    """Explore the loop's reachable state space and build its chain."""
    if not isinstance(loop, While):
        raise TypeError("expected a While command")

    def guard(s: State) -> bool:
        return as_bool(loop.cond.eval(s))

    if not guard(sigma):
        return LoopChain(sigma, (sigma,), {sigma: {}}, {sigma: {}},
                         {sigma: Fraction(0)})

    states: List[State] = [sigma]
    seen = {sigma}
    transitions: Dict[State, Dict[State, Fraction]] = {}
    exits: Dict[State, Dict[State, Fraction]] = {}
    fail: Dict[State, Fraction] = {}
    frontier = 0
    while frontier < len(states):
        current = states[frontier]
        frontier += 1
        outcome = _distribute(loop.body, current)
        transitions[current] = {}
        exits[current] = {}
        fail[current] = outcome.fail
        for target, probability in outcome.mass.items():
            if guard(target):
                transitions[current][target] = probability
                if target not in seen:
                    if len(states) >= max_states:
                        raise StateSpaceExceeded(
                            "loop has more than %d reachable states"
                            % max_states
                        )
                    seen.add(target)
                    states.append(target)
            else:
                exits[current][target] = probability
    return LoopChain(sigma, tuple(states), transitions, exits, fail)


class _Outcome(NamedTuple):
    mass: Dict[State, Fraction]
    fail: Fraction


def _distribute(command: Command, sigma: State) -> _Outcome:
    """Exact terminal-state distribution of a *loop-free* body execution.

    Nested loops are not supported here (the chain abstraction flattens
    one loop level at a time); they raise :class:`StateSpaceExceeded` to
    signal that the caller should fall back to the generic solver.
    """
    if isinstance(command, Skip):
        return _Outcome({sigma: Fraction(1)}, Fraction(0))
    if isinstance(command, Assign):
        target = sigma.set(command.name, command.expr.eval(sigma))
        return _Outcome({target: Fraction(1)}, Fraction(0))
    if isinstance(command, Observe):
        if as_bool(command.pred.eval(sigma)):
            return _Outcome({sigma: Fraction(1)}, Fraction(0))
        return _Outcome({}, Fraction(1))
    if isinstance(command, Seq):
        first = _distribute(command.first, sigma)
        mass: Dict[State, Fraction] = {}
        fail = first.fail
        for middle, probability in first.mass.items():
            rest = _distribute(command.second, middle)
            fail += probability * rest.fail
            for target, share in rest.mass.items():
                mass[target] = mass.get(target, Fraction(0)) + probability * share
        return _Outcome(mass, fail)
    if isinstance(command, Ite):
        taken = command.then if as_bool(command.cond.eval(sigma)) else command.orelse
        return _distribute(taken, sigma)
    if isinstance(command, Choice):
        p = as_fraction(command.prob.eval(sigma))
        if p == 1:
            return _distribute(command.left, sigma)
        if p == 0:
            return _distribute(command.right, sigma)
        left = _distribute(command.left, sigma)
        right = _distribute(command.right, sigma)
        mass = {s: p * q for s, q in left.mass.items()}
        for s, q in right.mass.items():
            mass[s] = mass.get(s, Fraction(0)) + (1 - p) * q
        return _Outcome(mass, p * left.fail + (1 - p) * right.fail)
    if isinstance(command, Uniform):
        n = as_int(command.range_expr.eval(sigma))
        share = Fraction(1, n)
        mass = {}
        fail = Fraction(0)
        for i in range(n):
            branch = _distribute(Skip(), sigma.set(command.name, i))
            for s, q in branch.mass.items():
                mass[s] = mass.get(s, Fraction(0)) + share * q
            fail += share * branch.fail
        return _Outcome(mass, fail)
    if isinstance(command, While):
        raise StateSpaceExceeded(
            "nested loops are not supported by chain extraction"
        )
    raise TypeError("not a command: %r" % (command,))
