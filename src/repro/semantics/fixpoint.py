"""The shared loop-fixpoint engine.

Both the wp/wlp transformers on cpGCL (`while`, Definitions 2.2/2.3) and
the twp/twlp semantics of choice-fix trees (`Fix`, Definitions 3.2/3.3)
need the same object: the least (or, for the liberal variants, greatest)
fixpoint of a monotone affine functional

    h(s) = step(s, h)        if guard(s)
    h(s) = exit_value(s)     otherwise

evaluated at an initial state.  This module provides that computation with
two strategies:

- :func:`solve_exact` -- enumerate the loop-head states reachable through
  ``step`` (up to ``max_states``), introduce one linear unknown per state,
  and solve the resulting system exactly (:mod:`linsolve`).  Works over
  any value algebra, including symbolic ones (nested loops).

- :func:`solve_iterate` -- Kleene/value iteration from the bottom element
  (0 for least, 1 for greatest fixpoints) with convergence detection.
  Only available over the concrete extended-real algebra.  Iterates are
  monotone, so the result is a sound lower bound for wp and upper bound
  for wlp, within ``tol`` of the true value at detected convergence.

``solve_loop`` composes them according to :class:`LoopOptions`.
"""

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List

from repro.semantics.algebra import LinExprAlgebra
from repro.semantics.extreal import ExtReal
from repro.semantics.linexpr import LinExpr, Unknown
from repro.semantics.linsolve import SingularSystem, solve_monotone


class StateSpaceExceeded(Exception):
    """The loop's reachable state space exceeded ``max_states``."""


class ConvergenceError(Exception):
    """Kleene iteration failed to converge within ``max_rounds``."""


@dataclass(frozen=True)
class LoopOptions:
    """Strategy and budgets for loop fixpoints.

    strategy:
        ``"auto"`` tries the exact solver and falls back to iteration;
        ``"exact"`` / ``"iterate"`` force one strategy.
    max_states:
        Cap on reachable loop-head states for the exact solver.
    tol:
        Convergence tolerance for iteration (exact rational comparison).
    max_rounds:
        Iteration budget before raising :class:`ConvergenceError`.
    stable_rounds:
        Number of consecutive sub-``tol`` increments required to declare
        convergence (guards against slow plateaus).
    """

    strategy: str = "auto"
    max_states: int = 20000
    tol: Fraction = Fraction(1, 10**12)
    max_rounds: int = 200000
    stable_rounds: int = 3

    def __post_init__(self):
        if self.strategy not in ("auto", "exact", "iterate"):
            raise ValueError("unknown loop strategy %r" % (self.strategy,))


DEFAULT_OPTIONS = LoopOptions()


def solve_loop(
    init_state,
    guard: Callable,
    step: Callable,
    exit_value: Callable,
    algebra,
    greatest: bool,
    options: LoopOptions = DEFAULT_OPTIONS,
    mass_step: Callable = None,
):
    """Value at ``init_state`` of the loop fixpoint described above.

    ``step(s, h, alg)`` must evaluate one unfolding of the loop body from
    loop-head state ``s`` *over the value algebra* ``alg``, calling
    ``h(s')`` for the value at successor states (whether or not they
    satisfy the guard); ``h`` dispatches to a fresh unknown, to
    ``exit_value``, or to the previous iterate depending on the strategy.
    The exact strategy passes a symbolic (linear-expression) algebra, the
    iterative strategy the concrete one.  ``greatest`` selects
    greatest-fixpoint mode (wlp).  ``exit_value`` always produces values
    in the caller's ``algebra``.

    ``mass_step`` is the *pure transition-mass* variant of ``step`` used
    by the iterative strategy's convergence criterion: it must evaluate
    the body as a substochastic map (no constants injected mid-loop --
    i.e. a twp/wp with ``flag=False``).  When ``step`` already has that
    shape it may be omitted and is used for both purposes.
    """
    if not guard(init_state):
        return exit_value(init_state)
    symbolic = algebra.is_symbolic()
    if options.strategy == "iterate" and symbolic:
        raise ValueError("iteration is not defined over symbolic algebras")
    if options.strategy in ("auto", "exact"):
        try:
            return solve_exact(
                init_state, guard, step, exit_value, algebra, greatest, options
            )
        except (StateSpaceExceeded, SingularSystem):
            if options.strategy == "exact" or symbolic:
                raise
    return solve_iterate(
        init_state, guard, step, exit_value, algebra, greatest, options,
        mass_step=mass_step,
    )


def solve_exact(
    init_state,
    guard,
    step,
    exit_value,
    algebra,
    greatest: bool,
    options: LoopOptions = DEFAULT_OPTIONS,
):
    """Exact fixpoint via linear solving over the reachable state space."""
    lin = LinExprAlgebra(algebra)
    unknowns: Dict[object, Unknown] = {}
    order: List[object] = []
    equations: Dict[object, LinExpr] = {}

    def unknown_for(s):
        if s not in unknowns:
            if len(unknowns) >= options.max_states:
                raise StateSpaceExceeded(
                    "more than %d reachable loop states" % options.max_states
                )
            unknowns[s] = Unknown()
            order.append(s)
        return unknowns[s]

    def h(s):
        if guard(s):
            return LinExpr.unknown(unknown_for(s), algebra.zero())
        return lin.lift(exit_value(s))

    unknown_for(init_state)
    frontier = 0
    while frontier < len(order):
        s = order[frontier]
        frontier += 1
        value = step(s, h, lin)
        if not isinstance(value, LinExpr):
            value = lin.lift(value)
        equations[s] = value

    n = len(order)
    index = {unknowns[s]: i for i, s in enumerate(order)}
    matrix = [[Fraction(0)] * n for _ in range(n)]
    consts = []
    for i, s in enumerate(order):
        eq = equations[s]
        for x, q in eq.coeffs.items():
            matrix[i][index[x]] = q
        consts.append(eq.const)

    solution = solve_monotone(matrix, default_one=greatest)

    def unknown_value(i):
        value = algebra.scale(solution.ones[i], algebra.one())
        for j, q in enumerate(solution.coeffs[i]):
            if q != 0:
                value = algebra.add(value, algebra.scale(q, consts[j]))
        return value

    values = [unknown_value(i) for i in range(n)]
    if not greatest and not _is_fixpoint(matrix, consts, values, algebra):
        # The finite candidate is inconsistent: a divergent class keeps
        # accumulating constant inflow (e.g. the +1 ticks of an expected
        # running time), so the least fixpoint over the extended reals
        # is +infinity -- and the queried state reaches that class with
        # positive probability (exploration only follows positive-mass
        # transitions).
        return algebra.infinity()
    return values[0]


def _is_fixpoint(matrix, consts, values, algebra) -> bool:
    """Check X = C X + d holds for the candidate solution (exactly)."""
    n = len(values)
    for i in range(n):
        rhs = consts[i]
        for j in range(n):
            q = matrix[i][j]
            if q != 0:
                rhs = algebra.add(rhs, algebra.scale(q, values[j]))
        if values[i] != rhs:
            return False
    return True


def solve_iterate(
    init_state,
    guard,
    step,
    exit_value,
    algebra,
    greatest: bool,
    options: LoopOptions = DEFAULT_OPTIONS,
    mass_step=None,
):
    """Kleene/value iteration over the discovered state space.

    Maintains the current iterate on every loop-head state discovered so
    far; undiscovered states read as the bottom element (0 for least, 1
    for greatest fixpoints), which preserves monotonicity of the sequence.

    Convergence criterion: alongside the expectation iterate we iterate
    the *residual loop mass* ``m_n(s)`` -- the probability of still being
    inside the loop after ``n`` unfoldings (for observe-carrying bodies,
    failure exits the loop and sheds its mass, which only tightens the
    bound).  For post-expectations bounded by ``B`` the distance to the
    fixpoint at the initial state is at most ``m_n(init) * B``, so we stop
    once ``m_n(init) <= tol`` and the value has been stable for
    ``stable_rounds`` rounds.  Almost-surely terminating loops (the class
    the paper compiles, Section 1.3) have ``m_n -> 0``; loops that retain
    mass forever exhaust ``max_rounds`` and raise
    :class:`ConvergenceError` (the exact strategy handles those when the
    state space is finite).
    """
    if algebra.is_symbolic():
        raise ValueError("iteration requires the concrete algebra")
    if mass_step is None:
        mass_step = step
    bottom = algebra.one() if greatest else algebra.zero()
    one = algebra.one()
    zero = algebra.zero()
    values: Dict[object, ExtReal] = {init_state: bottom}
    masses: Dict[object, ExtReal] = {init_state: one}
    pending: List[object] = []
    exit_cache: Dict[object, ExtReal] = {}

    def h(s):
        if guard(s):
            if s not in values:
                pending.append(s)
                return bottom
            return values[s]
        if s not in exit_cache:
            exit_cache[s] = exit_value(s)
        return exit_cache[s]

    def h_mass(s):
        if guard(s):
            # Undiscovered states conservatively hold full mass.
            return masses.get(s, one)
        return zero

    tol = ExtReal(options.tol)
    stable = 0
    previous = bottom
    for _ in range(options.max_rounds):
        new_values = {}
        new_masses = {}
        for s in values:
            new_values[s] = step(s, h, algebra)
            new_masses[s] = mass_step(s, h_mass, algebra)
        for s in pending:
            new_values.setdefault(s, bottom)
            new_masses.setdefault(s, one)
        pending.clear()
        values = new_values
        masses = new_masses
        current = values[init_state]
        if current.distance(previous) <= tol:
            stable += 1
            if stable >= options.stable_rounds and masses[init_state] <= tol:
                return current
        else:
            stable = 0
        previous = current
    raise ConvergenceError(
        "loop iteration did not converge within %d rounds "
        "(does the loop terminate almost surely?)" % options.max_rounds
    )
