"""Extended nonnegative rationals: the expectation value domain.

Expectations in the paper take values in ``R>=0`` extended with +infinity
(written ``R∞≥0``).  We restrict to extended nonnegative *rationals*, which
suffices because cpGCL probabilities are rational (Section 1.3) and lets
every semantic computation be exact.

The multiplication convention ``0 * inf = 0`` is the standard one from
measure theory and is required by the wp rules (an Iverson bracket of 0
must annihilate an infinite branch expectation).
"""

from fractions import Fraction
from typing import Union

_NumberLike = Union[int, Fraction, "ExtReal"]


class ExtReal:
    """An element of R∞≥0 ∩ (Q ∪ {+∞}): a nonnegative rational or +∞."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, Fraction, None]):
        """``value`` is a nonnegative int/Fraction, or ``None`` for +∞."""
        if value is not None:
            if isinstance(value, bool):
                raise TypeError("booleans are not extended reals")
            value = Fraction(value)
            if value < 0:
                raise ValueError("extended reals are nonnegative: %s" % value)
        object.__setattr__(self, "_value", value)

    def __setattr__(self, *_):
        raise AttributeError("ExtReal is immutable")

    # -- constructors ----------------------------------------------------

    @staticmethod
    def of(x: _NumberLike) -> "ExtReal":
        if isinstance(x, ExtReal):
            return x
        return ExtReal(x)

    # -- inspection ------------------------------------------------------

    @property
    def is_infinite(self) -> bool:
        return self._value is None

    @property
    def is_finite(self) -> bool:
        return self._value is not None

    def as_fraction(self) -> Fraction:
        """The underlying rational; raises on +∞."""
        if self._value is None:
            raise OverflowError("infinite extended real has no fraction")
        return self._value

    def __float__(self) -> float:
        return float("inf") if self._value is None else float(self._value)

    # -- arithmetic ------------------------------------------------------

    def __add__(self, other: _NumberLike) -> "ExtReal":
        other = ExtReal.of(other)
        if self._value is None or other._value is None:
            return INFINITY
        return ExtReal(self._value + other._value)

    __radd__ = __add__

    def __mul__(self, other: _NumberLike) -> "ExtReal":
        other = ExtReal.of(other)
        if self._value == 0 or other._value == 0:
            return ZERO  # 0 * inf = 0
        if self._value is None or other._value is None:
            return INFINITY
        return ExtReal(self._value * other._value)

    __rmul__ = __mul__

    def __truediv__(self, other: _NumberLike) -> "ExtReal":
        other = ExtReal.of(other)
        if other._value == 0:
            raise ZeroDivisionError("division of extended real by zero")
        if other._value is None:
            if self._value is None:
                raise ArithmeticError("inf / inf is undefined")
            return ZERO
        if self._value is None:
            return INFINITY
        return ExtReal(self._value / other._value)

    def __sub__(self, other: _NumberLike) -> "ExtReal":
        """Truncated subtraction; defined when the result is nonnegative.

        Used only for convergence measurement and for the invariant-sum
        property ``wp + wlp = 1`` where the result is known nonnegative.
        """
        other = ExtReal.of(other)
        if other._value is None:
            raise ArithmeticError("cannot subtract infinity")
        if self._value is None:
            return INFINITY
        return ExtReal(self._value - other._value)

    def scale(self, q: Fraction) -> "ExtReal":
        """Multiply by a nonnegative rational scalar (0 * inf = 0)."""
        if q < 0:
            raise ValueError("scalars must be nonnegative: %s" % q)
        if q == 0:
            return ZERO
        if self._value is None:
            return INFINITY
        return ExtReal(self._value * q)

    # -- order -----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, (int, Fraction)) and not isinstance(other, bool):
            other = ExtReal(other)
        if not isinstance(other, ExtReal):
            return NotImplemented
        return self._value == other._value

    def __hash__(self) -> int:
        return hash(("ExtReal", self._value))

    def __le__(self, other: _NumberLike) -> bool:
        other = ExtReal.of(other)
        if self._value is None:
            return other._value is None
        if other._value is None:
            return True
        return self._value <= other._value

    def __lt__(self, other: _NumberLike) -> bool:
        other = ExtReal.of(other)
        return self <= other and self != other

    def __ge__(self, other: _NumberLike) -> bool:
        return ExtReal.of(other) <= self

    def __gt__(self, other: _NumberLike) -> bool:
        return ExtReal.of(other) < self

    def distance(self, other: "ExtReal") -> "ExtReal":
        """|self - other|, with d(inf, inf) = 0 and d(inf, finite) = inf."""
        other = ExtReal.of(other)
        if self._value is None and other._value is None:
            return ZERO
        if self._value is None or other._value is None:
            return INFINITY
        return ExtReal(abs(self._value - other._value))

    def __repr__(self) -> str:
        if self._value is None:
            return "ExtReal(inf)"
        return "ExtReal(%s)" % (self._value,)

    def __str__(self) -> str:
        return "inf" if self._value is None else str(self._value)


ZERO = ExtReal(0)
ONE = ExtReal(1)
INFINITY = ExtReal(None)
