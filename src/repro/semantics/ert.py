"""Expected running time of cpGCL programs (Kaminski 2019, Chapter 7).

The ``ert`` transformer is the runtime analogue of ``wp``: ``ert c t``
maps a state to the expected number of execution steps of ``c`` from it,
plus the expected value of the continuation cost ``t`` over terminal
states.  Divergence contributes +infinity (ert is a *least* fixpoint
over the extended reals, but diverging mass accumulates unbounded time,
so a.s.-divergent loops have infinite ert -- the usual "positive
almost-sure termination" reading).

Cost model (one tick per atomic step, the standard choice):

===================  ================================================
``skip``             ``1 + t``
``x := e``           ``1 + t[x/e]``
``observe e``        ``1 + [e] * t``  (failure stops execution)
``c1; c2``           ``ert c1 (ert c2 t)``
``if e ...``         ``1 + [e] ert c1 t + [not e] ert c2 t``
``{c1}[p]{c2}``      ``1 + p ert c1 t + (1-p) ert c2 t``
``uniform e x``      ``1 + avg_i t[x/i]``
``while e do c``     ``lfp X. 1 + [e] ert c X + [not e] t``
===================  ================================================

The loop case reuses the same exact/iterative fixpoint engine as wp.
For the iterative strategy the residual-mass certificate applies with
the caveat that ert is unbounded, so convergence of the value sequence
together with vanishing loop mass is the (standard) stopping rule; the
exact strategy is exact.

This transformer complements the pipeline-level ``expected_bits``
analysis: ert counts *steps of the source program*, expected_bits counts
*random bits of the compiled sampler*.
"""

from fractions import Fraction
from typing import Callable, Optional

from repro.lang.errors import ProbabilityRangeError, UniformRangeError
from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.lang.values import as_bool, as_fraction, as_int
from repro.semantics.algebra import EXT_REAL
from repro.semantics.expectation import lift_expectation
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import DEFAULT_OPTIONS, LoopOptions, solve_loop


def ert(
    command: Command,
    t: Optional[Callable[[State], object]] = None,
    sigma: Optional[State] = None,
    options: LoopOptions = DEFAULT_OPTIONS,
):
    """Expected running time of ``command`` with continuation cost ``t``
    (default 0).  With ``sigma`` given returns the value there."""
    t = lift_expectation(t) if t is not None else (lambda _s: ExtReal(0))
    if sigma is None:
        return lambda s: _ert(command, t, s, EXT_REAL, options)
    return _ert(command, t, sigma, EXT_REAL, options)


def _tick(alg, value):
    return alg.add(alg.from_scalar(1), value)


def _ert(command, t, sigma, alg, options):
    if isinstance(command, Skip):
        return _tick(alg, t(sigma))
    if isinstance(command, Assign):
        return _tick(alg, t(sigma.set(command.name, command.expr.eval(sigma))))
    if isinstance(command, Seq):
        second = command.second

        def rest(s):
            return _ert(second, t, s, alg, options)

        return _ert(command.first, rest, sigma, alg, options)
    if isinstance(command, Observe):
        if as_bool(command.pred.eval(sigma)):
            return _tick(alg, t(sigma))
        return alg.from_scalar(1)
    if isinstance(command, Ite):
        taken = command.then if as_bool(command.cond.eval(sigma)) else command.orelse
        return _tick(alg, _ert(taken, t, sigma, alg, options))
    if isinstance(command, Choice):
        p = as_fraction(command.prob.eval(sigma))
        if not 0 <= p <= 1:
            raise ProbabilityRangeError(p, sigma)
        if p == 1:
            return _tick(alg, _ert(command.left, t, sigma, alg, options))
        if p == 0:
            return _tick(alg, _ert(command.right, t, sigma, alg, options))
        left = _ert(command.left, t, sigma, alg, options)
        right = _ert(command.right, t, sigma, alg, options)
        return _tick(alg, alg.add(alg.scale(p, left), alg.scale(1 - p, right)))
    if isinstance(command, Uniform):
        n = as_int(command.range_expr.eval(sigma))
        if n <= 0:
            raise UniformRangeError(n, sigma)
        share = Fraction(1, n)
        total = alg.zero()
        for i in range(n):
            total = alg.add(total, alg.scale(share, t(sigma.set(command.name, i))))
        return _tick(alg, total)
    if isinstance(command, While):
        guard_expr, body = command.cond, command.body

        def guard(s):
            return as_bool(guard_expr.eval(s))

        def step(s, h, step_alg):
            return _tick(step_alg, _ert(body, h, s, step_alg, options))

        def mass_step(s, h, step_alg):
            # Convergence mass: the plain wp transition map (no ticks).
            from repro.semantics.wp import wp_value

            return wp_value(body, h, s, step_alg, False, False, options)

        def exit_value(s):
            return _tick(alg, t(s))

        return solve_loop(
            init_state=sigma,
            guard=guard,
            step=step,
            exit_value=exit_value,
            algebra=alg,
            greatest=False,
            options=options,
            mass_step=mass_step,
        )
    raise TypeError("not a command: %r" % (command,))
