"""Command-line driver for cpGCL programs (``python -m repro``).

See :mod:`repro.cli.main` for the subcommand reference.
"""

from repro.cli.commands import CliError, load_program, parse_initial_state
from repro.cli.main import build_parser, main

__all__ = [
    "CliError",
    "build_parser",
    "load_program",
    "main",
    "parse_initial_state",
]
