"""Implementations of the ``python -m repro`` subcommands.

Each command takes parsed arguments plus an output stream, returns a
process exit code, and raises nothing user-triggerable: parse/check
failures are rendered as diagnostics and a nonzero exit code, matching
what a downstream user expects from a compiler driver.
"""

import sys
from collections import Counter
from fractions import Fraction
from typing import Optional, TextIO

from repro.cftree.analysis import expected_bits, is_unbiased, tree_depth, tree_size
from repro.cftree.compile import compile_cpgcl
from repro.cftree.debias import debias
from repro.cftree.elim import elim_choices
from repro.cftree.viz import render_cftree
from repro.inference import fixpoint_posterior, infer_posterior
from repro.lang.errors import CpGCLError
from repro.lang.parser import parse_program, parse_program_located
from repro.lang.pretty import pretty
from repro.lang.state import State
from repro.lang.syntax import Command
from repro.lang.typecheck import check_program
from repro.lang.values import normalize
from repro.mcmc import MHSampler, effective_sample_size


class CliError(Exception):
    """A user-facing failure: message printed, exit code 1."""


def load_source(path: str) -> str:
    """Read a cpGCL source file."""
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as err:
        raise CliError("cannot read %s: %s" % (path, err))


def load_program(path: str) -> Command:
    """Parse a cpGCL source file into a command AST."""
    source = load_source(path)
    try:
        return parse_program(source)
    except CpGCLError as err:
        raise CliError("%s: %s" % (path, err))


def parse_initial_state(pairs) -> State:
    """Build the initial state from repeated ``--init name=value``."""
    sigma = State()
    for pair in pairs or ():
        name, _sep, raw = pair.partition("=")
        if not _sep or not name:
            raise CliError("--init expects name=value, got %r" % (pair,))
        sigma = sigma.set(name.strip(), _parse_value(raw.strip()))
    return sigma


def _parse_value(raw: str):
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        if "/" in raw:
            return normalize(Fraction(raw))
        return int(raw)
    except ValueError:
        raise CliError("cannot parse value %r (int, bool, or p/q)" % (raw,))


def cmd_check(args, out: TextIO) -> int:
    """``zar check``: parse -> typecheck -> lint.

    Exit codes: 0 clean (infos allowed), 1 parse/type errors or lint
    warnings, 2 lint errors.
    """
    from repro.analysis.lint import lint_program

    source = load_source(args.file)
    try:
        program, locations = parse_program_located(source)
    except CpGCLError as err:
        raise CliError("%s: %s" % (args.file, err))
    report = check_program(program, strict=False)
    for message in report.errors:
        print("error: %s" % message, file=out)
    for message in report.warnings:
        print("warning: %s" % message, file=out)
    if not report.ok:
        return 1
    sigma = parse_initial_state(getattr(args, "init", None))
    lint = lint_program(program, sigma, locations=locations)
    if lint.diagnostics:
        lint.render_text(out, name=args.file)
    if lint.exit_code == 0:
        print("%s: OK (%d warning%s)" % (
            args.file, len(report.warnings),
            "" if len(report.warnings) == 1 else "s",
        ), file=out)
    return lint.exit_code


def cmd_lint(args, out: TextIO) -> int:
    """``zar lint``: abstract-interpretation diagnostics.

    Exit codes: 0 clean or info-only, 1 worst severity warning, 2 worst
    severity error (parse failures and unreadable files exit 1).
    """
    from repro.analysis.lint import lint_source

    source = load_source(args.file)
    sigma = parse_initial_state(getattr(args, "init", None))
    analyzers = None
    raw = getattr(args, "analyzers", None)
    if raw:
        analyzers = [name.strip() for name in raw.split(",") if name.strip()]
    try:
        report = lint_source(source, sigma, analyzers=analyzers)
    except CpGCLError as err:
        raise CliError("%s: %s" % (args.file, err))
    except KeyError as err:
        raise CliError(err.args[0])
    if getattr(args, "format", "text") == "json":
        report.render_json(out)
    else:
        report.render_text(out, name=args.file)
    return report.exit_code


def cmd_pretty(args, out: TextIO) -> int:
    program = load_program(args.file)
    print(pretty(program), file=out)
    return 0


def cmd_compile(args, out: TextIO) -> int:
    program = load_program(args.file)
    sigma = parse_initial_state(args.init)
    tree = compile_cpgcl(program, sigma)
    stage = "compiled"
    if args.debias:
        tree = debias(elim_choices(tree))
        stage = "compiled + elim_choices + debias"
    unbiased = is_unbiased(tree)
    print("stage:     %s" % stage, file=out)
    print("size:      %d nodes (Fix bodies not unfolded)" % tree_size(tree),
          file=out)
    print("depth:     %d" % tree_depth(tree), file=out)
    print("unbiased:  %s" % unbiased, file=out)
    try:
        cost = expected_bits(tree)
        # Each Choice costs one flip; only for unbiased trees do flips
        # coincide with fair random bits.
        label = "E[bits]" if unbiased else "E[flips]"
        print("%s:   %s (= %.4f)" % (label, cost, float(cost)), file=out)
    except (CpGCLError, ValueError, ZeroDivisionError):
        pass  # expected cost undefined (e.g. nonterminating loop)
    if not getattr(args, "no_pipeline", False):
        _print_pipeline_stats(program, sigma, args, out)
    if args.tree:
        print(file=out)
        # Unfold Fix bodies one step at their entry states, as Figure 3
        # displays the primes loop.
        print(
            render_cftree(tree, max_depth=args.max_depth, unfold_fix=True),
            file=out,
        )
    return 0


def _print_pipeline_stats(program, sigma, args, out: TextIO) -> None:
    """Render the staged pipeline's per-stage metrics (ISSUE 5)."""
    from repro.compiler.cache import get_cache
    from repro.compiler.pipeline import compile_program
    from repro.engine.table import LoweringError

    raw = getattr(args, "passes", None) or "elim_choices,debias,cse"
    passes = tuple(name.strip() for name in raw.split(",") if name.strip())
    try:
        prog = compile_program(
            program, sigma, passes=passes, measure_raw=True
        )
    except LoweringError as err:
        print("pipeline:  not lowerable (%s)" % err, file=out)
        return
    except KeyError as err:
        raise CliError("pipeline: %s" % (err.args[0],))
    stats = prog.stats
    print(file=out)
    print("pipeline (normalize -> analyze -> build -> optimize -> lower):",
          file=out)
    digest = stats.get("digest")
    print("  digest:        %s" % (digest or "<undigestable: %s>"
                                   % stats.get("undigestable")), file=out)
    analysis = stats.get("analysis") or {}
    if analysis.get("passes"):
        notes = ""
        if analysis.get("incomplete"):
            notes = ", analysis incomplete"
        print("  analyze:       %d dead site(s) pruned (%s%s)" % (
            analysis.get("pruned_sites", 0),
            ", ".join(analysis["passes"]),
            notes,
        ), file=out)
    build = stats.get("build") or {}
    print("  build:         %d DAG nodes" % build.get("dag_nodes", 0),
          file=out)
    for record in stats.get("optimize", ()):
        print("  pass %-13s %d -> %d nodes" % (
            record["name"] + ":",
            record["dag_nodes_before"],
            record["dag_nodes_after"],
        ), file=out)
    lower = stats.get("lower") or {}
    reduction = ""
    if "rows_raw" in lower:
        reduction = "  (raw %d, -%.1f%% via CSE/dedup/compaction)" % (
            lower["rows_raw"], lower.get("reduction_pct", 0.0),
        )
    print("  lower:         %d table rows%s" % (lower.get("rows", 0),
                                                reduction), file=out)
    print("  expansions:    %d eager (%s)" % (
        lower.get("expansions", 0),
        "closed" if lower.get("closed") else "open: loop states expand "
        "lazily during sampling",
    ), file=out)
    if not lower.get("closed"):
        from repro.engine.freeze import freeze_report

        frz = freeze_report(prog.table)
        print("  cacheable:     %s (%d/%d pendings keyed, %d/%d calls, "
              "%d/%d memo entries)" % (
                  "yes" if frz["spillable"] else
                  "no (unkeyed call records)",
                  frz["pending_keyed"],
                  frz["pending_keyed"] + frz["pending_unkeyed"],
                  frz["calls"] - frz["calls_unkeyed"], frz["calls"],
                  frz["memo_keyed"], frz["memo_entries"],
              ), file=out)
    from repro.engine.native import kernel_status

    # Kernel-cache state for the generated-C backend, mirroring the
    # ``cacheable:`` line: resolving it here actually builds (or hits)
    # the kernel, so the reported compile ms / cache tier is measured,
    # not guessed.
    print("  native:        %s" % kernel_status(prog.table), file=out)
    memo = stats.get("cftree_cache") or {}
    artifacts = get_cache().stats()
    print("  compile memo:  %d hits / %d misses (capacity %d)" % (
        memo.get("hits", 0), memo.get("misses", 0),
        memo.get("capacity", 0),
    ), file=out)
    print("  artifacts:     %d memory + %d disk hits, %d stored%s" % (
        artifacts["memory_hits"], artifacts["disk_hits"],
        artifacts["stores"],
        ", disk %s" % artifacts["disk_dir"] if artifacts["disk_dir"] else "",
    ), file=out)
    _print_engine_selection(prog, out)


def _print_engine_selection(prog, out: TextIO) -> None:
    """Render the engine-selection block of the stage report.

    Engines, backends, and profiles are enumerated from the engine
    registry (never by hand), so registering a new backend shows up
    here -- and in ``--engine``/``--profile`` help -- with no CLI edit.
    """
    from repro.engine.api import BACKENDS, ENGINES
    from repro.engine.profile import (
        PROFILES,
        feature_bucket,
        features_of,
        static_profile,
    )
    from repro.engine.tuner import get_tuner, tuning_enabled

    features = features_of(prog)
    print("  engines:       %s (backends: %s)" % (
        ", ".join(ENGINES), ", ".join(BACKENDS)), file=out)
    print("  profiles:      %s" % ", ".join(sorted(PROFILES)), file=out)
    print("  features:      rows=%d %s H_branch=%.2f bucket=%s" % (
        features.rows,
        "closed" if features.closed else "open",
        features.branch_entropy,
        feature_bucket(features),
    ), file=out)
    if tuning_enabled():
        choice = get_tuner().choose(features, explore=False)
        policy = "tuned (state: %s)" % get_tuner().path
    else:
        choice = static_profile(features)
        policy = "static prior"
    print("  auto profile:  %s -- %s" % (choice.describe(), policy),
          file=out)


def cmd_sample(args, out: TextIO) -> int:
    program = load_program(args.file)
    sigma = parse_initial_state(args.init)
    extract = _extractor(args.var)
    from repro.engine import LoweringError
    from repro.engine.api import collect_auto
    from repro.engine.profile import profile_named

    profile = None
    if getattr(args, "profile", None):
        try:
            profile = profile_named(args.profile)
        except ValueError as err:
            raise CliError(str(err))
    try:
        result = collect_auto(
            program,
            args.n,
            sigma=sigma,
            seed=args.seed,
            extract=extract,
            engine=getattr(args, "engine", "auto"),
            backend=getattr(args, "backend", None),
            profile=profile,
        )
    except LoweringError as err:
        raise CliError("batch engine: %s" % err)
    except ValueError as err:
        raise CliError(str(err))
    samples = result.samples
    if result.engine == "batch":
        print("engine:    batch (%d table nodes)" % result.table_nodes,
              file=out)
    else:
        print("engine:    trampoline", file=out)
    if result.profile is not None:
        print("profile:   %s" % result.profile.describe(), file=out)
    if result.fallback_reason:
        print("fallback:  %s" % result.fallback_reason, file=out)
    print("samples:   %d (seed %s)" % (len(samples), args.seed), file=out)
    print("mean bits: %.2f (std %.2f)"
          % (samples.mean_bits(), samples.std_bits()), file=out)
    if args.var is not None:
        print("mean %s:   %.4f (std %.4f)"
              % (args.var, samples.mean(), samples.std()), file=out)
    _print_counts(samples.values, args.top, out)
    return 0


def cmd_infer(args, out: TextIO) -> int:
    program = load_program(args.file)
    sigma = parse_initial_state(args.init)
    posterior = infer_posterior(
        program,
        sigma,
        max_expansions=args.budget,
        mass_tol=Fraction(args.tol) if args.tol else None,
    )
    print("expansions: %d   slack: %s"
          % (posterior.account.expansions, _fmt_frac(posterior.slack)),
          file=out)
    if args.var is not None:
        marginal = posterior.marginal(args.var)
        try:
            ordered = sorted(marginal)
        except TypeError:  # mixed-type support: fall back to repr order
            ordered = sorted(marginal, key=repr)
        for value in ordered:
            bounds = marginal[value]
            print("P(%s=%s) in [%.6g, %.6g]"
                  % (args.var, value, bounds.lo, bounds.hi), file=out)
    else:
        for state in posterior.states()[: args.top]:
            bounds = posterior.probability(state)
            print("P(%s) in [%.6g, %.6g]" % (state, bounds.lo, bounds.hi),
                  file=out)
    return 0


def cmd_bounds(args, out: TextIO) -> int:
    import json

    program = load_program(args.file)
    sigma = parse_initial_state(args.init)
    if args.width_bits <= 0:
        raise CliError("--width-bits must be positive")
    observed = None
    if args.observed:
        observed = tuple(
            name.strip() for name in args.observed.split(",") if name.strip()
        )
    posterior = fixpoint_posterior(
        program,
        sigma,
        width=Fraction(1, 2 ** args.width_bits),
        max_sweeps=args.max_sweeps,
        observed=observed,
    )
    stats = posterior.stats

    def marginal_rows():
        if args.var is None:
            return None
        marginal = posterior.marginal(args.var)
        try:
            ordered = sorted(marginal)
        except TypeError:  # mixed-type support: fall back to repr order
            ordered = sorted(marginal, key=repr)
        return [(value, marginal[value]) for value in ordered]

    if args.format == "json":
        payload = {
            "file": args.file,
            "width_bits": args.width_bits,
            "partial": posterior.partial,
            "partial_reason": posterior.partial_reason,
            "stats": stats.as_dict(),
            "predicted_sweeps": stats.predicted_sweeps(
                Fraction(1, 2 ** args.width_bits)
            ),
        }
        rows = marginal_rows()
        if rows is not None:
            payload["marginal"] = {
                "var": args.var,
                "pmf": [
                    {
                        "value": repr(value),
                        "lo": str(bounds.lo),
                        "hi": str(bounds.hi),
                    }
                    for value, bounds in rows
                ],
            }
        else:
            payload["states"] = [
                {
                    "state": repr(state),
                    "lo": str(posterior.probability(state).lo),
                    "hi": str(posterior.probability(state).hi),
                }
                for state in posterior.states()[: args.top]
            ]
        json.dump(payload, out, indent=2)
        print(file=out)
        return 0

    print(
        "sweeps: %d   stations: %d   slack: %.3g   parked: %.3g"
        % (
            stats.sweeps,
            stats.stations,
            float(stats.slack),
            float(stats.parked),
        ),
        file=out,
    )
    if stats.escape_bound is not None:
        predicted = stats.predicted_sweeps(Fraction(1, 2 ** args.width_bits))
        print(
            "escape bound: %.3g%s   predicted sweeps to width: %s"
            % (
                float(stats.escape_bound),
                "" if stats.escape_complete else " (incomplete sweep)",
                "n/a" if predicted is None else predicted,
            ),
            file=out,
        )
    if posterior.partial:
        print("PARTIAL: %s" % posterior.partial_reason, file=out)
    rows = marginal_rows()
    if rows is not None:
        for value, bounds in rows:
            print(
                "P(%s=%s) in [%.6g, %.6g]  width %.3g"
                % (args.var, value, bounds.lo, bounds.hi, bounds.width),
                file=out,
            )
    else:
        for state in posterior.states()[: args.top]:
            bounds = posterior.probability(state)
            print(
                "P(%s) in [%.6g, %.6g]" % (state, bounds.lo, bounds.hi),
                file=out,
            )
    return 0


def cmd_mcmc(args, out: TextIO) -> int:
    program = load_program(args.file)
    sigma = parse_initial_state(args.init)
    chain = MHSampler(program, sigma, seed=args.seed).run(
        args.n, burn_in=args.burn_in, thin=args.thin
    )
    print("samples:     %d (burn-in %d, thin %d, seed %s)"
          % (len(chain), args.burn_in, args.thin, args.seed), file=out)
    print("acceptance:  %.3f" % chain.acceptance_rate(), file=out)
    print("bits/sample: %.2f" % chain.bits_per_sample(), file=out)
    if args.var is not None:
        values = chain.extract(args.var)
        numeric = [float(v) for v in values]
        print("ESS(%s):     %.0f of %d"
              % (args.var, effective_sample_size(numeric), len(values)),
              file=out)
        _print_counts(values, args.top, out)
    else:
        _print_counts(chain.states, args.top, out)
    return 0


def _extractor(var: Optional[str]):
    if var is None:
        return lambda state: state
    return lambda state: state[var]


def _print_counts(values, top: int, out: TextIO) -> None:
    counts = Counter(values)
    total = sum(counts.values())
    print("top outcomes:", file=out)
    for value, count in counts.most_common(top):
        print("  %-24s %6d  (%.4f)" % (value, count, count / total),
              file=out)


def _fmt_frac(value: Fraction) -> str:
    if value == 0:
        return "0 (exact)"
    approx = float(value)
    if approx == 0.0:
        return "<1e-300"
    return "%.3e" % approx
