"""Argument parsing and dispatch for ``python -m repro``.

The driver exposes the full pipeline on cpGCL source files::

    python -m repro check   examples/programs/primes.gcl
    python -m repro pretty  examples/programs/primes.gcl
    python -m repro compile examples/programs/primes.gcl --debias --tree
    python -m repro sample  examples/programs/primes.gcl -n 10000 --var h
    python -m repro infer   examples/programs/primes.gcl --var h
    python -m repro bounds  examples/programs/primes.gcl --var h
    python -m repro mcmc    examples/programs/primes.gcl -n 5000 --var h

``sample`` runs the verified pipeline (compile, debias, interaction
tree, random bit model); ``infer`` computes certified posterior bounds
by enumeration; ``bounds`` computes them by CF-DAG fixpoint iteration
(converges on open loops where enumeration truncates); ``mcmc`` runs
the trace-MH extension.
"""

import argparse
import sys
from typing import List, Optional, TextIO

from repro.engine.api import BACKENDS, ENGINES
from repro.engine.profile import PROFILES

from repro.cli.commands import (
    CliError,
    cmd_bounds,
    cmd_check,
    cmd_compile,
    cmd_infer,
    cmd_lint,
    cmd_mcmc,
    cmd_pretty,
    cmd_sample,
)

_EXIT_CODES = (
    "Exit codes for check/lint: 0 clean (info diagnostics allowed), "
    "1 parse/type errors or worst lint severity warning, 2 worst lint "
    "severity error."
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Zar-reproduction driver: compile, sample, and infer "
        "cpGCL probabilistic programs.",
        epilog=_EXIT_CODES,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="cpGCL source file")
        p.add_argument(
            "--init",
            action="append",
            metavar="NAME=VALUE",
            help="initial-state binding (repeatable); value is an int, "
            "true/false, or a rational p/q",
        )

    p_check = sub.add_parser(
        "check",
        help="parse, typecheck, and lint",
        description="Parse, typecheck, then lint the program. " + _EXIT_CODES,
    )
    add_common(p_check)
    p_check.set_defaults(run=cmd_check)

    p_lint = sub.add_parser(
        "lint",
        help="abstract-interpretation diagnostics (ZAR0xx rule codes)",
        description="Run the analysis-driven diagnostics engine: "
        "divergence (ZAR001), infeasible observations (ZAR002), dead "
        "branches (ZAR003), bit-cost (ZAR004/ZAR009), value hygiene "
        "(ZAR005-ZAR007), incompleteness (ZAR008).  " + _EXIT_CODES,
    )
    add_common(p_lint)
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text; json is schema-stable)",
    )
    p_lint.add_argument(
        "--analyzers", default=None, metavar="A1,A2,...",
        help="comma-separated analyzer list (default "
        "hygiene,observe,deadcode,termination,bitcost; see "
        "repro.analysis.framework.register_analyzer)",
    )
    p_lint.set_defaults(run=cmd_lint)

    p_pretty = sub.add_parser("pretty", help="parse and pretty-print")
    p_pretty.add_argument("file", help="cpGCL source file")
    p_pretty.set_defaults(run=cmd_pretty)

    p_compile = sub.add_parser(
        "compile", help="compile to a choice-fix tree and report statistics"
    )
    add_common(p_compile)
    p_compile.add_argument(
        "--debias", action="store_true",
        help="also run elim_choices + debias (random bit model)",
    )
    p_compile.add_argument(
        "--tree", action="store_true", help="print the tree rendering"
    )
    p_compile.add_argument(
        "--max-depth", type=int, default=8,
        help="depth cutoff for --tree (default 8)",
    )
    p_compile.add_argument(
        "--passes", default=None, metavar="P1,P2,...",
        help="pipeline pass list for the stage report (default "
        "elim_choices,debias,cse; see repro.compiler.passes)",
    )
    p_compile.add_argument(
        "--no-pipeline", action="store_true",
        help="skip the staged-pipeline report (tree statistics only)",
    )
    p_compile.set_defaults(run=cmd_compile)

    p_sample = sub.add_parser(
        "sample", help="draw samples via the verified pipeline"
    )
    add_common(p_sample)
    p_sample.add_argument("-n", type=int, default=1000,
                          help="number of samples (default 1000)")
    p_sample.add_argument("--seed", type=int, default=None)
    p_sample.add_argument("--var", default=None,
                          help="report this variable instead of full states")
    p_sample.add_argument("--top", type=int, default=10,
                          help="outcomes to list (default 10)")
    # Engine/backend/profile choices come from the engine registry --
    # adding a backend (e.g. "native") is a one-site change there.
    p_sample.add_argument(
        "--engine", choices=ENGINES, default="auto",
        help="sampling path (%s): the vectorized batch engine; auto is "
        "the measured policy (telemetry-backed when a tuner state is "
        "configured) and falls back to the per-sample trampoline when "
        "lowering fails" % "|".join(ENGINES),
    )
    p_sample.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="batch driver tier (%s); default picks the best available"
        % "|".join(BACKENDS),
    )
    p_sample.add_argument(
        "--profile", choices=tuple(sorted(PROFILES)), default=None,
        help="named engine profile (%s); pins engine, backend, pass "
        "list, and node budget in one flag" % ", ".join(sorted(PROFILES)),
    )
    p_sample.set_defaults(run=cmd_sample)

    p_infer = sub.add_parser(
        "infer", help="certified posterior bounds by exact enumeration"
    )
    add_common(p_infer)
    p_infer.add_argument("--budget", type=int, default=10_000,
                         help="max tree expansions (default 10000)")
    p_infer.add_argument("--tol", default=None,
                         help="stop when unresolved mass <= TOL (rational)")
    p_infer.add_argument("--var", default=None,
                         help="marginalize onto this variable")
    p_infer.add_argument("--top", type=int, default=10)
    p_infer.set_defaults(run=cmd_infer)

    p_bounds = sub.add_parser(
        "bounds",
        help="certified posterior bounds by CF-DAG fixpoint iteration",
    )
    add_common(p_bounds)
    p_bounds.add_argument(
        "--width-bits", type=int, default=20,
        help="target slack 2^-BITS (default 20)")
    p_bounds.add_argument(
        "--max-sweeps", type=int, default=100_000,
        help="iteration cap (default 100000)")
    p_bounds.add_argument(
        "--observed", default=None,
        help="comma-separated variables to narrow onto (liveness "
        "narrowing; posterior is exact over these variables only)")
    p_bounds.add_argument("--var", default=None,
                          help="marginalize onto this variable")
    p_bounds.add_argument("--top", type=int, default=10)
    p_bounds.add_argument("--format", choices=("text", "json"),
                          default="text")
    p_bounds.set_defaults(run=cmd_bounds)

    p_mcmc = sub.add_parser(
        "mcmc", help="sample via single-site trace Metropolis-Hastings"
    )
    add_common(p_mcmc)
    p_mcmc.add_argument("-n", type=int, default=1000)
    p_mcmc.add_argument("--burn-in", type=int, default=200)
    p_mcmc.add_argument("--thin", type=int, default=1)
    p_mcmc.add_argument("--seed", type=int, default=None)
    p_mcmc.add_argument("--var", default=None)
    p_mcmc.add_argument("--top", type=int, default=10)
    p_mcmc.set_defaults(run=cmd_mcmc)

    return parser


def main(argv: Optional[List[str]] = None, out: Optional[TextIO] = None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.run(args, out)
    except CliError as err:
        print("error: %s" % err, file=out)
        return 1


def console_main() -> None:
    """``zar-repro`` console-script entry point (exits the process)."""
    sys.exit(main())
