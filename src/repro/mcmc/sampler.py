"""The trace-MCMC posterior sampler and the multi-chain runner.

:class:`MHSampler` wraps initialization + the single-site kernel into
the same "draw samples, meter entropy" shape as the verified pipeline's
:func:`repro.sampler.record.collect`, so the two can be compared
directly on accuracy and bits-per-sample (the paper's Table 2 motivates
this: rejection sampling spends ~142 bits/sample on ``primes(1/5)``
because most attempts fail the primality observation; MCMC reuses the
accepted trace and only pays for single-site refreshes).

The trade, faithfully exposed: MH samples are *correlated* (see
:mod:`repro.mcmc.diagnostics` for effective-sample-size estimation) and
carry no equidistribution certificate -- exactly why the paper treats
MCMC compilation as future work rather than a drop-in replacement.
"""

from typing import List, Optional

from repro.bits.source import BitSource, CountingBits, SystemBits
from repro.lang.state import State
from repro.lang.syntax import Command
from repro.mcmc.kernel import ACCEPTED, initialize, mh_step
from repro.mcmc.trace import Trace


class ChainRecord:
    """Samples plus bookkeeping from one MH run.

    ``program_digest`` is the content digest of the (program, initial
    state) pair the chain targets (None when the program contains
    opaque expressions): runs from different processes can be associated
    with each other -- and with pipeline-compiled artifacts in the
    compilation cache -- by key rather than by provenance.
    """

    __slots__ = (
        "states", "outcomes", "bits_init", "bits_steps", "program_digest",
    )

    def __init__(
        self,
        states: List[State],
        outcomes: List[str],
        bits_init: int,
        bits_steps: int,
        program_digest: Optional[str] = None,
    ):
        self.states = states
        self.outcomes = outcomes
        self.bits_init = bits_init
        self.bits_steps = bits_steps
        self.program_digest = program_digest

    def __len__(self) -> int:
        return len(self.states)

    def acceptance_rate(self) -> float:
        """Fraction of kernel steps that accepted their proposal."""
        if not self.outcomes:
            return 0.0
        accepted = sum(1 for o in self.outcomes if o == ACCEPTED)
        return accepted / len(self.outcomes)

    def bits_per_sample(self) -> float:
        """Total fair bits consumed (init + all steps) per kept sample."""
        if not self.states:
            return 0.0
        return (self.bits_init + self.bits_steps) / len(self.states)

    def extract(self, var: str) -> List[object]:
        """Values of one program variable along the chain."""
        return [state[var] for state in self.states]

    def __repr__(self):
        return "ChainRecord(%d samples, acceptance=%.3f, bits/sample=%.1f)" % (
            len(self.states),
            self.acceptance_rate(),
            self.bits_per_sample(),
        )


class MHSampler:
    """Single-site Metropolis-Hastings sampler for a cpGCL posterior.

    Typical use::

        sampler = MHSampler(geometric_primes(Fraction(1, 5)), seed=0)
        chain = sampler.run(10_000, burn_in=500, thin=2)
        values = chain.extract("h")
    """

    def __init__(
        self,
        program: Command,
        sigma: Optional[State] = None,
        seed: Optional[int] = None,
        source: Optional[BitSource] = None,
        max_steps: int = 1_000_000,
        max_init_restarts: int = 100_000,
    ):
        self.program = program
        self.sigma = sigma if sigma is not None else State()
        if source is None:
            source = SystemBits(seed)
        self.source = CountingBits(source)
        self.max_steps = max_steps
        self.max_init_restarts = max_init_restarts
        self._trace: Optional[Trace] = None
        self._state: Optional[State] = None
        self._direct = None
        # Content digest identifying the posterior this chain targets
        # (None when the program contains opaque expressions).
        from repro.compiler.digest import Undigestable, fingerprint

        try:
            self.program_digest: Optional[str] = fingerprint(
                "mcmc", self.program, self.sigma
            )
        except Undigestable:
            self.program_digest = None

    def _ensure_initialized(self) -> int:
        """Forward-sample an observation-satisfying start; returns the
        number of bits the initialization consumed."""
        if self._trace is not None:
            return 0
        self.source.take_count()  # drain any stale count
        self._trace, self._state = initialize(
            self.program,
            self.sigma,
            self.source,
            max_steps=self.max_steps,
            max_restarts=self.max_init_restarts,
        )
        return self.source.take_count()

    def run(
        self,
        n: int,
        burn_in: int = 0,
        thin: int = 1,
    ) -> ChainRecord:
        """Draw ``n`` (post-burn-in, thinned) samples.

        ``burn_in`` kernel steps are discarded first; afterwards every
        ``thin``-th visited state is kept.  The returned record meters
        initialization and stepping entropy separately.
        """
        if n < 0:
            raise ValueError("n must be nonnegative")
        if thin < 1:
            raise ValueError("thin must be >= 1")
        bits_init = self._ensure_initialized()
        states: List[State] = []
        outcomes: List[str] = []

        for _ in range(burn_in):
            step = mh_step(
                self.program,
                self.sigma,
                self._trace,
                self._state,
                self.source,
                self.max_steps,
            )
            self._trace, self._state = step.trace, step.state
            outcomes.append(step.outcome)

        while len(states) < n:
            for _ in range(thin):
                step = mh_step(
                    self.program,
                    self.sigma,
                    self._trace,
                    self._state,
                    self.source,
                    self.max_steps,
                )
                self._trace, self._state = step.trace, step.state
                outcomes.append(step.outcome)
            states.append(self._state)

        return ChainRecord(
            states,
            outcomes,
            bits_init,
            self.source.take_count(),
            program_digest=self.program_digest,
        )

    def direct_sampler(self):
        """The pipeline-compiled rejection sampler of the same posterior.

        Compiled through the shared content-addressed cache, so the
        comparison path (exact i.i.d. samples vs. correlated MH samples,
        Table 2's bits-per-sample trade) costs nothing when the program
        was already compiled elsewhere in the process -- or in a
        previous process with a disk cache configured.  Returns None
        when the program cannot be lowered to the batch engine.
        """
        if self._direct is None:
            from repro.compiler.pipeline import compile_program
            from repro.engine.table import LoweringError

            try:
                self._direct = compile_program(self.program, self.sigma)
            except LoweringError:
                self._direct = False
        if self._direct is False:
            return None
        return self._direct.sampler()


def run_chains(
    program: Command,
    n: int,
    chains: int = 4,
    sigma: Optional[State] = None,
    seed: int = 0,
    burn_in: int = 0,
    thin: int = 1,
    **sampler_options,
) -> List[ChainRecord]:
    """Run ``chains`` independent MH chains with derived seeds.

    Independent chains are the input to the Gelman-Rubin diagnostic
    (:func:`repro.mcmc.diagnostics.gelman_rubin`); seeds are
    ``seed, seed+1, ...`` so a run is reproducible as a whole.
    """
    if chains < 1:
        raise ValueError("need at least one chain")
    return [
        MHSampler(
            program, sigma, seed=seed + index, **sampler_options
        ).run(n, burn_in=burn_in, thin=thin)
        for index in range(chains)
    ]


def rhat(records: List[ChainRecord], var: str) -> float:
    """Gelman-Rubin R-hat of one variable across chain records."""
    from repro.mcmc.diagnostics import gelman_rubin

    return gelman_rubin(
        [[float(v) for v in record.extract(var)] for record in records]
    )
