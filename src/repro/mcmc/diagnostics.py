"""Convergence diagnostics for MCMC chains.

Rejection samplers need none of this -- every sample is independent and
Theorem 4.2 certifies the limit.  MCMC output is autocorrelated and can
pseudo-converge (the failure mode the paper's introduction cites from
Geyer 2011), so the standard diagnostics are part of an honest
comparison:

- :func:`effective_sample_size` -- Geyer's initial-positive-sequence
  estimator: ``n`` correlated draws carry the information of ``ESS <= n``
  independent ones;
- :func:`gelman_rubin` -- the potential-scale-reduction statistic
  ``R-hat`` across independent chains (values near 1 indicate mixing);
- :func:`autocorrelation` -- the raw ACF these are computed from.

numpy accelerates the ACF dot products when present but is optional
(like everywhere else in the engine): the pure-Python path computes the
same sums, so ``import repro`` and the mcmc entry points work on the
numpy-free CI matrix row.
"""

import math
from typing import List, Sequence

try:
    import numpy as np
except ImportError:  # pure-Python fallback below
    np = None


def _dot(xs, ys) -> float:
    return sum(x * y for x, y in zip(xs, ys))


def autocorrelation(values: Sequence[float], max_lag: int) -> List[float]:
    """Sample autocorrelation function up to ``max_lag`` (lag 0 = 1)."""
    n = len(values)
    if n < 2:
        raise ValueError("need at least two values")
    if max_lag >= n:
        raise ValueError("max_lag must be below the series length")
    if np is not None:
        data = np.asarray(values, dtype=float)
        centered = data - data.mean()
        variance = float(np.dot(centered, centered)) / n
        if variance == 0:
            # Constant chain: perfectly correlated at every lag.
            return [1.0] * (max_lag + 1)
        return [
            float(np.dot(centered[: n - lag], centered[lag:])) / n / variance
            for lag in range(max_lag + 1)
        ]
    data = [float(v) for v in values]
    mean = sum(data) / n
    centered = [v - mean for v in data]
    variance = _dot(centered, centered) / n
    if variance == 0:
        return [1.0] * (max_lag + 1)
    return [
        _dot(centered[: n - lag], centered[lag:]) / n / variance
        for lag in range(max_lag + 1)
    ]


def effective_sample_size(values: Sequence[float]) -> float:
    """Geyer (1992) initial-positive-sequence ESS estimate.

    Sums autocorrelations over pairs ``rho(2k) + rho(2k+1)`` while the
    pair sums stay positive (guaranteed nonnegative for reversible
    chains), then ``ESS = n / (1 + 2 * sum)``.  Clamped to ``[1, n]``.
    """
    n = len(values)
    if n < 4:
        return float(n)
    max_lag = min(n - 2, 1000)
    acf = autocorrelation(values, max_lag)
    rho_sum = 0.0
    lag = 1
    while lag + 1 <= max_lag:
        pair = acf[lag] + acf[lag + 1]
        if pair <= 0:
            break
        rho_sum += pair
        lag += 2
    ess = n / (1.0 + 2.0 * rho_sum)
    return max(1.0, min(float(n), ess))


def gelman_rubin(chains: Sequence[Sequence[float]]) -> float:
    """Potential scale reduction factor ``R-hat`` across chains.

    Requires at least two chains of equal length >= 2.  Values close to
    1.0 indicate the chains have mixed into the same distribution.
    """
    if len(chains) < 2:
        raise ValueError("need at least two chains")
    series = [[float(v) for v in chain] for chain in chains]
    length = len(series[0])
    if length < 2:
        raise ValueError("chains must have length >= 2")
    if any(len(chain) != length for chain in series):
        raise ValueError("chains must have equal length")
    m = len(series)
    means = [sum(chain) / length for chain in series]
    variances = [
        sum((v - mean) ** 2 for v in chain) / (length - 1)
        for chain, mean in zip(series, means)
    ]
    w = sum(variances) / m  # within-chain variance
    grand = sum(means) / m
    b = length * sum((mu - grand) ** 2 for mu in means) / (m - 1)
    if w == 0:
        return 1.0 if b == 0 else math.inf
    var_plus = (length - 1) / length * w + b / length
    return math.sqrt(var_plus / w)
