"""Convergence diagnostics for MCMC chains.

Rejection samplers need none of this -- every sample is independent and
Theorem 4.2 certifies the limit.  MCMC output is autocorrelated and can
pseudo-converge (the failure mode the paper's introduction cites from
Geyer 2011), so the standard diagnostics are part of an honest
comparison:

- :func:`effective_sample_size` -- Geyer's initial-positive-sequence
  estimator: ``n`` correlated draws carry the information of ``ESS <= n``
  independent ones;
- :func:`gelman_rubin` -- the potential-scale-reduction statistic
  ``R-hat`` across independent chains (values near 1 indicate mixing);
- :func:`autocorrelation` -- the raw ACF these are computed from.
"""

import math
from typing import List, Sequence

import numpy as np


def autocorrelation(values: Sequence[float], max_lag: int) -> List[float]:
    """Sample autocorrelation function up to ``max_lag`` (lag 0 = 1)."""
    data = np.asarray(values, dtype=float)
    n = len(data)
    if n < 2:
        raise ValueError("need at least two values")
    if max_lag >= n:
        raise ValueError("max_lag must be below the series length")
    centered = data - data.mean()
    variance = float(np.dot(centered, centered)) / n
    if variance == 0:
        # Constant chain: perfectly correlated at every lag.
        return [1.0] * (max_lag + 1)
    acf = []
    for lag in range(max_lag + 1):
        cov = float(np.dot(centered[: n - lag], centered[lag:])) / n
        acf.append(cov / variance)
    return acf


def effective_sample_size(values: Sequence[float]) -> float:
    """Geyer (1992) initial-positive-sequence ESS estimate.

    Sums autocorrelations over pairs ``rho(2k) + rho(2k+1)`` while the
    pair sums stay positive (guaranteed nonnegative for reversible
    chains), then ``ESS = n / (1 + 2 * sum)``.  Clamped to ``[1, n]``.
    """
    data = np.asarray(values, dtype=float)
    n = len(data)
    if n < 4:
        return float(n)
    max_lag = min(n - 2, 1000)
    acf = autocorrelation(data, max_lag)
    rho_sum = 0.0
    lag = 1
    while lag + 1 <= max_lag:
        pair = acf[lag] + acf[lag + 1]
        if pair <= 0:
            break
        rho_sum += pair
        lag += 2
    ess = n / (1.0 + 2.0 * rho_sum)
    return max(1.0, min(float(n), ess))


def gelman_rubin(chains: Sequence[Sequence[float]]) -> float:
    """Potential scale reduction factor ``R-hat`` across chains.

    Requires at least two chains of equal length >= 2.  Values close to
    1.0 indicate the chains have mixed into the same distribution.
    """
    if len(chains) < 2:
        raise ValueError("need at least two chains")
    arrays = [np.asarray(chain, dtype=float) for chain in chains]
    length = len(arrays[0])
    if length < 2:
        raise ValueError("chains must have length >= 2")
    if any(len(a) != length for a in arrays):
        raise ValueError("chains must have equal length")
    m = len(arrays)
    means = np.array([a.mean() for a in arrays])
    variances = np.array([a.var(ddof=1) for a in arrays])
    w = float(variances.mean())  # within-chain variance
    b = length * float(means.var(ddof=1))  # between-chain variance
    if w == 0:
        return 1.0 if b == 0 else math.inf
    var_plus = (length - 1) / length * w + b / length
    return math.sqrt(var_plus / w)
