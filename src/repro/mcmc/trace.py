"""Probabilistic traces of cpGCL executions.

A *trace* records, in execution order, the outcome of every
probabilistic site a program hit: each ``Choice`` contributes a Boolean
draw and each ``uniform`` a natural-number draw.  Replaying a trace
against the same program from the same initial state reproduces the
terminal state deterministically (cpGCL has no other source of
randomness), which is the property single-site Metropolis-Hastings
relies on: perturb one site, replay the rest.

The paper plans to "compile to MCMC-based sampling processes" to address
the entropy waste of rejection sampling under low-probability
conditioning (Section 1.3 / Table 2); :mod:`repro.mcmc` implements that
future-work direction directly on the cpGCL source semantics, with the
exact ``Fraction`` probability bookkeeping needed for a provably correct
acceptance ratio.
"""

from fractions import Fraction
from typing import Optional, Tuple


class TraceEntry:
    """One probabilistic draw: site kind, distribution parameter, and
    the drawn value together with its prior probability.

    ``kind`` is ``"choice"`` (parameter: bias ``p``; value: bool) or
    ``"uniform"`` (parameter: range ``n``; value: int in ``0..n-1``).
    ``prob`` is the exact prior probability of ``value`` under the
    parameter -- the factor this entry contributes to the trace density.
    """

    __slots__ = ("kind", "param", "value", "prob")

    def __init__(self, kind: str, param, value, prob: Fraction):
        if kind not in ("choice", "uniform"):
            raise ValueError("unknown site kind %r" % (kind,))
        prob = Fraction(prob)
        if not 0 <= prob <= 1:
            raise ValueError("entry probability %s outside [0, 1]" % (prob,))
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "param", param)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "prob", prob)

    def __setattr__(self, *_):
        raise AttributeError("TraceEntry is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, TraceEntry)
            and self.kind == other.kind
            and self.param == other.param
            and self.value == other.value
            and self.prob == other.prob
        )

    def __hash__(self):
        return hash((self.kind, self.param, self.value, self.prob))

    def __repr__(self):
        return "TraceEntry(%r, %r, %r, %s)" % (
            self.kind,
            self.param,
            self.value,
            self.prob,
        )


def choice_entry(p: Fraction, value: bool) -> TraceEntry:
    """A Bernoulli draw: ``value`` with prior probability ``p`` (heads)
    or ``1 - p`` (tails)."""
    p = Fraction(p)
    return TraceEntry("choice", p, bool(value), p if value else 1 - p)


def uniform_entry(n: int, value: int) -> TraceEntry:
    """A uniform draw of ``value`` from ``{0 .. n-1}``."""
    if not 0 <= value < n:
        raise ValueError("uniform value %d outside range %d" % (value, n))
    return TraceEntry("uniform", n, value, Fraction(1, n))


def reuse_entry(kind: str, param, value) -> TraceEntry:
    """Entry for a positionally *reused* value under possibly changed
    parameters.

    Unlike the fresh-draw constructors this never raises: a value made
    impossible by the new parameters (a uniform outside its shrunken
    range, a choice outcome under a degenerate bias) gets probability
    **0**, which zeroes the proposal trace's density so the MH kernel
    rejects the move.  Rejecting -- rather than redrawing the value --
    keeps the single-site proposal symmetric: the reverse move reuses
    the same positions, so forward and reverse fresh-draw sets mirror
    each other and the acceptance ratio of Wingate et al. applies.
    """
    if kind == "choice":
        p = Fraction(param)
        return TraceEntry("choice", p, bool(value), p if value else 1 - p)
    if kind == "uniform":
        if 0 <= value < param:
            return TraceEntry("uniform", param, value, Fraction(1, param))
        return TraceEntry("uniform", param, value, Fraction(0))
    raise ValueError("unknown site kind %r" % (kind,))


class Trace:
    """An immutable sequence of :class:`TraceEntry` values."""

    __slots__ = ("entries",)

    def __init__(self, entries: Tuple[TraceEntry, ...] = ()):
        entries = tuple(entries)
        for entry in entries:
            if not isinstance(entry, TraceEntry):
                raise TypeError("not a trace entry: %r" % (entry,))
        object.__setattr__(self, "entries", entries)

    def __setattr__(self, *_):
        raise AttributeError("Trace is immutable")

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    def __iter__(self):
        return iter(self.entries)

    def __eq__(self, other):
        return isinstance(other, Trace) and self.entries == other.entries

    def __hash__(self):
        return hash(self.entries)

    def density(self) -> Fraction:
        """Prior probability of this exact trace: the product of its
        entries' probabilities (``pi(t)`` in the MH acceptance ratio)."""
        result = Fraction(1)
        for entry in self.entries:
            result *= entry.prob
        return result

    def reuse_value(self, index: int, kind: str) -> Optional[object]:
        """Value to reuse at site ``index`` when re-executing, or ``None``
        when a fresh draw is needed (past the end, or site kind changed).

        Reuse is purely positional and kind-based; legality of the value
        under the *new* parameters is priced by :func:`reuse_entry`
        (probability 0 rejects the move) rather than decided here, which
        keeps forward and reverse proposals symmetric.
        """
        if index >= len(self.entries):
            return None
        entry = self.entries[index]
        if entry.kind != kind:
            return None
        return entry.value

    def __repr__(self):
        return "Trace(%d entries, density=%s)" % (
            len(self.entries),
            self.density(),
        )
