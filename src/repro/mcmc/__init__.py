"""Trace MCMC for cpGCL posteriors (extension).

The paper's Section 1.3 plans to "compile to MCMC-based sampling
processes" to address the entropy cost of rejection sampling under
low-probability conditioning; this subpackage implements that
future-work direction as single-site Metropolis-Hastings over execution
traces:

- :mod:`repro.mcmc.trace` -- recorded probabilistic choices with exact
  rational densities;
- :mod:`repro.mcmc.replay` -- positional-reuse re-execution;
- :mod:`repro.mcmc.kernel` -- the MH transition with an exact-arithmetic
  acceptance test;
- :mod:`repro.mcmc.sampler` -- :class:`MHSampler`, metered like the
  verified pipeline for bits-per-sample comparison;
- :mod:`repro.mcmc.diagnostics` -- ESS / R-hat, because MCMC output is
  correlated and certificate-free (the honest half of the comparison).

Typical use::

    from repro.mcmc import MHSampler

    chain = MHSampler(program, seed=0).run(10_000, burn_in=500)
    print(chain.acceptance_rate(), chain.bits_per_sample())
"""

from repro.mcmc.diagnostics import (
    autocorrelation,
    effective_sample_size,
    gelman_rubin,
)
from repro.mcmc.kernel import (
    ACCEPTED,
    NO_SITES,
    REJECTED_BUDGET,
    REJECTED_IMPOSSIBLE,
    REJECTED_OBSERVATION,
    REJECTED_RATIO,
    StepResult,
    bernoulli_exact,
    initialize,
    mh_step,
)
from repro.mcmc.replay import ReplayBudgetExhausted, ReplayResult, replay
from repro.mcmc.sampler import ChainRecord, MHSampler, rhat, run_chains
from repro.mcmc.trace import (
    Trace,
    TraceEntry,
    choice_entry,
    reuse_entry,
    uniform_entry,
)

__all__ = [
    "ACCEPTED",
    "ChainRecord",
    "MHSampler",
    "NO_SITES",
    "REJECTED_BUDGET",
    "REJECTED_IMPOSSIBLE",
    "REJECTED_OBSERVATION",
    "REJECTED_RATIO",
    "ReplayBudgetExhausted",
    "ReplayResult",
    "StepResult",
    "Trace",
    "TraceEntry",
    "autocorrelation",
    "bernoulli_exact",
    "choice_entry",
    "effective_sample_size",
    "gelman_rubin",
    "initialize",
    "mh_step",
    "replay",
    "reuse_entry",
    "rhat",
    "run_chains",
    "uniform_entry",
]
