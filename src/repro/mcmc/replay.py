"""Trace-replay execution of cpGCL programs.

:func:`replay` runs a program while resolving probabilistic sites
against an old trace: recorded values are reused positionally where
legal, the designated proposal site (and any site where reuse is
impossible) is drawn fresh from its prior, and every resolved entry is
re-recorded with its probability under the *current* parameters.  The
result carries exactly the quantities the Metropolis-Hastings acceptance
ratio needs:

- the new trace and its terminal state,
- whether every ``observe`` passed (the hard-constraint likelihood),
- the forward proposal density ``q_fresh`` (product of prior
  probabilities of freshly drawn values), and
- which old-trace positions were reused (the complement prices the
  reverse proposal).

Positional reuse has the *prefix property*: sites strictly before the
proposal site replay the same values, hence pass through the same
states, hence are reached in the same order -- so the proposal site is
always reached again and the chain is well-defined.
"""

from fractions import Fraction
from typing import FrozenSet, List, Optional, Set

from repro.bits.source import BitSource
from repro.lang.errors import ProbabilityRangeError, UniformRangeError
from repro.lang.interp import draw_bernoulli, draw_uniform
from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)
from repro.lang.values import as_bool, as_fraction, as_int
from repro.mcmc.trace import Trace, choice_entry, reuse_entry, uniform_entry


class ReplayBudgetExhausted(Exception):
    """The step budget ran out mid-replay (possible divergence)."""


class ReplayResult:
    """Outcome of one trace-replay execution.

    ``observed=False`` marks a violated observation; ``impossible=True``
    marks a reused value with probability 0 under the new parameters
    (zero proposal density).  Either way the proposal is rejected and
    ``state`` is ``None``.
    """

    __slots__ = ("trace", "state", "observed", "impossible", "q_fresh", "reused")

    def __init__(
        self,
        trace: Trace,
        state: Optional[State],
        observed: bool,
        impossible: bool,
        q_fresh: Fraction,
        reused: FrozenSet[int],
    ):
        self.trace = trace
        self.state = state
        self.observed = observed
        self.impossible = impossible
        self.q_fresh = q_fresh
        self.reused = reused

    def __repr__(self):
        return "ReplayResult(sites=%d, observed=%s, impossible=%s, q_fresh=%s)" % (
            len(self.trace),
            self.observed,
            self.impossible,
            self.q_fresh,
        )


class _Replayer:
    """Mutable site-resolution context threaded through one execution."""

    def __init__(
        self,
        old_trace: Trace,
        proposal_site: Optional[int],
        source: BitSource,
        max_steps: int,
    ):
        self.old_trace = old_trace
        self.proposal_site = proposal_site
        self.source = source
        self.recorded: List = []
        self.q_fresh = Fraction(1)
        self.reused: Set[int] = set()
        self.steps_left = max_steps

    def tick(self):
        self.steps_left -= 1
        if self.steps_left < 0:
            raise ReplayBudgetExhausted()

    def resolve_choice(self, p: Fraction) -> bool:
        index = len(self.recorded)
        value = None
        if index != self.proposal_site:
            value = self.old_trace.reuse_value(index, "choice")
        if value is None:
            value = draw_bernoulli(p, self.source)
            entry = choice_entry(p, value)
            self.q_fresh *= entry.prob
        else:
            # Reused under possibly changed bias; a now-impossible value
            # zeroes the proposal density and the move is rejected.
            entry = reuse_entry("choice", p, value)
            self.reused.add(index)
        self.recorded.append(entry)
        if entry.prob == 0:
            raise _ZeroDensity()
        return value

    def resolve_uniform(self, n: int) -> int:
        index = len(self.recorded)
        value = None
        if index != self.proposal_site:
            value = self.old_trace.reuse_value(index, "uniform")
        if value is None:
            value = draw_uniform(n, self.source)
            entry = uniform_entry(n, value)
            self.q_fresh *= entry.prob
        else:
            entry = reuse_entry("uniform", n, value)
            self.reused.add(index)
        self.recorded.append(entry)
        if entry.prob == 0:
            raise _ZeroDensity()
        return value


class _ObservationViolated(Exception):
    """Internal: an observe predicate failed during replay."""


class _ZeroDensity(Exception):
    """Internal: a reused value is impossible under the new parameters."""


def replay(
    command: Command,
    sigma: State,
    old_trace: Trace = Trace(),
    proposal_site: Optional[int] = None,
    source: Optional[BitSource] = None,
    max_steps: int = 1_000_000,
) -> ReplayResult:
    """Execute ``command`` from ``sigma`` against ``old_trace``.

    With an empty ``old_trace`` this is forward sampling that records a
    trace.  ``proposal_site`` forces a fresh draw at that position (the
    single-site MH proposal).  Observation failure stops execution
    immediately and is reported via ``observed=False`` (``state`` is then
    ``None``): the proposal carries zero likelihood and MH rejects it.
    """
    if source is None:
        from repro.bits.source import SystemBits

        source = SystemBits()
    context = _Replayer(old_trace, proposal_site, source, max_steps)
    observed, impossible = True, False
    try:
        final = _run(command, sigma, context)
    except _ObservationViolated:
        final = None
        observed = False
    except _ZeroDensity:
        final = None
        impossible = True
    return ReplayResult(
        Trace(tuple(context.recorded)),
        final,
        observed,
        impossible,
        context.q_fresh,
        frozenset(context.reused),
    )


def _run(command: Command, sigma: State, ctx: _Replayer) -> State:
    ctx.tick()
    if isinstance(command, Skip):
        return sigma
    if isinstance(command, Assign):
        return sigma.set(command.name, command.expr.eval(sigma))
    if isinstance(command, Seq):
        return _run(command.second, _run(command.first, sigma, ctx), ctx)
    if isinstance(command, Observe):
        if as_bool(command.pred.eval(sigma)):
            return sigma
        raise _ObservationViolated()
    if isinstance(command, Ite):
        taken = command.then if as_bool(command.cond.eval(sigma)) else command.orelse
        return _run(taken, sigma, ctx)
    if isinstance(command, Choice):
        p = as_fraction(command.prob.eval(sigma))
        if not 0 <= p <= 1:
            raise ProbabilityRangeError(p, sigma)
        branch = command.left if ctx.resolve_choice(p) else command.right
        return _run(branch, sigma, ctx)
    if isinstance(command, Uniform):
        n = as_int(command.range_expr.eval(sigma))
        if n <= 0:
            raise UniformRangeError(n, sigma)
        return sigma.set(command.name, ctx.resolve_uniform(n))
    if isinstance(command, While):
        current = sigma
        while as_bool(command.cond.eval(current)):
            ctx.tick()
            current = _run(command.body, current, ctx)
        return current
    raise TypeError("not a command: %r" % (command,))
