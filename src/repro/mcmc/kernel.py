"""Single-site Metropolis-Hastings kernel over cpGCL traces.

One step perturbs the current trace at a uniformly chosen site: the site
is resampled from its prior, the program is replayed with positional
reuse (:mod:`repro.mcmc.replay`), and the proposal is accepted with the
Metropolis-Hastings ratio

    alpha = min(1,  pi(t') * |t| * q_stale
                   ---------------------------
                    pi(t) * |t'| * q_fresh )

where ``pi`` is the trace density, ``|t|``/``|t'|`` account for the
uniform site choice, ``q_fresh`` prices the values freshly drawn going
``t -> t'``, and ``q_stale`` prices the values of ``t`` that the reverse
move ``t' -> t`` would have to draw fresh (the classic lightweight-PPL
ratio of Wingate et al. 2011, specialized to cpGCL's two site kinds).
Proposals that violate an ``observe`` carry zero likelihood (cpGCL
conditions are hard constraints) and are rejected outright.

All densities are exact ``Fraction``s and the accept/reject draw
compares fair bits against the binary expansion of ``alpha`` --
arithmetic-coding style, expected two bits, no floating-point decision
anywhere in the kernel.
"""

from fractions import Fraction
from typing import Optional, Tuple

from repro.bits.source import BitSource
from repro.lang.interp import draw_uniform
from repro.lang.state import State
from repro.lang.syntax import Command
from repro.mcmc.replay import ReplayBudgetExhausted, replay
from repro.mcmc.trace import Trace

#: Outcome tags attached to each step (for diagnostics).
ACCEPTED = "accepted"
REJECTED_RATIO = "rejected_ratio"
REJECTED_OBSERVATION = "rejected_observation"
REJECTED_IMPOSSIBLE = "rejected_impossible"
REJECTED_BUDGET = "rejected_budget"
NO_SITES = "no_sites"


def bernoulli_exact(alpha: Fraction, source: BitSource) -> bool:
    """Draw Bernoulli(alpha) for an arbitrary rational ``alpha`` by lazy
    comparison of a uniform dyadic stream against ``alpha``'s binary
    expansion.  Uses two fair bits in expectation regardless of the size
    of ``alpha``'s denominator (the MH ratio's denominator grows with
    trace length, so the eager ``bernoulli_tree`` construction is not an
    option here)."""
    alpha = Fraction(alpha)
    if alpha <= 0:
        return False
    if alpha >= 1:
        return True
    while True:
        alpha *= 2
        digit = alpha >= 1
        if digit:
            alpha -= 1
        bit = source.next_bit()
        if bit != digit:
            # First disagreement decides: u < alpha iff u's bit is 0
            # where alpha's expansion has 1.
            return digit and not bit
        if alpha == 0:
            # alpha's expansion ended with an exact match: u == alpha,
            # and P(u < alpha | prefix equal) is 0.
            return False


class StepResult:
    """Chain state after one kernel application."""

    __slots__ = ("trace", "state", "outcome", "alpha")

    def __init__(
        self,
        trace: Trace,
        state: State,
        outcome: str,
        alpha: Optional[Fraction],
    ):
        self.trace = trace
        self.state = state
        self.outcome = outcome
        self.alpha = alpha

    def __repr__(self):
        return "StepResult(%s, alpha=%s)" % (self.outcome, self.alpha)


def mh_step(
    program: Command,
    sigma: State,
    trace: Trace,
    state: State,
    source: BitSource,
    max_steps: int = 1_000_000,
) -> StepResult:
    """One single-site MH transition from ``(trace, state)``.

    ``sigma`` is the program's initial state (the chain's invariant
    distribution is the posterior of ``program`` from ``sigma``).
    Returns the new chain state; on any rejection the old one is kept.
    """
    n_sites = len(trace)
    if n_sites == 0:
        return StepResult(trace, state, NO_SITES, None)
    site = draw_uniform(n_sites, source)
    try:
        proposal = replay(
            program,
            sigma,
            old_trace=trace,
            proposal_site=site,
            source=source,
            max_steps=max_steps,
        )
    except ReplayBudgetExhausted:
        return StepResult(trace, state, REJECTED_BUDGET, None)
    if proposal.impossible:
        # A reused value has probability 0 under the proposal's changed
        # parameters: zero proposal density, the move cannot be reversed.
        return StepResult(trace, state, REJECTED_IMPOSSIBLE, Fraction(0))
    if not proposal.observed:
        return StepResult(trace, state, REJECTED_OBSERVATION, Fraction(0))

    q_stale = Fraction(1)
    for index, entry in enumerate(trace):
        if index not in proposal.reused:
            q_stale *= entry.prob

    new_trace = proposal.trace
    alpha = (
        new_trace.density()
        * n_sites
        * q_stale
        / (trace.density() * len(new_trace) * proposal.q_fresh)
    )
    if bernoulli_exact(alpha, source):
        return StepResult(new_trace, proposal.state, ACCEPTED, alpha)
    return StepResult(trace, state, REJECTED_RATIO, alpha)


def initialize(
    program: Command,
    sigma: State,
    source: BitSource,
    max_steps: int = 1_000_000,
    max_restarts: int = 100_000,
) -> Tuple[Trace, State]:
    """Forward-sample until every observation passes (rejection init --
    the only stage of the MH sampler that pays rejection entropy)."""
    for _attempt in range(max_restarts):
        result = replay(program, sigma, source=source, max_steps=max_steps)
        if result.observed:
            return result.trace, result.state
    raise RuntimeError(
        "no observation-satisfying trace found in %d forward attempts; "
        "the conditioning event may have probability 0" % max_restarts
    )
