"""Shannon entropy and the Knuth-Yao optimality band.

Knuth and Yao (1976) showed that any sampler in the random bit model
needs at least ``H`` expected fair bits per i.i.d. sample, and that an
entropy-optimal sampler needs less than ``H + 2``; the paper's samplers
are *not* guaranteed optimal (Section 1.3) but land near the band in
several cases (Table 3), which the benchmark suite verifies.
"""

import math
from typing import Dict, Hashable, Tuple


def shannon_entropy(pmf: Dict[Hashable, float]) -> float:
    """Entropy in bits (base 2)."""
    total = 0.0
    for probability in pmf.values():
        p = float(probability)
        if p < 0:
            raise ValueError("negative probability %r" % (probability,))
        if p > 0:
            total -= p * math.log2(p)
    return total


def knuth_yao_bounds(pmf: Dict[Hashable, float]) -> Tuple[float, float]:
    """The band ``[H, H + 2)`` within which an entropy-optimal sampler's
    expected bit consumption must fall."""
    h = shannon_entropy(pmf)
    return h, h + 2.0
