"""Divergence measures used by the evaluation (Section 5).

All three compare an empirical distribution ``p`` against the true
distribution ``q``, both given as mappings from outcomes to
probabilities:

- total variation distance ``TV = 1/2 sum |p - q|``;
- Kullback-Leibler divergence ``KL(p || q) = sum p log(p/q)`` (Kullback
  and Leibler 1951) -- terms with ``p = 0`` contribute 0; ``p > 0`` with
  ``q = 0`` makes the divergence infinite;
- Symmetric Mean Absolute Percentage Error (Armstrong 1985)
  ``SMAPE = 1/n sum |p - q| / (p + q)`` over the support union,
  following the paper's use of it as a relative accuracy measure.
"""

import math
from typing import Dict, Hashable

Pmf = Dict[Hashable, float]


def _support(p: Pmf, q: Pmf):
    return set(p) | set(q)


def tv_distance(p: Pmf, q: Pmf) -> float:
    """Total variation distance ``1/2 * L1``."""
    return 0.5 * sum(
        abs(float(p.get(x, 0.0)) - float(q.get(x, 0.0)))
        for x in _support(p, q)
    )


def kl_divergence(p: Pmf, q: Pmf) -> float:
    """``KL(p || q)`` in nats; +inf when p puts mass outside q's support."""
    total = 0.0
    for x in _support(p, q):
        px = float(p.get(x, 0.0))
        if px == 0.0:
            continue
        qx = float(q.get(x, 0.0))
        if qx == 0.0:
            return math.inf
        total += px * math.log(px / qx)
    return total


def smape(p: Pmf, q: Pmf) -> float:
    """Symmetric mean absolute percentage error over the support union."""
    support = _support(p, q)
    if not support:
        raise ValueError("empty support")
    total = 0.0
    for x in support:
        px = float(p.get(x, 0.0))
        qx = float(q.get(x, 0.0))
        if px + qx == 0.0:
            continue
        total += abs(px - qx) / (px + qx)
    return total / len(support)
