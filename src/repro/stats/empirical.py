"""Empirical distributions from sample sets."""

from collections import Counter
from typing import Dict, Hashable, Iterable


def empirical_pmf(values: Iterable[Hashable]) -> Dict[Hashable, float]:
    """Relative frequencies of the observed outcomes."""
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        raise ValueError("no samples")
    return {value: count / total for value, count in counts.items()}
