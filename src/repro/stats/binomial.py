"""Exact binomial confidence bounds (Clopper-Pearson).

The sampler test suite asserts that observed frequencies match the
exact probabilities computed by ``cwp``/``twp``.  Ad-hoc tolerances
("within 0.02 of 1/6") conflate sample noise with real bugs; the
Clopper-Pearson interval instead inverts the exact binomial CDF, so an
assertion "the true probability lies in the CP interval at confidence
``1 - alpha``" has a *known* false-alarm rate of at most ``alpha`` per
check -- and with seeded streams each check is fully deterministic.

The interval endpoints are quantiles of Beta distributions::

    lower(k, n) = BetaInv(alpha/2;     k,     n - k + 1)
    upper(k, n) = BetaInv(1 - alpha/2; k + 1, n - k)

computed here from scratch (no scipy in this environment) via the
continued-fraction expansion of the regularized incomplete beta
function (Lentz's algorithm, cf. Numerical Recipes 6.4) and bisection
for the inverse.  ``Verifying Sampling Algorithms via Distributional
Invariants`` (Zilken et al. 2025) uses the same style of principled
distributional check for extracted samplers.
"""

import math
from typing import Tuple

__all__ = [
    "betainc",
    "betainc_inv",
    "clopper_pearson",
    "clopper_pearson_lower",
    "clopper_pearson_upper",
]

_MAX_ITER = 300
_EPS = 1e-15
_TINY = 1e-300


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITER + 1):
        m2 = 2 * m
        # Even step.
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        # Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            return h
    return h  # converged to float precision in practice long before this


def betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)`` for ``a, b > 0``."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1], got %r" % (x,))
    if a <= 0.0 or b <= 0.0:
        raise ValueError("shape parameters must be positive")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    log_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(log_front)
    # Use the expansion on the side where it converges fast.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def betainc_inv(a: float, b: float, p: float) -> float:
    """The Beta quantile: ``x`` with ``I_x(a, b) = p`` (bisection)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1], got %r" % (p,))
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if betainc(a, b, mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= _EPS * max(1.0, mid):
            break
    return 0.5 * (lo + hi)


def clopper_pearson(k: int, n: int, alpha: float = 1e-9) -> Tuple[float, float]:
    """The exact two-sided CP interval for ``k`` successes in ``n`` trials.

    Coverage is at least ``1 - alpha``; the default ``alpha`` makes a
    seeded test's implicit "this seed is not astronomically unlucky"
    assumption explicit (one in a billion).
    """
    _check_counts(k, n)
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1), got %r" % (alpha,))
    half = alpha / 2.0
    lower = 0.0 if k == 0 else betainc_inv(k, n - k + 1, half)
    upper = 1.0 if k == n else betainc_inv(k + 1, n - k, 1.0 - half)
    return lower, upper


def clopper_pearson_upper(k: int, n: int, alpha: float = 0.05) -> float:
    """One-sided upper bound: ``P(p > bound) <= alpha``.

    For ``k = 0`` this reduces to the closed form ``1 - alpha**(1/n)``
    (the "rule of three" generalization).
    """
    _check_counts(k, n)
    if k == n:
        return 1.0
    return betainc_inv(k + 1, n - k, 1.0 - alpha)


def clopper_pearson_lower(k: int, n: int, alpha: float = 0.05) -> float:
    """One-sided lower bound: ``P(p < bound) <= alpha``."""
    _check_counts(k, n)
    if k == 0:
        return 0.0
    return betainc_inv(k, n - k + 1, alpha)


def _check_counts(k: int, n: int) -> None:
    if n <= 0:
        raise ValueError("need a positive trial count, got %r" % (n,))
    if not 0 <= k <= n:
        raise ValueError("successes %r outside [0, %d]" % (k, n))
