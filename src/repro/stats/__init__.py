"""Statistics substrate: the ``analyze.py`` side of the paper's evaluation.

Divergence measures (TV, KL, SMAPE), empirical distributions, the exact
true posteriors of every evaluated program, and Shannon-entropy /
Knuth-Yao bounds.
"""

from repro.stats.divergence import kl_divergence, smape, tv_distance
from repro.stats.empirical import empirical_pmf
from repro.stats.distributions import (
    bernoulli_exp_pmf,
    bernoulli_pmf,
    discrete_gaussian_pmf,
    discrete_laplace_pmf,
    geometric_primes_pmf,
    uniform_pmf,
)
from repro.stats.entropy import knuth_yao_bounds, shannon_entropy
from repro.stats.binomial import (
    betainc,
    betainc_inv,
    clopper_pearson,
    clopper_pearson_lower,
    clopper_pearson_upper,
)

__all__ = [
    "bernoulli_exp_pmf",
    "bernoulli_pmf",
    "betainc",
    "betainc_inv",
    "clopper_pearson",
    "clopper_pearson_lower",
    "clopper_pearson_upper",
    "discrete_gaussian_pmf",
    "discrete_laplace_pmf",
    "empirical_pmf",
    "geometric_primes_pmf",
    "kl_divergence",
    "knuth_yao_bounds",
    "shannon_entropy",
    "smape",
    "tv_distance",
    "uniform_pmf",
]
