"""Exact true posteriors for every program in the evaluation (Section 5).

Each function returns a pmf as a dict over an effectively complete
support (tails are truncated once the omitted mass is below ``tail_eps``
and the result renormalized, which is what comparing against 100k-sample
empirical distributions requires).

Note on the geometric-primes posterior: the paper states
``Pr(X = h | h prime) = (1-p)^(h+1) / sum_k (1-p)^(k+1)`` (Section 5.2),
but the program of Figure 1a continues the loop with probability ``p``,
so ``P(h) = p^h (1 - p)`` and the conditional posterior is proportional
to ``p^h``.  The paper's own Table 2 means (e.g. mu_h = 3.24 at p = 2/3,
2.19 at p = 1/5) match ``p^h``, not ``(1-p)^(h+1)`` (the two coincide at
p = 1/2); we implement and document the ``p^h`` form (see EXPERIMENTS.md).
"""

import math
from fractions import Fraction
from typing import Dict

from repro.lang.builtins import is_prime


def bernoulli_pmf(p) -> Dict[bool, float]:
    """Bernoulli(p) over {True, False}."""
    p = float(p)
    if not 0 <= p <= 1:
        raise ValueError("bias outside [0, 1]")
    return {True: p, False: 1.0 - p}


def uniform_pmf(n: int, start: int = 0) -> Dict[int, float]:
    """Uniform over ``{start, .., start + n - 1}``."""
    if n <= 0:
        raise ValueError("need a positive range")
    return {start + i: 1.0 / n for i in range(n)}


def geometric_primes_pmf(p, tail_eps: float = 1e-14) -> Dict[int, float]:
    """Posterior over prime ``h`` for the program of Figure 1a:
    ``P(h) ∝ p^h`` restricted to the primes (see module docstring)."""
    p = float(p)
    if not 0 < p < 1:
        raise ValueError("bias must lie in (0, 1)")
    weights: Dict[int, float] = {}
    h = 2
    # Truncate once the entire remaining geometric tail is negligible
    # relative to the accumulated mass.
    total = 0.0
    while True:
        if is_prime(h):
            weights[h] = p ** h
            total += weights[h]
        tail = p ** (h + 1) / (1.0 - p)
        if total > 0 and tail < tail_eps * total:
            break
        h += 1
    return {h: w / total for h, w in weights.items()}


def bernoulli_exp_pmf(gamma) -> Dict[bool, float]:
    """Bernoulli(exp(-gamma)) over {True, False} (Figure 11)."""
    gamma = float(gamma)
    if gamma < 0:
        raise ValueError("gamma must be nonnegative")
    p = math.exp(-gamma)
    return {True: p, False: 1.0 - p}


def discrete_laplace_pmf(s: int, t: int, tail_eps: float = 1e-14) -> Dict[int, float]:
    """``Lap_Z(t/s)``: ``P(x) = (e^(s/t) - 1)/(e^(s/t) + 1) * e^(-|x| s/t)``
    (Canonne et al. 2020; Figure 12 samples this with scale ``t/s``)."""
    if s <= 0 or t <= 0:
        raise ValueError("s and t must be positive integers")
    rate = s / t  # 1/b for scale b = t/s
    norm = (math.exp(rate) - 1.0) / (math.exp(rate) + 1.0)
    pmf: Dict[int, float] = {0: norm}
    x = 1
    while True:
        mass = norm * math.exp(-rate * x)
        pmf[x] = mass
        pmf[-x] = mass
        # Remaining two-sided tail of the geometric envelope:
        tail = 2.0 * norm * math.exp(-rate * (x + 1)) / (1.0 - math.exp(-rate))
        if tail < tail_eps:
            break
        x += 1
    total = sum(pmf.values())
    return {k: v / total for k, v in pmf.items()}


def discrete_gaussian_pmf(mu, sigma, tail_eps: float = 1e-14) -> Dict[int, float]:
    """``N_Z(mu, sigma^2)``: ``P(x) ∝ exp(-(x - mu)^2 / (2 sigma^2))``
    over the integers (Canonne et al. 2020; Figure 13)."""
    mu = float(Fraction(mu)) if not isinstance(mu, float) else mu
    sigma = float(Fraction(sigma)) if not isinstance(sigma, float) else sigma
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    center = int(round(mu))
    weights: Dict[int, float] = {}
    radius = 0
    while True:
        for x in {center - radius, center + radius}:
            weights[x] = math.exp(-((x - mu) ** 2) / (2.0 * sigma * sigma))
        # Gaussian tails decay superexponentially; stop a comfortable
        # number of standard deviations out.
        if radius > 8 * sigma + 2 and weights[center + radius] < tail_eps:
            break
        radius += 1
    total = sum(weights.values())
    return {x: w / total for x, w in weights.items()}
