"""The high-assurance uniform-sampling package (Section 5.3).

The paper ships a Python 3 package exposing verified uniform samplers
extracted from Coq as a drop-in replacement for ad-hoc uniform sampling;
this subpackage mirrors its interface on top of the reproduction's
pipeline.
"""

from repro.uniform.api import ZarUniform, uniform_int, uniform_ints
from repro.uniform.categorical import ZarCategorical, categorical_tree

__all__ = [
    "ZarCategorical",
    "ZarUniform",
    "categorical_tree",
    "uniform_int",
    "uniform_ints",
]
