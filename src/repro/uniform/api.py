"""``ZarUniform``: the paper's verified uniform-sampler interface.

The paper's Python package wraps samplers extracted from the verified
Coq pipeline behind a minimal API (build once for a range ``n``, then
draw samples).  Here the sampler is the same pipeline applied to the
``uniform_tree`` construction, with the correctness argument replaced by
the executable checks of :mod:`repro.verify` (Lemma 3.6 is verified
exactly at construction time for small ranges).

Sampling runs on the batch engine (:mod:`repro.engine`): the tree is
lowered once into a flat node table at construction; ``sample``/
``samples`` step it against the instance's metered bit source (bit-for-
bit what the reference trampoline would consume), and ``batch`` draws
large sample counts through the vectorized driver.

Example::

    die = ZarUniform(6)
    rolls = die.samples(10, seed=1)
"""

from typing import Iterator, List, Optional

from repro.bits.source import BitSource, CountingBits, SystemBits
from repro.cftree.semantics import twp
from repro.cftree.uniform import uniform_tree
from repro.engine.api import BatchSampler
from repro.semantics.extreal import ExtReal
from fractions import Fraction


class ZarUniform:
    """A sampler drawing uniformly from ``{0, .., n-1}``.

    ``validate=True`` (default for ``n <= 512``) checks Lemma 3.6
    exactly on the constructed tree before any sampling: every outcome
    has ``twp`` probability exactly ``1/n``.
    """

    def __init__(
        self,
        n: int,
        seed: Optional[int] = None,
        validate: Optional[bool] = None,
        coalesce: str = "loopback",
    ):
        if n <= 0:
            raise ValueError("range must be positive")
        self.n = n
        self._tree = uniform_tree(n, coalesce)
        if validate is None:
            validate = n <= 512
        if validate:
            self._validate()
        # Route through the staged pipeline with a synthetic content key
        # (the rejection wrapper contains a Fix closure, so the tree
        # itself is undigestable): every ZarUniform(n) in this process --
        # and, with a disk cache configured, across processes -- shares
        # one compiled node table.
        from repro.compiler.pipeline import compile_tree

        self._compiled = compile_tree(
            self._tree,
            key_parts=("uniform_tree", n, coalesce),
            coalesce=coalesce,
        )
        self._sampler = BatchSampler(self._compiled.table)
        self._source = CountingBits(SystemBits(seed))

    def _validate(self) -> None:
        share = ExtReal(Fraction(1, self.n))
        for outcome in range(self.n):
            mass = twp(self._tree, lambda v, o=outcome: 1 if v == o else 0)
            if mass != share:
                raise AssertionError(
                    "uniform_tree(%d) gives outcome %d probability %s != 1/%d"
                    % (self.n, outcome, mass, self.n)
                )

    def sample(self, source: Optional[BitSource] = None) -> int:
        """Draw one value in ``{0, .., n-1}``."""
        return self._sampler.sample(source or self._source)

    def samples(self, count: int, source: Optional[BitSource] = None) -> List[int]:
        """Draw ``count`` values (sequentially, metering the source)."""
        draw = self._sampler.sample
        chosen = source or self._source
        return [draw(chosen) for _ in range(count)]

    def batch(self, count: int, seed: Optional[int] = None) -> List[int]:
        """Draw ``count`` values through the vectorized batch driver.

        Unlike :meth:`samples` this bypasses (and does not meter) the
        instance's bit source: bits come from a pooled buffer seeded
        with ``seed``.
        """
        return self._sampler.samples(count, seed=seed)

    def stream(self, source: Optional[BitSource] = None) -> Iterator[int]:
        """An endless iterator of samples."""
        while True:
            yield self.sample(source)

    @property
    def bits_consumed(self) -> int:
        """Total fair bits drawn from the built-in source so far."""
        return self._source.count

    @property
    def engine_stats(self):
        """Node-table statistics of the lowered sampler."""
        return self._sampler.stats()

    @property
    def pipeline_stats(self):
        """Per-stage statistics of the compilation (see repro.compiler)."""
        return self._compiled.stats


def uniform_int(n: int, seed: Optional[int] = None) -> int:
    """One-shot verified uniform draw from ``{0, .., n-1}``."""
    return ZarUniform(n, seed=seed).sample()


def uniform_ints(n: int, count: int, seed: Optional[int] = None) -> List[int]:
    """``count`` verified uniform draws from ``{0, .., n-1}``."""
    return ZarUniform(n, seed=seed).samples(count)
