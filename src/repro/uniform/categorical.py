"""Verified categorical sampling: the natural extension of Section 5.3.

``ZarCategorical(weights)`` samples outcome ``i`` with probability
``w_i / sum(w)`` exactly, in the random bit model, through the same
verified machinery as the rest of the pipeline: the distribution is
expressed as a chain of conditional Bernoulli choices (stick breaking),
compiled to a CF tree, debiased, and tied -- and, like ``ZarUniform``,
validated at construction by checking every outcome's ``twp`` mass
exactly against the target.

This covers FLDR's use case (integer-weighted dice) with the pipeline's
correctness story; the Table 4 benchmark compares their entropy costs.
"""

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.bits.source import BitSource, CountingBits, SystemBits
from repro.cftree.debias import debias
from repro.cftree.semantics import twp
from repro.cftree.tree import CFTree, Choice, Leaf
from repro.engine.api import BatchSampler
from repro.semantics.extreal import ExtReal


def categorical_tree(weights: Sequence[int]) -> CFTree:
    """A CF tree over outcome indices with exact probabilities
    ``w_i / total``, built by stick breaking:

    ``Choice(w_0/total, Leaf 0, Choice(w_1/rest, Leaf 1, ...))``

    Zero-weight outcomes are skipped entirely (they receive no tree
    mass, matching their probability).
    """
    if not weights:
        raise ValueError("need at least one outcome")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be nonnegative")
    total = sum(weights)
    if total == 0:
        raise ValueError("weights must not all be zero")
    positive: List[int] = [
        index for index, weight in enumerate(weights) if weight > 0
    ]
    return _stick(positive, list(weights), total)


def _stick(indices: List[int], weights: List[int], remaining: int) -> CFTree:
    index = indices[0]
    if len(indices) == 1:
        return Leaf(index)
    head = Fraction(weights[index], remaining)
    return Choice(
        head,
        Leaf(index),
        _stick(indices[1:], weights, remaining - weights[index]),
    )


class ZarCategorical:
    """A verified sampler for integer-weighted categorical distributions."""

    def __init__(
        self,
        weights: Sequence[int],
        seed: Optional[int] = None,
        validate: Optional[bool] = None,
        coalesce: str = "loopback",
    ):
        self.weights = list(weights)
        self.total = sum(self.weights)
        tree = categorical_tree(self.weights)
        self._tree = debias(tree, coalesce)
        if validate is None:
            validate = len(self.weights) <= 256
        if validate:
            self._validate()
        # Already debiased above; pipeline the tree straight to an
        # engine table (CSE + deduplicated lowering), content-addressed
        # by the weight vector so equal distributions share artifacts.
        from repro.compiler.pipeline import compile_tree

        self._compiled = compile_tree(
            self._tree,
            key_parts=("categorical", tuple(self.weights), coalesce),
            passes=("cse",),
            coalesce=coalesce,
        )
        self._sampler = BatchSampler(self._compiled.table)
        self._source = CountingBits(SystemBits(seed))

    def _validate(self) -> None:
        """Exact correctness check: twp mass of each outcome equals
        ``w_i / total`` on the *debiased* tree (so the check covers the
        bias-elimination step too, not just stick breaking)."""
        for index, weight in enumerate(self.weights):
            expected = ExtReal(Fraction(weight, self.total))
            mass = twp(self._tree, lambda v, i=index: 1 if v == i else 0)
            if mass != expected:
                raise AssertionError(
                    "categorical outcome %d has probability %s, expected %s"
                    % (index, mass, expected)
                )

    def pmf(self):
        return {
            index: Fraction(weight, self.total)
            for index, weight in enumerate(self.weights)
            if weight
        }

    def sample(self, source: Optional[BitSource] = None) -> int:
        return self._sampler.sample(source or self._source)

    def samples(self, count: int, source: Optional[BitSource] = None):
        draw = self._sampler.sample
        chosen = source or self._source
        return [draw(chosen) for _ in range(count)]

    def batch(self, count: int, seed: Optional[int] = None):
        """Vectorized draws off a pooled buffer (source not metered)."""
        return self._sampler.samples(count, seed=seed)

    @property
    def bits_consumed(self) -> int:
        return self._source.count

    @property
    def pipeline_stats(self):
        """Per-stage statistics of the compilation (see repro.compiler)."""
        return self._compiled.stats
