"""Zar reproduction: formally specified samplers from probabilistic programs.

A from-scratch Python reproduction of *Formally Verified Samplers from
Probabilistic Programs with Loops and Conditioning* (PLDI 2023): the cpGCL
language and its conditional weakest pre-expectation semantics, the
choice-fix tree intermediate representation, debiasing to the random bit
model, interaction-tree samplers, and the empirical-validation harness.

Quickstart::

    from fractions import Fraction
    from repro import (
        State, cpgcl_to_itree, collect, cwp, geometric_primes, parse_program,
    )

    prog = geometric_primes(Fraction(2, 3))       # Figure 1a
    sampler = cpgcl_to_itree(prog, State())        # Definition 3.13
    samples = collect(sampler, 10000, seed=0, extract=lambda s: s["h"])
    exact = cwp(prog, lambda s: 1 if s["h"] == 2 else 0, State())

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

__version__ = "1.0.0"

from repro.lang import (
    Assign,
    Choice,
    Command,
    Expr,
    Ite,
    Lit,
    Observe,
    Seq,
    Skip,
    State,
    Uniform,
    Var,
    While,
    bernoulli_exponential,
    bernoulli_exponential_0_1,
    check_program,
    dueling_coins,
    flip,
    gaussian,
    geometric_primes,
    hare_tortoise,
    laplace,
    n_sided_die,
    parse_expr,
    parse_program,
    pretty,
    seq,
)
from repro.semantics import (
    ExtReal,
    LoopOptions,
    cwp,
    wlp,
    wp,
)
from repro.cftree import (
    bernoulli_tree,
    compile_cpgcl,
    debias,
    elim_choices,
    expected_bits,
    tcwp,
    twlp,
    twp,
    uniform_tree,
)
from repro.engine import BatchSampler
from repro.itree import cpgcl_to_itree, itwp, itwp_tied, tie_itree, to_itree_open
from repro.sampler import collect, preimage, run_itree, run_row
from repro.uniform import ZarUniform
from repro.bits import CountingBits, ReplayBits, SystemBits
from repro.inference import (
    Interval,
    Posterior,
    infer_posterior,
    infer_query,
    refine_until,
)
from repro.mcmc import MHSampler

__all__ = [
    "Assign",
    "BatchSampler",
    "Choice",
    "Command",
    "CountingBits",
    "Expr",
    "ExtReal",
    "Interval",
    "Ite",
    "Lit",
    "LoopOptions",
    "MHSampler",
    "Observe",
    "Posterior",
    "ReplayBits",
    "Seq",
    "Skip",
    "State",
    "SystemBits",
    "Uniform",
    "Var",
    "While",
    "ZarUniform",
    "bernoulli_exponential",
    "bernoulli_exponential_0_1",
    "bernoulli_tree",
    "check_program",
    "collect",
    "compile_cpgcl",
    "cpgcl_to_itree",
    "cwp",
    "debias",
    "dueling_coins",
    "elim_choices",
    "expected_bits",
    "flip",
    "gaussian",
    "geometric_primes",
    "hare_tortoise",
    "infer_posterior",
    "infer_query",
    "itwp",
    "itwp_tied",
    "laplace",
    "n_sided_die",
    "parse_expr",
    "parse_program",
    "preimage",
    "pretty",
    "refine_until",
    "run_itree",
    "run_row",
    "seq",
    "tcwp",
    "tie_itree",
    "to_itree_open",
    "twlp",
    "twp",
    "uniform_tree",
    "wlp",
    "wp",
]
