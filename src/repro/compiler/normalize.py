"""The normalize stage: structural hash-consing of commands and states.

``compile_cpgcl`` memoizes per ``(command, state, coalesce)``.  The seed
keyed that memo on ``id(command)``, which is fragile: an id is only
unique among *live* objects, so the cache had to pin every keyed command
alive forever to stay sound, and two structurally equal programs could
never share work.  The normalize stage replaces address identity with
*structural* identity: an interner maps every command (and state) to a
canonical representative, so equality-by-content becomes equality-by-
``is`` and downstream memo tables can key on the canonical object
directly.

The interner pays one deep structural hash the first time it sees an
object, then answers by address (an id-keyed side table that holds a
strong reference to the keyed object, so the id cannot be recycled while
the entry lives).  The table is bounded; overflowing drops the oldest
half, which costs re-interning but never correctness (a stale canonical
object is still structurally equal to its replacements).
"""

from typing import Dict, Tuple

from repro.lang.state import State
from repro.lang.syntax import Command


class Interner:
    """Structural hash-consing with an id-keyed fast path."""

    def __init__(self, capacity: int = 1_048_576):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        # Structural table: object -> canonical representative.  Keyed
        # by the object itself (structural __hash__/__eq__).
        self._canon: Dict[object, object] = {}
        # Fast path: id -> (keyed object, canonical).  The stored
        # reference keeps the keyed object alive, so the id is stable.
        self._by_id: Dict[int, Tuple[object, object]] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, obj):
        """The canonical representative structurally equal to ``obj``."""
        entry = self._by_id.get(id(obj))
        if entry is not None and entry[0] is obj:
            self.hits += 1
            return entry[1]
        canonical = self._canon.get(obj)
        if canonical is None:
            self.misses += 1
            if len(self._canon) >= self._capacity:
                # Drop the oldest half rather than clearing: a full
                # clear would change the identity of *every* canonical
                # object at once and cold-start each downstream memo
                # keyed on those ids (the compile cache foremost).
                canon = self._canon
                for key in list(canon)[: len(canon) // 2]:
                    del canon[key]
                self._by_id.clear()
            self._canon[obj] = obj
            canonical = obj
        else:
            self.hits += 1
        # The fast path must be bounded independently: loop-heavy
        # sampling interns a fresh (structurally recurring) state per
        # iteration, so _canon stays tiny while _by_id -- which pins its
        # keys alive -- would otherwise grow with every sample drawn.
        if len(self._by_id) >= self._capacity:
            self._by_id.clear()
        self._by_id[id(obj)] = (obj, canonical)
        return canonical

    def __len__(self) -> int:
        return len(self._canon)

    def clear(self) -> None:
        self._canon.clear()
        self._by_id.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._canon),
        }


#: Process-wide interners backing the default pipeline and the
#: ``compile_cpgcl`` memo keys.
_COMMANDS = Interner()
_STATES = Interner()


def normalize_command(command: Command) -> Command:
    """Canonical representative of ``command`` (structural identity)."""
    if not isinstance(command, Command):
        raise TypeError("expected a cpGCL command, got %r" % (command,))
    return _COMMANDS.intern(command)


def normalize_state(sigma: State) -> State:
    """Canonical representative of ``sigma``."""
    if not isinstance(sigma, State):
        raise TypeError("expected a State, got %r" % (sigma,))
    return _STATES.intern(sigma)


def normalize_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss counters of the process-wide interners."""
    return {"commands": _COMMANDS.stats(), "states": _STATES.stats()}
