"""Liveness-driven loop-state narrowing (``narrow_command``).

The open-table engine interns one node-table row per distinct loop
state.  Loop bodies that use scratch variables -- the discrete-Gaussian
sampler of Figure 13 burns through ``a``/``b``/``u``/``v``/``ol``/... --
leave those temporaries bound in the state at the loop head, so two
iterations that agree on every variable the program will ever read again
still look distinct to the interner.  On the Figure 9b hare-tortoise
race this pollution is a ~22x state-space blowup: ~48k distinct full
states versus ~2.2k projected onto the live ``{t0, time, hare,
tortoise}``.

``narrow_command`` removes the pollution at the *command* level: a
standard backward liveness analysis finds, for every ``while`` loop, the
variables assigned in its body but **dead at the loop head** (not read
by the guard, the body before reassignment, or anything after the
loop), and inserts ``v := 0`` resets before the loop and at the body
tail.  Because :class:`repro.lang.state.State` canonically drops
integer-0 bindings, a reset variable is *absent* from the state, so all
iterations collapse onto the live projection.

Why this preserves sampling exactly:

- resets are plain assignments -- they consume no random bits and do not
  change control flow;
- a reset variable is dead at every reset point, so no later read can
  observe the 0 (reads inside *dead* assignments are conservatively kept
  live, so an expression that could fault keeps its inputs un-reset);
- the transform runs on the command, before compilation, so the
  trampoline and the engine sample the *same* narrowed program and stay
  bit-for-bit identical (the differential suite pins this).

The one behavioral caveat: the transform changes *final states* (dead
temporaries read as 0 afterwards), and downstream leaf-coalescing
(``elim_choices``) may merge branches that only differed in dead
temporaries -- strictly fewer random bits, never different live values.
On the benchmark programs no such merge triggers, so recorded paper bit
counts are unchanged; the narrowing is nonetheless **opt-in** (the
``narrow`` flag of ``run_row``/``collect_auto``), not a default pass.

``Opaque`` expressions with undeclared free variables (the ``"*"``
token) poison the analysis to "everything is live", so narrowing
degrades to the identity on programs it cannot see through.
"""

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.lang.expr import Expr, Lit
from repro.lang.syntax import (
    Assign,
    Choice,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)

__all__ = ["narrow_command", "live_before", "command_footprint", "TOP"]

#: The "all variables live" lattice top (an unanalyzable read was seen).
TOP = None

_Live = Optional[FrozenSet[str]]  # frozenset of names, or TOP


def _reads(expr: Expr) -> _Live:
    names = expr.free_vars()
    if "*" in names:
        return TOP
    return names


def _union(*parts: _Live) -> _Live:
    out: FrozenSet[str] = frozenset()
    for part in parts:
        if part is TOP:
            return TOP
        out |= part
    return out


def assigned_vars(command: Command) -> FrozenSet[str]:
    """All syntactic assignment targets (``:=`` and ``<~``) in ``command``."""
    if isinstance(command, (Skip, Observe)):
        return frozenset()
    if isinstance(command, (Assign, Uniform)):
        return frozenset((command.name,))
    if isinstance(command, Seq):
        return assigned_vars(command.first) | assigned_vars(command.second)
    if isinstance(command, Ite):
        return assigned_vars(command.then) | assigned_vars(command.orelse)
    if isinstance(command, Choice):
        return assigned_vars(command.left) | assigned_vars(command.right)
    if isinstance(command, While):
        return assigned_vars(command.body)
    raise TypeError("not a command: %r" % (command,))


def command_footprint(command: Command) -> _Live:
    """Every variable ``command`` can read *or* write (syntactically).

    Used to mark ``while`` loops for the engine's subroutine-call
    mechanism: a loop whose guard+body footprint is ``F`` never touches
    variables outside ``F``, so the engine may run it on the state's
    ``F``-projection and splice the untouched frame back in afterwards.
    Returns ``TOP`` (``None``) when an ``Opaque`` expression hides its
    reads -- such loops stay uncallable.
    """
    if isinstance(command, Skip):
        return frozenset()
    if isinstance(command, (Assign, Uniform)):
        expr = command.expr if isinstance(command, Assign) else command.range_expr
        return _union(frozenset((command.name,)), _reads(expr))
    if isinstance(command, Observe):
        return _reads(command.pred)
    if isinstance(command, Seq):
        return _union(
            command_footprint(command.first), command_footprint(command.second)
        )
    if isinstance(command, Ite):
        return _union(
            _reads(command.cond),
            command_footprint(command.then),
            command_footprint(command.orelse),
        )
    if isinstance(command, Choice):
        return _union(
            _reads(command.prob),
            command_footprint(command.left),
            command_footprint(command.right),
        )
    if isinstance(command, While):
        return _union(_reads(command.cond), command_footprint(command.body))
    raise TypeError("not a command: %r" % (command,))


def live_before(command: Command, live_after: _Live) -> _Live:
    """Backward liveness transfer: variables whose value before
    ``command`` may still be read, given the set live after it.

    Guard, bias, and range expressions are always live (they steer
    control flow and bit consumption); so are the inputs of *dead*
    assignments (the expression is still evaluated and must not fault
    differently).  Only the kill of an assignment target is exploited.
    """
    if live_after is TOP:
        return TOP
    if isinstance(command, Skip):
        return live_after
    if isinstance(command, (Assign, Uniform)):
        expr = command.expr if isinstance(command, Assign) else command.range_expr
        return _union(live_after - {command.name}, _reads(expr))
    if isinstance(command, Observe):
        return _union(live_after, _reads(command.pred))
    if isinstance(command, Seq):
        return live_before(command.first, live_before(command.second, live_after))
    if isinstance(command, Ite):
        return _union(
            _reads(command.cond),
            live_before(command.then, live_after),
            live_before(command.orelse, live_after),
        )
    if isinstance(command, Choice):
        return _union(
            _reads(command.prob),
            live_before(command.left, live_after),
            live_before(command.right, live_after),
        )
    if isinstance(command, While):
        return _loop_head_live(command, live_after)
    raise TypeError("not a command: %r" % (command,))


def _loop_head_live(loop: While, live_after: _Live) -> _Live:
    """The liveness fixpoint at a loop head.

    ``L = live_after ∪ reads(guard) ∪ live_before(body, L)`` -- monotone
    over a finite variable universe, so the iteration terminates (and
    collapses immediately on TOP).
    """
    live = _union(live_after, _reads(loop.cond))
    while live is not TOP:
        step = _union(live, live_before(loop.body, live))
        if step == live:
            break
        live = step
    return live


def _resets(names: Iterable[str]) -> Optional[Command]:
    chain: Optional[Command] = None
    for name in sorted(names):
        assign = Assign(name, Lit(0))
        chain = assign if chain is None else Seq(chain, assign)
    return chain


def _rewrite(
    command: Command, live_after: _Live, universe: FrozenSet[str]
) -> Tuple[Command, _Live]:
    """One backward pass computing liveness and inserting loop resets.

    ``universe`` is every assignment target of the whole program: the
    reset candidates at a loop head are *all* of them that are dead
    there, not just the targets of that loop's own body -- scratch left
    behind by an earlier phase (laplace temporaries surviving into the
    accept-loop of the Figure 13 Gaussian) pollutes inner loop heads
    just as much as the loop's own scratch does.
    """
    if isinstance(command, (Skip, Assign, Uniform, Observe)):
        return command, live_before(command, live_after)
    if isinstance(command, Seq):
        second, mid = _rewrite(command.second, live_after, universe)
        first, live = _rewrite(command.first, mid, universe)
        if first is command.first and second is command.second:
            return command, live
        return Seq(first, second), live
    if isinstance(command, Ite):
        then, live_t = _rewrite(command.then, live_after, universe)
        orelse, live_e = _rewrite(command.orelse, live_after, universe)
        live = _union(_reads(command.cond), live_t, live_e)
        if then is command.then and orelse is command.orelse:
            return command, live
        return Ite(command.cond, then, orelse), live
    if isinstance(command, Choice):
        left, live_l = _rewrite(command.left, live_after, universe)
        right, live_r = _rewrite(command.right, live_after, universe)
        live = _union(_reads(command.prob), live_l, live_r)
        if left is command.left and right is command.right:
            return command, live
        return Choice(command.prob, left, right), live
    if isinstance(command, While):
        head = _loop_head_live(command, live_after)
        body, _ = _rewrite(command.body, head, universe)
        dead = () if head is TOP else universe - head
        resets = _resets(dead)
        if resets is None:
            if body is command.body:
                return command, head
            return While(command.cond, body), head
        # Zero the dead scratch at the body tail (each iteration re-enters
        # the head on the live projection) and once before the loop (the
        # entry state collapses too).  Dead-at-head is safe at both
        # points: the head's live set already includes everything read
        # after the loop.
        loop = While(command.cond, Seq(body, resets))
        return Seq(resets, loop), head
    raise TypeError("not a command: %r" % (command,))


def narrow_command(
    command: Command, observed: Iterable[str] = ()
) -> Command:
    """Insert dead-temporary resets around every loop of ``command``.

    ``observed`` names the variables still read *after* the program
    exits (the extracted/reported variables); everything else is live
    only where the program itself reads it.  Returns ``command``
    unchanged (same object) when no loop has narrowable scratch.
    """
    rewritten, _ = _rewrite(
        command, frozenset(observed), assigned_vars(command)
    )
    return rewritten
