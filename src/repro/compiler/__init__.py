"""The staged compiler pipeline (normalize -> build -> optimize -> lower).

Public surface::

    from repro.compiler import Pipeline, compile_program

    prog = compile_program(n_sided_die(6))
    prog.stats["lower"]["rows"]      # node-table rows after CSE/compaction
    samples = prog.sampler().collect(100_000, seed=7)

Submodules:

- :mod:`repro.compiler.digest`    -- content-addressed fingerprints;
- :mod:`repro.compiler.normalize` -- structural hash-consing of commands
  and states (replaces the seed's ``id(...)``-keyed memo keys);
- :mod:`repro.compiler.cse`       -- the hash-consing/CSE pass turning
  CF trees into shared DAGs;
- :mod:`repro.compiler.passes`    -- the pass registry;
- :mod:`repro.compiler.cache`     -- in-memory LRU + on-disk artifact
  cache keyed by program/state/pass-list digest;
- :mod:`repro.compiler.pipeline`  -- ``Pipeline``/``CompiledProgram``.

Attribute access is lazy: ``repro.cftree.compile`` imports the normalize
stage from here, so the package must not eagerly import the pipeline
(which imports ``repro.cftree`` back).
"""

_EXPORTS = {
    "Pipeline": "repro.compiler.pipeline",
    "CompiledProgram": "repro.compiler.pipeline",
    "compile_program": "repro.compiler.pipeline",
    "compile_tree": "repro.compiler.pipeline",
    "default_pipeline": "repro.compiler.pipeline",
    "DEFAULT_PASSES": "repro.compiler.passes",
    "Pass": "repro.compiler.passes",
    "PASS_REGISTRY": "repro.compiler.passes",
    "register_pass": "repro.compiler.passes",
    "cse": "repro.compiler.cse",
    "TreeInterner": "repro.compiler.cse",
    "CompilationCache": "repro.compiler.cache",
    "get_cache": "repro.compiler.cache",
    "configure_cache": "repro.compiler.cache",
    "fingerprint": "repro.compiler.digest",
    "program_digest": "repro.compiler.digest",
    "Undigestable": "repro.compiler.digest",
    "normalize_command": "repro.compiler.normalize",
    "normalize_state": "repro.compiler.normalize",
    "Interner": "repro.compiler.normalize",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module(module_name), name)
