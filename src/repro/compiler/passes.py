"""The optimize stage: a registry of semantics-preserving tree passes.

A :class:`Pass` rewrites a CF tree (possibly lazily through ``Fix``
generators) without changing its ``tcwp`` semantics or -- for passes in
the default list -- the bit-for-bit sample stream of the lowered
sampler.  The registry wraps the seed's ad-hoc function calls
(``elim_choices``, ``debias``) as named passes, adds standalone leaf
coalescing, and introduces the hash-consing/CSE pass
(:mod:`repro.compiler.cse`).

Registering a custom pass::

    from repro.compiler.passes import register_pass

    @register_pass("strip_skips")
    def strip_skips(tree, ctx):
        ...  # return a rewritten CFTree

    Pipeline(passes=("elim_choices", "strip_skips", "debias", "cse"))

Pass-order contract (checked by the test suite):

- ``elim_choices`` runs before ``debias`` (it deletes trivial choices
  the debiaser would otherwise expand into coin-flip schemes);
- ``debias`` must precede lowering (the engine rejects biased choices);
- ``cse`` runs last so it sees the final shapes; it is idempotent and
  commutes with the others up to sharing.
"""

from typing import Callable, Dict, Optional, Tuple

from repro.cftree.debias import debias
from repro.cftree.elim import elim_choices
from repro.cftree.keys import derive
from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf
from repro.compiler.cse import TreeInterner, cse


class PassContext:
    """Per-compilation state threaded through passes."""

    __slots__ = ("coalesce", "interner")

    def __init__(self, coalesce: str = "loopback",
                 interner: Optional[TreeInterner] = None):
        self.coalesce = coalesce
        # One interner per compilation: lazily-expanded loop bodies
        # share submitted trees with the main lowering.
        self.interner = interner if interner is not None else TreeInterner()


class Pass:
    """A named, registered tree-to-tree rewrite."""

    __slots__ = ("name", "fn", "doc")

    def __init__(self, name: str, fn: Callable[[CFTree, PassContext], CFTree],
                 doc: str = ""):
        self.name = name
        self.fn = fn
        self.doc = doc or (fn.__doc__ or "")

    def run(self, tree: CFTree, ctx: PassContext) -> CFTree:
        return self.fn(tree, ctx)

    def __repr__(self):
        return "Pass(%r)" % (self.name,)


PASS_REGISTRY: Dict[str, Pass] = {}


def register_pass(name: str, fn=None, *, replace: bool = False):
    """Register a pass (usable as a decorator).

    ``replace=True`` permits overriding an existing name (e.g. swapping
    a builtin for an instrumented variant in tests).
    """

    def install(func):
        if name in PASS_REGISTRY and not replace:
            raise ValueError("pass %r is already registered" % (name,))
        PASS_REGISTRY[name] = Pass(name, func)
        return func

    if fn is not None:
        return install(fn)
    return install


def resolve_passes(names) -> Tuple[Pass, ...]:
    """Look up a pass list by name, preserving order."""
    out = []
    for name in names:
        entry = PASS_REGISTRY.get(name)
        if entry is None:
            raise KeyError(
                "unknown pass %r (registered: %s)"
                % (name, ", ".join(sorted(PASS_REGISTRY)))
            )
        out.append(entry)
    return tuple(out)


# -- builtin passes -------------------------------------------------------


@register_pass("elim_choices")
def _pass_elim(tree: CFTree, ctx: PassContext) -> CFTree:
    """Definition 3.13: drop bias-0/1 choices and coalesce equal branches."""
    return elim_choices(tree)


@register_pass("debias")
def _pass_debias(tree: CFTree, ctx: PassContext) -> CFTree:
    """Appendix A: replace biased choices by fair coin-flipping schemes."""
    return debias(tree, ctx.coalesce)


@register_pass("cse")
def _pass_cse(tree: CFTree, ctx: PassContext) -> CFTree:
    """Hash-cons the tree into a shared DAG (see repro.compiler.cse)."""
    return cse(tree, ctx.interner)


def _coalesce(tree: CFTree, memo: Dict[int, Tuple[CFTree, CFTree]]) -> CFTree:
    entry = memo.get(id(tree))
    if entry is not None and entry[0] is tree:
        return entry[1]
    if isinstance(tree, (Leaf, Fail)):
        result = tree
    elif isinstance(tree, Choice):
        left = _coalesce(tree.left, memo)
        right = _coalesce(tree.right, memo)
        if left == right:
            result = left
        elif left is tree.left and right is tree.right:
            result = tree
        else:
            result = Choice(tree.prob, left, right)
    elif isinstance(tree, Fix):
        body, cont = tree.body, tree.cont
        # Coalescing changes bit consumption, so the wrapper gets a
        # *distinct* derived key (never the wrapped loop's own key).
        result = Fix(
            tree.init,
            tree.guard,
            lambda s: _coalesce(body(s), memo),
            lambda s: _coalesce(cont(s), memo),
            key=derive("fix.coalesce", tree.key),
            subkey=derive("sub.coalesce", tree.subkey),
            footprint=tree.footprint,
        )
    else:
        raise TypeError("not a CF tree: %r" % (tree,))
    memo[id(tree)] = (tree, result)
    return result


@register_pass("coalesce_leaves")
def _pass_coalesce(tree: CFTree, ctx: PassContext) -> CFTree:
    """Merge choices between structurally equal subtrees (Appendix A
    step 5 in its "full" reading).  Subsumed by ``elim_choices`` but
    exposed standalone for the coalescing ablation; note it *changes*
    expected bit consumption (fewer flips), unlike ``cse``."""
    return _coalesce(tree, {})


#: The Definition 3.13 pipeline plus hash-consing.
DEFAULT_PASSES: Tuple[str, ...] = ("elim_choices", "debias", "cse")


# -- command passes (the analyze stage) -----------------------------------
#
# Command passes rewrite the *cpGCL command* before CF-tree construction,
# driven by the abstract-interpretation layer (``repro.analysis``).  They
# mirror the tree-pass registry: a command pass is a callable
# ``fn(command, sigma) -> (command, info)`` where ``info`` is a JSON-able
# stats dict merged into ``CompiledProgram.stats["analysis"]``.


class CommandPass:
    """A named, registered command-to-command rewrite."""

    __slots__ = ("name", "fn", "doc")

    def __init__(self, name: str, fn, doc: str = ""):
        self.name = name
        self.fn = fn
        self.doc = doc or (fn.__doc__ or "")

    def run(self, command, sigma):
        return self.fn(command, sigma)

    def __repr__(self):
        return "CommandPass(%r)" % (self.name,)


COMMAND_PASS_REGISTRY: Dict[str, CommandPass] = {}


def register_command_pass(name: str, fn=None, *, replace: bool = False):
    """Register a command pass (usable as a decorator), mirroring
    :func:`register_pass`."""

    def install(func):
        if name in COMMAND_PASS_REGISTRY and not replace:
            raise ValueError(
                "command pass %r is already registered" % (name,)
            )
        COMMAND_PASS_REGISTRY[name] = CommandPass(name, func)
        return func

    if fn is not None:
        return install(fn)
    return install


def resolve_command_passes(names) -> Tuple[CommandPass, ...]:
    """Look up a command-pass list by name, preserving order."""
    out = []
    for name in names:
        entry = COMMAND_PASS_REGISTRY.get(name)
        if entry is None:
            raise KeyError(
                "unknown command pass %r (registered: %s)"
                % (name, ", ".join(sorted(COMMAND_PASS_REGISTRY)))
            )
        out.append(entry)
    return tuple(out)


@register_command_pass("prune_dead")
def _pass_prune_dead(command, sigma):
    """Remove branches/loops the abstract interpreter proves dead.

    Every rewrite is bit-stream preserving (the pruned construct would
    never have consumed randomness; see ``repro.analysis.prune``), so
    the pass is safe for the default pipeline: samples are bit-for-bit
    identical with the pass on or off, while dead nested loops stop
    allocating node-table rows."""
    from repro.analysis.interp import analyze
    from repro.analysis.prune import prune_command

    analysis = analyze(command, sigma)
    pruned, count = prune_command(command, analysis)
    info = {
        "pruned_sites": count,
        "incomplete": analysis.incomplete,
        "loops": len(analysis.loops()),
        "certainly_diverges": analysis.certainly_diverges(),
        "budget_spent": analysis.budget_spent,
    }
    return pruned, info


#: Analysis-driven command passes run by the default pipeline's analyze
#: stage, before CF-tree construction.
DEFAULT_COMMAND_PASSES: Tuple[str, ...] = ("prune_dead",)
