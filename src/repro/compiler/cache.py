"""The content-addressed compilation cache (in-memory LRU + disk).

Compiled artifacts are keyed by the SHA-256 digest of the program, the
initial state, and every compilation option that affects the output
(:func:`repro.compiler.digest.program_digest`).  Two layers:

- an **in-memory LRU** holding :class:`~repro.compiler.pipeline.
  CompiledProgram` objects -- repeated ``BatchSampler.from_command``
  calls, harness rows, and MCMC replays in one process reuse the same
  node table (which also means JIT loop expansions accumulate instead of
  being redone);
- an optional **on-disk store** (one pickle per digest) so separate
  processes -- CLI invocations, CI runs, benchmark sweeps -- skip
  compilation entirely.  Closed tables spill as plain row arrays; *open*
  tables (warm loop-state spaces mid-expansion) spill through
  :mod:`repro.engine.freeze`, which replaces every ``Fix`` closure by
  its content-digest triple and rebinds fresh closures on load, so even
  JIT expansion work survives across processes.

Configuration: ``configure_cache(capacity=..., disk_dir=...)`` or the
environment variables ``ZAR_COMPILE_CACHE_SIZE`` (entry bound, default
128) and ``ZAR_COMPILE_CACHE_DIR`` (enables the disk layer).  Programs
containing :class:`~repro.lang.expr.Opaque` expressions are
:class:`~repro.compiler.digest.Undigestable` and bypass both layers.
"""

import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Dict, Optional

from repro.cftree.cache import env_int
from repro.compiler.digest import DIGEST_VERSION

#: Bump to invalidate on-disk artifacts when the table encoding changes.
#: 2: open tables spill as content-digest triples (repro.engine.freeze).
_DISK_FORMAT = 2


class CompilationCache:
    """Digest-keyed LRU of compiled programs with an optional disk tier."""

    def __init__(self, capacity: Optional[int] = None,
                 disk_dir: Optional[str] = None):
        if capacity is None:
            capacity = env_int("ZAR_COMPILE_CACHE_SIZE", 128)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if disk_dir is None:
            disk_dir = os.environ.get("ZAR_COMPILE_CACHE_DIR") or None
        self.capacity = capacity
        self.disk_dir = disk_dir
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_stores = 0

    # -- in-memory tier --------------------------------------------------

    def get(self, digest: str):
        """The cached :class:`CompiledProgram` for ``digest``, or None."""
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            self.memory_hits += 1
            return entry
        entry = self._disk_load(digest)
        if entry is not None:
            self.disk_hits += 1
            self._remember(digest, entry)
            return entry
        self.misses += 1
        return None

    def put(self, digest: str, program) -> None:
        self.stores += 1
        self._remember(digest, program)
        self._disk_store(digest, program)

    def _remember(self, digest: str, program) -> None:
        self._entries[digest] = program
        self._entries.move_to_end(digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # -- disk tier -------------------------------------------------------

    def _disk_path(self, digest: str) -> str:
        return os.path.join(self.disk_dir, digest + ".zarc")

    def _disk_store(self, digest: str, program) -> None:
        if not self.disk_dir:
            return
        payload = program.disk_payload()
        if payload is None:  # open table: not serializable
            return
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            record = {
                "format": _DISK_FORMAT,
                "digest_version": DIGEST_VERSION,
                "payload": payload,
            }
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(record, handle, protocol=4)
                os.replace(tmp, self._disk_path(digest))
            except BaseException:
                os.unlink(tmp)
                raise
            self.disk_stores += 1
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            pass  # a cold disk cache is always acceptable

    def _disk_load(self, digest: str):
        if not self.disk_dir:
            return None
        path = self._disk_path(digest)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("format") != _DISK_FORMAT
            or record.get("digest_version") != DIGEST_VERSION
        ):
            return None
        from repro.compiler.pipeline import CompiledProgram

        try:
            return CompiledProgram.from_disk_payload(record["payload"])
        except (KeyError, TypeError, ValueError):
            return None

    # -- introspection ---------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "disk_stores": self.disk_stores,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "disk_dir": self.disk_dir,
        }

    def clear(self, disk: bool = False) -> None:
        self._entries.clear()
        if disk and self.disk_dir and os.path.isdir(self.disk_dir):
            for name in os.listdir(self.disk_dir):
                if name.endswith(".zarc"):
                    try:
                        os.unlink(os.path.join(self.disk_dir, name))
                    except OSError:
                        pass

    def __len__(self) -> int:
        return len(self._entries)


_GLOBAL: Optional[CompilationCache] = None


def get_cache() -> CompilationCache:
    """The process-wide cache backing the default pipeline."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = CompilationCache()
    return _GLOBAL


def configure_cache(capacity: Optional[int] = None,
                    disk_dir: Optional[str] = None) -> CompilationCache:
    """Replace the process-wide cache (returns the new instance)."""
    global _GLOBAL
    _GLOBAL = CompilationCache(capacity=capacity, disk_dir=disk_dir)
    return _GLOBAL
