"""``Pipeline``: the staged compiler (normalize -> build -> optimize -> lower).

The seed ran Definition 3.13 as ad-hoc function calls
(``compile_cpgcl`` -> ``elim_choices`` -> ``debias`` -> ``lower_cftree``)
scattered across every entry point.  The pipeline makes the stages
explicit, named, and inspectable:

- **normalize** -- intern the command and initial state to canonical
  representatives (structural hashing, :mod:`repro.compiler.normalize`)
  and derive the content digest that keys the compilation cache;
- **build** -- CF-tree construction (Definition 3.5);
- **optimize** -- run the registered pass list
  (:mod:`repro.compiler.passes`), recording DAG node counts before and
  after each pass;
- **lower** -- DAG-aware :class:`~repro.engine.table.NodeTable`
  emission: hash-consed row allocation, a bounded eager expansion of
  loop entries, and a compaction that threads jumps and merges
  congruent rows.

``compile`` returns a :class:`CompiledProgram`: the final tree, the
node table, and a ``stats`` dict with per-stage metrics (the CLI's
``compile`` subcommand renders it).  Results are cached by content
digest -- in memory and, when configured, on disk -- so repeated
``BatchSampler.from_command`` calls, CLI invocations, harness rows, and
MCMC replays across processes reuse compiled artifacts.
"""

import time
from typing import Dict, List, Optional, Tuple

from repro.cftree.compile import compile_cache_stats, compile_cpgcl
from repro.cftree.tree import CFTree, Choice, Fix
from repro.compiler.cache import CompilationCache, get_cache
from repro.compiler.digest import Undigestable, fingerprint, program_digest
from repro.compiler.normalize import (
    normalize_command,
    normalize_state,
    normalize_stats,
)
from repro.compiler.passes import (
    DEFAULT_COMMAND_PASSES,
    DEFAULT_PASSES,
    PassContext,
    resolve_command_passes,
    resolve_passes,
)
from repro.engine.table import NodeTable
from repro.lang.state import State
from repro.lang.syntax import Command

#: Default bound on build-time loop-entry expansions.  Expansions beyond
#: the bound happen lazily during sampling exactly as before; the eager
#: budget just gives compaction a representative table to shrink.
EAGER_EXPAND_DEFAULT = 1024


def dag_size(tree: CFTree, unfold_fix: bool = True) -> int:
    """Distinct nodes reachable from ``tree``, shared subtrees counted once.

    The metric the per-pass stats report: ``tree_size`` counts tree
    paths, which double-counts shared subtrees and hides exactly what
    CSE buys.  With ``unfold_fix`` each ``Fix`` is unfolded one step at
    its entry state (the same evaluation eager lowering performs), so
    loop bodies contribute; the unfolding terminates because a loop's
    body tree never contains the loop's own ``Fix`` node again (leaves
    re-enter it through the lowering memo instead).
    """
    seen = set()
    stack = [tree]
    count = 0
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        count += 1
        if isinstance(node, Choice):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Fix) and unfold_fix:
            if node.guard(node.init):
                stack.append(node.body(node.init))
            else:
                stack.append(node.cont(node.init))
    return count


class CompiledProgram:
    """The pipeline's artifact: final tree, node table, per-stage stats."""

    __slots__ = (
        "command",
        "sigma",
        "coalesce",
        "passes",
        "tree",
        "table",
        "digest",
        "stats",
        "source",
    )

    def __init__(self, command, sigma, coalesce, passes, tree, table,
                 digest, stats, source="built"):
        self.command = command
        self.sigma = sigma
        self.coalesce = coalesce
        self.passes = tuple(passes)
        self.tree = tree  # None when rehydrated from the disk cache
        self.table = table
        self.digest = digest
        self.stats = stats
        # "built" = constructed in this process, "disk" = rehydrated
        # from the on-disk tier.  In-memory cache hits return the
        # original object (source unchanged); observe hit counts through
        # CompilationCache.stats() instead.
        self.source = source

    # -- sampling --------------------------------------------------------

    def sampler(self, tied: bool = True):
        """A :class:`~repro.engine.api.BatchSampler` over the table."""
        from repro.engine.api import BatchSampler

        return BatchSampler(self.table, tied=tied)

    def collect(self, n, **kwargs):
        return self.sampler().collect(n, **kwargs)

    def sample(self, source, max_steps=None):
        return self.sampler().sample(source, max_steps)

    # -- disk round-trip -------------------------------------------------

    def disk_payload(self) -> Optional[dict]:
        """A picklable record, or None when the table is unspillable.

        Closed tables serialize as plain row arrays.  *Open* tables --
        warm loop-state spaces mid-expansion -- freeze through
        :mod:`repro.engine.freeze`: rows plus every keyed memo entry,
        pending stub, and call record as content-digest triples.
        Unpicklable payload values (exotic leaf objects) are caught by
        the cache's store path, which discards the artifact.
        """
        table = self.table
        common = {
            "digest": self.digest,
            "coalesce": self.coalesce,
            "passes": self.passes,
            "stats": self.stats,
        }
        if table.pending_stubs or table.calls:
            from repro.engine.freeze import freeze_table

            frozen = freeze_table(table)
            if frozen is None:
                return None
            common["open"] = frozen
            return common
        common.update(
            {
                "max_nodes": table.max_nodes,
                "op": list(table.op),
                "a": list(table.a),
                "b": list(table.b),
                "payload": list(table.payload),
                "payloads": list(table.payloads),
                "root": table.root,
            }
        )
        return common

    @classmethod
    def from_disk_payload(cls, payload: dict) -> "CompiledProgram":
        if "open" in payload:
            from repro.engine.freeze import thaw_table

            table = thaw_table(payload["open"])
        else:
            table = NodeTable(payload["max_nodes"])
            table.op = list(payload["op"])
            table.a = list(payload["a"])
            table.b = list(payload["b"])
            table.payload = list(payload["payload"])
            table.payloads = list(payload["payloads"])
            table.root = payload["root"]
            table.version = 1
        stats = dict(payload.get("stats") or {})
        return cls(
            command=None,
            sigma=None,
            coalesce=payload["coalesce"],
            passes=payload["passes"],
            tree=None,
            table=table,
            digest=payload["digest"],
            stats=stats,
            source="disk",
        )

    def __repr__(self):
        return "CompiledProgram(%s, %d rows, passes=%s, source=%s)" % (
            (self.digest or "<undigestable>")[:12],
            len(self.table),
            "+".join(self.passes),
            self.source,
        )


class Pipeline:
    """A configured staged compiler; cheap to construct, safe to share."""

    def __init__(
        self,
        passes: Tuple[str, ...] = DEFAULT_PASSES,
        coalesce: str = "loopback",
        max_nodes: int = 2_000_000,
        dedupe: bool = True,
        eager_expand: int = EAGER_EXPAND_DEFAULT,
        compact: bool = True,
        cache: Optional[CompilationCache] = None,
        use_cache: bool = True,
        command_passes: Tuple[str, ...] = DEFAULT_COMMAND_PASSES,
    ):
        self.pass_names = tuple(passes)
        self.passes = resolve_passes(passes)
        self.command_pass_names = tuple(command_passes)
        self.command_passes = resolve_command_passes(command_passes)
        self.coalesce = coalesce
        self.max_nodes = max_nodes
        self.dedupe = dedupe
        self.eager_expand = eager_expand
        self.compact = compact
        self.use_cache = use_cache
        self._cache = cache
        # Table-shaping knobs beyond the core (program, coalesce,
        # passes, max_nodes) key -- part of every cache digest so
        # differently-configured pipelines never collide on one entry.
        self._digest_options = (
            "dedupe", dedupe,
            "eager_expand", eager_expand,
            "compact", compact,
            "command_passes", self.command_pass_names,
        )

    @property
    def cache(self) -> CompilationCache:
        return self._cache if self._cache is not None else get_cache()

    # -- the stages ------------------------------------------------------

    def compile(
        self,
        command: Command,
        sigma: Optional[State] = None,
        measure_raw: bool = False,
    ) -> CompiledProgram:
        """Run all stages on ``(command, sigma)``.

        ``measure_raw=True`` additionally lowers the program *without*
        the CSE/dedupe/compaction machinery and records the row-count
        delta under ``stats["lower"]["rows_raw"]`` (used by ``zar
        compile`` and the compiler benchmark; costs a second lowering).
        """
        sigma = sigma if sigma is not None else State()

        # normalize ------------------------------------------------------
        t0 = time.perf_counter()
        command = normalize_command(command)
        sigma = normalize_state(sigma)
        digest = None
        undigestable = None
        try:
            digest = program_digest(
                command, sigma, self.coalesce, self.pass_names,
                self.max_nodes, self._digest_options,
            )
        except Undigestable as err:
            undigestable = str(err)
        normalize_seconds = time.perf_counter() - t0

        cache = self.cache if self.use_cache else None
        if digest is not None and cache is not None and not measure_raw:
            hit = cache.get(digest)
            if hit is not None:
                if getattr(hit.table, "needs_rebind", False):
                    # Thawed open table: recompile the (cheap) tree and
                    # re-attach live closures; expansions are *not*
                    # redone -- that is the whole point of the spill.
                    t0 = time.perf_counter()
                    tree = self._rebuild_tree(command, sigma)
                    hit.table.thaw_bind(tree)
                    hit.tree = tree
                    hit.stats["thaw"] = {
                        "seconds": time.perf_counter() - t0,
                        "rows": len(hit.table),
                        "pending": hit.table.pending_stubs,
                    }
                return hit

        stats: Dict[str, object] = {
            "digest": digest,
            "undigestable": undigestable,
            "coalesce": self.coalesce,
            "passes": list(self.pass_names),
            "normalize": dict(normalize_stats(), seconds=normalize_seconds),
        }

        # analyze --------------------------------------------------------
        # Command passes (abstract-interpretation-driven rewrites such as
        # dead-branch pruning) run on the normalized command; the digest
        # above covers them through ``command_passes`` in the options, so
        # cached artifacts remain keyed by the *source* program.
        t0 = time.perf_counter()
        analysis_info: Dict[str, object] = {
            "passes": list(self.command_pass_names),
        }
        build_command = command
        for entry in self.command_passes:
            build_command, info = entry.run(build_command, sigma)
            analysis_info.update(info)
        if build_command is not command:
            build_command = normalize_command(build_command)
        analysis_info["seconds"] = time.perf_counter() - t0
        stats["analysis"] = analysis_info

        # build ----------------------------------------------------------
        t0 = time.perf_counter()
        tree = compile_cpgcl(build_command, sigma, self.coalesce)
        stats["build"] = {
            "seconds": time.perf_counter() - t0,
            "dag_nodes": dag_size(tree),
        }

        # optimize -------------------------------------------------------
        ctx = PassContext(coalesce=self.coalesce)
        tree, pass_stats = self._optimize(tree, ctx)
        stats["optimize"] = pass_stats

        # lower ----------------------------------------------------------
        table, lower_stats = self._lower(tree)
        if measure_raw:
            lower_stats.update(self._measure_raw(command, sigma, len(table)))
        stats["lower"] = lower_stats
        stats["cftree_cache"] = compile_cache_stats()

        program = CompiledProgram(
            command, sigma, self.coalesce, self.pass_names,
            tree, table, digest, stats,
        )
        if digest is not None and cache is not None:
            cache.put(digest, program)
        return program

    def compile_tree(
        self,
        tree: CFTree,
        key_parts: Optional[tuple] = None,
        measure_raw: bool = False,
    ) -> CompiledProgram:
        """Pipeline a pre-built CF tree (``uniform_tree``, categorical
        stick-breaking, ...) through optimize + lower.

        ``key_parts`` names the construction for content addressing when
        the tree itself is undigestable (rejection wrappers contain
        ``Fix`` closures): e.g. ``("uniform_tree", 6, "loopback")``.
        """
        digest = None
        undigestable = None
        try:
            if key_parts is not None:
                digest = fingerprint(
                    "tree-key", tuple(key_parts), self.coalesce,
                    self.pass_names, self.max_nodes, self._digest_options,
                )
            else:
                digest = fingerprint(
                    "tree", tree, self.coalesce, self.pass_names,
                    self.max_nodes, self._digest_options,
                )
        except Undigestable as err:
            undigestable = str(err)

        cache = self.cache if self.use_cache else None
        if digest is not None and cache is not None and not measure_raw:
            hit = cache.get(digest)
            if hit is not None:
                if getattr(hit.table, "needs_rebind", False):
                    t0 = time.perf_counter()
                    ctx = PassContext(coalesce=self.coalesce)
                    bound, _ = self._optimize(tree, ctx)
                    hit.table.thaw_bind(bound)
                    hit.tree = bound
                    hit.stats["thaw"] = {
                        "seconds": time.perf_counter() - t0,
                        "rows": len(hit.table),
                        "pending": hit.table.pending_stubs,
                    }
                return hit

        stats: Dict[str, object] = {
            "digest": digest,
            "undigestable": undigestable,
            "coalesce": self.coalesce,
            "passes": list(self.pass_names),
        }
        ctx = PassContext(coalesce=self.coalesce)
        source = tree
        tree, pass_stats = self._optimize(tree, ctx)
        stats["optimize"] = pass_stats
        table, lower_stats = self._lower(tree)
        if measure_raw:
            raw = self._raw_rows(source)
            lower_stats["rows_raw"] = raw
            lower_stats["reduction_pct"] = _reduction(raw, len(table))
        stats["lower"] = lower_stats

        program = CompiledProgram(
            None, None, self.coalesce, self.pass_names,
            tree, table, digest, stats,
        )
        if digest is not None and cache is not None:
            cache.put(digest, program)
        return program

    # -- helpers ---------------------------------------------------------

    def _rebuild_tree(self, command: Command, sigma: State) -> CFTree:
        """The optimized tree for ``(command, sigma)``, without stats
        bookkeeping -- used to rebind thawed open tables."""
        build_command = command
        for entry in self.command_passes:
            build_command, _ = entry.run(build_command, sigma)
        if build_command is not command:
            build_command = normalize_command(build_command)
        tree = compile_cpgcl(build_command, sigma, self.coalesce)
        ctx = PassContext(coalesce=self.coalesce)
        tree, _ = self._optimize(tree, ctx)
        return tree

    def _optimize(self, tree, ctx):
        records: List[dict] = []
        before = dag_size(tree)
        for entry in self.passes:
            t0 = time.perf_counter()
            tree = entry.run(tree, ctx)
            seconds = time.perf_counter() - t0
            after = dag_size(tree)
            records.append(
                {
                    "name": entry.name,
                    "dag_nodes_before": before,
                    "dag_nodes_after": after,
                    "seconds": seconds,
                }
            )
            before = after
        return tree, records

    def _lower(self, tree):
        t0 = time.perf_counter()
        table = NodeTable.from_cftree(tree, self.max_nodes, self.dedupe)
        closed = table.expand_all(limit=self.eager_expand)
        removed = table.compact() if self.compact else 0
        return table, {
            "rows": len(table),
            "closed": closed,
            "expansions": table.expansions,
            "dedup_hits": table.dedup_hits,
            "compacted_rows": removed,
            "seconds": time.perf_counter() - t0,
        }

    def _raw_rows(self, tree) -> int:
        """Rows of the baseline lowering: the pass list *minus* the CSE
        pass, no row dedupe, no compaction, same expansion budget --
        what the ``rows_raw``/``reduction_pct`` stats compare against."""
        ctx = PassContext(coalesce=self.coalesce)
        raw_names = tuple(n for n in self.pass_names if n != "cse")
        for entry in resolve_passes(raw_names):
            tree = entry.run(tree, ctx)
        table = NodeTable.from_cftree(tree, self.max_nodes, dedupe=False)
        table.expand_all(limit=self.eager_expand)
        return len(table)

    def _measure_raw(self, command, sigma, optimized_rows):
        rows_raw = self._raw_rows(
            compile_cpgcl(command, sigma, self.coalesce)
        )
        return {
            "rows_raw": rows_raw,
            "reduction_pct": _reduction(rows_raw, optimized_rows),
        }


def _reduction(raw: int, optimized: int) -> float:
    if raw <= 0:
        return 0.0
    return round(100.0 * (raw - optimized) / raw, 2)


#: The shared default pipeline behind ``BatchSampler.from_command`` etc.
_DEFAULT: Optional[Pipeline] = None


def default_pipeline() -> Pipeline:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Pipeline()
    return _DEFAULT


def compile_program(
    command: Command,
    sigma: Optional[State] = None,
    passes: Tuple[str, ...] = DEFAULT_PASSES,
    coalesce: str = "loopback",
    max_nodes: int = 2_000_000,
    use_cache: bool = True,
    measure_raw: bool = False,
) -> CompiledProgram:
    """Compile through a (possibly shared) pipeline.

    The default-configuration fast path reuses one ``Pipeline`` instance
    so every entry point shares the same compilation cache.
    """
    if (
        passes == DEFAULT_PASSES
        and coalesce == "loopback"
        and max_nodes == 2_000_000
        and use_cache
    ):
        pipeline = default_pipeline()
    else:
        pipeline = Pipeline(
            passes=passes,
            coalesce=coalesce,
            max_nodes=max_nodes,
            use_cache=use_cache,
        )
    return pipeline.compile(command, sigma, measure_raw=measure_raw)


def compile_tree(
    tree: CFTree,
    key_parts: Optional[tuple] = None,
    passes: Tuple[str, ...] = ("debias", "cse"),
    coalesce: str = "loopback",
    max_nodes: int = 2_000_000,
    use_cache: bool = True,
) -> CompiledProgram:
    """Pipeline a pre-built CF tree (see :meth:`Pipeline.compile_tree`)."""
    pipeline = Pipeline(
        passes=passes,
        coalesce=coalesce,
        max_nodes=max_nodes,
        use_cache=use_cache,
    )
    return pipeline.compile_tree(tree, key_parts=key_parts)
