"""Content-addressed fingerprints of programs, states, and CF trees.

The compilation cache (:mod:`repro.compiler.cache`) keys artifacts by a
SHA-256 digest of a canonical serialization of the program AST, the
initial state, and the compilation options (coalescing mode, pass list,
node budget).  Two structurally equal programs therefore share one cache
entry -- across calls *and* across processes -- which is what replaces
the seed's fragile ``(id(command), sigma)`` memo keys: an address can be
recycled by the allocator, a content digest cannot.

Digests are defined for:

- values (``int``, ``bool``, ``Fraction``);
- expressions (:class:`~repro.lang.expr.Lit`/``Var``/``UnOp``/``BinOp``/
  ``Call``);
- commands (all eight cpGCL forms);
- states;
- CF trees built of ``Leaf``/``Fail``/``Choice`` nodes.

:class:`~repro.lang.expr.Opaque` expressions (arbitrary Python
functions) and *unkeyed* ``Fix`` tree nodes (which contain closures)
have no canonical serialization; fingerprinting them raises
:class:`Undigestable` and callers fall back to in-memory memoization
only.  ``Fix`` nodes carrying a content key (``fix.key``, derived by
:mod:`repro.cftree.keys` from whatever the closures were built from)
digest as ``(key, init)``.  Note that a *command* containing loops
digests fine -- ``While`` is pure syntax; only already-built unkeyed
``Fix`` tree nodes are opaque.

The serialization is type-tagged and length-prefixed, so distinct shapes
cannot collide by concatenation (``("ab", "c")`` vs ``("a", "bc")``).
"""

import hashlib
from fractions import Fraction

from repro.lang.expr import BinOp, Call, Expr, Lit, Opaque, UnOp, Var
from repro.lang.state import State
from repro.lang.syntax import (
    Assign,
    Choice as ChoiceCmd,
    Command,
    Ite,
    Observe,
    Seq,
    Skip,
    Uniform,
    While,
)

#: Serialization-format version; bump on any change to the encoding or
#: to the semantics of compiled artifacts (invalidates disk caches).
DIGEST_VERSION = b"zar-compile-1"


class Undigestable(TypeError):
    """The object has no canonical content serialization (it contains an
    opaque function: an ``Opaque`` expression or a ``Fix`` tree node).

    ``path`` names the offending sub-term (``second.body.prob`` ...): the
    emitters annotate the error as it propagates out of the term, so the
    report is actionable -- which closure blocked digesting, not merely
    that one exists.  ``reason`` is the unannotated message."""

    def __init__(self, reason: str, path: tuple = ()):
        self.reason = reason
        self.path = tuple(path)
        super().__init__(reason)

    def __str__(self) -> str:
        if self.path:
            return "%s (at %s)" % (self.reason, ".".join(self.path))
        return self.reason


def _tag(h, label: str, *parts) -> None:
    h.update(b"(")
    h.update(label.encode("ascii"))
    for part in parts:
        _emit(h, part)
    h.update(b")")


def _emit_child(h, obj, segment: str) -> None:
    """Emit a sub-term, prefixing ``segment`` onto any Undigestable path."""
    try:
        _emit(h, obj)
    except Undigestable as err:
        raise Undigestable(err.reason, (segment,) + err.path) from None


def _tag2(h, label: str, parts) -> None:
    """Like :func:`_tag`, but each part carries its path segment (or
    ``None`` for scalar fields).  Byte layout is identical to ``_tag``,
    so digests are unchanged."""
    h.update(b"(")
    h.update(label.encode("ascii"))
    for segment, part in parts:
        if segment is None:
            _emit(h, part)
        else:
            _emit_child(h, part, segment)
    h.update(b")")


def _emit(h, obj) -> None:
    # Dispatch on type; bool before int (bool is an int subclass).
    if isinstance(obj, bool):
        h.update(b"#t" if obj else b"#f")
    elif isinstance(obj, int):
        data = str(obj).encode("ascii")
        h.update(b"i%d:" % len(data))
        h.update(data)
    elif isinstance(obj, Fraction):
        _tag(h, "frac", obj.numerator, obj.denominator)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"s%d:" % len(data))
        h.update(data)
    elif isinstance(obj, Expr):
        _emit_expr(h, obj)
    elif isinstance(obj, Command):
        _emit_command(h, obj)
    elif isinstance(obj, State):
        _tag(h, "state", *[part for item in obj.items() for part in item])
    elif isinstance(obj, (tuple, list)):
        _tag2(h, "seq", [("[%d]" % i, x) for i, x in enumerate(obj)])
    elif obj is None:
        h.update(b"#n")
    else:
        _emit_tree(h, obj)


def _emit_expr(h, expr: Expr) -> None:
    if isinstance(expr, Lit):
        _tag(h, "lit", expr.value)
    elif isinstance(expr, Var):
        _tag(h, "var", expr.name)
    elif isinstance(expr, UnOp):
        _tag2(h, "unop", [(None, expr.op), ("arg", expr.arg)])
    elif isinstance(expr, BinOp):
        _tag2(
            h,
            "binop",
            [(None, expr.op), ("lhs", expr.lhs), ("rhs", expr.rhs)],
        )
    elif isinstance(expr, Call):
        _tag2(
            h,
            "call",
            [(None, expr.func)]
            + [("args[%d]" % i, a) for i, a in enumerate(expr.args)],
        )
    elif isinstance(expr, Opaque):
        raise Undigestable(
            "opaque expression %s has no content digest" % (expr.label,)
        )
    else:
        raise Undigestable("unknown expression %r" % (expr,))


def _emit_command(h, command: Command) -> None:
    if isinstance(command, Skip):
        _tag(h, "skip")
    elif isinstance(command, Assign):
        _tag2(h, "assign", [(None, command.name), ("expr", command.expr)])
    elif isinstance(command, Observe):
        _tag2(h, "observe", [("pred", command.pred)])
    elif isinstance(command, Seq):
        _tag2(
            h,
            "seq2",
            [("first", command.first), ("second", command.second)],
        )
    elif isinstance(command, Ite):
        _tag2(
            h,
            "ite",
            [
                ("cond", command.cond),
                ("then", command.then),
                ("orelse", command.orelse),
            ],
        )
    elif isinstance(command, ChoiceCmd):
        _tag2(
            h,
            "choice",
            [
                ("prob", command.prob),
                ("left", command.left),
                ("right", command.right),
            ],
        )
    elif isinstance(command, Uniform):
        _tag2(
            h,
            "uniform",
            [("range", command.range_expr), (None, command.name)],
        )
    elif isinstance(command, While):
        _tag2(h, "while", [("cond", command.cond), ("body", command.body)])
    else:
        raise Undigestable("unknown command %r" % (command,))


def _emit_tree(h, tree) -> None:
    # Imported lazily: repro.cftree imports repro.compiler.normalize.
    from repro.cftree.tree import CFTree, Choice, Fail, Fix, LOOPBACK, Leaf

    if tree is LOOPBACK:
        h.update(b"#lb")
    elif isinstance(tree, Leaf):
        _tag(h, "leaf", tree.value)
    elif isinstance(tree, Fail):
        _tag(h, "fail")
    elif isinstance(tree, Choice):
        _tag2(
            h,
            "tchoice",
            [(None, tree.prob), ("left", tree.left), ("right", tree.right)],
        )
    elif isinstance(tree, Fix):
        # A content-keyed Fix digests via its key: the key is itself a
        # digest of everything the loop closures were built from (see
        # repro.cftree.keys), so (key, init) determines the node's
        # sampling behavior.  Unkeyed Fix nodes stay opaque.
        if tree.key is not None:
            _tag2(h, "fixkey", [(None, tree.key), ("init", tree.init)])
        else:
            raise Undigestable("Fix nodes contain closures; no content digest")
    elif isinstance(tree, CFTree):
        raise Undigestable("unknown CF tree %r" % (tree,))
    else:
        raise Undigestable("cannot fingerprint %r" % (tree,))


def fingerprint(*parts) -> str:
    """Hex SHA-256 digest of the canonical serialization of ``parts``.

    Raises :class:`Undigestable` when any part contains an opaque
    function (``Opaque`` expression, ``Fix`` tree node).
    """
    h = hashlib.sha256()
    h.update(DIGEST_VERSION)
    for part in parts:
        _emit(h, part)
    return h.hexdigest()


def program_digest(
    command: Command,
    sigma: State,
    coalesce: str,
    passes,
    max_nodes: int,
    options: tuple = (),
) -> str:
    """The compilation-cache key for one (program, state, options) triple.

    ``options`` carries any further pipeline knobs that shape the
    artifact (dedupe, eager-expansion budget, compaction, ...) -- every
    option that affects the output must be part of the key.
    """
    return fingerprint(
        "program", command, sigma, coalesce, tuple(passes), max_nodes,
        tuple(options),
    )
