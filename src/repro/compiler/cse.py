"""Hash-consing / common-subexpression elimination over CF trees.

``compile_cpgcl`` and the ``uniform_tree``/``bernoulli_tree``
constructions routinely produce *structurally equal but distinct*
subtrees: ``bind`` rebuilds every Choice spine it maps over, loop bodies
are recompiled per entry state, and rejection paddings repeat the same
outcome leaves.  ``cse`` rewrites a tree into a maximally-shared DAG:
after the pass, two subtrees are structurally equal **iff they are the
same object**.  Sharing is what the engine's lowering memo
(:mod:`repro.engine.table`) keys on, so CSE directly shrinks node
tables; it also makes repeated structural-equality checks (`elim`,
coalescing) O(1) pointer comparisons on interned nodes.

The pass is semantics-preserving and *bit-exact*: it never changes the
shape of any root-to-leaf path, only aliases equal subtrees, so the
consumed bit sequence of every sample is unchanged (the differential
suite pins this).

``Fix`` nodes contain closures and compare by identity; they cannot be
merged, but the pass pushes interning *through* them lazily (the loop
body generator is composed with ``cse``), so the duplicated trees
produced by per-state loop-body recompilation are shared when the
engine's JIT expansion forces them -- this is where unbounded-state
programs (geometric, hare-tortoise) see most of their sharing.

Idempotence (``cse(cse(t)) == cse(t)``, and ``is`` for Fix-free trees
under one interner) is checked by a Hypothesis sweep in the test suite.
"""

from typing import Dict, Tuple

from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf

_FAIL = Fail()


class TreeInterner:
    """Bottom-up hash-consing of ``Leaf``/``Fail``/``Choice`` nodes.

    Children are interned before parents, so a ``Choice`` can be keyed
    on its children's *identities* -- O(1) per node instead of the
    O(subtree) deep hashing that structural keys would cost.  The
    interner holds strong references to every canonical node, so the
    identity keys are stable for its lifetime.
    """

    def __init__(self):
        self._leaves: Dict[Tuple[type, object], Leaf] = {}
        self._choices: Dict[Tuple[object, int, int], Choice] = {}
        # id(tree) -> (tree, canonical): the already-interned fast path.
        self._done: Dict[int, Tuple[CFTree, CFTree]] = {}
        self._fix_wrappers: Dict[int, Tuple[Fix, Fix]] = {}
        self.shared = 0  # nodes aliased to an existing representative
        self.kept = 0  # nodes that became representatives

    def intern(self, tree: CFTree) -> CFTree:
        entry = self._done.get(id(tree))
        if entry is not None and entry[0] is tree:
            return entry[1]
        canonical = self._build(tree)
        self._done[id(tree)] = (tree, canonical)
        self._done[id(canonical)] = (canonical, canonical)
        return canonical

    def _build(self, tree: CFTree) -> CFTree:
        if isinstance(tree, Leaf):
            try:
                key = (type(tree.value), tree.value)
                hit = self._leaves.get(key)
            except TypeError:  # unhashable leaf value: keep as-is
                self.kept += 1
                return tree
            if hit is not None:
                self.shared += 1
                return hit
            self._leaves[key] = tree
            self.kept += 1
            return tree
        if isinstance(tree, Fail):
            if tree is not _FAIL:
                self.shared += 1
            return _FAIL
        if isinstance(tree, Choice):
            left = self.intern(tree.left)
            right = self.intern(tree.right)
            key = (tree.prob, id(left), id(right))
            hit = self._choices.get(key)
            if hit is not None:
                self.shared += 1
                return hit
            if left is tree.left and right is tree.right:
                canonical = tree
            else:
                canonical = Choice(tree.prob, left, right)
            self._choices[key] = canonical
            self.kept += 1
            return canonical
        if isinstance(tree, Fix):
            return self._wrap_fix(tree)
        raise TypeError("not a CF tree: %r" % (tree,))

    def _wrap_fix(self, fix: Fix) -> Fix:
        entry = self._fix_wrappers.get(id(fix))
        if entry is not None and entry[0] is fix:
            return entry[1]
        body, cont = fix.body, fix.cont
        # CSE only aliases equal subtrees (bit-exact), so the wrapper
        # keeps the wrapped loop's content key, subkey, and footprint.
        wrapper = Fix(
            fix.init,
            fix.guard,
            lambda s: self.intern(body(s)),
            lambda s: self.intern(cont(s)),
            key=fix.key,
            subkey=fix.subkey,
            footprint=fix.footprint,
        )
        self._fix_wrappers[id(fix)] = (fix, wrapper)
        # The wrapper is its own canonical form: re-interning it (e.g.
        # in cse(cse(t))) must be the identity, not a second wrapping.
        self._done[id(wrapper)] = (wrapper, wrapper)
        self.kept += 1
        return wrapper

    def stats(self) -> Dict[str, int]:
        return {"shared": self.shared, "kept": self.kept}


def cse(tree: CFTree, interner: TreeInterner = None) -> CFTree:
    """Rewrite ``tree`` into a maximally-shared DAG.

    With an explicit ``interner``, sharing extends across multiple
    trees (the pipeline uses one interner per compilation so that
    lazily-expanded loop bodies share with the main tree).
    """
    if interner is None:
        interner = TreeInterner()
    return interner.intern(tree)
