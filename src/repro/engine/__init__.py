"""The vectorized batch sampling engine.

Lowers debiased CF trees into flat array-encoded node tables
(:mod:`repro.engine.table`) and drives them in batches
(:mod:`repro.engine.driver`) off pooled, seedable bit buffers
(:mod:`repro.engine.pool`).  The per-sample trampoline
(:func:`repro.sampler.run.run_itree`) remains the reference
implementation; the differential test suite pins the engine to it
bit for bit.
"""

from repro.engine.api import (
    BACKENDS,
    ENGINES,
    BatchSampler,
    CollectResult,
    collect_auto,
)
from repro.engine.driver import (
    ENGINE_FAIL,
    collect_numpy,
    collect_python,
    run_table,
)
from repro.engine.native import (
    collect_kernel,
    kernel_for,
    native_available,
)
from repro.engine.pool import BitPool, HAVE_NUMPY, SourcePool
from repro.engine.profile import (
    PROFILES,
    EngineProfile,
    ProgramFeatures,
    feature_bucket,
    features_of,
    profile_from_dict,
    profile_named,
    register_profile,
    static_profile,
)
from repro.engine.table import (
    LoweringError,
    NodeTable,
    TableOverflow,
    lower_cftree,
)
from repro.engine.tuner import EngineTuner, get_tuner, tuning_enabled

__all__ = [
    "BACKENDS",
    "BatchSampler",
    "BitPool",
    "CollectResult",
    "ENGINES",
    "ENGINE_FAIL",
    "EngineProfile",
    "EngineTuner",
    "PROFILES",
    "ProgramFeatures",
    "collect_auto",
    "collect_kernel",
    "feature_bucket",
    "features_of",
    "get_tuner",
    "HAVE_NUMPY",
    "kernel_for",
    "LoweringError",
    "native_available",
    "NodeTable",
    "profile_from_dict",
    "profile_named",
    "register_profile",
    "SourcePool",
    "static_profile",
    "TableOverflow",
    "collect_numpy",
    "collect_python",
    "lower_cftree",
    "run_table",
    "tuning_enabled",
]
