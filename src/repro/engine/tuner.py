"""Recorded-throughput engine tuning: ``engine="auto"`` as a policy.

The static heuristic ("numpy if installed, else pure Python") is right
most of the time, but "most of the time" is exactly what a measured
policy can beat: small closed tables amortize no vectorization setup,
huge open frontiers favor the frontier driver, and future ``native``/
``serve`` backends will shift the trade-offs again.  ``EngineTuner`` is
a lightweight epsilon-greedy bandit over candidate
:class:`~repro.engine.profile.EngineProfile` arms, keyed by the coarse
feature buckets of :func:`~repro.engine.profile.feature_bucket`, with
recorded samples-per-second as the reward.

Because every candidate backend draws the same i.i.d. fair-bit samples
(selection is semantics-free; see ``docs/architecture.md``), exploring
a slow arm can only cost wall-clock time, never correctness.  The
cold-start prior is :func:`~repro.engine.profile.static_profile` -- the
old heuristic verbatim -- so a tuner with no data behaves exactly like
the pre-tuner code.

State persists as JSON next to the content-addressed artifact store:
``ZAR_TUNER_STATE`` names the file explicitly, else
``<ZAR_COMPILE_CACHE_DIR>/tuner.json`` when a disk cache is configured,
else state is in-memory only.  The tuner only engages on
``collect_auto(engine="auto")`` when a state path is configured (or a
tuner instance is passed explicitly): the default path stays
deterministic and bit-for-bit stable for the differential tests.
"""

import json
import os
import random
import tempfile
from typing import Dict, List, Optional

from repro.engine.profile import (
    EngineProfile,
    PROFILES,
    ProgramFeatures,
    feature_bucket,
    static_profile,
)

__all__ = [
    "EngineTuner",
    "TUNER_ENV",
    "default_state_path",
    "get_tuner",
    "reset_tuner",
    "tuning_enabled",
]

TUNER_ENV = "ZAR_TUNER_STATE"

#: Bump when the persisted state layout changes incompatibly.
STATE_VERSION = 1


def default_state_path() -> Optional[str]:
    """Resolve the persistence path from the environment.

    Priority: ``ZAR_TUNER_STATE``, then ``tuner.json`` beside the
    content-addressed artifact store (``ZAR_COMPILE_CACHE_DIR``), else
    ``None`` (in-memory only).
    """
    explicit = os.environ.get(TUNER_ENV)
    if explicit:
        return explicit
    cache_dir = os.environ.get("ZAR_COMPILE_CACHE_DIR")
    if cache_dir:
        return os.path.join(cache_dir, "tuner.json")
    return None


class EngineTuner:
    """Epsilon-greedy over candidate profiles, bucketed by features.

    Arm statistics are (run count, total samples/s) per profile name per
    feature bucket; the exploit choice maximizes mean samples/s.  The
    RNG is seeded, so a tuner's exploration schedule is reproducible.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        epsilon: float = 0.1,
        seed: int = 0,
        candidates: Optional[List[str]] = None,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1], got %r" % (epsilon,))
        self.path = path
        self.epsilon = epsilon
        self._rng = random.Random(seed)
        self._candidates = list(candidates) if candidates is not None else None
        # bucket -> profile name -> [count, total_samples_per_sec]
        self.state: Dict[str, Dict[str, List[float]]] = {}
        self.loads = 0
        self.saves = 0
        if self.path:
            self.load()

    # -- candidate arms --------------------------------------------------

    def candidates(self) -> List[str]:
        """Arm names: the batch profiles runnable in this process.

        The trampoline is deliberately not an arm -- it exists for
        semantics (reference driver, lowering fallback), and measuring
        it against the batch engine would waste exploration budget on a
        known-slow path.  Registered profiles named ``native-*`` or
        ``batch-*`` join automatically (minus ``sequential``, which is
        the per-sample debugging tier, and ``numpy`` when absent).
        """
        if self._candidates is not None:
            return list(self._candidates)
        from repro.engine.pool import HAVE_NUMPY

        names = []
        for name, profile in sorted(PROFILES.items()):
            if profile.engine == "trampoline":
                continue
            if profile.backend == "sequential":
                continue
            if profile.backend == "numpy" and not HAVE_NUMPY:
                continue
            if profile.backend == "native":
                from repro.engine.native import native_available

                # No compiler (or disabled): the arm would silently
                # measure the Python fallback -- skip it instead.
                if not native_available():
                    continue
            if profile.backend == "auto":
                continue  # resolves to one of the concrete arms anyway
            names.append(name)
        return names

    # -- the policy ------------------------------------------------------

    def choose(self, features: ProgramFeatures,
               explore: bool = True) -> EngineProfile:
        """The profile to run for ``features``.

        Cold start (no recorded runs for the bucket) returns the static
        heuristic -- the tuner never degrades an unmeasured workload.
        With data: epsilon-greedy (``explore=False`` forces pure
        exploitation; the CI gate evaluates that mode).
        """
        bucket = feature_bucket(features)
        arms = self.state.get(bucket)
        if not arms:
            return static_profile(features)
        candidates = self.candidates()
        if not candidates:
            return static_profile(features)
        if explore and self._rng.random() < self.epsilon:
            return PROFILES[self._rng.choice(candidates)]
        best_name = None
        best_mean = -1.0
        for name in candidates:
            stats = arms.get(name)
            if not stats or stats[0] <= 0:
                # Untried arm: optimistic initialization -- try it once
                # before settling, so a better backend is never starved.
                return PROFILES[name]
            mean = stats[1] / stats[0]
            if mean > best_mean:
                best_mean = mean
                best_name = name
        if best_name is None:
            return static_profile(features)
        return PROFILES[best_name]

    def record(self, features: ProgramFeatures, profile: EngineProfile,
               samples_per_sec: float) -> None:
        """Fold one observed throughput into the arm statistics."""
        if samples_per_sec <= 0:
            return
        bucket = feature_bucket(features)
        arms = self.state.setdefault(bucket, {})
        stats = arms.setdefault(profile.name, [0, 0.0])
        stats[0] += 1
        stats[1] += samples_per_sec
        if self.path:
            self.save()

    def mean_throughput(self, features: ProgramFeatures,
                        name: str) -> Optional[float]:
        stats = self.state.get(feature_bucket(features), {}).get(name)
        if not stats or stats[0] <= 0:
            return None
        return stats[1] / stats[0]

    # -- persistence -----------------------------------------------------

    def load(self) -> bool:
        """Read persisted state; a missing/corrupt file is a cold start."""
        if not self.path or not os.path.exists(self.path):
            return False
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return False
        if (
            not isinstance(payload, dict)
            or payload.get("version") != STATE_VERSION
            or not isinstance(payload.get("buckets"), dict)
        ):
            return False
        state: Dict[str, Dict[str, List[float]]] = {}
        for bucket, arms in payload["buckets"].items():
            if not isinstance(arms, dict):
                continue
            clean = {}
            for name, stats in arms.items():
                if (
                    isinstance(stats, list)
                    and len(stats) == 2
                    and isinstance(stats[0], int)
                    and stats[0] >= 0
                ):
                    clean[name] = [stats[0], float(stats[1])]
            state[bucket] = clean
        self.state = state
        self.loads += 1
        return True

    def save(self) -> bool:
        """Atomically persist state (write-to-temp + rename)."""
        if not self.path:
            return False
        payload = {"version": STATE_VERSION, "buckets": self.state}
        try:
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return False
        self.saves += 1
        return True


_GLOBAL: Optional[EngineTuner] = None


def tuning_enabled() -> bool:
    """True when ``engine="auto"`` should consult the tuner."""
    return default_state_path() is not None


def get_tuner() -> EngineTuner:
    """The process-wide tuner (state path resolved from the env)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = EngineTuner(path=default_state_path())
    return _GLOBAL


def reset_tuner() -> None:
    """Drop the process-wide tuner (tests re-resolve the env)."""
    global _GLOBAL
    _GLOBAL = None
