"""``BatchSampler``: the batch engine's user-facing facade.

Build once from a cpGCL command (or a CF tree), then draw samples in
batches::

    sampler = BatchSampler.from_command(n_sided_die(6))
    samples = sampler.collect(100_000, seed=7, extract=lambda s: s["x"])

``collect`` returns the same :class:`~repro.sampler.record.SampleSet`
the trampoline-based ``repro.sampler.record.collect`` produces, so the
harness and benchmarks consume either interchangeably.  Backends:

- ``"numpy"``  -- vectorized lanes (default when numpy is installed);
- ``"python"`` -- pooled pure-Python batch loop;
- ``"sequential"`` -- per-sample stepping against an explicit
  ``BitSource``; bit-for-bit equivalent to the trampoline (forced
  whenever ``source`` is given).
"""

from typing import Callable, List, NamedTuple, Optional, Tuple

from repro.bits.source import BitSource, CountingBits
from repro.cftree.tree import CFTree
from repro.engine import driver as _driver
from repro.engine.pool import BitPool, HAVE_NUMPY
from repro.engine.table import LoweringError, NodeTable
from repro.lang.state import State
from repro.lang.syntax import Command
from repro.sampler.record import SampleSet

BACKENDS = ("auto", "numpy", "python", "sequential")

ENGINES = ("auto", "batch", "trampoline")


class CollectResult(NamedTuple):
    """``collect_auto``'s result: the samples plus which path ran."""

    samples: SampleSet
    engine: str  # "batch" or "trampoline"
    table_nodes: int  # 0 on the trampoline path


def collect_auto(
    command: Command,
    n: int,
    sigma: Optional[State] = None,
    seed: Optional[int] = None,
    extract: Optional[Callable[[object], object]] = None,
    engine: str = "auto",
    fuel: Optional[int] = None,
    narrow: bool = False,
    observed: Optional[Tuple[str, ...]] = None,
) -> CollectResult:
    """Engine-selection policy shared by the harness, CLI, and checkers.

    ``engine="auto"`` tries the batch engine and falls back to the
    trampoline when lowering fails; ``"batch"`` propagates the
    :class:`LoweringError` instead; ``"trampoline"`` forces the
    per-sample reference driver.

    ``narrow=True`` applies liveness-driven loop-state narrowing
    (:func:`repro.compiler.liveness.narrow_command`) before sampling;
    ``observed`` names the variables whose final values the caller will
    read (they are kept live through the transform).  The narrowing
    happens at the command level, so the batch engine and the
    trampoline fallback sample the same narrowed program.
    """
    if engine not in ENGINES:
        raise ValueError("unknown engine %r" % (engine,))
    if narrow:
        from repro.compiler.liveness import narrow_command

        command = narrow_command(
            command, observed=tuple(observed) if observed else ()
        )
    if engine != "trampoline":
        try:
            sampler = BatchSampler.from_command(command, sigma)
            samples = sampler.collect(n, seed=seed, extract=extract, fuel=fuel)
            return CollectResult(samples, "batch", len(sampler.table))
        except LoweringError:
            if engine == "batch":
                raise
    from repro.itree.unfold import cpgcl_to_itree
    from repro.sampler.record import collect

    tree = cpgcl_to_itree(command, sigma if sigma is not None else State())
    samples = collect(tree, n, seed=seed, extract=extract, fuel=fuel)
    return CollectResult(samples, "trampoline", 0)


class BatchSampler:
    """A compiled sampler drawing N samples per call off a node table."""

    def __init__(self, table: NodeTable, tied: bool = True):
        self.table = table
        self.tied = tied

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_command(
        cls,
        command: Command,
        sigma: Optional[State] = None,
        coalesce: str = "loopback",
        eliminate: bool = True,
        max_nodes: int = 2_000_000,
    ) -> "BatchSampler":
        """Lower ``command`` through the staged compiler pipeline
        (normalize, compile, ``elim_choices``, ``debias``, ``cse``) into
        a deduplicated node table; artifacts are shared through the
        content-addressed compilation cache (:mod:`repro.compiler`)."""
        from repro.compiler.pipeline import compile_program

        passes = (
            ("elim_choices", "debias", "cse")
            if eliminate
            else ("debias", "cse")
        )
        program = compile_program(
            command,
            sigma,
            passes=passes,
            coalesce=coalesce,
            max_nodes=max_nodes,
        )
        return cls(program.table)

    @classmethod
    def from_cftree(
        cls,
        tree: CFTree,
        coalesce: str = "loopback",
        apply_debias: bool = True,
        max_nodes: int = 2_000_000,
    ) -> "BatchSampler":
        from repro.compiler.pipeline import compile_tree

        passes = ("debias", "cse") if apply_debias else ("cse",)
        program = compile_tree(
            tree, passes=passes, coalesce=coalesce, max_nodes=max_nodes
        )
        return cls(program.table)

    # -- sampling --------------------------------------------------------

    def sample(self, source: BitSource, max_steps: Optional[int] = None):
        """One sample against an explicit source (trampoline-exact)."""
        return _driver.run_table(self.table, source, max_steps, self.tied)

    def collect(
        self,
        n: int,
        seed: Optional[int] = None,
        source: Optional[BitSource] = None,
        extract: Optional[Callable[[object], object]] = None,
        fuel: Optional[int] = None,
        backend: str = "auto",
    ) -> SampleSet:
        """Draw ``n`` samples and return a :class:`SampleSet`.

        ``extract`` is applied once per *distinct* terminal payload, not
        once per sample -- a large win when payloads are program states.
        """
        if n <= 0:
            raise ValueError("need a positive sample count")
        if backend not in BACKENDS:
            raise ValueError("unknown backend %r" % (backend,))
        if source is not None:
            backend = "sequential"
        elif backend == "auto":
            backend = "numpy" if HAVE_NUMPY else "python"

        if backend == "sequential":
            counting = CountingBits(source if source is not None else BitPool(seed))
            indices: List[int] = []
            bits: List[int] = []
            for _ in range(n):
                indices.append(
                    _driver._step_indices(self.table, counting, fuel, self.tied)
                )
                bits.append(counting.take_count())
        elif backend == "python":
            indices, bits = _driver.collect_python(
                self.table, n, BitPool(seed), fuel, self.tied
            )
        else:  # numpy
            raw_indices, raw_bits = _driver.collect_numpy(
                self.table, n, seed=seed, max_steps=fuel, tied=self.tied
            )
            indices = raw_indices.tolist()
            bits = raw_bits.tolist()

        mapped = self.table.map_payloads(extract)
        values = [
            mapped[i] if i >= 0 else _driver.ENGINE_FAIL for i in indices
        ]
        return SampleSet(values, bits)

    def samples(
        self,
        n: int,
        seed: Optional[int] = None,
        source: Optional[BitSource] = None,
        backend: str = "auto",
    ) -> List[object]:
        return self.collect(n, seed=seed, source=source, backend=backend).values

    # -- introspection ---------------------------------------------------

    def stats(self):
        return self.table.stats()

    def __repr__(self):
        return "BatchSampler(%d nodes, %d payloads)" % (
            len(self.table),
            len(self.table.payloads),
        )
