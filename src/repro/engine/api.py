"""``BatchSampler``: the batch engine's user-facing facade.

Build once from a cpGCL command (or a CF tree), then draw samples in
batches::

    sampler = BatchSampler.from_command(n_sided_die(6))
    samples = sampler.collect(100_000, seed=7, extract=lambda s: s["x"])

``collect`` returns the same :class:`~repro.sampler.record.SampleSet`
the trampoline-based ``repro.sampler.record.collect`` produces, so the
harness and benchmarks consume either interchangeably.  Backends:

- ``"native"`` -- a generated C kernel over the pooled bit stream
  (closed tables only; see :mod:`repro.engine.native`), bit-for-bit
  identical to ``"sequential"``/``"python"`` on the same seed, with an
  observable downgrade to ``"python"`` when no kernel can run;
- ``"numpy"``  -- vectorized lanes (default when numpy is installed);
- ``"python"`` -- pooled pure-Python batch loop;
- ``"sequential"`` -- per-sample stepping against an explicit
  ``BitSource``; bit-for-bit equivalent to the trampoline (forced
  whenever ``source`` is given).

Engine selection lives in :mod:`repro.engine.profile`: an
:class:`~repro.engine.profile.EngineProfile` bundles every knob
(engine, backend, batch size, pass list, coalesce, narrowing, fuel,
node budget), and :func:`collect_auto` resolves ``engine="auto"``
through the telemetry-backed policy in :mod:`repro.engine.tuner` with
the old static heuristic as the cold-start prior.
"""

import time
from typing import Callable, List, NamedTuple, Optional, Tuple

from repro.bits.source import BitSource, CountingBits
from repro.cftree.tree import CFTree
from repro.engine import driver as _driver
from repro.engine.pool import BitPool, HAVE_NUMPY
from repro.engine.table import LoweringError, NodeTable
from repro.lang.state import State
from repro.lang.syntax import Command
from repro.sampler.record import SampleSet

BACKENDS = ("auto", "native", "numpy", "python", "sequential")

ENGINES = ("auto", "batch", "trampoline")


class CollectResult(NamedTuple):
    """``collect_auto``'s result: the samples plus which path ran.

    ``profile`` is the resolved :class:`~repro.engine.profile.
    EngineProfile`; ``fallback_reason`` carries the stringified
    ``LoweringError`` when a requested batch path silently downgraded
    to the trampoline, or a ``"native-unavailable: ..."`` note when the
    native backend downgraded to the bit-identical pooled Python
    backend (``None`` otherwise) -- telemetry records and test
    assertions key on it.  ``seconds`` is sampling wall-clock
    (compilation excluded).
    """

    samples: SampleSet
    engine: str  # "batch" or "trampoline"
    table_nodes: int  # 0 on the trampoline path
    profile: Optional[object] = None
    fallback_reason: Optional[str] = None
    seconds: float = 0.0


def _narrowed(command: Command, observed) -> Command:
    from repro.compiler.liveness import narrow_command

    return narrow_command(
        command, observed=tuple(observed) if observed else ()
    )


def _compile_with(command: Command, sigma, profile) -> "object":
    """Compile ``command`` with the profile's compiler-shaping knobs."""
    from repro.compiler.pipeline import compile_program

    return compile_program(
        command,
        sigma,
        passes=profile.passes,
        coalesce=profile.coalesce,
        max_nodes=profile.max_nodes,
    )


def _run_trampoline(command, n, sigma, seed, extract, fuel):
    from repro.itree.unfold import cpgcl_to_itree
    from repro.sampler.record import collect

    tree = cpgcl_to_itree(command, sigma if sigma is not None else State())
    return collect(tree, n, seed=seed, extract=extract, fuel=fuel)


def collect_auto(
    command: Command,
    n: int,
    sigma: Optional[State] = None,
    seed: Optional[int] = None,
    extract: Optional[Callable[[object], object]] = None,
    engine: str = "auto",
    fuel: Optional[int] = None,
    narrow: bool = False,
    observed: Optional[Tuple[str, ...]] = None,
    profile: Optional[object] = None,
    backend: Optional[str] = None,
    tuner: Optional[object] = None,
) -> CollectResult:
    """Engine-selection policy shared by the harness, CLI, and checkers.

    The selection seam: every caller funnels through one resolved
    :class:`~repro.engine.profile.EngineProfile`.

    - ``profile`` pins the full strategy explicitly (CLI ``--profile``,
      benchmarks, the tuner's arms); ``engine``/``backend`` are then
      only used as overrides when passed.
    - ``engine="auto"`` (no profile) tries the batch engine and falls
      back to the trampoline when lowering fails -- the fallback is
      *observable* via ``CollectResult.fallback_reason``.  The backend
      comes from the telemetry-backed tuner when one is engaged (a
      ``tuner`` argument, or ``ZAR_TUNER_STATE``/a configured artifact
      store; see :mod:`repro.engine.tuner`), else from the static
      heuristic -- which is also the tuner's cold-start prior, so an
      untrained tuner is behaviorally identical to no tuner.
    - ``engine="batch"`` propagates the :class:`LoweringError` instead
      of falling back; ``engine="trampoline"`` forces the per-sample
      reference driver.

    ``narrow=True`` applies liveness-driven loop-state narrowing
    (:func:`repro.compiler.liveness.narrow_command`) before sampling;
    ``observed`` names the variables whose final values the caller will
    read.  The narrowing happens at the command level, so the batch
    engine and the trampoline fallback sample the same narrowed
    program.

    When telemetry is enabled (``ZAR_TELEMETRY_DIR``), every call
    appends one JSONL run record: digest, profile, wall-clock,
    samples/s, bits, cache tier, and any fallback reason.
    """
    from repro.engine.profile import (
        PROFILES,
        features_of,
        feature_bucket,
        static_profile,
        validate_profile,
    )

    if engine not in ENGINES:
        raise ValueError(
            "unknown engine %r (valid: %s)" % (engine, ", ".join(ENGINES))
        )
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            "unknown backend %r (valid: %s)" % (backend, ", ".join(BACKENDS))
        )

    explicit = profile is not None
    if explicit:
        validate_profile(profile)
        resolved = profile
    elif engine == "trampoline":
        resolved = PROFILES["trampoline"]
    elif engine == "batch":
        resolved = PROFILES["batch-auto"]
    else:  # "auto": batch attempt first; backend policy resolved below.
        resolved = None

    # Per-call overrides win over the profile's stored knobs.
    run_narrow = narrow or bool(resolved is not None and resolved.narrow)
    run_fuel = fuel if fuel is not None else (
        resolved.fuel if resolved is not None else None
    )
    if run_narrow:
        command = _narrowed(command, observed)

    # -- trampoline-only paths ------------------------------------------
    if resolved is not None and resolved.engine == "trampoline":
        start = time.perf_counter()
        samples = _run_trampoline(command, n, sigma, seed, extract, run_fuel)
        seconds = time.perf_counter() - start
        result = CollectResult(samples, "trampoline", 0, resolved, None,
                               seconds)
        _emit_run(None, resolved, result, n, cache_source=None)
        return result

    # -- batch attempt ---------------------------------------------------
    compile_profile = resolved if resolved is not None \
        else PROFILES["batch-auto"]
    fallback_reason = None
    program = None
    try:
        program = _compile_with(command, sigma, compile_profile)
    except LoweringError as err:
        if engine == "batch" or explicit:
            raise
        fallback_reason = str(err)

    if program is not None:
        if resolved is None:
            # engine="auto": pick the backend profile from features.
            features = features_of(program)
            active_tuner = tuner
            if active_tuner is None:
                from repro.engine.tuner import get_tuner, tuning_enabled

                active_tuner = get_tuner() if tuning_enabled() else None
            if active_tuner is not None:
                resolved = active_tuner.choose(features)
            else:
                resolved = static_profile(features)
            if (
                resolved.passes != compile_profile.passes
                or resolved.coalesce != compile_profile.coalesce
                or resolved.max_nodes != compile_profile.max_nodes
            ):
                # The policy chose different compiler knobs: recompile
                # (the artifact cache keys on them, so this is cheap
                # when warm).
                program = _compile_with(command, sigma, resolved)
        else:
            features = None
            active_tuner = tuner
        run_backend = backend if backend is not None else resolved.backend
        if run_backend != resolved.backend:
            # A kwarg-level backend override is a manual pin, not a
            # policy decision: fold it into the reported profile so the
            # CLI/telemetry say what actually ran, and keep the run out
            # of the tuner's arm statistics (crediting the base arm
            # with another backend's throughput would corrupt the
            # policy).
            resolved = resolved._replace(
                name="%s+%s" % (resolved.name, run_backend),
                backend=run_backend,
            )
            active_tuner = None
        sampler = BatchSampler(program.table)
        start = time.perf_counter()
        try:
            samples = sampler.collect(
                n,
                seed=seed,
                extract=extract,
                fuel=run_fuel,
                backend=run_backend,
                batch_size=resolved.batch_size,
            )
        except LoweringError as err:
            # Open tables can overflow their node budget mid-sampling.
            if engine == "batch" or explicit:
                raise
            fallback_reason = str(err)
        else:
            seconds = time.perf_counter() - start
            result = CollectResult(
                samples, "batch", len(sampler.table), resolved,
                sampler.native_fallback, seconds
            )
            if active_tuner is not None and seconds > 0:
                if features is None:
                    features = features_of(program)
                active_tuner.record(features, resolved, n / seconds)
            _emit_run(
                program, resolved, result, n,
                cache_source=getattr(program, "source", None),
                bucket=feature_bucket(features) if features is not None
                else None,
                kernel=sampler.native_info,
            )
            return result

    # -- trampoline fallback --------------------------------------------
    start = time.perf_counter()
    samples = _run_trampoline(command, n, sigma, seed, extract, run_fuel)
    seconds = time.perf_counter() - start
    result = CollectResult(
        samples, "trampoline", 0, resolved, fallback_reason, seconds
    )
    _emit_run(program, resolved, result, n, cache_source=None)
    return result


def _emit_run(program, profile, result: CollectResult, n: int,
              cache_source=None, bucket=None, kernel=None) -> None:
    """Append a telemetry record for one run (no-op when disabled)."""
    from repro.telemetry import make_run_record, emit, telemetry_enabled

    if not telemetry_enabled():
        return
    emit(
        make_run_record(
            digest=getattr(program, "digest", None),
            profile=profile.as_dict() if profile is not None else None,
            n=n,
            seconds=result.seconds,
            engine=result.engine,
            backend=profile.backend if profile is not None else None,
            bits_total=sum(result.samples.bits),
            cache_source=cache_source,
            fallback_reason=result.fallback_reason,
            table_rows=result.table_nodes,
            feature_bucket=bucket,
            kernel_cache=(kernel or {}).get("tier"),
            kernel_compile_ms=(kernel or {}).get("compile_ms"),
        )
    )


class BatchSampler:
    """A compiled sampler drawing N samples per call off a node table."""

    def __init__(self, table: NodeTable, tied: bool = True):
        self.table = table
        self.tied = tied
        #: After a ``backend="native"`` collect: the downgrade note
        #: (``"native-unavailable: ..."``) when the kernel path could
        #: not run and the pooled Python backend served the request
        #: bit-identically, else ``None``.
        self.native_fallback: Optional[str] = None
        #: Kernel-cache telemetry from the last native resolution
        #: (``tier``/``compile_ms``/``digest``), else ``None``.
        self.native_info = None

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_command(
        cls,
        command: Command,
        sigma: Optional[State] = None,
        coalesce: str = "loopback",
        eliminate: bool = True,
        max_nodes: int = 2_000_000,
    ) -> "BatchSampler":
        """Lower ``command`` through the staged compiler pipeline
        (normalize, compile, ``elim_choices``, ``debias``, ``cse``) into
        a deduplicated node table; artifacts are shared through the
        content-addressed compilation cache (:mod:`repro.compiler`)."""
        from repro.compiler.pipeline import compile_program

        passes = (
            ("elim_choices", "debias", "cse")
            if eliminate
            else ("debias", "cse")
        )
        program = compile_program(
            command,
            sigma,
            passes=passes,
            coalesce=coalesce,
            max_nodes=max_nodes,
        )
        return cls(program.table)

    @classmethod
    def from_profile(
        cls,
        command: Command,
        sigma: Optional[State] = None,
        profile: Optional[object] = None,
    ) -> "BatchSampler":
        """Lower ``command`` with an :class:`~repro.engine.profile.
        EngineProfile`'s compiler-shaping knobs."""
        from repro.engine.profile import PROFILES, validate_profile

        if profile is None:
            profile = PROFILES["batch-auto"]
        else:
            validate_profile(profile)
        program = _compile_with(command, sigma, profile)
        return cls(program.table)

    @classmethod
    def from_cftree(
        cls,
        tree: CFTree,
        coalesce: str = "loopback",
        apply_debias: bool = True,
        max_nodes: int = 2_000_000,
    ) -> "BatchSampler":
        from repro.compiler.pipeline import compile_tree

        passes = ("debias", "cse") if apply_debias else ("cse",)
        program = compile_tree(
            tree, passes=passes, coalesce=coalesce, max_nodes=max_nodes
        )
        return cls(program.table)

    # -- sampling --------------------------------------------------------

    def sample(self, source: BitSource, max_steps: Optional[int] = None):
        """One sample against an explicit source (trampoline-exact)."""
        return _driver.run_table(self.table, source, max_steps, self.tied)

    def _collect_indices(
        self,
        n: int,
        seed: Optional[int],
        source: Optional[BitSource],
        fuel: Optional[int],
        backend: str,
    ) -> Tuple[List[int], List[int]]:
        """One driver call: payload indices + per-sample bit counts."""
        if backend == "native":
            indices_bits = self._collect_native(n, seed, fuel)
            if indices_bits is not None:
                return indices_bits
            # Downgrade (reason recorded in ``native_fallback``) to the
            # pooled Python backend, which consumes the identical
            # ``BitPool(seed)`` stream -- the fallback is bit-for-bit.
            backend = "python"
        if backend == "sequential":
            counting = CountingBits(
                source if source is not None else BitPool(seed)
            )
            indices: List[int] = []
            bits: List[int] = []
            for _ in range(n):
                indices.append(
                    _driver._step_indices(self.table, counting, fuel,
                                          self.tied)
                )
                bits.append(counting.take_count())
            return indices, bits
        if backend == "python":
            return _driver.collect_python(
                self.table, n, BitPool(seed), fuel, self.tied
            )
        raw_indices, raw_bits = _driver.collect_numpy(
            self.table, n, seed=seed, max_steps=fuel, tied=self.tied
        )
        return raw_indices.tolist(), raw_bits.tolist()

    def _collect_native(
        self, n: int, seed: Optional[int], fuel: Optional[int]
    ) -> Optional[Tuple[List[int], List[int]]]:
        """Try the generated-kernel path; ``None`` means "downgrade".

        Every refusal is observable: ``native_fallback`` carries a
        ``"native-unavailable: <reason>"`` note and ``native_info`` the
        kernel-cache telemetry (when a kernel was resolved).
        """
        from repro.engine import native as _native

        if fuel is not None:
            # Fuel counts *node visits*, a quantity only the Python
            # drivers define (the kernel sees no JMP/LEAF rows); refuse
            # rather than approximate so metered runs stay exact.
            self.native_fallback = (
                "native-unavailable: fuel metering needs the Python "
                "drivers' step accounting"
            )
            return None
        kernel, reason, info = _native.kernel_for(self.table)
        self.native_info = info
        if kernel is None:
            self.native_fallback = "native-unavailable: %s" % reason
            return None
        return _native.collect_kernel(kernel, n, seed=seed, tied=self.tied)

    def collect(
        self,
        n: int,
        seed: Optional[int] = None,
        source: Optional[BitSource] = None,
        extract: Optional[Callable[[object], object]] = None,
        fuel: Optional[int] = None,
        backend: str = "auto",
        batch_size: Optional[int] = None,
    ) -> SampleSet:
        """Draw ``n`` samples and return a :class:`SampleSet`.

        ``extract`` is applied once per *distinct* terminal payload, not
        once per sample -- a large win when payloads are program states.

        ``batch_size`` splits the collection into chunks of at most that
        many samples per driver call (bounding peak lane memory on the
        numpy backend).  Chunked pooled backends derive one seed per
        chunk, so the draw remains seeded-deterministic and i.i.d. but
        the concatenated stream differs from an unchunked run;
        ``batch_size=None`` (the default, and the registry profiles')
        is the bit-stable single-call path.  The sequential backend
        threads one counting source through every chunk, so chunking
        never changes its bit stream.
        """
        if n <= 0:
            raise ValueError("need a positive sample count")
        self.native_fallback = None
        if backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r (valid: %s)"
                % (backend, ", ".join(BACKENDS))
            )
        if source is not None:
            backend = "sequential"
        elif backend == "auto":
            backend = "numpy" if HAVE_NUMPY else "python"

        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive or None")
        if batch_size is None or batch_size >= n:
            indices, bits = self._collect_indices(n, seed, source, fuel,
                                                  backend)
        elif backend == "sequential":
            # One shared source: chunk boundaries are invisible to the
            # bit stream.
            shared = source if source is not None else BitPool(seed)
            indices, bits = self._collect_indices(n, seed, shared, fuel,
                                                  backend)
        else:
            indices, bits = [], []
            drawn = 0
            chunk_index = 0
            while drawn < n:
                chunk = min(batch_size, n - drawn)
                chunk_seed = (
                    None if seed is None
                    else (seed + 0x9E3779B1 * (chunk_index + 1)) % (2 ** 63)
                )
                chunk_indices, chunk_bits = self._collect_indices(
                    chunk, chunk_seed, None, fuel, backend
                )
                indices.extend(chunk_indices)
                bits.extend(chunk_bits)
                drawn += chunk
                chunk_index += 1

        mapped = self.table.map_payloads(extract)
        values = [
            mapped[i] if i >= 0 else _driver.ENGINE_FAIL for i in indices
        ]
        return SampleSet(values, bits)

    def samples(
        self,
        n: int,
        seed: Optional[int] = None,
        source: Optional[BitSource] = None,
        backend: str = "auto",
    ) -> List[object]:
        return self.collect(n, seed=seed, source=source, backend=backend).values

    # -- introspection ---------------------------------------------------

    def stats(self):
        return self.table.stats()

    def __repr__(self):
        return "BatchSampler(%d nodes, %d payloads)" % (
            len(self.table),
            len(self.table.payloads),
        )
