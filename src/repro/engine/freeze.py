"""Content-addressed serialization of *open* node tables.

A warm open table is the expensive artifact of this engine: tens of
seconds of JIT loop expansion distilled into rows plus the memo that
keeps back-edges closed.  Closed tables have always round-tripped
through the compilation cache's disk tier; open tables could not,
because pending stubs and call records hold ``Fix`` closures, which have
no meaningful pickle.

The content-key discipline (:mod:`repro.cftree.keys`) removes that
obstruction.  Every loop entry is memoized under a
``(fix_token, k_token, state)`` triple whose tokens are SHA-256 content
digests whenever the loop carries a key; two ``Fix`` objects with equal
tokens are extensionally interchangeable.  So an open table freezes as:

- the row arrays and payload values (tagged encoding below);
- every *keyed* memo entry as its digest triple plus row index;
- every pending stub as its digest triple (identity-keyed pendings --
  the untagged rejection/bind wrappers -- are expanded out first; their
  state spaces are tiny, so this terminates quickly);
- every call record as ``(fix_token, k_token, frame, returns)``.

Thawing restores the arrays and memos and marks the table
``needs_rebind``: the pipeline then recompiles the (cheap) tree and
calls :meth:`~repro.engine.table.NodeTable.thaw_bind`, which lowers it
against the restored memos -- loop entries hit the frozen rows and
re-register live ``Fix`` objects by token.  Pendings and call returns
rebind lazily on first use; nested loops whose objects never
re-materialized are recovered by scanning parent body trees
(``_rebind_scan``), which is sound precisely because equal tokens
promise bit-for-bit equal behavior.

Identity-keyed *memo entries* (as opposed to pendings) are simply
dropped: they only deduplicate future work, so losing them costs rows,
never correctness.
"""

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.cftree.tree import LOOPBACK
from repro.engine.table import (
    NodeTable,
    OP_STUB,
    _CallRecord,
    _FrozenPending,
    _fix_token,
    _k_token,
)
from repro.lang.state import State

#: Bump when the frozen encoding changes shape.
FREEZE_VERSION = 1

#: Default bound on the pre-freeze expansions that close out
#: identity-keyed pendings.  Untagged wrappers have sentinel-sized state
#: spaces, so real tables need a handful; the bound is a backstop
#: against pathological programs, not a tuning knob.
EXPAND_BUDGET_DEFAULT = 100_000


def token_serializable(token) -> bool:
    """True when a memo token survives a process round-trip.

    Content tokens are digest strings (or ``"H"``, or ``("K", ...)``
    chains of them); identity fallbacks embed ``("@", id)`` / ``("#",
    id)`` pairs whose addresses mean nothing in another process.
    """
    if isinstance(token, str):
        return True
    if isinstance(token, tuple):
        if token and token[0] in ("@", "#"):
            return False
        return all(token_serializable(part) for part in token)
    return isinstance(token, (int, bool, Fraction))


# -- value encoding -------------------------------------------------------
#
# Payloads, memo states, and call frames hold States, sentinel values,
# and plain scalars.  The LOOPBACK sentinel is an ``is``-compared
# singleton, so it cannot go through pickle structurally; everything is
# wrapped in a small tagged encoding instead.


class FreezeUnsupported(ValueError):
    """A value (or token) in the table has no frozen representation."""


def encode_value(value):
    if value is LOOPBACK:
        return ("L",)
    if value is None:
        return ("n",)
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, int):
        return ("i", value)
    if isinstance(value, str):
        return ("s", value)
    if isinstance(value, Fraction):
        return ("F", value.numerator, value.denominator)
    if isinstance(value, State):
        return (
            "S",
            tuple((name, encode_value(v)) for name, v in value.items()),
        )
    if isinstance(value, tuple):
        return ("t", tuple(encode_value(v) for v in value))
    raise FreezeUnsupported("cannot freeze value %r" % (value,))


def decode_value(blob):
    tag = blob[0]
    if tag == "L":
        return LOOPBACK
    if tag == "n":
        return None
    if tag in ("b", "i", "s"):
        return blob[1]
    if tag == "F":
        return Fraction(blob[1], blob[2])
    if tag == "S":
        return State._from_sorted(
            tuple((name, decode_value(v)) for name, v in blob[1])
        )
    if tag == "t":
        return tuple(decode_value(v) for v in blob[1])
    raise FreezeUnsupported("unknown frozen value tag %r" % (tag,))


# -- freeze ---------------------------------------------------------------


def _pending_serializable(table: NodeTable, entry) -> bool:
    if type(entry) is _FrozenPending:
        return True
    fix, k, state = entry
    return token_serializable(_fix_token(fix)) and token_serializable(
        _k_token(k)
    )


def freeze_report(table: NodeTable) -> Dict[str, object]:
    """Cacheability of an open table, for stage reports and the CLI."""
    keyed = unkeyed = 0
    for entry in table._pending.values():
        if _pending_serializable(table, entry):
            keyed += 1
        else:
            unkeyed += 1
    unkeyed_calls = sum(
        1
        for record in table.calls
        if not (
            token_serializable(record.fix_token)
            and token_serializable(record.k_token)
        )
    )
    memo_keyed = sum(
        1
        for key in table._enter_memo
        if token_serializable(key[0]) and token_serializable(key[1])
    )
    return {
        "pending_keyed": keyed,
        "pending_unkeyed": unkeyed,
        "calls": len(table.calls),
        "calls_unkeyed": unkeyed_calls,
        "memo_entries": len(table._enter_memo),
        "memo_keyed": memo_keyed,
        "spillable": unkeyed_calls == 0,
    }


def freeze_table(
    table: NodeTable, expand_budget: int = EXPAND_BUDGET_DEFAULT
) -> Optional[dict]:
    """An open table as a picklable record, or ``None`` if unspillable.

    Mutates the table only by *expanding* identity-keyed pendings (extra
    rows, never changed semantics).  Refuses -- returning ``None`` --
    when an unkeyed call record exists or the expansion budget runs out.
    """
    spent = 0
    while True:
        bad = [
            index
            for index, entry in table._pending.items()
            if not _pending_serializable(table, entry)
        ]
        if not bad:
            break
        if spent + len(bad) > expand_budget:
            return None
        for index in bad:
            table.expand(index)
        spent += len(bad)

    try:
        calls = []
        for record in table.calls:
            if not (
                token_serializable(record.fix_token)
                and token_serializable(record.k_token)
            ):
                return None
            calls.append(
                (
                    record.fix_token,
                    record.k_token,
                    tuple(
                        (name, encode_value(v))
                        for name, v in sorted(record.frame.items())
                    ),
                    tuple(record.returns.items()),
                )
            )

        pending = []
        for index, entry in table._pending.items():
            if type(entry) is _FrozenPending:
                fix_token, k_token, state = (
                    entry.fix_token,
                    entry.k_token,
                    entry.state,
                )
            else:
                fix, k, state = entry
                fix_token, k_token = _fix_token(fix), _k_token(k)
            pending.append(
                (index, fix_token, k_token, encode_value(state))
            )

        memo = []
        orphans = []
        orphan_seen = set()
        for key, value in table._enter_memo.items():
            fix_token, k_token, state = key
            if not (
                token_serializable(fix_token)
                and token_serializable(k_token)
            ):
                # Identity-keyed: the entry itself is a pure optimization
                # (droppable), but its *state* is still a valid entry
                # state of some unkeyed wrapper loop -- the rebind scan
                # needs those to unfold wrappers whose children are
                # keyed (see NodeTable._rebind_scan).  Wrapper state
                # spaces are sentinel-sized, so the dedup keeps this
                # list tiny.
                try:
                    state_blob = encode_value(state)
                except FreezeUnsupported:
                    continue
                if state_blob not in orphan_seen and len(orphans) < 4096:
                    orphan_seen.add(state_blob)
                    orphans.append(state_blob)
                continue
            try:
                state_blob = encode_value(state)
            except FreezeUnsupported:
                continue
            memo.append((fix_token, k_token, state_blob, value[3]))

        payloads = [encode_value(value) for value in table.payloads]
    except FreezeUnsupported:
        return None

    return {
        "freeze_version": FREEZE_VERSION,
        "max_nodes": table.max_nodes,
        "dedupe": table.dedupe,
        "op": list(table.op),
        "a": list(table.a),
        "b": list(table.b),
        "payload": list(table.payload),
        "payloads": payloads,
        "root": table.root,
        "fail_node": table._fail_node,
        "pending": pending,
        "memo": memo,
        "orphans": orphans,
        "calls": calls,
        "expansions": table.expansions,
        "freeze_expansions": spent,
    }


# -- thaw -----------------------------------------------------------------


def thaw_table(blob: dict) -> NodeTable:
    """Rebuild a :class:`NodeTable` from :func:`freeze_table` output.

    The result carries ``needs_rebind=True``: callers must recompile the
    program tree and run :meth:`NodeTable.thaw_bind` before sampling, or
    the first frozen stub hit raises.
    """
    if blob.get("freeze_version") != FREEZE_VERSION:
        raise ValueError(
            "frozen table version %r != %d"
            % (blob.get("freeze_version"), FREEZE_VERSION)
        )
    table = NodeTable(blob["max_nodes"], dedupe=blob.get("dedupe", True))
    table.op = list(blob["op"])
    table.a = list(blob["a"])
    table.b = list(blob["b"])
    table.payload = list(blob["payload"])
    table.payloads = [decode_value(v) for v in blob["payloads"]]
    table.root = blob["root"]
    table._fail_node = blob.get("fail_node", -1)
    table.expansions = blob.get("expansions", 0)
    table.version = 1
    table.needs_rebind = True

    for value, index in zip(table.payloads, range(len(table.payloads))):
        try:
            table._payload_index.setdefault(value, index)
        except TypeError:
            pass

    if table.dedupe:
        for i in range(len(table.op)):
            if table.op[i] != OP_STUB:
                table._row_intern.setdefault(
                    (table.op[i], table.a[i], table.b[i], table.payload[i]),
                    i,
                )

    for index, fix_token, k_token, state_blob in blob["pending"]:
        state = decode_value(state_blob)
        table._pending[index] = _FrozenPending(fix_token, k_token, state)
        table._frozen_enters.append((fix_token, state))

    for fix_token, k_token, state_blob, index in blob["memo"]:
        state = decode_value(state_blob)
        table._enter_memo[(fix_token, k_token, state)] = (
            None,
            None,
            state,
            index,
        )
        table._frozen_enters.append((fix_token, state))

    table._orphan_states = [
        decode_value(blob_) for blob_ in blob.get("orphans", ())
    ]

    for fix_token, k_token, frame_blob, returns in blob["calls"]:
        frame = {name: decode_value(v) for name, v in frame_blob}
        record = _CallRecord(
            None, None, frame, fix_token=fix_token, k_token=k_token
        )
        record.returns = dict(returns)
        table.calls.append(record)
        # The loop's exit continuation was lowered at *merged* states
        # (sub-exit foot + frame) that never pass through _enter, so
        # they exist nowhere in the memo; without them the rebind scan
        # cannot rediscover loops living only in cont trees.
        for payload_index in record.returns:
            value = table.payloads[payload_index]
            if isinstance(value, State):
                try:
                    merged = value.update(frame) if frame else value
                except (TypeError, ValueError):
                    continue
                table._frozen_enters.append((fix_token, merged))

    return table
