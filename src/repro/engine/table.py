"""Flat array encoding of debiased CF trees (the batch engine's IR).

The per-sample trampoline (:func:`repro.sampler.run.run_itree`) pays a
Python closure call per ``Tau``/``Vis`` step.  The engine instead lowers
a debiased CF tree into a *node table*: four parallel arrays

- ``op[i]``      -- the node kind (``OP_BIT``/``OP_LEAF``/...);
- ``a[i]``       -- the bit-``True`` branch target (or the jump target);
- ``b[i]``       -- the bit-``False`` branch target;
- ``payload[i]`` -- index into ``payloads`` for leaves, ``-1`` otherwise;

so a sample is drawn by pure index arithmetic: ``i = a[i] if bit else
b[i]``.  Drivers (see :mod:`repro.engine.driver`) walk the table either
one sample at a time (bit-for-bit equivalent to the trampoline) or as a
vectorized batch over numpy arrays.

``Fix`` nodes cannot be lowered eagerly: their loop-state space may be
unbounded (e.g. the geometric counter), so a loop entry at state ``s``
is first emitted as an ``OP_STUB`` and expanded on first visit
(:meth:`NodeTable.expand`).  Expansions are memoized per
``(fix identity, continuation, state)``, so finite loop-state spaces
close up into back-edges (the rejection loops of ``uniform_tree`` become
a single back jump) and unbounded ones grow the table once per *distinct*
state, amortized across all samples.  ``Fail`` leaves compile to a single
``OP_FAIL`` node; the tied driver treats it as "restart at the root",
which is exactly ``tie_itree``'s rejection semantics.

The traversal order of ``Choice`` nodes -- and hence the consumed bit
sequence -- is identical to ``to_itree_open``'s: a ``True`` bit selects
the left subtree (the paper's "heads").
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf

# Node opcodes.  OP_BIT consumes one fair bit and branches; OP_LEAF
# produces payload ``payload[i]``; OP_FAIL is observation failure;
# OP_JMP is an unconditional hop (left behind by stub expansion);
# OP_STUB is an unexpanded loop entry.
OP_BIT = 0
OP_LEAF = 1
OP_FAIL = 2
OP_JMP = 3
OP_STUB = 4

OP_NAMES = ("BIT", "LEAF", "FAIL", "JMP", "STUB")


class LoweringError(ValueError):
    """The tree cannot be lowered (e.g. a biased choice survived)."""


class TableOverflow(LoweringError):
    """Lowering exceeded the node budget (state space too large)."""


class _Halt:
    """The terminal continuation: a leaf value is a finished sample."""

    __slots__ = ()

    def __repr__(self):
        return "HALT"


_HALT = _Halt()


class _LoopK:
    """The in-loop continuation: a leaf value is the next loop state.

    Interned per ``(fix identity, outer continuation)`` so that memo keys
    built from continuations compare by identity.
    """

    __slots__ = ("fix", "outer")

    def __init__(self, fix: Fix, outer):
        self.fix = fix
        self.outer = outer

    def __repr__(self):
        return "LoopK(%r)" % (self.fix,)


class NodeTable:
    """An array-encoded sampler with JIT-expanded loop entries."""

    def __init__(self, max_nodes: int = 2_000_000):
        self.op: List[int] = []
        self.a: List[int] = []  # True-branch / jump target
        self.b: List[int] = []  # False-branch target
        self.payload: List[int] = []
        self.payloads: List[object] = []
        self.max_nodes = max_nodes
        self.root = -1
        # Monotone counter bumped on every structural change; drivers
        # use it to refresh derived (numpy) views incrementally.
        self.version = 0
        self._fail_node = -1
        self._payload_index: Dict[object, int] = {}
        self._lower_memo: Dict[Tuple[int, int], Tuple[CFTree, int]] = {}
        self._enter_memo: Dict[Tuple[int, int, object], Tuple[Fix, int]] = {}
        self._loopk_intern: Dict[Tuple[int, int], _LoopK] = {}
        self._pending: Dict[int, Tuple[Fix, object, object]] = {}
        self.expansions = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def from_cftree(cls, tree: CFTree, max_nodes: int = 2_000_000) -> "NodeTable":
        """Lower a *debiased* CF tree; the root is set to its entry node."""
        table = cls(max_nodes)
        table.root = table._lower(tree, _HALT)
        return table

    def _alloc(self, op: int, a: int = -1, b: int = -1, payload: int = -1) -> int:
        if len(self.op) >= self.max_nodes:
            raise TableOverflow(
                "node table exceeded %d nodes (loop state space too "
                "large for the batch engine)" % self.max_nodes
            )
        index = len(self.op)
        self.op.append(op)
        self.a.append(a)
        self.b.append(b)
        self.payload.append(payload)
        self.version += 1
        return index

    def _leaf(self, value: object) -> int:
        try:
            pidx = self._payload_index.get(value)
            hashable = True
        except TypeError:
            pidx, hashable = None, False
        if pidx is None:
            pidx = len(self.payloads)
            self.payloads.append(value)
            if hashable:
                self._payload_index[value] = pidx
        return self._alloc(OP_LEAF, payload=pidx)

    def _fail(self) -> int:
        if self._fail_node < 0:
            self._fail_node = self._alloc(OP_FAIL)
        return self._fail_node

    def _loopk(self, fix: Fix, outer) -> _LoopK:
        key = (id(fix), id(outer))
        k = self._loopk_intern.get(key)
        if k is None:
            k = _LoopK(fix, outer)
            self._loopk_intern[key] = k
        return k

    def _apply_k(self, k, value) -> int:
        if k is _HALT:
            return self._leaf(value)
        return self._enter(k.fix, k.outer, value)

    def _lower(self, tree: CFTree, k) -> int:
        memo_key = (id(tree), id(k))
        hit = self._lower_memo.get(memo_key)
        if hit is not None:
            return hit[1]
        if isinstance(tree, Leaf):
            index = self._apply_k(k, tree.value)
        elif isinstance(tree, Fail):
            index = self._fail()
        elif isinstance(tree, Choice):
            if tree.prob * 2 != 1:
                raise LoweringError(
                    "biased choice (p=%s) in engine lowering; debias the "
                    "tree first" % (tree.prob,)
                )
            # Allocate the branch node after both subtrees: subtree
            # lowering never revisits this (id(tree), k) pair, since
            # cycles only arise through Fix stubs.
            left = self._lower(tree.left, k)
            right = self._lower(tree.right, k)
            index = self._alloc(OP_BIT, a=left, b=right)
        elif isinstance(tree, Fix):
            index = self._enter(tree, k, tree.init)
        else:
            raise LoweringError("not a CF tree: %r" % (tree,))
        # Keep the tree alive alongside its id so the key can't be
        # recycled by the allocator (same trick as cftree.cache).
        self._lower_memo[memo_key] = (tree, index)
        return index

    def _enter(self, fix: Fix, k, state) -> int:
        try:
            key = (id(fix), id(k), state)
            hit = self._enter_memo.get(key)
        except TypeError:
            # Unhashable loop state: no memoization, so loops over such
            # states never close; the node budget is the backstop.
            key = None
            hit = None
        if hit is not None:
            return hit[1]
        index = self._alloc(OP_STUB)
        self._pending[index] = (fix, k, state)
        if key is not None:
            self._enter_memo[key] = (fix, index)
        return index

    # -- JIT expansion ---------------------------------------------------

    def expand(self, index: int) -> None:
        """Expand the stub at ``index`` in place (it becomes a jump).

        One expansion performs a bounded amount of lowering: the loop
        body (or exit continuation) at one concrete state, with any
        nested loop entries left as fresh stubs.
        """
        if self.op[index] != OP_STUB:
            return
        fix, k, state = self._pending.pop(index)
        if fix.guard(state):
            target = self._lower(fix.body(state), self._loopk(fix, k))
        else:
            target = self._lower(fix.cont(state), k)
        self.op[index] = OP_JMP
        self.a[index] = target
        self.version += 1
        self.expansions += 1

    def expand_all(self, limit: Optional[int] = None) -> bool:
        """Expand stubs breadth-first until none remain or ``limit`` more
        expansions were done.  Returns True when the table is closed
        (fully expanded -- no stub left)."""
        done = 0
        while self._pending:
            if limit is not None and done >= limit:
                return False
            self.expand(next(iter(self._pending)))
            done += 1
        return True

    def resolve(self, index: int) -> int:
        """Follow jumps (expanding stubs on the way) to a concrete node."""
        while True:
            op = self.op[index]
            if op == OP_JMP:
                index = self.a[index]
            elif op == OP_STUB:
                self.expand(index)
            else:
                return index

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.op)

    @property
    def pending_stubs(self) -> int:
        return len(self._pending)

    def stats(self) -> Dict[str, int]:
        counts = [0] * len(OP_NAMES)
        for op in self.op:
            counts[op] += 1
        return {
            "nodes": len(self.op),
            "payloads": len(self.payloads),
            "expansions": self.expansions,
            "bit": counts[OP_BIT],
            "leaf": counts[OP_LEAF],
            "fail": counts[OP_FAIL],
            "jmp": counts[OP_JMP],
            "stub": counts[OP_STUB],
        }

    def map_payloads(self, extract: Optional[Callable[[object], object]]):
        """Apply ``extract`` once per distinct payload (not per sample)."""
        if extract is None:
            return list(self.payloads)
        return [extract(value) for value in self.payloads]


def lower_cftree(tree: CFTree, max_nodes: int = 2_000_000) -> NodeTable:
    """Lower a debiased CF tree to a :class:`NodeTable`."""
    return NodeTable.from_cftree(tree, max_nodes)
