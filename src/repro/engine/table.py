"""Flat array encoding of debiased CF trees (the batch engine's IR).

The per-sample trampoline (:func:`repro.sampler.run.run_itree`) pays a
Python closure call per ``Tau``/``Vis`` step.  The engine instead lowers
a debiased CF tree into a *node table*: four parallel arrays

- ``op[i]``      -- the node kind (``OP_BIT``/``OP_LEAF``/...);
- ``a[i]``       -- the bit-``True`` branch target (or the jump target);
- ``b[i]``       -- the bit-``False`` branch target;
- ``payload[i]`` -- index into ``payloads`` for leaves, ``-1`` otherwise;

so a sample is drawn by pure index arithmetic: ``i = a[i] if bit else
b[i]``.  Drivers (see :mod:`repro.engine.driver`) walk the table either
one sample at a time (bit-for-bit equivalent to the trampoline) or as a
vectorized batch over numpy arrays.

``Fix`` nodes cannot be lowered eagerly: their loop-state space may be
unbounded (e.g. the geometric counter), so a loop entry at state ``s``
is first emitted as an ``OP_STUB`` and expanded on first visit
(:meth:`NodeTable.expand`).  Expansions are memoized per
``(fix token, continuation token, state)``, where tokens are *content
keys* when the loop carries one (:mod:`repro.cftree.keys`) and pinned
identities otherwise: finite loop-state spaces close up into back-edges
(the rejection loops of ``uniform_tree`` become a single back jump) and
unbounded ones grow the table once per *distinct* state -- across all
samples *and* across the distinct closure objects produced by
re-compiling the same loop body.  ``Fail`` leaves compile to a single
``OP_FAIL`` node; the tied driver treats it as "restart at the root",
which is exactly ``tie_itree``'s rejection semantics.

The traversal order of ``Choice`` nodes -- and hence the consumed bit
sequence -- is identical to ``to_itree_open``'s: a ``True`` bit selects
the left subtree (the paper's "heads").
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf
from repro.lang.state import State

# Node opcodes.  OP_BIT consumes one fair bit and branches; OP_LEAF
# produces payload ``payload[i]`` (or, when the driver's call stack is
# non-empty, returns from the innermost OP_CALL); OP_FAIL is
# observation failure; OP_JMP is an unconditional hop (left behind by
# stub expansion); OP_STUB is an unexpanded loop entry; OP_CALL pushes
# call record ``payload[i]`` and enters the loop subroutine at ``a[i]``.
OP_BIT = 0
OP_LEAF = 1
OP_FAIL = 2
OP_JMP = 3
OP_STUB = 4
OP_CALL = 5

OP_NAMES = ("BIT", "LEAF", "FAIL", "JMP", "STUB", "CALL")


class LoweringError(ValueError):
    """The tree cannot be lowered (e.g. a biased choice survived)."""


class TableOverflow(LoweringError):
    """Lowering exceeded the node budget (state space too large)."""


class _Halt:
    """The terminal continuation: a leaf value is a finished sample."""

    __slots__ = ()

    def __repr__(self):
        return "HALT"


_HALT = _Halt()

#: Content token of the terminal continuation.
_HALT_TOKEN = "H"


def _fix_token(fix: Fix):
    """The interning token of a loop: its content key when it has one
    (identical loops share rows across closure objects), else an
    identity fallback.

    Identity tokens are only safe because every memo *value* that embeds
    one keeps the ``fix`` object itself alive (the PR 4 keepalive trick):
    a pinned object's id cannot be recycled.
    """
    key = fix.key
    return key if key is not None else ("@", id(fix))


def _k_token(k):
    """The content token of a continuation (``_HALT`` or a ``_LoopK``)."""
    return _HALT_TOKEN if k is _HALT else k.token


class _LoopK:
    """The in-loop continuation: a leaf value is the next loop state.

    ``token`` is the continuation's content token, derived structurally
    from the loop's token and the outer continuation's token -- two
    ``_LoopK`` chains with equal tokens behave identically, so memo keys
    built from tokens share rows across distinct closure objects.
    Interned per token in ``NodeTable._loopk_intern``.
    """

    __slots__ = ("fix", "outer", "token")

    def __init__(self, fix: Fix, outer):
        self.fix = fix
        self.outer = outer
        self.token = ("K", _fix_token(fix), _k_token(outer))

    def __repr__(self):
        return "LoopK(%r)" % (self.fix,)


class _CallRecord:
    """The dynamic side of an ``OP_CALL`` row.

    ``fix``/``k`` are the loop and outer continuation at the original
    entry; ``frame`` holds the state bindings *outside* the loop's
    footprint (untouched by the subroutine); ``returns`` maps a sub-exit
    payload index to the row continuing ``fix.cont(frame ∪ exit)`` under
    ``k``, resolved lazily on first return and memoized.

    A record thawed from disk starts with ``fix``/``k`` as ``None`` and
    carries their content tokens instead; the objects are rebound on the
    first return that misses ``returns`` (see ``NodeTable._resolve_fix``).
    """

    __slots__ = ("fix", "k", "frame", "returns", "fix_token", "k_token")

    def __init__(self, fix: Optional[Fix], k, frame: Dict[str, object],
                 fix_token=None, k_token=None):
        self.fix = fix
        self.k = k
        self.frame = frame
        self.returns: Dict[int, int] = {}
        self.fix_token = fix_token if fix_token is not None else (
            _fix_token(fix) if fix is not None else None
        )
        self.k_token = k_token if k_token is not None else (
            _k_token(k) if k is not None else None
        )


class _FrozenPending:
    """A pending stub restored from disk: content tokens instead of the
    live ``(fix, k, state)`` objects, rebound on first expansion."""

    __slots__ = ("fix_token", "k_token", "state")

    def __init__(self, fix_token, k_token, state):
        self.fix_token = fix_token
        self.k_token = k_token
        self.state = state


def _iter_fixes(tree: CFTree):
    """The ``Fix`` nodes of a tree's finite spine (no closure forcing)."""
    stack = [tree]
    seen = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Fix):
            yield node
        elif isinstance(node, Choice):
            stack.append(node.left)
            stack.append(node.right)


class NodeTable:
    """An array-encoded sampler with JIT-expanded loop entries.

    With ``dedupe`` (the default), allocation hash-conses immutable rows:
    children are emitted before parents, so requesting a ``BIT``/``LEAF``
    row identical to an existing one returns the existing index -- this
    is bottom-up common-subexpression elimination at the row level, and
    it composes with the tree-level CSE pass (:mod:`repro.compiler.cse`)
    to keep duplicated subtrees out of the table entirely.  ``STUB``
    rows are mutable (they become jumps) and are never deduplicated.
    """

    def __init__(self, max_nodes: int = 2_000_000, dedupe: bool = True):
        self.op: List[int] = []
        self.a: List[int] = []  # True-branch / jump target
        self.b: List[int] = []  # False-branch target
        self.payload: List[int] = []
        self.payloads: List[object] = []
        self.max_nodes = max_nodes
        self.dedupe = dedupe
        self.root = -1
        # Monotone counter bumped on every structural change; drivers
        # use it to refresh derived (numpy) views incrementally.
        self.version = 0
        self._fail_node = -1
        self._payload_index: Dict[object, int] = {}
        # Memo keys are *content tokens* wherever content keys exist
        # (see repro.cftree.keys); identity fallbacks are pinned by the
        # memo values, which hold the tree/fix/continuation objects --
        # an id in a key always has its object kept alive in the value,
        # so a recycled address can never alias a live entry.
        self._lower_memo: Dict[tuple, Tuple[CFTree, object, int]] = {}
        self._enter_memo: Dict[tuple, Tuple[Fix, object, object, int]] = {}
        self._loopk_intern: Dict[tuple, _LoopK] = {}
        self._pending: Dict[int, Tuple[Fix, object, object]] = {}
        # Frame-separated loop calls: the subroutine Fix per machinery
        # token (value keeps the source fix alive for id tokens), and
        # one _CallRecord per OP_CALL row (indexed by its payload).
        self._subfix_intern: Dict[object, Tuple[Fix, Fix]] = {}
        self.calls: List[_CallRecord] = []
        self._row_intern: Dict[Tuple[int, int, int, int], int] = {}
        # Content-token -> live Fix object, populated as loops are
        # entered.  Normally redundant (the memos hold the objects); for
        # a table thawed from disk it is how frozen pendings and call
        # records get their closures back (see repro.engine.freeze).
        self._fix_registry: Dict[object, Fix] = {}
        # Thawed-table rebind state: (fix_token, state) pairs harvested
        # from the frozen memo, pendings, and call returns, used to
        # rematerialize nested loops by scanning parent body/cont trees.
        # _rebind_scan lazily buckets them per token; consumed states
        # are popped so no pair is compiled twice.
        self._frozen_enters: List[Tuple[object, object]] = []
        self._rebind_queue: Optional[Dict[object, List[object]]] = None
        # Unkeyed wrappers cannot be addressed by token, so their frozen
        # entry states arrive anonymously (_orphan_states) and are tried
        # against every live unkeyed Fix the scan has seen (_scan_unkeyed,
        # seeded from the root tree's spine by thaw_bind).
        self._orphan_states: List[object] = []
        self._scan_unkeyed: List[Fix] = []
        self._orphan_scanned: set = set()
        self.needs_rebind = False
        self.expansions = 0
        self.dedup_hits = 0
        self.compacted_rows = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def from_cftree(
        cls,
        tree: CFTree,
        max_nodes: int = 2_000_000,
        dedupe: bool = True,
    ) -> "NodeTable":
        """Lower a *debiased* CF tree; the root is set to its entry node."""
        table = cls(max_nodes, dedupe)
        table.root = table._lower(tree, _HALT)
        return table

    def _alloc(self, op: int, a: int = -1, b: int = -1, payload: int = -1) -> int:
        if self.dedupe and op != OP_STUB:
            # Immutable rows only: a STUB mutates into a JMP later, so
            # its row can never be shared.  BIT child indices are stable
            # (rows are append-only apart from in-place stub expansion,
            # which keeps its index), so the key cannot go stale.
            key = (op, a, b, payload)
            hit = self._row_intern.get(key)
            if hit is not None:
                self.dedup_hits += 1
                return hit
        if len(self.op) >= self.max_nodes:
            raise TableOverflow(
                "node table exceeded %d nodes (loop state space too "
                "large for the batch engine)" % self.max_nodes
            )
        index = len(self.op)
        self.op.append(op)
        self.a.append(a)
        self.b.append(b)
        self.payload.append(payload)
        if self.dedupe and op != OP_STUB:
            self._row_intern[(op, a, b, payload)] = index
        self.version += 1
        return index

    def _leaf(self, value: object) -> int:
        try:
            pidx = self._payload_index.get(value)
            hashable = True
        except TypeError:
            pidx, hashable = None, False
        if pidx is None:
            pidx = len(self.payloads)
            self.payloads.append(value)
            if hashable:
                self._payload_index[value] = pidx
        return self._alloc(OP_LEAF, payload=pidx)

    def _fail(self) -> int:
        if self._fail_node < 0:
            self._fail_node = self._alloc(OP_FAIL)
        return self._fail_node

    def _loopk(self, fix: Fix, outer) -> _LoopK:
        k = _LoopK(fix, outer)
        hit = self._loopk_intern.get(k.token)
        if hit is not None:
            return hit
        self._loopk_intern[k.token] = k
        return k

    def _apply_k(self, k, value) -> int:
        if k is _HALT:
            return self._leaf(value)
        return self._enter(k.fix, k.outer, value)

    def _lower(self, tree: CFTree, k) -> int:
        # Trees are hash-consed by the cse pass, so id(tree) is a
        # structural key in practice; the continuation side uses content
        # tokens so equal _LoopK chains share lowerings.
        memo_key = (id(tree), _k_token(k))
        hit = self._lower_memo.get(memo_key)
        if hit is not None:
            return hit[2]
        if isinstance(tree, Leaf):
            index = self._apply_k(k, tree.value)
        elif isinstance(tree, Fail):
            index = self._fail()
        elif isinstance(tree, Choice):
            if tree.prob * 2 != 1:
                raise LoweringError(
                    "biased choice (p=%s) in engine lowering; debias the "
                    "tree first" % (tree.prob,)
                )
            # Allocate the branch node after both subtrees: subtree
            # lowering never revisits this (id(tree), k) pair, since
            # cycles only arise through Fix stubs.
            left = self._lower(tree.left, k)
            right = self._lower(tree.right, k)
            index = self._alloc(OP_BIT, a=left, b=right)
        elif isinstance(tree, Fix):
            index = self._enter(tree, k, tree.init)
        else:
            raise LoweringError("not a CF tree: %r" % (tree,))
        # Keep the tree AND the continuation alive alongside the key so
        # neither id can be recycled by the allocator (same trick as
        # cftree.cache; the seed kept only the tree, which left id(k)
        # recyclable -- the engine-side id-reuse hazard of PR 4).
        self._lower_memo[memo_key] = (tree, k, index)
        return index

    def _enter(self, fix: Fix, k, state) -> int:
        fkey = fix.key
        if fkey is not None and fkey not in self._fix_registry:
            self._fix_registry[fkey] = fix
        try:
            key = (_fix_token(fix), _k_token(k), state)
            hit = self._enter_memo.get(key)
        except TypeError:
            # Unhashable loop state: no memoization, so loops over such
            # states never close; the node budget is the backstop.
            key = None
            hit = None
        if hit is not None:
            return hit[3]
        footprint = fix.footprint
        if footprint is not None and isinstance(state, State):
            frame = {
                name: value
                for name, value in state.items()
                if name not in footprint
            }
            if frame:
                index = self._call(fix, k, state, frame, footprint)
                if key is not None:
                    self._enter_memo[key] = (fix, k, state, index)
                return index
        index = self._alloc(OP_STUB)
        self._pending[index] = (fix, k, state)
        if key is not None:
            self._enter_memo[key] = (fix, k, state, index)
        return index

    def _call(self, fix: Fix, k, state, frame, footprint) -> int:
        """Allocate a frame-separated loop call.

        The loop's guard and body only touch ``footprint`` variables, so
        the loop from ``state`` equals the loop run on the footprint
        projection with the untouched ``frame`` spliced back in at exit.
        The projection entry is shared across *every* frame (keyed by
        machinery subkey + foot state), which is the main state-space
        win: without it, each frame multiplies the loop's whole internal
        state churn into fresh rows.  Calls and returns consume no bits,
        so samples stay bit-for-bit identical to the inline expansion.
        """
        sub = self._subfix(fix)
        # state.items() is already sorted/normalized, so the projection
        # can take the trusted-constructor fast path.
        foot = State._from_sorted(
            tuple(
                (name, value)
                for name, value in state.items()
                if name in footprint
            )
        )
        sub_entry = self._enter(sub, _HALT, foot)
        record = _CallRecord(fix, k, frame)
        self.calls.append(record)
        return self._alloc(OP_CALL, a=sub_entry, payload=len(self.calls) - 1)

    def _subfix(self, fix: Fix) -> Fix:
        """The loop's machinery as a standalone subroutine: same guard
        and body, ``Leaf`` continuation (exit states become sub leaves).
        Interned per subkey so distinct wrappers of one loop -- and
        distinct compiles of one program -- share a single subroutine.
        """
        token = fix.subkey if fix.subkey is not None else ("@", id(fix))
        hit = self._subfix_intern.get(token)
        if hit is not None:
            return hit[1]
        sub = Fix(
            None,
            fix.guard,
            fix.body,
            Leaf,
            key=fix.subkey,
            subkey=fix.subkey,
            footprint=fix.footprint,
        )
        self._subfix_intern[token] = (fix, sub)
        return sub

    def call_return(self, call_id: int, payload_index: int) -> int:
        """The row continuing call ``call_id`` after its subroutine
        exited with payload ``payload_index``; lowered on first use."""
        record = self.calls[call_id]
        hit = record.returns.get(payload_index)
        if hit is not None:
            return hit
        if record.fix is None:  # thawed from disk: rebind lazily
            record.fix = self._resolve_fix(record.fix_token)
            record.k = self._resolve_k(record.k_token)
        merged = self.payloads[payload_index].update(record.frame)
        index = self._thread(self._lower(record.fix.cont(merged), record.k))
        record.returns[payload_index] = index
        return index

    # -- thawed-table rebinding ------------------------------------------

    def _register_fix(self, fix: Fix) -> None:
        if fix.key is not None and fix.key not in self._fix_registry:
            self._fix_registry[fix.key] = fix

    def _harvest_fix(self, fix: Fix) -> None:
        """Register a fix found during rebinding; unkeyed ones are kept
        as scan roots for the orphan-state sweep."""
        if fix.key is not None:
            self._register_fix(fix)
        elif not any(f is fix for f in self._scan_unkeyed):
            self._scan_unkeyed.append(fix)

    def _resolve_fix(self, token) -> Fix:
        """The live ``Fix`` for a content token, rematerializing nested
        loops from parent body trees when necessary (thawed tables)."""
        hit = self._fix_registry.get(token)
        if hit is not None:
            return hit
        hit = self._subfix_intern.get(token)
        if hit is not None:
            return hit[1]
        # A machinery subkey of an already-registered loop: build the
        # subroutine fix the same way _call would.
        for fix in list(self._fix_registry.values()):
            if fix.subkey == token:
                return self._subfix(fix)
        self._rebind_scan(token)
        hit = self._fix_registry.get(token)
        if hit is not None:
            return hit
        hit = self._subfix_intern.get(token)
        if hit is not None:
            return hit[1]
        raise LoweringError(
            "thawed table could not rebind loop token %r; recompile "
            "without the disk cache" % (token,)
        )

    def _resolve_k(self, token):
        """Rebuild a continuation object from its content token."""
        if token == _HALT_TOKEN:
            return _HALT
        if isinstance(token, tuple) and len(token) == 3 and token[0] == "K":
            return self._loopk(
                self._resolve_fix(token[1]), self._resolve_k(token[2])
            )
        raise LoweringError(
            "thawed table could not rebind continuation token %r" % (token,)
        )

    def _rebind_scan(self, wanted) -> None:
        """Recover nested loop objects by scanning body/cont trees.

        Content keys make any rematerialization with the same token
        behaviorally interchangeable, so a nested loop lost in the
        freeze/thaw round-trip can be rebuilt by compiling the body (or
        exit continuation) of any *registered* loop at any frozen entry
        state and harvesting the ``Fix`` nodes of the resulting (finite)
        tree.  States are consumed round-robin across tokens -- one per
        token per sweep -- because distinct states take distinct ``Ite``
        branches: diverse coverage finds ``wanted`` long before an
        exhaustive walk of any one loop's state list would.  Iterates to
        a fixed point or until ``wanted`` shows up.
        """
        if self._rebind_queue is None:
            queue: Dict[object, List[object]] = {}
            for token, state in self._frozen_enters:
                queue.setdefault(token, []).append(state)
            self._rebind_queue = queue
        queue = self._rebind_queue
        progress = True
        while progress and wanted not in self._fix_registry:
            progress = False
            for token, states in queue.items():
                if not states:
                    continue
                fix = self._fix_registry.get(token)
                if fix is None:
                    entry = self._subfix_intern.get(token)
                    fix = entry[1] if entry is not None else None
                if fix is None:
                    for owner in list(self._fix_registry.values()):
                        if owner.subkey == token:
                            fix = self._subfix(owner)
                            break
                if fix is None:
                    continue
                state = states.pop()
                progress = True
                if self._scan_tree(fix, state, wanted):
                    return
            # Unkeyed wrappers (key None) have no queue bucket: try every
            # orphan state against every live unkeyed fix.  Wrapper state
            # spaces are sentinel-sized and wrong pairings fail fast in
            # guard evaluation, so this cross product stays cheap.
            for fix in list(self._scan_unkeyed):
                for state in self._orphan_states:
                    try:
                        pair = (id(fix), state)
                        if pair in self._orphan_scanned:
                            continue
                        self._orphan_scanned.add(pair)
                    except TypeError:
                        continue
                    progress = True
                    if self._scan_tree(fix, state, wanted):
                        return

    def _scan_tree(self, fix: Fix, state, wanted) -> bool:
        """Compile one body/cont tree and harvest its spine fixes;
        True when ``wanted`` became registered."""
        try:
            tree = fix.body(state) if fix.guard(state) else fix.cont(state)
        except Exception:
            return False  # state outside this body's domain: skip
        for found in _iter_fixes(tree):
            self._harvest_fix(found)
        return wanted in self._fix_registry

    def _thread(self, target: int) -> int:
        """Follow JMP chains without expanding stubs; cycle-safe."""
        seen = None
        while self.op[target] == OP_JMP:
            if seen is None:
                seen = {target}
            nxt = self.a[target]
            if nxt in seen:
                break
            seen.add(nxt)
            target = nxt
        return target

    # -- JIT expansion ---------------------------------------------------

    def expand(self, index: int) -> None:
        """Expand the stub at ``index`` in place (it becomes a jump).

        One expansion performs a bounded amount of lowering: the loop
        body (or exit continuation) at one concrete state, with any
        nested loop entries left as fresh stubs.
        """
        if self.op[index] != OP_STUB:
            return
        entry = self._pending.pop(index)
        if type(entry) is _FrozenPending:
            fix = self._resolve_fix(entry.fix_token)
            k = self._resolve_k(entry.k_token)
            state = entry.state
        else:
            fix, k, state = entry
        if fix.guard(state):
            target = self._lower(fix.body(state), self._loopk(fix, k))
        else:
            target = self._lower(fix.cont(state), k)
        # Thread through jump chains so drivers pay at most one hop per
        # loop entry (cycle-safe: a divergent loop can jump to itself).
        seen = None
        while self.op[target] == OP_JMP:
            if seen is None:
                seen = {index, target}
            nxt = self.a[target]
            if nxt in seen:
                break
            seen.add(nxt)
            target = nxt
        self.op[index] = OP_JMP
        self.a[index] = target
        self.version += 1
        self.expansions += 1

    def expand_all(self, limit: Optional[int] = None) -> bool:
        """Expand stubs breadth-first until none remain or ``limit`` more
        expansions were done.  Returns True when the table is closed
        (fully expanded -- no stub left)."""
        done = 0
        while self._pending:
            if limit is not None and done >= limit:
                return False
            self.expand(next(iter(self._pending)))
            done += 1
        return True

    def thaw_bind(self, tree: CFTree) -> None:
        """Re-attach live closures to a table thawed from disk.

        Lowers the freshly compiled ``tree`` against the restored
        content-keyed memos: loop entries hit the frozen memo rows
        (registering their ``Fix`` objects on the way), and deduplicated
        allocation folds the spine onto the existing rows, so the pass
        costs one tree walk, not a re-expansion.  The root is re-pointed
        at the result, which makes the call safe even if the fresh
        compile differs from the frozen one (the stale rows just become
        garbage for the next compaction).
        """
        for fix in _iter_fixes(tree):
            self._harvest_fix(fix)
        self.root = self._lower(tree, _HALT)
        self.needs_rebind = False
        self.version += 1

    def resolve(self, index: int) -> int:
        """Follow jumps (expanding stubs on the way) to a concrete node."""
        while True:
            op = self.op[index]
            if op == OP_JMP:
                index = self.a[index]
            elif op == OP_STUB:
                self.expand(index)
            else:
                return index

    # -- compaction ------------------------------------------------------

    def _final_target(self, index: int, memo: Dict[int, int]) -> int:
        """Follow JMP chains without expanding; cycle-safe.

        A pure-jump cycle (a loop that diverges without consuming bits)
        resolves to a member of the cycle, which stays a live JMP row.
        """
        path = []
        on_path = set()
        while True:
            hit = memo.get(index)
            if hit is not None:
                index = hit
                break
            if self.op[index] != OP_JMP or index in on_path:
                break
            path.append(index)
            on_path.add(index)
            index = self.a[index]
        for j in path:
            memo[j] = index
        return index

    def compact(self) -> int:
        """Deduplicate the table in place; returns rows removed.

        Three DAG-aware rewrites, iterated to a fixed point:

        1. *jump threading* -- every reference through a ``JMP`` chain is
           rewritten to the chain's final row, making the jumps garbage;
        2. *congruence merging* -- rows with identical
           ``(op, a, b, payload)`` after threading are merged bottom-up
           (value numbering over the row graph), which catches duplicate
           subgraphs produced by separate stub expansions that the
           allocation-time interning could not see (their rows were
           emitted as mutable stubs);
        3. *reachability* -- rows no longer referenced from the root, a
           pending stub, or a lowering-memo entry are dropped and the
           table renumbered.

        None of this changes any root-to-leaf bit sequence: jumps
        consume no bits and merged rows are behaviorally identical, so
        samples remain bit-for-bit what the trampoline produces.  Call
        between sampling runs only (drivers snapshot row arrays); the
        pipeline compacts once at build time.
        """
        before = len(self.op)
        op, a, b, payload = self.op, self.a, self.b, self.payload
        final: Dict[int, int] = {}

        # Stubs (mutable) and jump-cycle members must never merge; give
        # them unique congruence keys.
        def row_key(i: int, canon) -> tuple:
            o = op[i]
            if o == OP_BIT:
                return (o, canon(a[i]), canon(b[i]), -1)
            if o == OP_LEAF:
                return (o, -1, -1, payload[i])
            if o == OP_FAIL:
                return (o, -1, -1, -1)
            return (o, "unique", i, -1)

        # Union-find over rows, seeded by jump threading.
        parent = list(range(before))

        def find(i: int) -> int:
            root = i
            while parent[root] != root:
                root = parent[root]
            while parent[i] != root:
                parent[i], i = root, parent[i]
            return root

        def canon(i: int) -> int:
            return find(self._final_target(i, final))

        changed = True
        while changed:
            changed = False
            seen: Dict[tuple, int] = {}
            for i in range(before):
                if find(i) != i or op[i] == OP_JMP:
                    continue
                key = row_key(i, canon)
                rep = seen.get(key)
                if rep is None:
                    seen[key] = i
                elif find(rep) != find(i):
                    parent[find(i)] = find(rep)
                    changed = True

        # Closed tables never expand again: the memos are dead weight
        # and must not pin garbage rows.  A table with call rows is
        # never closed in this sense -- fresh sub-exit states lower new
        # return continuations lazily, and those lowerings must keep
        # hitting the memos or back-edges would reopen.
        if not self._pending and not self.calls:
            self._lower_memo.clear()
            self._enter_memo.clear()
            self._loopk_intern.clear()

        roots = [canon(self.root)]
        roots.extend(canon(i) for i in self._pending)
        roots.extend(canon(entry[2]) for entry in self._lower_memo.values())
        roots.extend(canon(entry[3]) for entry in self._enter_memo.values())

        live: List[int] = []
        marked = set()
        stack = list(roots)
        while stack:
            i = stack.pop()
            if i in marked:
                continue
            marked.add(i)
            live.append(i)
            o = op[i]
            if o == OP_BIT:
                stack.append(canon(a[i]))
                stack.append(canon(b[i]))
            elif o == OP_JMP:  # surviving jump-cycle member
                stack.append(canon(a[i]))
            elif o == OP_CALL:
                stack.append(canon(a[i]))  # the subroutine entry
                for target in self.calls[payload[i]].returns.values():
                    stack.append(canon(target))
        live.sort()
        remap = {old: new for new, old in enumerate(live)}

        def renumber(i: int) -> int:
            return remap[canon(i)]

        new_op = [op[i] for i in live]
        new_a = [
            renumber(a[i]) if op[i] in (OP_BIT, OP_JMP, OP_CALL) else -1
            for i in live
        ]
        new_b = [renumber(b[i]) if op[i] == OP_BIT else -1 for i in live]
        new_payload = [
            payload[i] if op[i] in (OP_LEAF, OP_CALL) else -1 for i in live
        ]
        # Call records of live rows carry row numbers too; records of
        # dropped rows are never consulted again and stay stale.
        for i in live:
            if op[i] == OP_CALL:
                record = self.calls[payload[i]]
                record.returns = {
                    p: renumber(t) for p, t in record.returns.items()
                }

        new_root = renumber(self.root)
        new_fail = -1
        if self._fail_node >= 0:
            target = canon(self._fail_node)
            new_fail = remap.get(target, -1)
        new_pending = {
            renumber(i): entry for i, entry in self._pending.items()
        }
        new_lower_memo = {
            key: (entry[0], entry[1], renumber(entry[2]))
            for key, entry in self._lower_memo.items()
        }
        new_enter_memo = {
            key: (entry[0], entry[1], entry[2], renumber(entry[3]))
            for key, entry in self._enter_memo.items()
        }
        self.op, self.a, self.b, self.payload = new_op, new_a, new_b, new_payload
        self.root = new_root
        self._fail_node = new_fail
        self._pending = new_pending
        self._lower_memo = new_lower_memo
        self._enter_memo = new_enter_memo
        self._row_intern = {}
        if self.dedupe:
            for i in range(len(self.op)):
                if self.op[i] != OP_STUB:
                    self._row_intern.setdefault(
                        (self.op[i], self.a[i], self.b[i], self.payload[i]), i
                    )
        removed = before - len(self.op)
        self.compacted_rows += removed
        self.version += 1
        return removed

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.op)

    @property
    def pending_stubs(self) -> int:
        return len(self._pending)

    def stats(self) -> Dict[str, int]:
        counts = [0] * len(OP_NAMES)
        for op in self.op:
            counts[op] += 1
        return {
            "nodes": len(self.op),
            "payloads": len(self.payloads),
            "expansions": self.expansions,
            "bit": counts[OP_BIT],
            "leaf": counts[OP_LEAF],
            "fail": counts[OP_FAIL],
            "jmp": counts[OP_JMP],
            "stub": counts[OP_STUB],
            "call": counts[OP_CALL],
            "dedup_hits": self.dedup_hits,
            "compacted_rows": self.compacted_rows,
        }

    def map_payloads(self, extract: Optional[Callable[[object], object]]):
        """Apply ``extract`` once per distinct payload (not per sample)."""
        if extract is None:
            return list(self.payloads)
        return [extract(value) for value in self.payloads]


def lower_cftree(
    tree: CFTree, max_nodes: int = 2_000_000, dedupe: bool = True
) -> NodeTable:
    """Lower a debiased CF tree to a :class:`NodeTable`."""
    return NodeTable.from_cftree(tree, max_nodes, dedupe)
