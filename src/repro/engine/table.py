"""Flat array encoding of debiased CF trees (the batch engine's IR).

The per-sample trampoline (:func:`repro.sampler.run.run_itree`) pays a
Python closure call per ``Tau``/``Vis`` step.  The engine instead lowers
a debiased CF tree into a *node table*: four parallel arrays

- ``op[i]``      -- the node kind (``OP_BIT``/``OP_LEAF``/...);
- ``a[i]``       -- the bit-``True`` branch target (or the jump target);
- ``b[i]``       -- the bit-``False`` branch target;
- ``payload[i]`` -- index into ``payloads`` for leaves, ``-1`` otherwise;

so a sample is drawn by pure index arithmetic: ``i = a[i] if bit else
b[i]``.  Drivers (see :mod:`repro.engine.driver`) walk the table either
one sample at a time (bit-for-bit equivalent to the trampoline) or as a
vectorized batch over numpy arrays.

``Fix`` nodes cannot be lowered eagerly: their loop-state space may be
unbounded (e.g. the geometric counter), so a loop entry at state ``s``
is first emitted as an ``OP_STUB`` and expanded on first visit
(:meth:`NodeTable.expand`).  Expansions are memoized per
``(fix identity, continuation, state)``, so finite loop-state spaces
close up into back-edges (the rejection loops of ``uniform_tree`` become
a single back jump) and unbounded ones grow the table once per *distinct*
state, amortized across all samples.  ``Fail`` leaves compile to a single
``OP_FAIL`` node; the tied driver treats it as "restart at the root",
which is exactly ``tie_itree``'s rejection semantics.

The traversal order of ``Choice`` nodes -- and hence the consumed bit
sequence -- is identical to ``to_itree_open``'s: a ``True`` bit selects
the left subtree (the paper's "heads").
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf

# Node opcodes.  OP_BIT consumes one fair bit and branches; OP_LEAF
# produces payload ``payload[i]``; OP_FAIL is observation failure;
# OP_JMP is an unconditional hop (left behind by stub expansion);
# OP_STUB is an unexpanded loop entry.
OP_BIT = 0
OP_LEAF = 1
OP_FAIL = 2
OP_JMP = 3
OP_STUB = 4

OP_NAMES = ("BIT", "LEAF", "FAIL", "JMP", "STUB")


class LoweringError(ValueError):
    """The tree cannot be lowered (e.g. a biased choice survived)."""


class TableOverflow(LoweringError):
    """Lowering exceeded the node budget (state space too large)."""


class _Halt:
    """The terminal continuation: a leaf value is a finished sample."""

    __slots__ = ()

    def __repr__(self):
        return "HALT"


_HALT = _Halt()


class _LoopK:
    """The in-loop continuation: a leaf value is the next loop state.

    Interned per ``(fix identity, outer continuation)`` so that memo keys
    built from continuations compare by identity.
    """

    __slots__ = ("fix", "outer")

    def __init__(self, fix: Fix, outer):
        self.fix = fix
        self.outer = outer

    def __repr__(self):
        return "LoopK(%r)" % (self.fix,)


class NodeTable:
    """An array-encoded sampler with JIT-expanded loop entries.

    With ``dedupe`` (the default), allocation hash-conses immutable rows:
    children are emitted before parents, so requesting a ``BIT``/``LEAF``
    row identical to an existing one returns the existing index -- this
    is bottom-up common-subexpression elimination at the row level, and
    it composes with the tree-level CSE pass (:mod:`repro.compiler.cse`)
    to keep duplicated subtrees out of the table entirely.  ``STUB``
    rows are mutable (they become jumps) and are never deduplicated.
    """

    def __init__(self, max_nodes: int = 2_000_000, dedupe: bool = True):
        self.op: List[int] = []
        self.a: List[int] = []  # True-branch / jump target
        self.b: List[int] = []  # False-branch target
        self.payload: List[int] = []
        self.payloads: List[object] = []
        self.max_nodes = max_nodes
        self.dedupe = dedupe
        self.root = -1
        # Monotone counter bumped on every structural change; drivers
        # use it to refresh derived (numpy) views incrementally.
        self.version = 0
        self._fail_node = -1
        self._payload_index: Dict[object, int] = {}
        self._lower_memo: Dict[Tuple[int, int], Tuple[CFTree, int]] = {}
        self._enter_memo: Dict[Tuple[int, int, object], Tuple[Fix, int]] = {}
        self._loopk_intern: Dict[Tuple[int, int], _LoopK] = {}
        self._pending: Dict[int, Tuple[Fix, object, object]] = {}
        self._row_intern: Dict[Tuple[int, int, int, int], int] = {}
        self.expansions = 0
        self.dedup_hits = 0
        self.compacted_rows = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def from_cftree(
        cls,
        tree: CFTree,
        max_nodes: int = 2_000_000,
        dedupe: bool = True,
    ) -> "NodeTable":
        """Lower a *debiased* CF tree; the root is set to its entry node."""
        table = cls(max_nodes, dedupe)
        table.root = table._lower(tree, _HALT)
        return table

    def _alloc(self, op: int, a: int = -1, b: int = -1, payload: int = -1) -> int:
        if self.dedupe and op != OP_STUB:
            # Immutable rows only: a STUB mutates into a JMP later, so
            # its row can never be shared.  BIT child indices are stable
            # (rows are append-only apart from in-place stub expansion,
            # which keeps its index), so the key cannot go stale.
            key = (op, a, b, payload)
            hit = self._row_intern.get(key)
            if hit is not None:
                self.dedup_hits += 1
                return hit
        if len(self.op) >= self.max_nodes:
            raise TableOverflow(
                "node table exceeded %d nodes (loop state space too "
                "large for the batch engine)" % self.max_nodes
            )
        index = len(self.op)
        self.op.append(op)
        self.a.append(a)
        self.b.append(b)
        self.payload.append(payload)
        if self.dedupe and op != OP_STUB:
            self._row_intern[(op, a, b, payload)] = index
        self.version += 1
        return index

    def _leaf(self, value: object) -> int:
        try:
            pidx = self._payload_index.get(value)
            hashable = True
        except TypeError:
            pidx, hashable = None, False
        if pidx is None:
            pidx = len(self.payloads)
            self.payloads.append(value)
            if hashable:
                self._payload_index[value] = pidx
        return self._alloc(OP_LEAF, payload=pidx)

    def _fail(self) -> int:
        if self._fail_node < 0:
            self._fail_node = self._alloc(OP_FAIL)
        return self._fail_node

    def _loopk(self, fix: Fix, outer) -> _LoopK:
        key = (id(fix), id(outer))
        k = self._loopk_intern.get(key)
        if k is None:
            k = _LoopK(fix, outer)
            self._loopk_intern[key] = k
        return k

    def _apply_k(self, k, value) -> int:
        if k is _HALT:
            return self._leaf(value)
        return self._enter(k.fix, k.outer, value)

    def _lower(self, tree: CFTree, k) -> int:
        memo_key = (id(tree), id(k))
        hit = self._lower_memo.get(memo_key)
        if hit is not None:
            return hit[1]
        if isinstance(tree, Leaf):
            index = self._apply_k(k, tree.value)
        elif isinstance(tree, Fail):
            index = self._fail()
        elif isinstance(tree, Choice):
            if tree.prob * 2 != 1:
                raise LoweringError(
                    "biased choice (p=%s) in engine lowering; debias the "
                    "tree first" % (tree.prob,)
                )
            # Allocate the branch node after both subtrees: subtree
            # lowering never revisits this (id(tree), k) pair, since
            # cycles only arise through Fix stubs.
            left = self._lower(tree.left, k)
            right = self._lower(tree.right, k)
            index = self._alloc(OP_BIT, a=left, b=right)
        elif isinstance(tree, Fix):
            index = self._enter(tree, k, tree.init)
        else:
            raise LoweringError("not a CF tree: %r" % (tree,))
        # Keep the tree alive alongside its id so the key can't be
        # recycled by the allocator (same trick as cftree.cache).
        self._lower_memo[memo_key] = (tree, index)
        return index

    def _enter(self, fix: Fix, k, state) -> int:
        try:
            key = (id(fix), id(k), state)
            hit = self._enter_memo.get(key)
        except TypeError:
            # Unhashable loop state: no memoization, so loops over such
            # states never close; the node budget is the backstop.
            key = None
            hit = None
        if hit is not None:
            return hit[1]
        index = self._alloc(OP_STUB)
        self._pending[index] = (fix, k, state)
        if key is not None:
            self._enter_memo[key] = (fix, index)
        return index

    # -- JIT expansion ---------------------------------------------------

    def expand(self, index: int) -> None:
        """Expand the stub at ``index`` in place (it becomes a jump).

        One expansion performs a bounded amount of lowering: the loop
        body (or exit continuation) at one concrete state, with any
        nested loop entries left as fresh stubs.
        """
        if self.op[index] != OP_STUB:
            return
        fix, k, state = self._pending.pop(index)
        if fix.guard(state):
            target = self._lower(fix.body(state), self._loopk(fix, k))
        else:
            target = self._lower(fix.cont(state), k)
        # Thread through jump chains so drivers pay at most one hop per
        # loop entry (cycle-safe: a divergent loop can jump to itself).
        seen = None
        while self.op[target] == OP_JMP:
            if seen is None:
                seen = {index, target}
            nxt = self.a[target]
            if nxt in seen:
                break
            seen.add(nxt)
            target = nxt
        self.op[index] = OP_JMP
        self.a[index] = target
        self.version += 1
        self.expansions += 1

    def expand_all(self, limit: Optional[int] = None) -> bool:
        """Expand stubs breadth-first until none remain or ``limit`` more
        expansions were done.  Returns True when the table is closed
        (fully expanded -- no stub left)."""
        done = 0
        while self._pending:
            if limit is not None and done >= limit:
                return False
            self.expand(next(iter(self._pending)))
            done += 1
        return True

    def resolve(self, index: int) -> int:
        """Follow jumps (expanding stubs on the way) to a concrete node."""
        while True:
            op = self.op[index]
            if op == OP_JMP:
                index = self.a[index]
            elif op == OP_STUB:
                self.expand(index)
            else:
                return index

    # -- compaction ------------------------------------------------------

    def _final_target(self, index: int, memo: Dict[int, int]) -> int:
        """Follow JMP chains without expanding; cycle-safe.

        A pure-jump cycle (a loop that diverges without consuming bits)
        resolves to a member of the cycle, which stays a live JMP row.
        """
        path = []
        on_path = set()
        while True:
            hit = memo.get(index)
            if hit is not None:
                index = hit
                break
            if self.op[index] != OP_JMP or index in on_path:
                break
            path.append(index)
            on_path.add(index)
            index = self.a[index]
        for j in path:
            memo[j] = index
        return index

    def compact(self) -> int:
        """Deduplicate the table in place; returns rows removed.

        Three DAG-aware rewrites, iterated to a fixed point:

        1. *jump threading* -- every reference through a ``JMP`` chain is
           rewritten to the chain's final row, making the jumps garbage;
        2. *congruence merging* -- rows with identical
           ``(op, a, b, payload)`` after threading are merged bottom-up
           (value numbering over the row graph), which catches duplicate
           subgraphs produced by separate stub expansions that the
           allocation-time interning could not see (their rows were
           emitted as mutable stubs);
        3. *reachability* -- rows no longer referenced from the root, a
           pending stub, or a lowering-memo entry are dropped and the
           table renumbered.

        None of this changes any root-to-leaf bit sequence: jumps
        consume no bits and merged rows are behaviorally identical, so
        samples remain bit-for-bit what the trampoline produces.  Call
        between sampling runs only (drivers snapshot row arrays); the
        pipeline compacts once at build time.
        """
        before = len(self.op)
        op, a, b, payload = self.op, self.a, self.b, self.payload
        final: Dict[int, int] = {}

        # Stubs (mutable) and jump-cycle members must never merge; give
        # them unique congruence keys.
        def row_key(i: int, canon) -> tuple:
            o = op[i]
            if o == OP_BIT:
                return (o, canon(a[i]), canon(b[i]), -1)
            if o == OP_LEAF:
                return (o, -1, -1, payload[i])
            if o == OP_FAIL:
                return (o, -1, -1, -1)
            return (o, "unique", i, -1)

        # Union-find over rows, seeded by jump threading.
        parent = list(range(before))

        def find(i: int) -> int:
            root = i
            while parent[root] != root:
                root = parent[root]
            while parent[i] != root:
                parent[i], i = root, parent[i]
            return root

        def canon(i: int) -> int:
            return find(self._final_target(i, final))

        changed = True
        while changed:
            changed = False
            seen: Dict[tuple, int] = {}
            for i in range(before):
                if find(i) != i or op[i] == OP_JMP:
                    continue
                key = row_key(i, canon)
                rep = seen.get(key)
                if rep is None:
                    seen[key] = i
                elif find(rep) != find(i):
                    parent[find(i)] = find(rep)
                    changed = True

        # Closed tables never expand again: the memos are dead weight
        # and must not pin garbage rows.
        if not self._pending:
            self._lower_memo.clear()
            self._enter_memo.clear()
            self._loopk_intern.clear()

        roots = [canon(self.root)]
        roots.extend(canon(i) for i in self._pending)
        roots.extend(canon(entry[1]) for entry in self._lower_memo.values())
        roots.extend(canon(entry[1]) for entry in self._enter_memo.values())

        live: List[int] = []
        marked = set()
        stack = list(roots)
        while stack:
            i = stack.pop()
            if i in marked:
                continue
            marked.add(i)
            live.append(i)
            o = op[i]
            if o == OP_BIT:
                stack.append(canon(a[i]))
                stack.append(canon(b[i]))
            elif o == OP_JMP:  # surviving jump-cycle member
                stack.append(canon(a[i]))
        live.sort()
        remap = {old: new for new, old in enumerate(live)}

        def renumber(i: int) -> int:
            return remap[canon(i)]

        new_op = [op[i] for i in live]
        new_a = [
            renumber(a[i]) if op[i] in (OP_BIT, OP_JMP) else -1 for i in live
        ]
        new_b = [renumber(b[i]) if op[i] == OP_BIT else -1 for i in live]
        new_payload = [payload[i] if op[i] == OP_LEAF else -1 for i in live]

        new_root = renumber(self.root)
        new_fail = -1
        if self._fail_node >= 0:
            target = canon(self._fail_node)
            new_fail = remap.get(target, -1)
        new_pending = {
            renumber(i): entry for i, entry in self._pending.items()
        }
        new_lower_memo = {
            key: (entry[0], renumber(entry[1]))
            for key, entry in self._lower_memo.items()
        }
        new_enter_memo = {
            key: (entry[0], renumber(entry[1]))
            for key, entry in self._enter_memo.items()
        }
        self.op, self.a, self.b, self.payload = new_op, new_a, new_b, new_payload
        self.root = new_root
        self._fail_node = new_fail
        self._pending = new_pending
        self._lower_memo = new_lower_memo
        self._enter_memo = new_enter_memo
        self._row_intern = {}
        if self.dedupe:
            for i in range(len(self.op)):
                if self.op[i] != OP_STUB:
                    self._row_intern.setdefault(
                        (self.op[i], self.a[i], self.b[i], self.payload[i]), i
                    )
        removed = before - len(self.op)
        self.compacted_rows += removed
        self.version += 1
        return removed

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.op)

    @property
    def pending_stubs(self) -> int:
        return len(self._pending)

    def stats(self) -> Dict[str, int]:
        counts = [0] * len(OP_NAMES)
        for op in self.op:
            counts[op] += 1
        return {
            "nodes": len(self.op),
            "payloads": len(self.payloads),
            "expansions": self.expansions,
            "bit": counts[OP_BIT],
            "leaf": counts[OP_LEAF],
            "fail": counts[OP_FAIL],
            "jmp": counts[OP_JMP],
            "stub": counts[OP_STUB],
            "dedup_hits": self.dedup_hits,
            "compacted_rows": self.compacted_rows,
        }

    def map_payloads(self, extract: Optional[Callable[[object], object]]):
        """Apply ``extract`` once per distinct payload (not per sample)."""
        if extract is None:
            return list(self.payloads)
        return [extract(value) for value in self.payloads]


def lower_cftree(
    tree: CFTree, max_nodes: int = 2_000_000, dedupe: bool = True
) -> NodeTable:
    """Lower a debiased CF tree to a :class:`NodeTable`."""
    return NodeTable.from_cftree(tree, max_nodes, dedupe)
