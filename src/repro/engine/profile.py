"""``EngineProfile``: the engine-selection seam as a first-class value.

The engine/backend/batch-size decisions used to be scattered across
``collect_auto`` kwargs, ``BatchSampler.from_command`` defaults, the
driver dispatch, and the CLI ``--engine`` plumbing.  A profile bundles
every knob that selects *how* a program is sampled -- engine, backend,
batch size, compiler pass list, coalesce strategy, liveness narrowing,
fuel, and the table node budget -- into one serializable object that
the pipeline, CLI, benchmarks, telemetry, and future ``serve``/
``native`` backends all consume.

Selection is purely a performance decision: every backend preserves the
same per-sample i.i.d. bit-stream semantics, and the sequential paths
are bit-for-bit identical to the reference trampoline (the differential
suite pins this), so swapping profiles can never change *what* is
sampled -- only how fast.  That is what makes a measured policy
(:mod:`repro.engine.tuner`) safe to layer on top.

Profiles are derived from *program features* exposed by the compiler
(:func:`features_of` reads ``CompiledProgram.stats``): table rows,
open/closed, branch entropy (:func:`repro.stats.entropy.shannon_entropy`
over the table's fair-bit leaf distribution), and analysis verdicts
from the lint layer.  :func:`static_profile` is the old ``engine="auto"``
heuristic expressed as a function of those features; the tuner uses it
as the cold-start prior.
"""

from typing import Dict, NamedTuple, Optional, Tuple

__all__ = [
    "DEFAULT_PASSES",
    "EngineProfile",
    "PROFILES",
    "ProgramFeatures",
    "branch_entropy",
    "feature_bucket",
    "features_of",
    "profile_from_dict",
    "profile_named",
    "register_profile",
    "static_profile",
    "validate_profile",
]

#: The pass list every default sampling path compiles with.
DEFAULT_PASSES: Tuple[str, ...] = ("elim_choices", "debias", "cse")


class EngineProfile(NamedTuple):
    """Everything that selects a sampling strategy, in one value.

    ``engine`` picks the driver family (``"batch"`` or ``"trampoline"``;
    ``"auto"`` never appears *inside* a profile -- it is the policy that
    chooses one).  ``backend`` picks the batch driver tier; ``batch_size``
    optionally chunks large collects (``None`` = one driver call, the
    bit-exact default).  The compiler knobs (``passes``, ``coalesce``,
    ``max_nodes``) are part of the profile because they shape the table
    the drivers run -- they are folded into the artifact digest, so
    differently-profiled compilations never collide in the cache.
    """

    name: str = "custom"
    engine: str = "batch"
    backend: str = "auto"
    batch_size: Optional[int] = None
    passes: Tuple[str, ...] = DEFAULT_PASSES
    coalesce: str = "loopback"
    narrow: bool = False
    fuel: Optional[int] = None
    max_nodes: int = 2_000_000

    # -- serialization ---------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (telemetry records embed this)."""
        return {
            "name": self.name,
            "engine": self.engine,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "passes": list(self.passes),
            "coalesce": self.coalesce,
            "narrow": self.narrow,
            "fuel": self.fuel,
            "max_nodes": self.max_nodes,
        }

    def describe(self) -> str:
        """A one-line rendering for CLI reports and bench logs."""
        if self.engine == "trampoline":
            core = "trampoline"
        else:
            core = "batch/%s" % self.backend
        extras = []
        if self.batch_size is not None:
            extras.append("chunk=%d" % self.batch_size)
        if self.narrow:
            extras.append("narrow")
        if self.fuel is not None:
            extras.append("fuel=%d" % self.fuel)
        if self.passes != DEFAULT_PASSES:
            extras.append("passes=%s" % "+".join(self.passes))
        suffix = (" [%s]" % ", ".join(extras)) if extras else ""
        return "%s (%s)%s" % (self.name, core, suffix)


def profile_from_dict(record: Dict[str, object]) -> EngineProfile:
    """Rebuild a profile from :meth:`EngineProfile.as_dict` output."""
    known = {field: record[field] for field in EngineProfile._fields
             if field in record}
    if "passes" in known:
        known["passes"] = tuple(known["passes"])
    profile = EngineProfile(**known)
    validate_profile(profile)
    return profile


# -- validation ----------------------------------------------------------

#: Engines a *profile* may name (the policy-level "auto" is excluded:
#: resolving it is what produces a profile).
PROFILE_ENGINES = ("batch", "trampoline")


def validate_profile(profile: EngineProfile) -> EngineProfile:
    """Raise ``ValueError`` (listing the valid set) on a bad profile."""
    from repro.engine.api import BACKENDS

    if profile.engine not in PROFILE_ENGINES:
        raise ValueError(
            "unknown engine %r (valid: %s)"
            % (profile.engine, ", ".join(PROFILE_ENGINES))
        )
    if profile.backend not in BACKENDS:
        raise ValueError(
            "unknown backend %r (valid: %s)"
            % (profile.backend, ", ".join(BACKENDS))
        )
    if profile.batch_size is not None and profile.batch_size <= 0:
        raise ValueError("batch_size must be positive or None")
    if profile.max_nodes <= 0:
        raise ValueError("max_nodes must be positive")
    return profile


# -- the registry --------------------------------------------------------

PROFILES: Dict[str, EngineProfile] = {}


def register_profile(profile: EngineProfile) -> EngineProfile:
    """Add a named profile (future backends register here once)."""
    validate_profile(profile)
    PROFILES[profile.name] = profile
    return profile


register_profile(EngineProfile(name="trampoline", engine="trampoline"))
register_profile(EngineProfile(name="batch-auto", engine="batch",
                               backend="auto"))
register_profile(EngineProfile(name="batch-numpy", engine="batch",
                               backend="numpy"))
register_profile(EngineProfile(name="batch-python", engine="batch",
                               backend="python"))
register_profile(EngineProfile(name="batch-sequential", engine="batch",
                               backend="sequential"))
# The generated-C-kernel backend (closed tables; bit-identical Python
# fallback otherwise).  Opt-in via --backend/--profile/the tuner: the
# static prior below never selects it, so cold-start behavior -- and
# the auto==static identity the differential tests pin -- is unchanged.
register_profile(EngineProfile(name="native", engine="batch",
                               backend="native"))


def profile_named(name: str) -> EngineProfile:
    """Look up a registered profile; ``ValueError`` lists the registry."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            "unknown profile %r (valid: %s)"
            % (name, ", ".join(sorted(PROFILES)))
        )


# -- program features ----------------------------------------------------

class ProgramFeatures(NamedTuple):
    """The compiler-exposed features selection policies key on."""

    rows: int
    closed: bool
    branch_entropy: float
    pruned_sites: int
    digest: Optional[str]


def branch_entropy(table, budget: int = 4096) -> float:
    """Shannon entropy (bits) of the table's fair-bit leaf distribution.

    Fair-bit mass is propagated from the root: each ``OP_BIT`` splits
    its mass in half, jumps and calls forward it, leaves accumulate it.
    Back-edges make the propagation non-terminating on rejection loops,
    so the sweep is bounded by ``budget`` node visits -- mass decays
    geometrically along loops, so the truncation error is tiny -- and
    the collected leaf masses are renormalized before computing the
    entropy via :func:`repro.stats.entropy.shannon_entropy`.  This is a
    *feature*, not a semantics: policies use it to distinguish flat
    high-fanout programs (the n=10000 die) from deep rejection-heavy
    ones (dueling coins at p=1/20).
    """
    from repro.engine.table import (
        OP_BIT,
        OP_CALL,
        OP_JMP,
        OP_LEAF,
    )
    from repro.stats.entropy import shannon_entropy

    if len(table) == 0:
        return 0.0
    leaf_mass: Dict[int, float] = {}
    queue = [(table.root, 1.0)]
    visits = 0
    while queue and visits < budget:
        index, mass = queue.pop()
        visits += 1
        if mass < 1e-12:
            continue
        op = table.op[index]
        if op == OP_LEAF:
            key = table.payload[index]
            leaf_mass[key] = leaf_mass.get(key, 0.0) + mass
        elif op == OP_BIT:
            queue.append((table.a[index], mass * 0.5))
            queue.append((table.b[index], mass * 0.5))
        elif op in (OP_JMP, OP_CALL):
            queue.append((table.a[index], mass))
        # OP_FAIL / OP_STUB: unresolved mass, dropped before normalizing.
    total = sum(leaf_mass.values())
    if total <= 0.0:
        return 0.0
    return shannon_entropy(
        {key: mass / total for key, mass in leaf_mass.items()}
    )


def features_of(program) -> ProgramFeatures:
    """Extract :class:`ProgramFeatures` from a ``CompiledProgram``.

    Reads ``program.stats`` where available (built artifacts) and falls
    back to the table itself (disk-rehydrated artifacts carry stats from
    the *building* process; rows may have grown since via JIT
    expansion).
    """
    table = program.table
    stats = getattr(program, "stats", None) or {}
    lower = stats.get("lower") or {}
    closed = lower.get("closed")
    if closed is None:
        closed = not (table.pending_stubs or table.calls)
    analysis = stats.get("analysis") or {}
    return ProgramFeatures(
        rows=len(table),
        closed=bool(closed),
        branch_entropy=branch_entropy(table),
        pruned_sites=int(analysis.get("pruned_sites", 0) or 0),
        digest=getattr(program, "digest", None),
    )


def feature_bucket(features: ProgramFeatures) -> str:
    """Coarse feature key the tuner's arm statistics are grouped by.

    Buckets must be coarse enough that throughput recorded on one
    program transfers to similar ones, and fine enough that closed
    16-row dice and open million-state races never share a policy.
    """
    if features.rows <= 16:
        size = "xs"
    elif features.rows <= 64:
        size = "s"
    elif features.rows <= 512:
        size = "m"
    else:
        size = "l"
    entropy = features.branch_entropy
    if entropy < 2.0:
        band = "lo"
    elif entropy < 6.0:
        band = "mid"
    else:
        band = "hi"
    return "%s:%s:%s" % ("closed" if features.closed else "open", size, band)


def static_profile(features: Optional[ProgramFeatures] = None) -> EngineProfile:
    """The pre-tuner heuristic as a profile: batch engine, best available
    backend.  This is both the default policy when no telemetry exists
    and the baseline the perf-policy CI gate measures the tuner against.
    """
    from repro.engine.pool import HAVE_NUMPY

    name = "batch-numpy" if HAVE_NUMPY else "batch-python"
    return PROFILES[name]
