"""The native backend: digest-cached generated C kernels.

Closed node tables -- every row expanded, no ``OP_CALL`` frames -- are
lowered to a switch-free C table walk (:mod:`~repro.engine.native.
codegen`), compiled once per content digest, cached next to the
artifact store (:mod:`~repro.engine.native.kernel`), and driven off the
exact ``BitPool`` chunk stream (:mod:`~repro.engine.native.driver`), so
the sample stream is bit-for-bit the sequential driver's.  Open tables
and degraded environments (no C compiler, ``ZAR_NATIVE_DISABLE``) fall
back to the pooled pure-Python backend -- which shares that exact bit
stream -- with an observable ``native-unavailable`` reason.

See the "Native backend" section of ``docs/architecture.md``.
"""

from repro.engine.native.codegen import (
    CODEGEN_VERSION,
    EncodedTable,
    KernelUnsupported,
    encode_table,
    encoded_digest,
    render_c,
)
from repro.engine.native.driver import (
    BoundKernel,
    collect_kernel,
    kernel_for,
    kernel_status,
)
from repro.engine.native.kernel import (
    KernelCacheError,
    KernelCompileError,
    NativeKernel,
    build_kernel,
    compiler_fingerprint,
    compiler_invocations,
    find_compiler,
    kernel_cache_dir,
    native_available,
    reset_kernel_runtime,
)

__all__ = [
    "BoundKernel",
    "CODEGEN_VERSION",
    "EncodedTable",
    "KernelCacheError",
    "KernelCompileError",
    "KernelUnsupported",
    "NativeKernel",
    "build_kernel",
    "collect_kernel",
    "compiler_fingerprint",
    "compiler_invocations",
    "encode_table",
    "encoded_digest",
    "find_compiler",
    "kernel_cache_dir",
    "kernel_for",
    "kernel_status",
    "native_available",
    "render_c",
    "reset_kernel_runtime",
]
