"""Lower a closed :class:`~repro.engine.table.NodeTable` to C source.

The generated kernel is a *switch-free* table walk: after jump
threading, every interior node of a closed table is an ``OP_BIT`` row,
so the walk is one line of C --

    i = bit ? ZA[i] : ZB[i];

-- over two flat ``int32`` arrays.  Terminals are folded into the edge
codes instead of occupying rows: ``-1`` is observation failure
(``OP_FAIL``) and ``-(p + 2)`` is the leaf with payload index ``p``, so
the inner loop needs no opcode dispatch at all.  A tied failure resets
``i`` to the root *without* resetting the per-sample bit counter --
exactly the sequential driver's restart semantics.

The encoding is **canonical**: bit rows *and* leaf codes are renumbered
in discovery order from the (threaded) root, so two tables with the
same reachable DAG but different physical layouts -- e.g. one built
fresh and one rehydrated from the artifact store after a different JIT
expansion history -- produce byte-identical C and hence the same kernel
digest.  The table's own payload indices (which *are* history-
dependent) stay out of the digest: the kernel emits them through a
per-table ``payload_map`` array passed at call time.  That is what lets
a warm artifact store skip the C compiler entirely.

What cannot be compiled raises :class:`KernelUnsupported` with the
reason the caller surfaces through ``CollectResult.fallback_reason``:
pending stubs (the table is open; expansion needs live Python
closures), ``OP_CALL`` rows (frame-separated loop returns resolve
lazily through :meth:`NodeTable.call_return`), bit-free jump cycles
(the walk would diverge without consuming bits), and a root that
resolves straight to ``OP_FAIL`` under tied semantics (ditto).
"""

import hashlib
from typing import List, NamedTuple

from repro.engine.table import (
    NodeTable,
    OP_BIT,
    OP_CALL,
    OP_FAIL,
    OP_JMP,
    OP_LEAF,
    OP_STUB,
)

__all__ = [
    "CODEGEN_VERSION",
    "EncodedTable",
    "KernelUnsupported",
    "encode_table",
    "encoded_digest",
    "render_c",
]

#: Bump whenever the encoding or the C template changes: the version is
#: part of the kernel digest, so stale cached kernels miss cleanly.
#: v2: payload codes are canonical (discovery-ordered) and the kernel
#: takes a per-table payload remap array, making the digest fully
#: layout-insensitive.
CODEGEN_VERSION = 2

#: Sentinel for "no sample in flight" in the resumable kernel state.
FRESH_STATE = -(2 ** 63)


class KernelUnsupported(ValueError):
    """The table cannot be lowered to a native kernel (reason in args)."""


class EncodedTable(NamedTuple):
    """The canonical switch-free encoding of a closed table.

    ``a``/``b`` are per-bit-row successor codes (row index when >= 0,
    ``-1`` for FAIL, ``-(p + 2)`` for the *canonical* leaf code ``p``).
    Leaf codes are numbered in discovery order too -- the table's own
    payload indices depend on expansion history, so baking them into
    the encoding would fork the digest across histories.
    ``payload_map`` translates canonical code -> this table's payload
    index; it rides *outside* the digest and is handed to the kernel at
    call time, so one cached ``.so`` serves every layout of the same
    reachable DAG.
    """

    a: List[int]
    b: List[int]
    root: int
    payload_map: List[int]


def _thread(table: NodeTable, index: int) -> int:
    """Follow JMP chains without expanding; raise on bit-free cycles."""
    seen = None
    while table.op[index] == OP_JMP:
        if seen is None:
            seen = {index}
        index = table.a[index]
        if index in seen:
            raise KernelUnsupported(
                "bit-free jump cycle (the walk would diverge without "
                "consuming bits)"
            )
        seen.add(index)
    return index


def encode_table(table: NodeTable) -> EncodedTable:
    """Canonically renumber ``table`` into an :class:`EncodedTable`.

    Only rows reachable from the root are encoded, in discovery order
    (root first, then each bit row's threaded ``a`` / ``b`` successors
    breadth-first) -- a layout-insensitive numbering.
    """
    op, a, b, payload = table.op, table.a, table.b, table.payload
    if table.pending_stubs:
        raise KernelUnsupported(
            "open table (%d loop-state stubs pending; expansion needs "
            "live Python closures)" % table.pending_stubs
        )

    number = {}
    order: List[int] = []
    leaf_number = {}
    leaf_order: List[int] = []

    def code_of(index: int) -> int:
        index = _thread(table, index)
        o = op[index]
        if o == OP_LEAF:
            p = payload[index]
            canonical = leaf_number.get(p)
            if canonical is None:
                canonical = leaf_number[p] = len(leaf_order)
                leaf_order.append(p)
            return -(canonical + 2)
        if o == OP_FAIL:
            return -1
        if o == OP_STUB:
            raise KernelUnsupported(
                "open table (reached an unexpanded stub row)"
            )
        if o == OP_CALL:
            raise KernelUnsupported(
                "call rows (frame-separated loop returns resolve lazily "
                "in Python)"
            )
        hit = number.get(index)
        if hit is None:
            hit = number[index] = len(order)
            order.append(index)
        return hit

    root = code_of(table.root)
    if root == -1:
        raise KernelUnsupported(
            "root resolves to FAIL (a tied restart would diverge without "
            "consuming bits)"
        )
    enc_a: List[int] = []
    enc_b: List[int] = []
    cursor = 0
    while cursor < len(order):
        index = order[cursor]
        cursor += 1
        enc_a.append(code_of(a[index]))
        enc_b.append(code_of(b[index]))
    return EncodedTable(enc_a, enc_b, root, leaf_order)


def encoded_digest(encoded: EncodedTable) -> str:
    """SHA-256 over the canonical encoding + codegen version."""
    hasher = hashlib.sha256()
    hasher.update(b"zar-native-kernel:%d\n" % CODEGEN_VERSION)
    hasher.update(b"root:%d\n" % encoded.root)
    hasher.update(("a:" + ",".join(map(str, encoded.a)) + "\n").encode())
    hasher.update(("b:" + ",".join(map(str, encoded.b)) + "\n").encode())
    return hasher.hexdigest()


def _c_array(name: str, values: List[int]) -> str:
    lines = ["static const int32_t %s[%d] = {" % (name, max(len(values), 1))]
    row: List[str] = []
    for value in values:
        row.append(str(value))
        if len(row) == 12:
            lines.append("    " + ", ".join(row) + ",")
            row = []
    if row:
        lines.append("    " + ", ".join(row) + ",")
    if not values:
        lines.append("    0,")
    lines.append("};")
    return "\n".join(lines)


def render_c(encoded: EncodedTable, digest: str) -> str:
    """The complete C translation unit for one encoded table.

    The two successor arrays are interleaved as ``ZT[2*i + bit]``
    (``bit = 0`` is the ``b`` edge) so the inner step is pure address
    arithmetic -- no data-dependent branch on a fair bit, which would
    mispredict half the time by construction.
    """
    interleaved: List[int] = []
    for a_code, b_code in zip(encoded.a, encoded.b):
        interleaved.append(b_code)
        interleaved.append(a_code)
    return _TEMPLATE % {
        "version": CODEGEN_VERSION,
        "digest": digest,
        "rows": len(encoded.a),
        "root": encoded.root,
        "zt": _c_array("ZT", interleaved),
    }


_TEMPLATE = """\
/* Generated by zar native codegen v%(version)d -- do not edit.
 *
 * Kernel digest: %(digest)s
 * %(rows)d bit rows; successor codes >= 0 are row indices, -1 is
 * observation failure, -(p + 2) is the canonical leaf code p (the
 * caller's payload_map translates codes to its payload indices).
 * ZT interleaves the b/a successor arrays as ZT[2*i + bit], keeping
 * the inner step branch-free (a fair bit mispredicts by definition).
 * The walk consumes the caller's packed fair-bit buffer LSB-first per
 * byte, little-endian across bytes -- BitPool's exact chunk order.
 */
#include <stdint.h>

#define ZAR_ROOT %(root)d
#define ZAR_FRESH (-9223372036854775807LL - 1)

%(zt)s

static const char ZAR_DIGEST[] = "%(digest)s";

const char *zar_digest(void) { return ZAR_DIGEST; }
int32_t zar_codegen_version(void) { return %(version)d; }
int64_t zar_rows(void) { return %(rows)d; }

/* Draw samples done..n-1 from the table over one packed bit buffer.
 *
 * Returns the new number of finished samples.  When the buffer drains
 * mid-sample the in-flight (node, bits-used) pair parks in state[0..1]
 * (state[0] == ZAR_FRESH means no sample in flight) and the caller
 * refills and re-invokes; the parked walk resumes on the next buffer's
 * first bit, so refill boundaries are invisible to the bit stream.
 * A tied failure restarts at the root without resetting the bit
 * counter -- the sequential driver's exact restart semantics.
 */
int64_t zar_collect(const unsigned char *bits, int64_t total_bits,
                    int64_t done, int64_t n,
                    int64_t *out_idx, int64_t *out_bits,
                    int64_t *state, const int32_t *payload_map,
                    int32_t tied)
{
    int64_t pos = 0;
    int64_t i = (state[0] == ZAR_FRESH) ? ZAR_ROOT : state[0];
    int64_t used = (state[0] == ZAR_FRESH) ? 0 : state[1];
    while (done < n) {
        while (i >= 0) {
            if (pos >= total_bits) {
                state[0] = i;
                state[1] = used;
                return done;
            }
            i = (int64_t)ZT[(i << 1)
                            | ((bits[pos >> 3] >> (pos & 7)) & 1)];
            pos++;
            used++;
        }
        if (i == -1 && tied) {
            i = ZAR_ROOT;
            continue;
        }
        out_idx[done] = (i == -1) ? -1 : (int64_t)payload_map[-i - 2];
        out_bits[done] = used;
        done++;
        i = ZAR_ROOT;
        used = 0;
    }
    state[0] = ZAR_FRESH;
    state[1] = 0;
    return done;
}
"""
