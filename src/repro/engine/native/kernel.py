"""Compile, cache, and load generated native kernels.

The kernel store is content-addressed and lives **next to the artifact
store**: ``ZAR_NATIVE_CACHE_DIR`` names it explicitly, else it is the
``kernels/`` subdirectory of the compilation cache's disk tier
(``configure_cache(disk_dir=...)`` / ``ZAR_COMPILE_CACHE_DIR``), else a
per-process temporary directory (kernels still dedupe within the
process, just not across processes).

Cache key anatomy -- three independent invalidation axes:

- the **kernel digest** (:func:`~repro.engine.native.codegen.
  encoded_digest`): SHA-256 of the canonical table encoding, which
  already folds in ``CODEGEN_VERSION``.  The ``.c`` source is stored as
  ``zk-<digest>.c`` (kept for inspection; CI uploads it);
- the **compiler fingerprint** (hash of the resolved compiler path and
  its ``--version`` banner), appended to the shared-object name
  ``zk-<digest>-<fingerprint>.so`` so a toolchain upgrade recompiles
  instead of loading ABI-stale objects;
- a **load-time self-check**: every object exports ``zar_digest()`` /
  ``zar_codegen_version()``, verified after ``dlopen``.  A corrupted or
  truncated cache entry fails the check (or the ``dlopen`` itself), is
  unlinked, and is recompiled from source -- never executed.

Loading prefers cffi in ABI mode (``FFI().dlopen``); plain
:mod:`ctypes` is the zero-dependency fallback (``ZAR_NATIVE_FORCE_CTYPES``
pins it for tests).  ``native_available()`` is the cheap gate the
engine seams consult: it requires a C compiler on ``PATH`` (or
``ZAR_NATIVE_CC``) and ``ZAR_NATIVE_DISABLE`` unset.
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from typing import Dict, Optional, Tuple

from repro.engine.native.codegen import (
    CODEGEN_VERSION,
    EncodedTable,
    encoded_digest,
    render_c,
)

__all__ = [
    "COMPILE_TIMEOUT",
    "KernelCacheError",
    "KernelCompileError",
    "NativeKernel",
    "build_kernel",
    "compiler_fingerprint",
    "compiler_invocations",
    "find_compiler",
    "kernel_cache_dir",
    "native_available",
    "reset_kernel_runtime",
]

COMPILE_TIMEOUT = 120  # seconds; a table-walk TU compiles in well under

_CDEF = """
const char *zar_digest(void);
int32_t zar_codegen_version(void);
int64_t zar_rows(void);
int64_t zar_collect(const unsigned char *bits, int64_t total_bits,
                    int64_t done, int64_t n,
                    int64_t *out_idx, int64_t *out_bits,
                    int64_t *state, const int32_t *payload_map,
                    int32_t tied);
"""


class KernelCompileError(RuntimeError):
    """The C compiler failed (or is missing) for a generated kernel."""


class KernelCacheError(RuntimeError):
    """A cached kernel object failed validation (corrupt/stale entry)."""


# -- process-wide runtime state (reset_kernel_runtime clears it all) -----

#: digest -> loaded NativeKernel: the in-process (memory) cache tier.
_MEMORY: Dict[str, "NativeKernel"] = {}
_FINGERPRINT: Optional[str] = None
_TMP_DIR: Optional[str] = None
#: Private snapshot dir for dlopen (see :func:`_load_validated`).
_LOAD_DIR: Optional[str] = None
#: How many times this process ran the C compiler (tests assert on it).
_INVOCATIONS = 0


def compiler_invocations() -> int:
    return _INVOCATIONS


def reset_kernel_runtime() -> None:
    """Drop memory-cached kernels and memoized probes.

    Tests call this to simulate a fresh process against a warm disk
    store.  The invocation counter survives (it counts per-process
    compiler work, which is exactly what the warm-store tests measure).
    """
    global _FINGERPRINT, _TMP_DIR, _LOAD_DIR
    _MEMORY.clear()
    _FINGERPRINT = None
    _TMP_DIR = None
    _LOAD_DIR = None


# -- environment probes --------------------------------------------------

def native_disabled() -> bool:
    return bool(os.environ.get("ZAR_NATIVE_DISABLE"))


def find_compiler() -> Optional[str]:
    """The C compiler to invoke (``ZAR_NATIVE_CC`` wins), or ``None``."""
    explicit = os.environ.get("ZAR_NATIVE_CC")
    if explicit:
        return explicit if os.path.sep in explicit \
            else shutil.which(explicit)
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def native_available() -> bool:
    """Can this process build and run native kernels at all?"""
    return not native_disabled() and find_compiler() is not None


def compiler_fingerprint() -> str:
    """A short hash of the compiler identity (part of the ``.so`` name)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        cc = find_compiler()
        banner = ""
        if cc:
            try:
                probe = subprocess.run(
                    [cc, "--version"], capture_output=True, timeout=30
                )
                banner = probe.stdout.decode("utf-8", "replace")
                banner = banner.splitlines()[0] if banner else ""
            except (OSError, subprocess.SubprocessError):
                banner = ""
        raw = "%s|%s" % (cc or "", banner)
        _FINGERPRINT = hashlib.sha256(raw.encode()).hexdigest()[:12]
    return _FINGERPRINT


def kernel_cache_dir() -> str:
    """Resolve the kernel store directory (created on demand)."""
    global _TMP_DIR
    explicit = os.environ.get("ZAR_NATIVE_CACHE_DIR")
    if explicit:
        return explicit
    from repro.compiler.cache import get_cache

    disk_dir = get_cache().disk_dir
    if disk_dir:
        return os.path.join(disk_dir, "kernels")
    if _TMP_DIR is None:
        _TMP_DIR = tempfile.mkdtemp(prefix="zar-kernels-")
    return _TMP_DIR


# -- loading -------------------------------------------------------------

def _force_ctypes() -> bool:
    return bool(os.environ.get("ZAR_NATIVE_FORCE_CTYPES"))


class _CffiBinding:
    """cffi ABI-mode binding (no compilation at bind time)."""

    name = "cffi"

    def __init__(self, path: str):
        from cffi import FFI

        self._ffi = FFI()
        self._ffi.cdef(_CDEF)
        self._lib = self._ffi.dlopen(path)

    def digest(self) -> str:
        return self._ffi.string(self._lib.zar_digest()).decode()

    def codegen_version(self) -> int:
        return int(self._lib.zar_codegen_version())

    def rows(self) -> int:
        return int(self._lib.zar_rows())

    def collect(self, bits: bytes, total_bits: int, done: int, n: int,
                out_idx, out_bits, state, payload_map, tied: int) -> int:
        ffi = self._ffi
        return int(
            self._lib.zar_collect(
                ffi.cast("const unsigned char *", ffi.from_buffer(bits)),
                total_bits,
                done,
                n,
                ffi.cast("int64_t *",
                         ffi.from_buffer(out_idx, require_writable=True)),
                ffi.cast("int64_t *",
                         ffi.from_buffer(out_bits, require_writable=True)),
                ffi.cast("int64_t *",
                         ffi.from_buffer(state, require_writable=True)),
                ffi.cast("const int32_t *", ffi.from_buffer(payload_map)),
                tied,
            )
        )


class _CtypesBinding:
    """Plain ctypes fallback; buffers passed by address."""

    name = "ctypes"

    def __init__(self, path: str):
        lib = ctypes.CDLL(path)
        lib.zar_digest.restype = ctypes.c_char_p
        lib.zar_digest.argtypes = []
        lib.zar_codegen_version.restype = ctypes.c_int32
        lib.zar_codegen_version.argtypes = []
        lib.zar_rows.restype = ctypes.c_int64
        lib.zar_rows.argtypes = []
        lib.zar_collect.restype = ctypes.c_int64
        lib.zar_collect.argtypes = [
            ctypes.c_char_p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_int32,
        ]
        self._lib = lib

    def digest(self) -> str:
        return self._lib.zar_digest().decode()

    def codegen_version(self) -> int:
        return int(self._lib.zar_codegen_version())

    def rows(self) -> int:
        return int(self._lib.zar_rows())

    def collect(self, bits: bytes, total_bits: int, done: int, n: int,
                out_idx, out_bits, state, payload_map, tied: int) -> int:
        return int(
            self._lib.zar_collect(
                bits, total_bits, done, n,
                out_idx.buffer_info()[0],
                out_bits.buffer_info()[0],
                state.buffer_info()[0],
                payload_map.buffer_info()[0],
                tied,
            )
        )


def _bind(path: str):
    if not _force_ctypes():
        try:
            from cffi import FFI  # noqa: F401  (probe only)
        except ImportError:
            pass
        else:
            return _CffiBinding(path)
    return _CtypesBinding(path)


class NativeKernel:
    """A validated, loaded kernel for one table digest."""

    def __init__(self, binding, digest: str, payloads: int):
        self.binding = binding
        self.digest = digest
        self.payloads = payloads
        self.rows = binding.rows()

    def collect_call(self, bits: bytes, total_bits: int, done: int, n: int,
                     out_idx, out_bits, state, payload_map,
                     tied: bool) -> int:
        return self.binding.collect(
            bits, total_bits, done, n, out_idx, out_bits, state,
            payload_map, 1 if tied else 0,
        )


def _snapshot_for_load(path: str) -> str:
    """Copy a store ``.so`` to a private per-load file before dlopen.

    dlopen dedupes by (device, inode): loading the shared store path
    directly would return a *stale* handle if the entry was overwritten
    in place while mapped -- validation would then inspect the old
    object, and a truncating writer would leave running kernels one
    page access away from SIGBUS.  A snapshot gives every load a fresh
    inode and insulates loaded code from later store corruption.
    """
    global _LOAD_DIR
    if _LOAD_DIR is None:
        _LOAD_DIR = tempfile.mkdtemp(prefix="zar-kernel-load-")
    fd, snapshot = tempfile.mkstemp(dir=_LOAD_DIR, suffix=".so")
    os.close(fd)
    shutil.copyfile(path, snapshot)
    return snapshot


def _load_validated(path: str, digest: str, payloads: int) -> NativeKernel:
    """dlopen + self-check; any failure is a :class:`KernelCacheError`."""
    try:
        binding = _bind(_snapshot_for_load(path))
        found_version = binding.codegen_version()
        found_digest = binding.digest()
    except Exception as err:  # dlopen/symbol errors vary wildly by libc
        raise KernelCacheError("kernel object unloadable: %s" % err)
    if found_version != CODEGEN_VERSION:
        raise KernelCacheError(
            "kernel codegen version %d != expected %d"
            % (found_version, CODEGEN_VERSION)
        )
    if found_digest != digest:
        raise KernelCacheError(
            "kernel digest mismatch (%s != %s)" % (found_digest, digest)
        )
    return NativeKernel(binding, digest, payloads)


# -- compilation ---------------------------------------------------------

def _write_source(c_path: str, source: str) -> None:
    directory = os.path.dirname(c_path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".c.tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(source)
        os.replace(tmp, c_path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _compile(c_path: str, so_path: str) -> None:
    """Run the C compiler; atomic rename so readers never see a torn .so."""
    global _INVOCATIONS
    cc = find_compiler()
    if cc is None:
        raise KernelCompileError("no C compiler on PATH (set ZAR_NATIVE_CC)")
    directory = os.path.dirname(so_path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".so.tmp")
    os.close(fd)
    _INVOCATIONS += 1
    try:
        # -funroll-loops roughly halves the walk time over plain -O2:
        # the unrolled inner loop pipelines the byte loads across bits.
        proc = subprocess.run(
            [cc, "-O2", "-funroll-loops", "-fPIC", "-shared", "-o", tmp,
             c_path],
            capture_output=True,
            timeout=COMPILE_TIMEOUT,
        )
    except (OSError, subprocess.SubprocessError) as err:
        os.unlink(tmp)
        raise KernelCompileError("compiler failed to run: %s" % err)
    if proc.returncode != 0:
        os.unlink(tmp)
        tail = proc.stderr.decode("utf-8", "replace").strip()[-400:]
        raise KernelCompileError(
            "%s exited %d: %s" % (cc, proc.returncode, tail)
        )
    os.replace(tmp, so_path)


def build_kernel(
    encoded: EncodedTable, cache_dir: Optional[str] = None
) -> Tuple[NativeKernel, Dict[str, object]]:
    """Resolve ``encoded`` to a loaded kernel through the cache tiers.

    Returns ``(kernel, info)`` where ``info`` carries the telemetry
    surface: ``tier`` (``"memory"`` / ``"disk"`` / ``"compiled"``),
    ``compile_ms`` (``None`` unless freshly compiled), ``digest``, and
    ``c_path`` (the kept source, for the CI artifact).  Raises
    :class:`KernelCompileError` when the toolchain is unusable.
    """
    digest = encoded_digest(encoded)
    directory = cache_dir if cache_dir is not None else kernel_cache_dir()
    c_path = os.path.join(directory, "zk-%s.c" % digest)
    so_path = os.path.join(
        directory, "zk-%s-%s.so" % (digest, compiler_fingerprint())
    )
    info: Dict[str, object] = {
        "digest": digest,
        "rows": len(encoded.a),
        "c_path": c_path,
        "tier": None,
        "compile_ms": None,
    }

    cached = _MEMORY.get(digest)
    if cached is not None:
        info["tier"] = "memory"
        return cached, info

    # Static range check, once per kernel load rather than per collect:
    # every successor code must be a row index or a terminal whose
    # canonical leaf code exists in the payload map, so a validated
    # kernel can never index past the map the driver passes it.
    low = -(len(encoded.payload_map) + 1)
    rows = len(encoded.a)
    for values in (encoded.a, encoded.b, (encoded.root,)):
        for code in values:
            if not low <= code < rows:
                raise KernelCompileError(
                    "encoded successor %d outside [%d, %d)"
                    % (code, low, rows)
                )

    if os.path.exists(so_path):
        try:
            kernel = _load_validated(so_path, digest, len(encoded.payload_map))
        except KernelCacheError:
            # Corrupt/stale entry: drop it and fall through to a fresh
            # compile -- never execute a kernel that failed validation.
            try:
                os.unlink(so_path)
            except OSError:
                pass
        else:
            info["tier"] = "disk"
            _MEMORY[digest] = kernel
            return kernel, info

    source = render_c(encoded, digest)
    start = time.perf_counter()
    _write_source(c_path, source)
    _compile(c_path, so_path)
    kernel = _load_validated(so_path, digest, len(encoded.payload_map))
    info["tier"] = "compiled"
    info["compile_ms"] = round((time.perf_counter() - start) * 1000.0, 3)
    _MEMORY[digest] = kernel
    return kernel, info
