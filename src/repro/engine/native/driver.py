"""Drive a compiled native kernel off the pooled bit stream.

Bit-stream preservation is the whole contract: :func:`collect_kernel`
feeds the kernel the *exact* stream a ``BitPool(seed)`` produces --
whole 4096-bit ``getrandbits`` chunks, serialized little-endian so bit
``j`` of a chunk is bit ``j & 7`` of byte ``j >> 3``, chunks
concatenated in draw order.  The kernel consumes that buffer strictly
in order and parks mid-sample state across refills, so the sequence of
(payload index, bits used) pairs is identical to the sequential driver
(``CountingBits(BitPool(seed))``) and to ``collect_python`` on the same
seed.  Leftover bits at the end of the last buffer are discarded, as
every pooled backend discards its pool.

:func:`kernel_for` is the table-to-kernel resolver the engine seams
call: it gates on availability, attempts a *bounded* closure of open
tables (expansion slices stop as soon as the pending-stub count fails
to shrink -- a geometric loop's frontier never shrinks, a shrinking
range die's always does), encodes, and resolves through the kernel
cache.  Every refusal returns a human-readable reason; the caller
prefixes it with ``native-unavailable`` in
``CollectResult.fallback_reason``.
"""

import os
from array import array
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.engine.native import kernel as _kernel
from repro.engine.native.codegen import (
    FRESH_STATE,
    KernelUnsupported,
    encode_table,
    encoded_digest,
)
from repro.engine.pool import BitPool

__all__ = [
    "BoundKernel",
    "collect_kernel",
    "kernel_for",
    "kernel_status",
]


class BoundKernel(NamedTuple):
    """A cached kernel bound to one table's payload numbering.

    The ``.so`` is digest-keyed over the *canonical* encoding, so one
    compiled kernel serves every physical layout of the same reachable
    DAG; what differs per table is only ``payload_map`` (canonical leaf
    code -> this table's payload index), which the kernel reads at call
    time.
    """

    kernel: object  # NativeKernel
    payload_map: object  # array("i"): canonical code -> payload index

#: Expansion slice for the bounded closure attempt; bail as soon as one
#: slice fails to shrink the pending-stub count.
_EXPAND_SLICE = 2048

#: Hard ceiling on encoded bit rows: beyond this the generated TU gets
#: slow to compile and the cache entry large; the python/numpy backends
#: handle it fine.
_DEFAULT_MAX_ROWS = 200_000

#: Chunks per kernel call: the first buffer is small (tiny collects
#: stay cheap), later buffers are sized from the observed bits-per-
#: sample rate so the pool never generates far more bits than the run
#: consumes (generation is the main Python-side cost).
_CHUNKS_MIN = 8
_CHUNKS_MAX = 4096


def _max_rows() -> int:
    try:
        return int(os.environ.get("ZAR_NATIVE_MAX_ROWS", _DEFAULT_MAX_ROWS))
    except ValueError:
        return _DEFAULT_MAX_ROWS


def _expand_budget() -> int:
    try:
        return int(os.environ.get("ZAR_NATIVE_EXPAND", 65536))
    except ValueError:
        return 65536


def _try_close(table) -> Optional[str]:
    """Try to close ``table``; return the refusal reason or ``None``.

    The attempt is sticky per (table, pending count): once a closure
    attempt bails, it is not repeated until the pending count has
    changed (e.g. other drivers expanded further) -- repeated native
    requests against a diverging loop must not expand it forever.
    """
    if not table.pending_stubs:
        return None
    refused = getattr(table, "_zar_native_refused", None)
    if refused is not None and refused == table.pending_stubs:
        return (
            "open table (%d loop-state stubs pending; closure attempt "
            "already bailed)" % table.pending_stubs
        )
    spent = 0
    budget = _expand_budget()
    while table.pending_stubs:
        if spent >= budget:
            break
        before = table.pending_stubs
        if table.expand_all(limit=min(_EXPAND_SLICE, budget - spent)):
            return None
        spent += _EXPAND_SLICE
        if table.pending_stubs >= before:
            break  # frontier not shrinking: a diverging loop-state space
    table._zar_native_refused = table.pending_stubs
    return (
        "open table (%d loop-state stubs pending after bounded "
        "expansion)" % table.pending_stubs
    )


def _encoded_for(table):
    """Encode ``table``, memoizing on the table version."""
    memo = getattr(table, "_zar_native_encoded", None)
    if memo is not None and memo[0] == table.version:
        return memo[1]
    encoded = encode_table(table)
    table._zar_native_encoded = (table.version, encoded)
    return encoded


def kernel_for(
    table, cache_dir: Optional[str] = None
) -> Tuple[Optional[object], Optional[str], Dict[str, object]]:
    """Resolve ``table`` to ``(kernel, reason, info)``.

    ``kernel`` is ``None`` iff the table cannot run natively, with the
    reason in ``reason``.  ``info`` always carries whatever is known
    (digest/tier/compile_ms when a kernel was resolved).
    """
    info: Dict[str, object] = {"tier": None, "compile_ms": None}
    if _kernel.native_disabled():
        return None, "disabled via ZAR_NATIVE_DISABLE", info
    if _kernel.find_compiler() is None:
        return None, "no C compiler on PATH (set ZAR_NATIVE_CC)", info
    reason = _try_close(table)
    if reason is not None:
        return None, reason, info
    try:
        encoded = _encoded_for(table)
    except KernelUnsupported as err:
        return None, str(err), info
    if len(encoded.a) > _max_rows():
        return None, (
            "table too large (%d bit rows > ZAR_NATIVE_MAX_ROWS=%d)"
            % (len(encoded.a), _max_rows())
        ), info
    try:
        kernel, info = _kernel.build_kernel(encoded, cache_dir=cache_dir)
    except _kernel.KernelCompileError as err:
        return None, "kernel compile failed: %s" % err, info
    return BoundKernel(kernel, array("i", encoded.payload_map)), None, info


def kernel_status(table) -> str:
    """One-line kernel-cache state for the ``zar compile`` stage report."""
    kernel, reason, info = kernel_for(table)
    if kernel is None:
        return "unavailable (%s)" % reason
    digest = str(info.get("digest", ""))[:12]
    if info.get("tier") == "compiled":
        return "compiled (%.1f ms, key %s)" % (
            info.get("compile_ms") or 0.0, digest,
        )
    return "cached (%s, key %s)" % (info.get("tier"), digest)


def collect_kernel(
    bound: BoundKernel,
    n: int,
    seed: Optional[int] = None,
    tied: bool = True,
) -> Tuple[List[int], List[int]]:
    """Draw ``n`` samples; returns ``(payload indices, bits per sample)``.

    The pooled-backend contract of :func:`repro.engine.driver.
    collect_python`, bit-for-bit: same pool, same chunk order, same
    restart semantics.
    """
    kernel, payload_map = bound.kernel, bound.payload_map
    pool = BitPool(seed)
    out_idx = array("q", (0,)) * n
    out_bits = array("q", (0,)) * n
    state = array("q", [FRESH_STATE, 0])
    done = 0
    fed = 0  # bits handed to the kernel so far (tail slack included)
    while done < n:
        if done:
            # Size the next buffer from the observed consumption rate,
            # with 25% headroom plus one chunk of slack.
            needed = (fed * (n - done)) // done + (fed * (n - done)) // (
                4 * done) + 4096
            chunks = max(1, min(_CHUNKS_MAX, needed // 4096 + 1))
        else:
            chunks = _CHUNKS_MIN
        parts = []
        for _ in range(chunks):
            value, width = pool.next_chunk()
            parts.append(value.to_bytes(width // 8, "little"))
        buffer = b"".join(parts)
        fed += len(buffer) * 8
        done = kernel.collect_call(
            buffer, len(buffer) * 8, done, n, out_idx, out_bits, state,
            payload_map, tied
        )
    return out_idx.tolist(), out_bits.tolist()
