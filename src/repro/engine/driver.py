"""Drivers walking a :class:`~repro.engine.table.NodeTable`.

Three tiers, fastest first:

- :func:`collect_numpy` -- vectorized batch: all in-flight samples (the
  "lanes") advance in lock-step over numpy views of the table, one fair
  bit per lane per ``OP_BIT`` step.  Lanes draw independent bit streams,
  so the *sequence* differs from the sequential drivers, but each lane
  sees i.i.d. fair bits and the per-sample bit accounting is exact.
- :func:`collect_python` -- pure-Python batch over a pooled bit buffer;
  the fallback when numpy is absent.  Bit-for-bit identical to
  :func:`run_table` on the same pool.
- :func:`run_table` -- one sample against an arbitrary ``BitSource``.
  Consumes exactly the bits the reference trampoline
  (:func:`repro.sampler.run.run_itree`) would consume on the tied ITree
  of the same tree -- including raising ``BitsExhausted`` at the same
  prefix position -- which is what the differential tests check.

``max_steps`` bounds node visits per sample (the engine's analogue of
the trampoline's fuel; the exact step counts differ because the table
has no ``Tau`` nodes).
"""

from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.bits.source import BitSource
from repro.engine import pool as _pool
from repro.engine.table import (
    NodeTable,
    OP_BIT,
    OP_CALL,
    OP_FAIL,
    OP_JMP,
    OP_LEAF,
    OP_STUB,
)
from repro.sampler.run import FuelExhausted


class EngineFail:
    """Sentinel for observation failure in untied (open) runs."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "ENGINE_FAIL"


ENGINE_FAIL = EngineFail()


@contextmanager
def _gc_guard():
    """Shield batch sampling from generational GC rescans.

    A warm open table pins hundreds of thousands of rows, states, and
    memo entries; every gen-2 collection walks all of them, which can
    triple batch latency.  ``gc.freeze`` parks the current heap in the
    permanent generation for the duration of the batch -- cycles among
    *new* objects are still collected -- and ``gc.unfreeze`` restores
    normal behavior afterwards.
    """
    import gc

    if not gc.isenabled():
        yield
        return
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def run_table(
    table: NodeTable,
    source: BitSource,
    max_steps: Optional[int] = None,
    tied: bool = True,
) -> object:
    """Draw one sample from ``table`` against ``source``."""
    index = _step_indices(table, source, max_steps, tied)
    if index < 0:
        return ENGINE_FAIL
    return table.payloads[index]


def _step_indices(
    table: NodeTable,
    source: BitSource,
    max_steps: Optional[int],
    tied: bool,
) -> int:
    """Walk to a leaf; return its payload index (or -1 for open failure)."""
    op, a, b, payload = table.op, table.a, table.b, table.payload
    root = table.root
    i = root
    steps = 0
    # Frame-separated loop calls: OP_CALL pushes its record id, a leaf
    # with a non-empty stack is a subroutine exit, and a tied failure
    # restarts the *whole* sample, unwinding every frame.  Calls and
    # returns consume no bits.
    stack: List[int] = []
    while True:
        if max_steps is not None:
            steps += 1
            if steps > max_steps:
                raise FuelExhausted("no sample within %d steps" % max_steps)
        o = op[i]
        if o == OP_BIT:
            i = a[i] if source.next_bit() else b[i]
        elif o == OP_LEAF:
            if stack:
                i = table.call_return(stack.pop(), payload[i])
            else:
                return payload[i]
        elif o == OP_JMP:
            i = a[i]
        elif o == OP_STUB:
            table.expand(i)
        elif o == OP_CALL:
            stack.append(payload[i])
            i = a[i]
        else:  # OP_FAIL
            if not tied:
                return -1
            i = root
            del stack[:]


def collect_python(
    table: NodeTable,
    n: int,
    bits,
    max_steps: Optional[int] = None,
    tied: bool = True,
) -> Tuple[List[int], List[int]]:
    """Draw ``n`` samples off a pooled bit buffer.

    Returns ``(payload indices, bits consumed per sample)``.  ``bits``
    is anything :func:`repro.engine.pool.as_pool` accepts.
    """
    supply = _pool.as_pool(bits)
    if max_steps is not None:
        # Metered fallback: per-sample stepping with the pool's
        # BitSource face; correctness over raw speed.
        from repro.bits.source import CountingBits

        counting = CountingBits(supply)
        indices, counts = [], []
        for _ in range(n):
            indices.append(_step_indices(table, counting, max_steps, tied))
            counts.append(counting.take_count())
        return indices, counts

    op, a, b, payload = table.op, table.a, table.b, table.payload
    root = table.root
    expand = table.expand
    call_return = table.call_return
    next_chunk = supply.next_chunk
    buf = 0
    left = 0
    indices: List[int] = []
    counts: List[int] = []
    add_index = indices.append
    add_count = counts.append
    stack: List[int] = []
    with _gc_guard():
        for _ in range(n):
            i = root
            used = 0
            del stack[:]
            while True:
                o = op[i]
                if o == OP_BIT:
                    if left == 0:
                        buf, left = next_chunk()
                    i = (a[i] if buf & 1 else b[i])
                    buf >>= 1
                    left -= 1
                    used += 1
                elif o == OP_LEAF:
                    if stack:
                        i = call_return(stack.pop(), payload[i])
                        continue
                    add_index(payload[i])
                    add_count(used)
                    break
                elif o == OP_JMP:
                    i = a[i]
                elif o == OP_STUB:
                    expand(i)
                elif o == OP_CALL:
                    stack.append(payload[i])
                    i = a[i]
                else:  # OP_FAIL
                    if not tied:
                        add_index(-1)
                        add_count(used)
                        break
                    i = root
                    del stack[:]
    return indices, counts


class _TableView:
    """Numpy mirrors of the table arrays, refreshed on table growth.

    Mirrors are capacity-doubling and refreshed *incrementally*: loop
    state spaces like the hare-tortoise race expand the table tens of
    thousands of times, so a full ``np.asarray`` rebuild per expansion
    would be quadratic.  Only the tail beyond ``_synced`` is copied,
    plus nodes explicitly invalidated by stub expansion (which rewrites
    an existing node into a jump in place).
    """

    def __init__(self, table: NodeTable):
        import numpy as np

        self._np = np
        self.table = table
        capacity = max(1024, len(table))
        self.op = np.empty(capacity, dtype=np.int32)
        self.a = np.empty(capacity, dtype=np.int32)
        self.b = np.empty(capacity, dtype=np.int32)
        self.payload = np.empty(capacity, dtype=np.int64)
        self._synced = 0
        self.version = -1
        self.refresh()

    def _grow(self, needed: int) -> None:
        np = self._np
        capacity = len(self.op)
        while capacity < needed:
            capacity *= 2
        for name in ("op", "a", "b", "payload"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._synced] = old[: self._synced]
            setattr(self, name, fresh)

    def refresh(self, dirty=()) -> None:
        table = self.table
        if self.version == table.version:
            return
        size = len(table)
        if size > len(self.op):
            self._grow(size)
        if size > self._synced:
            lo, hi = self._synced, size
            self.op[lo:hi] = table.op[lo:hi]
            self.a[lo:hi] = table.a[lo:hi]
            self.b[lo:hi] = table.b[lo:hi]
            self.payload[lo:hi] = table.payload[lo:hi]
            self._synced = size
        for index in dirty:
            self.op[index] = table.op[index]
            self.a[index] = table.a[index]
            self.b[index] = table.b[index]
            self.payload[index] = table.payload[index]
        self.version = table.version


def collect_numpy(
    table: NodeTable,
    n: int,
    rng=None,
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
    tied: bool = True,
    lanes: int = 16384,
):
    """Vectorized batch sampling; returns numpy ``(indices, bit counts)``.

    ``rng`` is a numpy Generator (or ``seed`` builds one).  Requires
    numpy; callers should fall back to :func:`collect_python` otherwise.
    """
    import numpy as np

    if rng is None:
        rng = _pool.numpy_rng(seed)
    # Stubs expand lazily as lanes reach them: eager expansion would
    # unroll loop-state chains (e.g. unbounded counters) far beyond
    # what sampling ever visits.
    view = _TableView(table)
    out_index = np.empty(n, dtype=np.int64)
    out_bits = np.empty(n, dtype=np.int64)
    start = 0
    with _gc_guard():
        while start < n:
            width = min(lanes, n - start)
            _run_lanes(
                table,
                view,
                rng,
                width,
                out_index[start : start + width],
                out_bits[start : start + width],
                max_steps,
                tied,
            )
            start += width
    return out_index, out_bits


def _run_lanes(table, view, rng, width, out_index, out_bits, max_steps, tied):
    import numpy as np

    root = table.root
    cur = np.full(width, root, dtype=np.int32)
    used = np.zeros(width, dtype=np.int64)
    active = np.arange(width, dtype=np.int64)
    # Per-lane call stacks for frame-separated loop calls (OP_CALL):
    # ``stack[lane, :depth[lane]]`` holds the record ids of the calls in
    # flight.  Returns resolve through ``table.call_return`` once per
    # *distinct* (record, exit payload) pair per step; steady state is
    # pure array gathers.
    depth = np.zeros(width, dtype=np.int64)
    stack = np.zeros((width, 4), dtype=np.int64)
    steps = 0
    while active.size:
        if max_steps is not None:
            steps += 1
            if steps > max_steps:
                raise FuelExhausted(
                    "%d lanes unfinished after %d steps"
                    % (active.size, max_steps)
                )
        ops = view.op[cur[active]]

        stub = ops == OP_STUB
        if stub.any():
            dirty = [int(i) for i in np.unique(cur[active[stub]])]
            for index in dirty:
                table.expand(index)
            view.refresh(dirty=dirty)
            continue

        jump = ops == OP_JMP
        if jump.any():
            lanes_ = active[jump]
            cur[lanes_] = view.a[cur[lanes_]]
            if jump.all():
                continue

        call = ops == OP_CALL
        if call.any():
            lanes_ = active[call]
            depths = depth[lanes_]
            need = int(depths.max()) + 1
            if need > stack.shape[1]:
                grown = np.zeros(
                    (width, max(need, 2 * stack.shape[1])), dtype=np.int64
                )
                grown[:, : stack.shape[1]] = stack
                stack = grown
            nodes = cur[lanes_]
            stack[lanes_, depths] = view.payload[nodes]
            depth[lanes_] = depths + 1
            cur[lanes_] = view.a[nodes]

        leaf = ops == OP_LEAF
        if leaf.any():
            lanes_ = active[leaf]
            returning = depth[lanes_] > 0
            if returning.any():
                ret = lanes_[returning]
                depth[ret] -= 1
                records = stack[ret, depth[ret]]
                exits = view.payload[cur[ret]]
                pair = (records << 32) | exits
                uniq, inverse = np.unique(pair, return_inverse=True)
                targets = np.empty(uniq.size, dtype=np.int64)
                resolve = table.call_return
                for j in range(uniq.size):
                    packed = int(uniq[j])
                    targets[j] = resolve(packed >> 32, packed & 0xFFFFFFFF)
                cur[ret] = targets[inverse]
                view.refresh()  # resolution may have lowered new rows
                leaf = leaf.copy()
                leaf[np.where(leaf)[0][returning]] = False
        if leaf.any():
            lanes_ = active[leaf]
            out_index[lanes_] = view.payload[cur[lanes_]]
            out_bits[lanes_] = used[lanes_]
            keep = ~leaf
            active = active[keep]
            ops = ops[keep]
            if not active.size:
                break

        fail = ops == OP_FAIL
        if fail.any():
            lanes_ = active[fail]
            if tied:
                cur[lanes_] = root
                depth[lanes_] = 0
            else:
                out_index[lanes_] = -1
                out_bits[lanes_] = used[lanes_]
                keep = ~fail
                active = active[keep]
                ops = ops[keep]
                if not active.size:
                    break

        bit = ops == OP_BIT
        if bit.any():
            lanes_ = active[bit]
            nodes = cur[lanes_]
            col = _pool.matrix_bits(rng, lanes_.size)
            cur[lanes_] = np.where(col, view.a[nodes], view.b[nodes])
            used[lanes_] += 1
