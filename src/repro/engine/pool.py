"""Pooled, seedable bit buffers for the batch engine.

``SystemBits`` pays a method call and a ``getrandbits(1)`` per bit; at
millions of samples that dominates the sampling time.  ``BitPool``
amortizes generation by drawing bits in chunks:

- :class:`BitPool` -- pure-Python, chunked ``getrandbits``; it is also a
  :class:`~repro.bits.source.BitSource`, so the *same* pooled stream can
  feed the reference trampoline (used by the differential tests);
- :class:`SourcePool` -- adapts an arbitrary ``BitSource`` (e.g.
  ``ReplayBits``) to the pool interface, bit-for-bit;
- :func:`matrix_bits` -- a numpy ``(lanes, width)`` bit matrix for the
  vectorized driver.

Bits within a chunk are emitted least-significant-bit first; given the
same seed a ``BitPool`` always reproduces the same stream (but *not* the
stream of ``SystemBits(seed)``, which draws one bit per PRNG call).
"""

import random
from typing import Optional

from repro.bits.source import BitSource

try:  # numpy is optional everywhere outside repro.ml
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

HAVE_NUMPY = _np is not None

_CHUNK_BITS = 4096


class BitPool(BitSource):
    """A seedable fair-bit stream generated in bulk chunks.

    ``next_bit`` keeps :class:`BitSource` compatibility (one Python call
    per bit); the batch driver instead grabs whole chunks via
    :meth:`next_chunk` and unpacks them inline.
    """

    def __init__(self, seed: Optional[int] = None, chunk_bits: int = _CHUNK_BITS):
        if chunk_bits <= 0:
            raise ValueError("chunk size must be positive")
        self._rng = random.Random(seed)
        self._chunk_bits = chunk_bits
        self._buffer = 0
        self._remaining = 0
        self.generated = 0  # bits handed out so far

    def next_chunk(self):
        """Return ``(value, width)``: ``width`` fresh bits, LSB first."""
        width = self._chunk_bits
        self.generated += width
        return self._rng.getrandbits(width), width

    def next_bit(self) -> bool:
        if self._remaining == 0:
            self._buffer, self._remaining = self.next_chunk()
            self.generated -= self._remaining  # next_chunk already counted
        bit = self._buffer & 1
        self._buffer >>= 1
        self._remaining -= 1
        self.generated += 1
        return bool(bit)


class SourcePool:
    """Present any ``BitSource`` through the pool chunk interface.

    Chunks of width 1 preserve the source's exact bit order (and its
    exhaustion point), which is what the bit-for-bit differential tests
    rely on.
    """

    def __init__(self, source: BitSource):
        self.source = source

    def next_chunk(self):
        return (1 if self.source.next_bit() else 0), 1

    def next_bit(self) -> bool:
        return self.source.next_bit()


def as_pool(source_or_seed):
    """Coerce ``None``/int seed/``BitSource`` to a pool-like object."""
    if source_or_seed is None or isinstance(source_or_seed, int):
        return BitPool(source_or_seed)
    if isinstance(source_or_seed, (BitPool, SourcePool)):
        return source_or_seed
    if isinstance(source_or_seed, BitSource):
        return SourcePool(source_or_seed)
    raise TypeError("expected a seed or BitSource, got %r" % (source_or_seed,))


def matrix_bits(rng, lanes: int):
    """One fair bit per lane as a numpy boolean vector."""
    return rng.integers(0, 2, size=lanes, dtype=_np.uint8).view(_np.bool_)


def numpy_rng(seed: Optional[int] = None):
    """A numpy Generator for the vectorized driver (requires numpy)."""
    if _np is None:
        raise RuntimeError("numpy is not available in this environment")
    return _np.random.default_rng(seed)
