"""Inference semantics of CF trees (Definitions 3.2-3.4).

``twp_b t f`` is the expected value of ``f`` over the terminals of ``t``
(plus the observation-failure mass when ``b``); ``twlp_b`` additionally
counts divergence mass; ``tcwp t f = twp_false t f / twlp_false t 1``.

``Fix`` nodes reuse the generic loop engine of
:mod:`repro.semantics.fixpoint` -- the same machinery that evaluates
``while`` in the cwp semantics -- so the compiler correctness equation
``tcwp (compile c sigma) f = cwp c f sigma`` (Theorem 3.7) can be checked
with both sides computed by independent structural recursions over the
*same* fixpoint solver.
"""

from typing import Callable

from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf
from repro.semantics.algebra import EXT_REAL
from repro.semantics.expectation import bounded_expectation, lift_expectation
from repro.semantics.extreal import ExtReal
from repro.semantics.fixpoint import DEFAULT_OPTIONS, LoopOptions, solve_loop


def twp(
    tree: CFTree,
    f: Callable[[object], object],
    flag: bool = False,
    options: LoopOptions = DEFAULT_OPTIONS,
) -> ExtReal:
    """``twp_b tree f`` (Definition 3.2)."""
    return _eval(tree, lift_expectation(f), EXT_REAL, flag, False, options)


def twlp(
    tree: CFTree,
    f: Callable[[object], object],
    flag: bool = False,
    options: LoopOptions = DEFAULT_OPTIONS,
) -> ExtReal:
    """``twlp_b tree f`` (Definition 3.3); requires ``f <= 1``."""
    f = bounded_expectation(lift_expectation(f))
    return _eval(tree, f, EXT_REAL, flag, True, options)


class TreeConditioningError(ZeroDivisionError):
    """``tcwp`` of a tree whose success probability is zero."""


def tcwp(
    tree: CFTree,
    f: Callable[[object], object],
    options: LoopOptions = DEFAULT_OPTIONS,
) -> ExtReal:
    """``tcwp tree f = twp_false tree f / twlp_false tree 1``
    (Definition 3.4)."""
    numerator = twp(tree, f, flag=False, options=options)
    denominator = twlp(tree, lambda _value: 1, flag=False, options=options)
    if denominator == ExtReal(0):
        raise TreeConditioningError(
            "tree conditions on a probability-zero event (twlp = 0)"
        )
    return numerator / denominator


def _eval(tree, f, alg, flag, liberal, options):
    """Structural twp/twlp evaluation over value algebra ``alg``."""
    if isinstance(tree, Leaf):
        return f(tree.value)
    if isinstance(tree, Fail):
        return alg.one() if flag else alg.zero()
    if isinstance(tree, Choice):
        p = tree.prob
        if p == 1:
            return _eval(tree.left, f, alg, flag, liberal, options)
        if p == 0:
            return _eval(tree.right, f, alg, flag, liberal, options)
        left = _eval(tree.left, f, alg, flag, liberal, options)
        right = _eval(tree.right, f, alg, flag, liberal, options)
        return alg.add(alg.scale(p, left), alg.scale(1 - p, right))
    if isinstance(tree, Fix):
        body, cont = tree.body, tree.cont

        def step(s, h, step_alg):
            return _eval(body(s), h, step_alg, flag, liberal, options)

        def mass_step(s, h, step_alg):
            return _eval(body(s), h, step_alg, False, False, options)

        def exit_value(s):
            return _eval(cont(s), f, alg, flag, liberal, options)

        return solve_loop(
            init_state=tree.init,
            guard=tree.guard,
            step=step,
            exit_value=exit_value,
            algebra=alg,
            greatest=liberal,
            options=options,
            mass_step=mass_step,
        )
    raise TypeError("not a CF tree: %r" % (tree,))


def twp_value(tree, f, alg, flag, liberal, options):
    """Low-level entry point (generic algebra), for tests and harnesses."""
    return _eval(tree, f, alg, flag, liberal, options)
