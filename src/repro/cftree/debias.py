"""Bias elimination: reduction to the random bit model (Appendix A).

``debias`` replaces every ``Choice p k`` whose bias is not 1/2 by the
semantically equivalent fair-coin-flipping scheme ``bernoulli_tree p``
bound into the (recursively debiased) subtrees (Definition A.1):

    debias (Choice p k) =
        bernoulli_tree p >>= \\b. if b then debias (k true)
                                       else debias (k false)

``Fix`` nodes debias lazily through their generators, so unbounded loops
never force infinite work.  The essential properties -- semantics
preservation (Theorem 3.8 / A.2) and unbiasedness of the result
(Theorem 3.9 / A.3) -- are checked exactly by the verification suite.
"""

from fractions import Fraction

from repro.cftree.cache import BoundedCache
from repro.cftree.keys import derive
from repro.cftree.monad import bind
from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf
from repro.cftree.uniform import bernoulli_tree

_HALF = Fraction(1, 2)

_DEBIAS_CACHE = BoundedCache(200_000)


def debias(tree: CFTree, coalesce: str = "loopback") -> CFTree:
    """Replace all biased choices by fair coin-flipping schemes.

    ``coalesce`` selects the leaf-coalescing mode of the underlying
    ``bernoulli_tree`` construction (see :mod:`repro.cftree.uniform`);
    the default reproduces the paper's measured entropy usage.
    """
    key = (id(tree), coalesce)
    cached = _DEBIAS_CACHE.get(key)
    if cached is None:
        cached = _debias(tree, coalesce)
        _DEBIAS_CACHE.put(key, (tree,), cached)
    return cached


def _debias(tree: CFTree, coalesce: str) -> CFTree:
    if isinstance(tree, (Leaf, Fail)):
        return tree
    if isinstance(tree, Choice):
        left = debias(tree.left, coalesce)
        right = debias(tree.right, coalesce)
        if tree.prob == _HALF:
            return Choice(_HALF, left, right)
        # The selector stays untagged on purpose: its key would embed
        # the (state-carrying) branch trees and be unique per state --
        # fingerprinting them per compile is all cost, no sharing.  The
        # rejection wrapper ``bind`` builds here is closed out by
        # expansion before any disk spill.
        return bind(
            bernoulli_tree(tree.prob, coalesce),
            lambda heads: left if heads else right,
        )
    if isinstance(tree, Fix):
        body, cont = tree.body, tree.cont
        # Debiasing rewrites the body's choice structure, so the
        # machinery subkey is re-derived; the variable footprint is a
        # property of the source command and survives unchanged.
        return Fix(
            tree.init,
            tree.guard,
            lambda s: debias(body(s), coalesce),
            lambda s: debias(cont(s), coalesce),
            key=derive("fix.debias", tree.key, coalesce),
            subkey=derive("sub.debias", tree.subkey, coalesce),
            footprint=tree.footprint,
        )
    raise TypeError("not a CF tree: %r" % (tree,))
