"""The ``elim_choices`` optimization (Definition 3.13).

Eliminates redundant probabilistic choices before debiasing:

- a choice with bias 0 or 1 is replaced by the branch actually taken;
- a fair-or-biased choice between *structurally equal* subtrees is that
  subtree (coalescing duplicate leaves, Appendix A step 5);
- rational biases are kept reduced (automatic with ``Fraction``).

Each rewrite preserves ``tcwp`` (checked exactly by the test suite) and
never increases expected bit consumption.
"""

from repro.cftree.cache import BoundedCache
from repro.cftree.keys import derive
from repro.cftree.tree import CFTree, Choice, Fail, Fix, Leaf

_ELIM_CACHE = BoundedCache(200_000)


def elim_choices(tree: CFTree) -> CFTree:
    """Remove trivial and duplicate choices, recursively."""
    key = id(tree)
    cached = _ELIM_CACHE.get(key)
    if cached is None:
        cached = _elim(tree)
        _ELIM_CACHE.put(key, (tree,), cached)
    return cached


def _elim(tree: CFTree) -> CFTree:
    if isinstance(tree, (Leaf, Fail)):
        return tree
    if isinstance(tree, Choice):
        if tree.prob == 1:
            return elim_choices(tree.left)
        if tree.prob == 0:
            return elim_choices(tree.right)
        left = elim_choices(tree.left)
        right = elim_choices(tree.right)
        if left == right:
            return left
        return Choice(tree.prob, left, right)
    if isinstance(tree, Fix):
        body, cont = tree.body, tree.cont
        return Fix(
            tree.init,
            tree.guard,
            lambda s: elim_choices(body(s)),
            lambda s: elim_choices(cont(s)),
            key=derive("fix.elim", tree.key),
            subkey=derive("sub.elim", tree.subkey),
            footprint=tree.footprint,
        )
    raise TypeError("not a CF tree: %r" % (tree,))
