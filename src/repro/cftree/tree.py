"""The choice-fix tree data type (Definition 3.1).

Trees are generic in their leaf type ``A``:

- the compiler produces ``CFTree[State]`` (leaves are terminal program
  states);
- ``uniform_tree n`` is a ``CFTree[int]`` over outcomes ``0..n-1``;
- ``bernoulli_tree p`` is a ``CFTree[bool]``.

``Choice`` stores its two continuations directly (``left`` = the paper's
``k true``, ``right`` = ``k false``).  ``Fix sigma e g k`` encodes a loop:
starting from ``init``, repeatedly extend via the body generator ``body``
while ``guard`` holds, then continue with ``cont``; both ``body`` and
``cont`` map loop states to subtrees.

Structural equality is decidable for ``Leaf``/``Fail``/``Choice`` nodes
(used by the leaf-coalescing optimization that makes the debiased
samplers near entropy-optimal); ``Fix`` nodes compare by identity since
they contain functions.

``LOOPBACK`` is the sentinel leaf value used by the ``uniform_tree`` and
``bernoulli_tree`` rejection constructions (Appendix A step 3): the
``Fix`` wrapper's guard recognizes it and restarts the flip scheme.
"""

from fractions import Fraction
from typing import Callable, Generic, TypeVar

A = TypeVar("A")
S = TypeVar("S")


class _Loopback:
    """Sentinel leaf marking 'restart the rejection loop' (Appendix A)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "LOOPBACK"


LOOPBACK = _Loopback()


class CFTree(Generic[A]):
    """Base class of choice-fix trees."""

    __slots__ = ()


class Leaf(CFTree[A]):
    """A terminal with value ``value`` (a program state, outcome, ...)."""

    __slots__ = ("value",)

    def __init__(self, value: A):
        object.__setattr__(self, "value", value)

    def __setattr__(self, *_):
        raise AttributeError("Leaf is immutable")

    def __eq__(self, other):
        return isinstance(other, Leaf) and self.value == other.value

    def __hash__(self):
        return hash(("Leaf", self.value))

    def __repr__(self):
        return "Leaf(%r)" % (self.value,)


class Fail(CFTree[A]):
    """Observation failure (a violated ``observe``)."""

    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, Fail)

    def __hash__(self):
        return hash("Fail")

    def __repr__(self):
        return "Fail()"


class Choice(CFTree[A]):
    """Probabilistic binary choice with rational bias ``prob`` of going
    left (the paper's "heads")."""

    __slots__ = ("prob", "left", "right")

    def __init__(self, prob, left: CFTree, right: CFTree):
        prob = Fraction(prob)
        if not 0 <= prob <= 1:
            raise ValueError("choice bias %s outside [0, 1]" % (prob,))
        _require_tree(left)
        _require_tree(right)
        object.__setattr__(self, "prob", prob)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, *_):
        raise AttributeError("Choice is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Choice)
            and self.prob == other.prob
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("Choice", self.prob, self.left, self.right))

    def __repr__(self):
        return "Choice(%s, %r, %r)" % (self.prob, self.left, self.right)


class Fix(CFTree[A], Generic[S, A]):
    """A loop node ``Fix init guard body cont``.

    Operationally: starting from ``Leaf(init)``, repeatedly extend leaves
    ``s`` via ``body(s)`` while ``guard(s)`` holds; leaves with a false
    guard continue into ``cont(s)``.

    ``key`` is an optional *content key* (a hex digest produced by
    :mod:`repro.cftree.keys`): two ``Fix`` nodes carrying the same key
    promise extensionally equal ``(guard, body, cont)`` behavior, so the
    engine may intern loop entries across distinct closure objects and
    the disk cache may address loop states by ``(key, state)``.  A
    ``None`` key makes the node opaque (identity semantics), exactly the
    pre-key behavior.

    ``subkey`` keys the loop *machinery* alone -- equal subkeys promise
    extensionally equal ``(guard, body)`` behavior, ignoring ``cont``.
    ``footprint`` is the loop's variable footprint: a frozenset of names
    such that guard and body only ever read or write variables inside
    it (``None`` = unknown).  Together they let the engine run the loop
    as a *subroutine* on the footprint projection of the state, sharing
    one copy of the machinery across every frame of untouched outer
    variables (see ``repro.engine.table``).
    """

    __slots__ = ("init", "guard", "body", "cont", "key", "subkey", "footprint")

    def __init__(
        self,
        init: S,
        guard: Callable[[S], bool],
        body: Callable[[S], CFTree[S]],
        cont: Callable[[S], CFTree[A]],
        key: "str | None" = None,
        subkey: "str | None" = None,
        footprint: "frozenset | None" = None,
    ):
        object.__setattr__(self, "init", init)
        object.__setattr__(self, "guard", guard)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "cont", cont)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "subkey", subkey)
        object.__setattr__(self, "footprint", footprint)

    def __setattr__(self, *_):
        raise AttributeError("Fix is immutable")

    # Fix nodes contain functions: equality is identity.
    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return id(self)

    def __repr__(self):
        return "Fix(init=%r, guard=%r, body=%r, cont=%r)" % (
            self.init,
            self.guard,
            self.body,
            self.cont,
        )


def _require_tree(t):
    if not isinstance(t, CFTree):
        raise TypeError("expected a CF tree, got %r" % (t,))
