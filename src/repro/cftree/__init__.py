"""Choice-fix trees: the compiler's intermediate representation (Section 3).

CF trees have four constructors (Definition 3.1): ``Leaf`` (terminal
state), ``Fail`` (observation failure), ``Choice`` (probabilistic binary
choice with rational bias), and ``Fix`` (loops, as a guarded generator).
This subpackage provides the tree type and its monad, the twp/twlp/tcwp
inference semantics (Definitions 3.2-3.4), the compiler from cpGCL
(Definition 3.5), the ``uniform_tree``/``bernoulli_tree`` constructions
(Lemma 3.6, Appendix A), the ``debias`` transformation to the random bit
model, and the ``elim_choices`` optimization.
"""

from repro.cftree.tree import Choice, Fail, Fix, Leaf, CFTree, LOOPBACK
from repro.cftree.monad import bind, fmap
from repro.cftree.semantics import tcwp, twlp, twp
from repro.cftree.uniform import bernoulli_tree, uniform_tree
from repro.cftree.compile import compile_cpgcl
from repro.cftree.debias import debias
from repro.cftree.elim import elim_choices
from repro.cftree.analysis import (
    expected_bits,
    is_unbiased,
    tree_depth,
    tree_size,
)

__all__ = [
    "CFTree",
    "Choice",
    "Fail",
    "Fix",
    "LOOPBACK",
    "Leaf",
    "bernoulli_tree",
    "bind",
    "compile_cpgcl",
    "debias",
    "elim_choices",
    "expected_bits",
    "fmap",
    "is_unbiased",
    "tcwp",
    "tree_depth",
    "tree_size",
    "twlp",
    "twp",
    "uniform_tree",
]
